//! Import OWL ontologies and RDF alignment documents from disk, assess the mappings.
//!
//! This mirrors the tool described in Section 5.2 of the paper: a suite of
//! bibliographic ontologies is serialised to OWL (RDF/XML), the automatically created
//! mappings are serialised in the KnowledgeWeb alignment format, both are written to a
//! scratch directory, read back, imported into a PDMS catalog, and handed to the
//! probabilistic message-passing engine, which flags the erroneous correspondences.
//!
//! Run with `cargo run --example rdf_import`.

use pdms::core::{Engine, EngineConfig};
use pdms::rdf::{
    export_catalog, import_catalog_with_oracle, parse_alignment, parse_ontology, Judgement,
};
use pdms::schema::AttributeId;
use pdms::workloads::{generate_ontology_suite, OntologySuiteConfig};
use std::collections::BTreeMap;
use std::fs;
use std::path::PathBuf;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Produce a realistic workload: six bibliographic ontologies aligned pairwise by
    //    a string-similarity matcher (the EON-substitute workload of Figure 12).
    let suite = generate_ontology_suite(&OntologySuiteConfig::default());
    println!(
        "generated {} ontologies, {} mappings, {} correspondences ({} erroneous)",
        suite.catalog.peer_count(),
        suite.catalog.mapping_count(),
        suite.total_correspondences,
        suite.erroneous_correspondences
    );

    // 2. Serialise everything to OWL + alignment files, exactly the artefacts an
    //    external tool (or the EON contest) would hand us.
    let export = export_catalog(&suite.catalog);
    let dir: PathBuf = std::env::temp_dir().join("pdms-rdf-import-example");
    fs::create_dir_all(&dir)?;
    let mut ontology_files = Vec::new();
    for (name, xml) in &export.ontologies {
        let path = dir.join(format!("{name}.owl"));
        fs::write(&path, xml)?;
        ontology_files.push((name.clone(), path));
    }
    let mut alignment_files = Vec::new();
    for (i, xml) in export.alignments.iter().enumerate() {
        let path = dir.join(format!("alignment-{i:03}.rdf"));
        fs::write(&path, xml)?;
        alignment_files.push(path);
    }
    println!(
        "wrote {} OWL files and {} alignment files to {}",
        ontology_files.len(),
        alignment_files.len(),
        dir.display()
    );

    // 3. Read the files back and import them into a fresh catalog. The ground-truth
    //    oracle (which concept each attribute renders) comes from the workload
    //    generator; real deployments would skip it and work unjudged.
    let mut concept_of_name: BTreeMap<(String, String), usize> = BTreeMap::new();
    let mut attribute_of_concept: BTreeMap<(String, usize), AttributeId> = BTreeMap::new();
    for peer in suite.catalog.peers() {
        let schema = suite.catalog.peer_schema(peer);
        for attribute in schema.attributes() {
            let concept = suite.concept(peer, attribute.id);
            concept_of_name.insert((schema.name().to_string(), attribute.name.clone()), concept);
            attribute_of_concept
                .entry((schema.name().to_string(), concept))
                .or_insert(attribute.id);
        }
    }

    let ontologies = ontology_files
        .iter()
        .map(|(name, path)| {
            let text = fs::read_to_string(path)?;
            Ok(parse_ontology(&text, name)?)
        })
        .collect::<Result<Vec<_>, Box<dyn std::error::Error>>>()?;
    let alignments = alignment_files
        .iter()
        .map(|path| {
            let text = fs::read_to_string(path)?;
            Ok(parse_alignment(&text)?)
        })
        .collect::<Result<Vec<_>, Box<dyn std::error::Error>>>()?;

    let oracle = |source: &str, source_attr: &str, target: &str, target_attr: &str| {
        let Some(&concept) = concept_of_name.get(&(source.to_string(), source_attr.to_string()))
        else {
            return Judgement::Unknown;
        };
        let expected = attribute_of_concept
            .get(&(target.to_string(), concept))
            .copied();
        let proposed_concept = concept_of_name.get(&(target.to_string(), target_attr.to_string()));
        match (expected, proposed_concept) {
            (Some(_), Some(&proposed)) if proposed == concept => Judgement::Correct,
            (expected, _) => Judgement::Erroneous(expected),
        }
    };
    let import = import_catalog_with_oracle(&ontologies, &alignments, oracle)?;
    println!(
        "re-imported {} peers, {} mappings, {} correspondences ({} known erroneous)",
        import.catalog.peer_count(),
        import.catalog.mapping_count(),
        import.imported_correspondences,
        import.catalog.erroneous_mapping_count()
    );

    // 4. Run the message-passing engine over the imported catalog and report how well
    //    it spots the faulty correspondences, exactly like Figure 12.
    let mut engine = Engine::new(import.catalog, EngineConfig::default());
    let report = engine.run();
    println!(
        "\ninference: {} evidence paths, {} variables, {} rounds (converged: {})",
        report.analysis.evidences.len(),
        report.model.variable_count(),
        report.rounds,
        report.converged
    );
    for theta in [0.3, 0.5, 0.6] {
        let eval = engine.evaluate(&report, theta);
        println!(
            "theta = {theta:.2}: flagged {:3}  precision {:.2}  recall {:.2}",
            eval.flagged(),
            eval.precision(),
            eval.recall()
        );
    }
    Ok(())
}

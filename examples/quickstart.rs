//! Quickstart: build a tiny PDMS session, detect the faulty mapping, route a query
//! around it, then watch the session absorb a network change incrementally.
//!
//! Run with `cargo run --example quickstart`.

use pdms::core::{Engine, Granularity, NetworkEvent, RoutingPolicy};
use pdms::schema::{AttributeId, Catalog, PeerId, Predicate, Query};

fn main() {
    // 1. Describe the PDMS: four art databases, five pairwise schema mappings.
    //    Every schema has the same eleven attributes here for brevity; in general each
    //    peer brings its own schema and mappings connect semantically similar
    //    attributes.
    let attribute_names = [
        "Creator",
        "Item",
        "CreatedOn",
        "Title",
        "Subject",
        "Medium",
        "Height",
        "Width",
        "Location",
        "Owner",
        "Licence",
    ];
    let mut catalog = Catalog::new();
    let peers: Vec<PeerId> = (1..=4)
        .map(|i| {
            catalog.add_peer_with_schema(format!("p{i}"), |schema| {
                schema.attributes(attribute_names);
            })
        })
        .collect();
    let creator = AttributeId(0);
    let item = AttributeId(1);
    let created_on = AttributeId(2);
    let all_correct = |mut m: pdms::schema::MappingBuilder| {
        for a in 0..attribute_names.len() {
            m = m.correct(AttributeId(a), AttributeId(a));
        }
        m
    };
    catalog.add_mapping(peers[0], peers[1], all_correct); // m12
    catalog.add_mapping(peers[1], peers[2], all_correct); // m23
    catalog.add_mapping(peers[2], peers[3], all_correct); // m34
    catalog.add_mapping(peers[3], peers[0], all_correct); // m41
                                                          // m24 was generated automatically and erroneously maps Creator onto CreatedOn.
    catalog.add_mapping(peers[1], peers[3], |mut m| {
        m = m.erroneous(creator, created_on, creator);
        for a in 1..attribute_names.len() {
            m = m.correct(AttributeId(a), AttributeId(a));
        }
        m
    });

    // 2. Build an engine session. The builder chooses the paper's defaults (fine
    //    granularity, embedded message passing, Δ estimated from the schema sizes);
    //    `.backend(..)` would swap in exact inference or a custom implementation of
    //    the `InferenceBackend` trait. Building runs the full pipeline once: cycle and
    //    parallel-path discovery, factor-graph construction, and message passing.
    let mut session = Engine::builder()
        .granularity(Granularity::Fine)
        .build(catalog);
    println!(
        "backend `{}` converged after {} rounds (delta = {:.2})\n",
        session.backend_name(),
        session.rounds(),
        session.delta()
    );
    println!("posterior P(mapping preserves Creator):");
    for mapping in session.catalog().mappings().collect::<Vec<_>>() {
        let (from, to) = session.catalog().mapping_endpoints(mapping);
        let p = session
            .posteriors()
            .probability(session.catalog(), mapping, creator);
        println!(
            "  {} -> {}  {mapping}: {p:.3}{}",
            session.catalog().peer_name(from),
            session.catalog().peer_name(to),
            if p < 0.5 {
                "   <-- flagged as faulty"
            } else {
                ""
            }
        );
    }

    // 3. Pose the introductory query at p2 ("names of all artists having created a
    //    piece of work related to some river") and let the cached posteriors steer
    //    routing. `route_all` answers a whole workload against one posterior
    //    snapshot — no per-query recomputation.
    let query = Query::new()
        .project(creator)
        .select(item, Predicate::Contains("river".into()));
    let outcome = &session.route_all(&[(peers[1], query)], &RoutingPolicy::uniform(0.5))[0];
    println!("\nquery routed from p2:");
    println!("  peers reached:        {}", outcome.reached.len());
    println!("  false-positive peers: {}", outcome.tainted.len());
    for decision in &outcome.decisions {
        println!(
            "  {} {} -> {}: {}",
            decision.mapping,
            decision.from,
            decision.to,
            if decision.forwarded {
                "forwarded"
            } else {
                "blocked"
            }
        );
    }

    // 4. The network evolves: p2's administrator repairs m24. The session applies the
    //    delta incrementally — only the evidence paths through m24 are re-observed,
    //    everything else is reused, and message passing restarts warm from the
    //    previous posteriors.
    let report = session.apply(&[NetworkEvent::Repair {
        mapping: pdms::schema::MappingId(4),
        attribute: creator,
    }]);
    let p_repaired =
        session
            .posteriors()
            .probability(session.catalog(), pdms::schema::MappingId(4), creator);
    println!(
        "\nafter repairing m24: {} evidence paths re-observed, {} reused, \
         {} warm rounds; P(m24 preserves Creator) = {p_repaired:.3}",
        report.analysis.evidences_reobserved, report.analysis.evidences_reused, report.rounds,
    );

    // 5. At scale, evidence discovery parallelizes. Realistic PDMS topologies are
    //    scale-free — a few hub peers carry most mappings — so the enumeration uses a
    //    work-stealing schedule: hub origins are split into first-hop subtasks that
    //    idle workers steal. The knobs only affect scheduling; evidence ids and
    //    posteriors are bit-identical at every setting (0 = auto via the
    //    PDMS_PARALLELISM / PDMS_HEAVY_ORIGIN_THRESHOLD / PDMS_STEAL_GRANULARITY
    //    environment variables).
    let hub_network = pdms::workloads::hub_heavy_network(32, 2, 1.6, 42);
    let hub_session = Engine::builder()
        .parallelism(0) // auto worker count
        .heavy_origin_threshold(0) // auto: split origins with >= 4 first hops
        .steal_granularity(0) // auto: one first-hop edge per stolen subtask
        .build(hub_network.catalog);
    println!(
        "\nhub-heavy network (32 peers, scale-free): {} evidence paths, {} rounds \
         — same ids at any worker count",
        hub_session.analysis().evidences.len(),
        hub_session.rounds(),
    );
}

//! Quickstart: build a tiny PDMS, detect the faulty mapping, route a query around it.
//!
//! Run with `cargo run --example quickstart`.

use pdms::core::{Engine, EngineConfig, RoutingPolicy};
use pdms::schema::{AttributeId, Catalog, PeerId, Predicate, Query};

fn main() {
    // 1. Describe the PDMS: four art databases, five pairwise schema mappings.
    //    Every schema has the same eleven attributes here for brevity; in general each
    //    peer brings its own schema and mappings connect semantically similar
    //    attributes.
    let attribute_names = [
        "Creator", "Item", "CreatedOn", "Title", "Subject", "Medium", "Height", "Width",
        "Location", "Owner", "Licence",
    ];
    let mut catalog = Catalog::new();
    let peers: Vec<PeerId> = (1..=4)
        .map(|i| {
            catalog.add_peer_with_schema(format!("p{i}"), |schema| {
                schema.attributes(attribute_names);
            })
        })
        .collect();
    let creator = AttributeId(0);
    let item = AttributeId(1);
    let created_on = AttributeId(2);
    let all_correct = |mut m: pdms::schema::MappingBuilder| {
        for a in 0..attribute_names.len() {
            m = m.correct(AttributeId(a), AttributeId(a));
        }
        m
    };
    catalog.add_mapping(peers[0], peers[1], all_correct); // m12
    catalog.add_mapping(peers[1], peers[2], all_correct); // m23
    catalog.add_mapping(peers[2], peers[3], all_correct); // m34
    catalog.add_mapping(peers[3], peers[0], all_correct); // m41
    // m24 was generated automatically and erroneously maps Creator onto CreatedOn.
    catalog.add_mapping(peers[1], peers[3], |mut m| {
        m = m.erroneous(creator, created_on, creator);
        for a in 1..attribute_names.len() {
            m = m.correct(AttributeId(a), AttributeId(a));
        }
        m
    });

    // 2. Run the probabilistic message-passing engine: it discovers mapping cycles and
    //    parallel paths, turns the feedback into a factor graph, and estimates the
    //    probability that each mapping preserves each attribute.
    let mut engine = Engine::new(catalog, EngineConfig::default());
    let report = engine.run();
    println!("converged after {} rounds (delta = {:.2})\n", report.rounds, report.delta);
    println!("posterior P(mapping preserves Creator):");
    for mapping in engine.catalog().mappings() {
        let (from, to) = engine.catalog().mapping_endpoints(mapping);
        let p = report.posteriors.probability(engine.catalog(), mapping, creator);
        println!(
            "  {} -> {}  {mapping}: {p:.3}{}",
            engine.catalog().peer_name(from),
            engine.catalog().peer_name(to),
            if p < 0.5 { "   <-- flagged as faulty" } else { "" }
        );
    }

    // 3. Pose the introductory query at p2 ("names of all artists having created a
    //    piece of work related to some river") and let the posteriors steer routing.
    let query = Query::new()
        .project(creator)
        .select(item, Predicate::Contains("river".into()));
    let outcome = engine.route(&report, peers[1], &query, &RoutingPolicy::uniform(0.5));
    println!("\nquery routed from p2:");
    println!("  peers reached:        {}", outcome.reached.len());
    println!("  false-positive peers: {}", outcome.tainted.len());
    for decision in &outcome.decisions {
        println!(
            "  {} {} -> {}: {}",
            decision.mapping,
            decision.from,
            decision.to,
            if decision.forwarded { "forwarded" } else { "blocked" }
        );
    }
}

//! Adaptive probe-TTL expansion: discover only the cycles that matter.
//!
//! Section 5.1.2 of the paper argues that long cycles carry almost no evidence, and
//! describes a concrete strategy: start probing with a low TTL, raise it gradually, and
//! stop as soon as the newly discovered cycles no longer move the posteriors. This
//! example runs that strategy on an SRS-style clustered network (the kind of topology
//! Section 3.2.1 measures) and prints the whole trajectory — how much evidence each TTL
//! adds and how little the posteriors change beyond TTL ≈ 4–6.
//!
//! Run with `cargo run --example ttl_budget`.

use pdms::core::{expand_ttl, TtlExpansionConfig};
use pdms::workloads::{SrsConfig, SrsNetwork};

fn main() {
    let network = SrsNetwork::generate(SrsConfig {
        peers: 24,
        mean_cluster_size: 6,
        intra_cluster_density: 0.7,
        hub_links: 2,
        attributes: 10,
        error_rate: 0.1,
        seed: 54,
    });
    println!(
        "SRS-style network: {} peers, {} mappings, clustering coefficient {:.2}, max degree {}",
        network.catalog.peer_count(),
        network.catalog.mapping_count(),
        network.clustering_coefficient,
        network.max_degree
    );

    let expansion = expand_ttl(
        &network.catalog,
        &TtlExpansionConfig {
            start_ttl: 2,
            max_ttl: 8,
            epsilon: 0.01,
            patience: 1,
            ..Default::default()
        },
    );

    println!(
        "\n{:>5} {:>10} {:>11} {:>16} {:>8}",
        "TTL", "evidence", "variables", "max Δposterior", "rounds"
    );
    for step in &expansion.steps {
        println!(
            "{:>5} {:>10} {:>11} {:>16} {:>8}",
            step.ttl,
            step.evidence_count,
            step.variable_count,
            step.max_posterior_change
                .map(|c| format!("{c:.4}"))
                .unwrap_or_else(|| "-".to_string()),
            step.rounds
        );
    }
    println!(
        "\nexpansion {} at TTL {} after probing {} TTL values.",
        if expansion.converged {
            "stopped (posteriors stable)"
        } else {
            "hit the TTL budget"
        },
        expansion.chosen_ttl,
        expansion.probes()
    );

    // Show what the chosen TTL buys: detection quality against the injected errors.
    let mut engine = pdms::core::Engine::new(network.catalog.clone(), Default::default());
    let full = engine.run();
    let eval_full = engine.evaluate(&full, 0.5);
    println!(
        "detection at the default analysis bounds: {} flagged, precision {:.2}, recall {:.2}",
        eval_full.flagged(),
        eval_full.precision(),
        eval_full.recall()
    );
}

//! An evolving PDMS: churn events, epoch-by-epoch inference, prior carry-over.
//!
//! Sections 4.4 and 7 of the paper discuss what happens when the mapping network keeps
//! changing: posteriors are folded back into the priors so the evidence gathered before
//! a change is not lost, and maintaining the probabilistic network has a cost that must
//! be weighed against the relevance of its answers. This example drives a synthetic
//! PDMS through several epochs of churn (corruptions, repairs, new mappings) and prints
//! how detection quality, posterior drift, and maintenance cost evolve.
//!
//! Run with `cargo run --example dynamic_network`.

use pdms::core::{DynamicPdms, DynamicsConfig};
use pdms::graph::GeneratorConfig;
use pdms::workloads::{ChurnConfig, ChurnGenerator, SyntheticConfig, SyntheticNetwork};

fn main() {
    // A clustered network of a dozen peers, 10-attribute schemas, 10 % initial errors.
    let network = SyntheticNetwork::generate(SyntheticConfig {
        topology: GeneratorConfig::small_world(12, 2, 0.2, 42),
        attributes: 10,
        error_rate: 0.1,
        seed: 7,
    });
    println!(
        "initial network: {} peers, {} mappings, {} injected errors",
        network.catalog.peer_count(),
        network.catalog.mapping_count(),
        network.error_count()
    );

    let mut pdms = DynamicPdms::new(network.catalog.clone(), DynamicsConfig::default());
    let mut churn = ChurnGenerator::new(ChurnConfig {
        corrupt_rate: 0.03,
        repair_rate: 0.4,
        drop_rate: 0.005,
        new_mappings_per_epoch: 1.0,
        new_mapping_error_rate: 0.2,
        seed: 2006,
        ..Default::default()
    });

    println!(
        "\n{:>5} {:>7} {:>9} {:>7} {:>9} {:>10} {:>10} {:>7} {:>9}",
        "epoch",
        "events",
        "mappings",
        "errors",
        "evidence",
        "precision",
        "recall",
        "drift",
        "msgs/rnd"
    );
    for epoch in 0..8 {
        // Epoch 0 assesses the initial network; later epochs first apply churn.
        if epoch > 0 {
            let events = churn.epoch_events(pdms.catalog());
            pdms.apply(&events);
        }
        let report = pdms.run_epoch();
        println!(
            "{:>5} {:>7} {:>9} {:>7} {:>9} {:>10.3} {:>10.3} {:>7.3} {:>9}",
            report.epoch,
            report.events_applied,
            report.mappings,
            report.erroneous_mappings,
            report.evidence_paths,
            report.evaluation.precision(),
            report.evaluation.recall(),
            report.posterior_drift,
            report.messages_per_round
        );
    }

    let final_epoch = pdms.history().last().expect("epochs ran");
    println!(
        "\nafter {} epochs the network has {} mappings ({} erroneous); the engine flags {} \
         correspondences with precision {:.2}.",
        pdms.history().len(),
        final_epoch.mappings,
        final_epoch.erroneous_mappings,
        final_epoch.evaluation.flagged(),
        final_epoch.evaluation.precision()
    );
}

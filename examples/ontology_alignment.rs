//! Real-world-style scenario: automatically align six bibliographic ontologies, then
//! let the message-passing scheme find the alignment errors (the Figure 12 workload).
//!
//! Run with `cargo run --release --example ontology_alignment`.

use pdms::core::{precision_recall, AnalysisConfig, EmbeddedConfig, Engine, EngineConfig};
use pdms::workloads::{generate_ontology_suite, OntologySuiteConfig};

fn main() {
    let suite = generate_ontology_suite(&OntologySuiteConfig::default());
    println!(
        "generated {} ontologies, {} mappings, {} attribute correspondences ({} erroneous, {:.1}%)",
        suite.catalog.peer_count(),
        suite.catalog.mapping_count(),
        suite.total_correspondences,
        suite.erroneous_correspondences,
        100.0 * suite.error_rate()
    );
    for peer in suite.catalog.peers() {
        let schema = suite.catalog.peer_schema(peer);
        println!(
            "  {:<14} {} concepts",
            schema.name(),
            schema.attribute_count()
        );
    }

    let mut engine = Engine::new(
        suite.catalog.clone(),
        EngineConfig {
            delta: Some(0.1),
            analysis: AnalysisConfig {
                max_cycle_len: 4,
                max_path_len: 3,
                include_parallel_paths: true,
                ..Default::default()
            },
            embedded: EmbeddedConfig {
                max_rounds: 30,
                record_history: false,
                ..Default::default()
            },
            ..Default::default()
        },
    );
    let report = engine.run();
    println!(
        "\nanalysis: {} evidence paths, model: {} variables, {} feedback factors, {} rounds",
        report.analysis.evidences.len(),
        report.model.variable_count(),
        report.model.evidence_count(),
        report.rounds,
    );

    println!("\nprecision / recall of erroneous-correspondence detection:");
    println!(
        "{:>8} {:>10} {:>8} {:>9}",
        "theta", "precision", "recall", "flagged"
    );
    for theta in [0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9] {
        let eval = precision_recall(engine.catalog(), &report.posteriors, theta);
        println!(
            "{theta:>8.2} {:>10.3} {:>8.3} {:>9}",
            eval.precision(),
            eval.recall(),
            eval.flagged()
        );
    }
    println!(
        "\nAs in the paper's Figure 12, low thresholds flag few but almost always genuinely\n\
         erroneous correspondences; raising the threshold finds more of them at the cost of\n\
         precision, with the useful operating points below θ ≈ 0.6."
    );
}

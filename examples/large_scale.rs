//! Large-scale synthetic simulation: a clustered, scale-free-ish mapping network with
//! injected errors, analysed end to end — the kind of "larger automatically-generated
//! PDMS settings" the paper's conclusion mentions as ongoing work.
//!
//! Run with `cargo run --release --example large_scale`.

use pdms::core::{precision_recall, AnalysisConfig, EmbeddedConfig, Engine, EngineConfig};
use pdms::graph::{clustering_coefficient, GeneratorConfig};
use pdms::workloads::{SyntheticConfig, SyntheticNetwork};

fn main() {
    let network = SyntheticNetwork::generate(SyntheticConfig {
        topology: GeneratorConfig::small_world(40, 3, 0.15, 2024),
        attributes: 10,
        error_rate: 0.15,
        seed: 99,
    });
    let topology = pdms::core::cycle_analysis::build_topology(&network.catalog);
    println!(
        "synthetic network: {} peers, {} mappings, clustering coefficient {:.3}",
        network.catalog.peer_count(),
        network.catalog.mapping_count(),
        clustering_coefficient(&topology)
    );
    println!(
        "injected errors: {} of {} correspondences ({:.1}%)",
        network.error_count(),
        network.correspondence_count(),
        100.0 * network.effective_error_rate()
    );

    let mut engine = Engine::new(
        network.catalog.clone(),
        EngineConfig {
            delta: Some(0.1),
            analysis: AnalysisConfig {
                max_cycle_len: 5,
                max_path_len: 3,
                include_parallel_paths: true,
                ..Default::default()
            },
            embedded: EmbeddedConfig {
                max_rounds: 30,
                record_history: false,
                ..Default::default()
            },
            ..Default::default()
        },
    );
    let report = engine.run();
    println!(
        "\nevidence paths: {}, model variables: {}, feedback factors: {}, rounds: {}",
        report.analysis.evidences.len(),
        report.model.variable_count(),
        report.model.evidence_count(),
        report.rounds
    );

    println!("\ndetection quality vs. threshold:");
    println!(
        "{:>8} {:>10} {:>8} {:>6} {:>9}",
        "theta", "precision", "recall", "f1", "flagged"
    );
    for theta in [0.2, 0.3, 0.4, 0.5, 0.6] {
        let eval = precision_recall(engine.catalog(), &report.posteriors, theta);
        println!(
            "{theta:>8.2} {:>10.3} {:>8.3} {:>6.3} {:>9}",
            eval.precision(),
            eval.recall(),
            eval.f1(),
            eval.flagged()
        );
    }
}

//! The paper's introductory example, end to end: the four-peer art network, probe-based
//! cycle discovery, the decentralized run over a lossy simulated network, prior
//! updates, and posterior-driven query routing with real documents.
//!
//! Run with `cargo run --example art_network`.

use pdms::core::{
    AnalysisConfig, CycleAnalysis, DecentralizedConfig, DecentralizedRun, Engine, EngineConfig,
    Granularity, MappingModel, RoutingPolicy, VariableKey,
};
use pdms::network::{SimulatorConfig, TransportConfig};
use pdms::schema::{Document, Predicate, Query};
use pdms::workloads::example::{intro_network, CREATOR, ITEM};
use std::collections::BTreeMap;

fn main() {
    let (catalog, mappings) = intro_network();

    // --- Cycle discovery (what TTL-bounded probe flooding would find) -------------
    let analysis = CycleAnalysis::analyze(&catalog, &AnalysisConfig::default());
    let (positive, negative, neutral) = analysis.feedback_counts();
    println!("evidence paths discovered: {}", analysis.evidences.len());
    println!(
        "feedback observations: {positive} positive, {negative} negative, {neutral} neutral\n"
    );

    // --- Decentralized message passing over a lossy network ------------------------
    let model = MappingModel::build(&catalog, &analysis, Granularity::Fine, 0.1);
    let priors = BTreeMap::new();
    let mut run = DecentralizedRun::new(
        &catalog,
        &model,
        &priors,
        0.5,
        DecentralizedConfig {
            rounds: 120,
            simulator: SimulatorConfig {
                transport: TransportConfig {
                    send_probability: 0.8, // 20% of belief messages are lost
                    seed: 42,
                    ..Default::default()
                },
            },
            ..Default::default()
        },
    );
    let posteriors = run.run();
    println!("decentralized run over the simulator (20% message loss):");
    for (index, key) in model.variables.iter().enumerate() {
        if key.attribute == Some(CREATOR) {
            println!(
                "  P({} correct for Creator) = {:.3}",
                key.mapping, posteriors[index]
            );
        }
    }
    println!("{}", run.stats().summary());

    // --- The engine façade: posteriors, prior update, routing ----------------------
    let mut engine = Engine::new(catalog, EngineConfig::default());
    engine.priors_mut().set_initial(
        VariableKey {
            mapping: mappings.m24,
            attribute: Some(CREATOR),
        },
        0.5,
    );
    let report = engine.run_and_update_priors();
    let updated = engine.priors().prior(&VariableKey {
        mapping: mappings.m24,
        attribute: Some(CREATOR),
    });
    println!("updated prior on m24/Creator after one round of evidence: {updated:.3}\n");

    // Store a couple of documents at p3 and evaluate the translated query there, to
    // show the full query pipeline on instance data.
    let schema = engine.catalog().peer_schema(pdms::schema::PeerId(2));
    let mut doc = Document::new();
    doc.set(CREATOR, "Henry Peach Robinson");
    doc.push(ITEM, "A view on the river Medway");
    let query = Query::new()
        .project(CREATOR)
        .select(ITEM, Predicate::Contains("river".into()));
    let answers = query.evaluate([&doc]);
    println!("documents matching q1 at p3: {}", answers.len());
    println!("{}\n", answers[0].render(schema));

    let outcome = engine.route(
        &report,
        pdms::schema::PeerId(1),
        &query,
        &RoutingPolicy::uniform(0.5),
    );
    println!(
        "query from p2 reached {} peers with {} false positives; the faulty mapping was {}",
        outcome.reached.len(),
        outcome.tainted.len(),
        if outcome.forwarded_mappings().contains(&mappings.m24) {
            "used (unexpected!)"
        } else {
            "ignored, as in the paper"
        }
    );
}

//! Adaptive probe-TTL expansion (Section 5.1.2).
//!
//! Longer cycles carry exponentially less evidence (Figure 10), so peers should not pay
//! for discovering them. The paper proposes a concrete strategy: start with probes of
//! low TTL, gradually raise the TTL, monitor how much the newly discovered cycles move
//! the posteriors, and stop as soon as the change becomes insignificant — at that point
//! the most pertinent cycles have been found. This module implements that strategy on
//! top of the [`crate::engine::Engine`] pipeline and reports the whole trajectory so
//! the trade-off can be inspected (and benchmarked — see the `ttl_expansion` harness).

use crate::cycle_analysis::AnalysisConfig;
use crate::engine::{Engine, EngineConfig, EngineReport};
use crate::priors::PriorStore;
use pdms_schema::Catalog;

/// Configuration of the expansion process.
#[derive(Debug, Clone)]
pub struct TtlExpansionConfig {
    /// First TTL probed (cycles shorter than 2 cannot exist).
    pub start_ttl: usize,
    /// Last TTL probed if convergence is never declared.
    pub max_ttl: usize,
    /// Expansion stops once the largest posterior change produced by a TTL increase is
    /// below this threshold.
    pub epsilon: f64,
    /// Number of consecutive insignificant expansions required before stopping (1
    /// reproduces the paper's description; higher values are more conservative).
    pub patience: usize,
    /// Engine configuration applied at every step (its analysis bounds are overridden
    /// by the TTL being probed).
    pub engine: EngineConfig,
}

impl Default for TtlExpansionConfig {
    fn default() -> Self {
        Self {
            start_ttl: 2,
            max_ttl: 10,
            epsilon: 0.01,
            patience: 1,
            engine: EngineConfig::default(),
        }
    }
}

/// What one TTL step observed.
#[derive(Debug, Clone)]
pub struct TtlExpansionStep {
    /// The TTL probed at this step.
    pub ttl: usize,
    /// Evidence paths (cycles + parallel paths) discovered within this TTL.
    pub evidence_count: usize,
    /// Model variables covered by that evidence.
    pub variable_count: usize,
    /// Largest absolute posterior change relative to the previous step (`None` for the
    /// first step — there is nothing to compare against).
    pub max_posterior_change: Option<f64>,
    /// Iterations used by the inference backend at this step.
    pub rounds: usize,
}

/// The full expansion trajectory.
#[derive(Debug, Clone)]
pub struct TtlExpansionReport {
    /// One entry per TTL probed, in increasing TTL order.
    pub steps: Vec<TtlExpansionStep>,
    /// The TTL at which expansion stopped.
    pub chosen_ttl: usize,
    /// Whether the stop was triggered by the ε-criterion (as opposed to hitting
    /// `max_ttl`).
    pub converged: bool,
    /// The engine report of the final step (posteriors at the chosen TTL).
    pub final_report: EngineReport,
}

impl TtlExpansionReport {
    /// Number of TTL steps actually probed.
    pub fn probes(&self) -> usize {
        self.steps.len()
    }
}

/// Runs the adaptive TTL expansion on a catalog.
///
/// # Panics
/// Panics if `start_ttl < 2`, `max_ttl < start_ttl`, or `patience == 0`.
pub fn expand_ttl(catalog: &Catalog, config: &TtlExpansionConfig) -> TtlExpansionReport {
    expand_ttl_with_priors(catalog, config, PriorStore::uninformed())
}

/// [`expand_ttl`] with caller-provided priors.
pub fn expand_ttl_with_priors(
    catalog: &Catalog,
    config: &TtlExpansionConfig,
    priors: PriorStore,
) -> TtlExpansionReport {
    assert!(config.start_ttl >= 2, "cycles need at least two mappings");
    assert!(
        config.max_ttl >= config.start_ttl,
        "max_ttl below start_ttl"
    );
    assert!(config.patience >= 1, "patience must be at least 1");

    let mut steps: Vec<TtlExpansionStep> = Vec::new();
    let mut previous: Option<EngineReport> = None;
    let mut quiet_steps = 0usize;
    let mut converged = false;
    let mut chosen_ttl = config.start_ttl;

    for ttl in config.start_ttl..=config.max_ttl {
        let engine_config = EngineConfig {
            analysis: AnalysisConfig {
                max_cycle_len: ttl,
                max_path_len: ttl.saturating_sub(1).max(1),
                ..config.engine.analysis.clone()
            },
            ..config.engine.clone()
        };
        let mut engine = Engine::with_priors(catalog.clone(), engine_config, priors.clone());
        let report = engine.run();
        let change = previous.as_ref().map(|prev| max_change(prev, &report));
        steps.push(TtlExpansionStep {
            ttl,
            evidence_count: report.analysis.evidences.len(),
            variable_count: report.model.variable_count(),
            max_posterior_change: change,
            rounds: report.rounds,
        });
        chosen_ttl = ttl;
        let done = match change {
            Some(delta) if delta < config.epsilon => {
                quiet_steps += 1;
                quiet_steps >= config.patience
            }
            Some(_) => {
                quiet_steps = 0;
                false
            }
            None => false,
        };
        previous = Some(report);
        if done {
            converged = true;
            break;
        }
    }

    TtlExpansionReport {
        steps,
        chosen_ttl,
        converged,
        final_report: previous.expect("at least one TTL step ran"),
    }
}

/// Largest absolute difference between the posteriors of two reports, compared over the
/// union of their fine-granularity entries (an entry present in only one report is
/// compared against the other report's fallback probability).
fn max_change(a: &EngineReport, b: &EngineReport) -> f64 {
    let mut max = 0.0f64;
    for (mapping, attribute, p) in a.posteriors.fine_entries() {
        let q = b.posteriors.probability_ignoring_bottom(mapping, attribute);
        max = max.max((p - q).abs());
    }
    for (mapping, attribute, q) in b.posteriors.fine_entries() {
        let p = a.posteriors.probability_ignoring_bottom(mapping, attribute);
        max = max.max((p - q).abs());
    }
    max
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdms_schema::{AttributeId, PeerId};

    /// The introductory network: cycles of length 3 and 4 plus a parallel path. All the
    /// useful evidence lives at TTL ≤ 4, so expansion should stop early.
    fn intro_catalog() -> Catalog {
        let mut cat = Catalog::new();
        let peers: Vec<PeerId> = (0..4)
            .map(|i| {
                cat.add_peer_with_schema(format!("p{}", i + 1), |s| {
                    s.attributes([
                        "Creator",
                        "Item",
                        "CreatedOn",
                        "Title",
                        "Subject",
                        "Medium",
                        "Height",
                        "Width",
                        "Location",
                        "Owner",
                        "Licence",
                    ]);
                })
            })
            .collect();
        let correct = |m: pdms_schema::MappingBuilder| {
            let mut m = m;
            for a in 0..11 {
                m = m.correct(AttributeId(a), AttributeId(a));
            }
            m
        };
        cat.add_mapping(peers[0], peers[1], correct);
        cat.add_mapping(peers[1], peers[2], correct);
        cat.add_mapping(peers[2], peers[3], correct);
        cat.add_mapping(peers[3], peers[0], correct);
        cat.add_mapping(peers[1], peers[3], |m| {
            let mut m = m.erroneous(AttributeId(0), AttributeId(2), AttributeId(0));
            for a in 1..11 {
                m = m.correct(AttributeId(a), AttributeId(a));
            }
            m
        });
        cat
    }

    #[test]
    fn expansion_stops_before_the_maximum_ttl_on_the_intro_network() {
        let report = expand_ttl(&intro_catalog(), &TtlExpansionConfig::default());
        assert!(report.converged, "expansion should hit the ε criterion");
        assert!(report.chosen_ttl < 10, "chosen TTL {}", report.chosen_ttl);
        assert!(report.chosen_ttl >= 4, "all evidence needs TTL ≥ 4");
        // The trajectory is monotone in discovered evidence.
        for w in report.steps.windows(2) {
            assert!(w[1].evidence_count >= w[0].evidence_count);
            assert!(w[1].ttl == w[0].ttl + 1);
        }
        assert_eq!(report.probes(), report.steps.len());
    }

    #[test]
    fn final_report_matches_a_direct_engine_run_at_the_chosen_ttl() {
        let catalog = intro_catalog();
        let expansion = expand_ttl(&catalog, &TtlExpansionConfig::default());
        let mut engine = Engine::new(
            catalog.clone(),
            EngineConfig {
                analysis: AnalysisConfig {
                    max_cycle_len: expansion.chosen_ttl,
                    max_path_len: expansion.chosen_ttl - 1,
                    ..AnalysisConfig::default()
                },
                ..EngineConfig::default()
            },
        );
        let direct = engine.run();
        for (mapping, attribute, p) in expansion.final_report.posteriors.fine_entries() {
            let q = direct
                .posteriors
                .probability_ignoring_bottom(mapping, attribute);
            assert!((p - q).abs() < 1e-9, "{mapping} {attribute}: {p} vs {q}");
        }
    }

    #[test]
    fn first_step_has_no_change_measurement() {
        let report = expand_ttl(&intro_catalog(), &TtlExpansionConfig::default());
        assert!(report.steps[0].max_posterior_change.is_none());
        for step in &report.steps[1..] {
            assert!(step.max_posterior_change.is_some());
        }
    }

    #[test]
    fn higher_patience_probes_at_least_as_far() {
        let catalog = intro_catalog();
        let eager = expand_ttl(
            &catalog,
            &TtlExpansionConfig {
                patience: 1,
                ..Default::default()
            },
        );
        let cautious = expand_ttl(
            &catalog,
            &TtlExpansionConfig {
                patience: 3,
                ..Default::default()
            },
        );
        assert!(cautious.chosen_ttl >= eager.chosen_ttl);
    }

    #[test]
    fn acyclic_networks_stop_as_soon_as_nothing_changes() {
        // A chain has no cycles at any TTL: every step discovers nothing, the change is
        // 0 from the second step on, so the ε-criterion fires immediately (there is
        // simply nothing more to learn).
        let mut cat = Catalog::new();
        let peers: Vec<PeerId> = (0..3)
            .map(|i| {
                cat.add_peer_with_schema(format!("p{i}"), |s| {
                    s.attributes(["x"]);
                })
            })
            .collect();
        cat.add_mapping(peers[0], peers[1], |m| {
            m.correct(AttributeId(0), AttributeId(0))
        });
        cat.add_mapping(peers[1], peers[2], |m| {
            m.correct(AttributeId(0), AttributeId(0))
        });
        let report = expand_ttl(&cat, &TtlExpansionConfig::default());
        assert!(report.converged);
        assert_eq!(report.final_report.model.variable_count(), 0);
    }

    #[test]
    #[should_panic(expected = "at least two mappings")]
    fn start_ttl_below_two_panics() {
        expand_ttl(
            &intro_catalog(),
            &TtlExpansionConfig {
                start_ttl: 1,
                ..Default::default()
            },
        );
    }
}

//! Prior beliefs and their Expectation-Maximisation-style update (Section 4.4).
//!
//! Peers start with whatever prior knowledge they have about their mappings — often
//! nothing, in which case the maximum-entropy prior `P(correct) = 0.5` is used. As the
//! network evolves, each change of the local factor graph produces a new posterior
//! observation; the paper folds those observations back into the prior with a simple
//! running average
//!
//! ```text
//! P(m = correct) = (1/k) Σ_{i=1..k} P_i(m = correct | {F_i})
//! ```
//!
//! so the prior slowly converges towards the maximum-likelihood estimate as evidence
//! accumulates.

use crate::local_graph::VariableKey;
use std::collections::BTreeMap;

/// Per-variable prior store with evidence accumulation.
#[derive(Debug, Clone)]
pub struct PriorStore {
    default: f64,
    /// Explicit priors (initial knowledge or accumulated evidence).
    priors: BTreeMap<VariableKey, f64>,
    /// Number of posterior observations folded into each prior so far.
    observations: BTreeMap<VariableKey, usize>,
}

impl PriorStore {
    /// Creates a store with the maximum-entropy default.
    pub fn uninformed() -> Self {
        Self::with_default(0.5)
    }

    /// Creates a store with a caller-chosen default prior (e.g. 0.7 when mappings come
    /// from an aligner with a known accuracy).
    pub fn with_default(default: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&default),
            "prior {default} outside [0, 1]"
        );
        Self {
            default,
            priors: BTreeMap::new(),
            observations: BTreeMap::new(),
        }
    }

    /// Sets an explicit initial prior, e.g. 1.0 for an expert-validated mapping.
    pub fn set_initial(&mut self, key: VariableKey, probability: f64) {
        assert!((0.0..=1.0).contains(&probability));
        self.priors.insert(key, probability);
        self.observations.insert(key, 1);
    }

    /// Current prior of a variable.
    pub fn prior(&self, key: &VariableKey) -> f64 {
        self.priors.get(key).copied().unwrap_or(self.default)
    }

    /// The default prior used for variables never seen.
    pub fn default_prior(&self) -> f64 {
        self.default
    }

    /// Number of observations folded into a variable's prior.
    pub fn observation_count(&self, key: &VariableKey) -> usize {
        self.observations.get(key).copied().unwrap_or(0)
    }

    /// Folds one posterior observation into the prior as a running average.
    ///
    /// The first observation replaces the uninformed default entirely (a running
    /// average starting from a non-observation would anchor the prior at 0.5 forever);
    /// subsequent observations are averaged in with weight `1/k`.
    pub fn update(&mut self, key: VariableKey, posterior: f64) -> f64 {
        assert!(
            (0.0..=1.0).contains(&posterior),
            "posterior {posterior} outside [0, 1]"
        );
        let count = self.observations.entry(key).or_insert(0);
        let new = if *count == 0 && !self.priors.contains_key(&key) {
            posterior
        } else {
            let old = self.priors.get(&key).copied().unwrap_or(self.default);
            let k = (*count + 1) as f64;
            old + (posterior - old) / k
        };
        *count += 1;
        self.priors.insert(key, new);
        new
    }

    /// Folds a whole batch of posteriors (one inference round) into the priors.
    pub fn update_all(&mut self, posteriors: &BTreeMap<VariableKey, f64>) {
        for (key, p) in posteriors {
            self.update(*key, *p);
        }
    }

    /// A snapshot of the current priors in the shape consumed by
    /// [`crate::local_graph::MappingModel::global_factor_graph`] and
    /// [`crate::embedded::EmbeddedMessagePassing`].
    pub fn snapshot(&self) -> BTreeMap<VariableKey, f64> {
        self.priors.clone()
    }
}

impl Default for PriorStore {
    fn default() -> Self {
        Self::uninformed()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdms_schema::{AttributeId, MappingId};

    fn key(m: usize) -> VariableKey {
        VariableKey {
            mapping: MappingId(m),
            attribute: Some(AttributeId(0)),
        }
    }

    #[test]
    fn default_prior_is_maximum_entropy() {
        let store = PriorStore::uninformed();
        assert_eq!(store.prior(&key(0)), 0.5);
        assert_eq!(store.observation_count(&key(0)), 0);
    }

    #[test]
    fn first_observation_replaces_the_default() {
        let mut store = PriorStore::uninformed();
        let updated = store.update(key(0), 0.9);
        assert!((updated - 0.9).abs() < 1e-12);
        assert_eq!(store.observation_count(&key(0)), 1);
    }

    #[test]
    fn running_average_accumulates_evidence() {
        let mut store = PriorStore::uninformed();
        store.update(key(0), 0.9);
        store.update(key(0), 0.5);
        assert!((store.prior(&key(0)) - 0.7).abs() < 1e-12);
        store.update(key(0), 0.1);
        assert!((store.prior(&key(0)) - 0.5).abs() < 1e-12);
        assert_eq!(store.observation_count(&key(0)), 3);
    }

    #[test]
    fn worked_example_prior_update_direction() {
        // Section 4.5: posteriors 0.59 / 0.3 on an uninformed prior lead to updated
        // priors of about 0.55 / 0.4 — i.e. the update moves the prior towards the
        // posterior but not all the way once earlier evidence (the 0.5 start, counted
        // as an explicit initial belief) is in the store.
        let mut store = PriorStore::uninformed();
        store.set_initial(key(1), 0.5);
        store.set_initial(key(4), 0.5);
        let updated_good = store.update(key(1), 0.59);
        let updated_bad = store.update(key(4), 0.3);
        assert!((updated_good - 0.545).abs() < 1e-9);
        assert!((updated_bad - 0.4).abs() < 1e-9);
    }

    #[test]
    fn explicit_initial_prior_survives_as_anchor() {
        let mut store = PriorStore::uninformed();
        store.set_initial(key(2), 1.0);
        assert_eq!(store.prior(&key(2)), 1.0);
        let updated = store.update(key(2), 0.0);
        assert!((updated - 0.5).abs() < 1e-12);
    }

    #[test]
    fn update_all_and_snapshot_round_trip() {
        let mut store = PriorStore::with_default(0.6);
        let mut batch = BTreeMap::new();
        batch.insert(key(0), 0.8);
        batch.insert(key(1), 0.2);
        store.update_all(&batch);
        let snap = store.snapshot();
        assert_eq!(snap.len(), 2);
        assert!((snap[&key(0)] - 0.8).abs() < 1e-12);
        assert!((snap[&key(1)] - 0.2).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn out_of_range_posterior_panics() {
        let mut store = PriorStore::uninformed();
        store.update(key(0), 1.5);
    }
}

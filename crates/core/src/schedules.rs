//! Message-passing schedules embedded in PDMS traffic (Sections 4.3.1 and 4.3.2).
//!
//! [`crate::embedded`] iterates the message-passing state machine directly; this module
//! runs the *same* per-peer state over the [`pdms_network`] simulator, with each remote
//! message travelling as an explicit [`Payload::Belief`] wire message that can be
//! delayed or lost by the transport. Two schedules are provided:
//!
//! * **Periodic** — every `period` rounds each peer pushes its remote messages to the
//!   peers appearing in its local factor graph. Communication overhead is bounded by
//!   `Σ_ci (l_ci − 1)` messages per peer per period.
//! * **Lazy** — a peer only pushes its remote messages when a query passes through one
//!   of its mappings; the belief messages piggyback on traffic the PDMS would send
//!   anyway, so the scheme adds zero standalone messages. Convergence speed becomes
//!   proportional to the query load.

use crate::local_graph::{MappingModel, VariableKey};
use pdms_factor::feedback_factor::{feedback_message, FeedbackSign};
use pdms_factor::Belief;
use pdms_network::{Envelope, Outbox, Payload, PeerLogic, Simulator, SimulatorConfig};
use pdms_schema::{AttributeId, Catalog, PeerId, Query};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeMap;

/// Which embedded schedule to run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ScheduleKind {
    /// Send remote messages every `period` simulator rounds.
    Periodic {
        /// Number of rounds between two message-passing rounds (τ).
        period: u64,
    },
    /// Send remote messages only when query traffic flows through the peer; queries are
    /// injected at random peers with the given probability per round.
    Lazy {
        /// Probability that a random peer poses a query in a given round.
        query_probability: f64,
    },
}

/// Configuration for a decentralized run.
#[derive(Debug, Clone)]
pub struct DecentralizedConfig {
    /// The schedule.
    pub schedule: ScheduleKind,
    /// Simulator rounds to run.
    pub rounds: u64,
    /// Transport behaviour (loss, latency, seed).
    pub simulator: SimulatorConfig,
    /// Seed for query injection (lazy schedule).
    pub seed: u64,
}

impl Default for DecentralizedConfig {
    fn default() -> Self {
        Self {
            schedule: ScheduleKind::Periodic { period: 1 },
            rounds: 60,
            simulator: SimulatorConfig::default(),
            seed: 3,
        }
    }
}

/// Per-peer state of the decentralized scheme: the peer's slice of the model.
#[derive(Debug, Clone)]
pub struct PeerInferenceLogic {
    peer: PeerId,
    /// Indices of model variables owned by this peer, with their priors.
    owned: Vec<(usize, Belief)>,
    /// For each (evidence, owned-variable-position-in-evidence) replica: the incoming
    /// remote messages indexed by position in the evidence scope.
    replicas: Vec<ReplicaState>,
    schedule: ScheduleKind,
    /// Whether at least one query passed through this peer in the current round.
    saw_query: bool,
    /// Posterior per owned variable (parallel to `owned`).
    posteriors: Vec<f64>,
}

#[derive(Debug, Clone)]
struct ReplicaState {
    evidence: usize,
    /// The owned variable this replica computes messages for.
    variable: usize,
    /// Position of that variable in the evidence scope.
    position: usize,
    positive: bool,
    delta: f64,
    /// Scope variables of the evidence (model indices).
    scope: Vec<usize>,
    /// Last received message per scope position.
    incoming: Vec<Belief>,
    /// Last computed factor→variable message.
    outgoing: Belief,
}

impl PeerInferenceLogic {
    fn new(
        peer: PeerId,
        model: &MappingModel,
        priors: &BTreeMap<VariableKey, f64>,
        default_prior: f64,
        schedule: ScheduleKind,
    ) -> Self {
        let owned: Vec<(usize, Belief)> = model
            .variables_of(peer)
            .into_iter()
            .map(|idx| {
                let p = priors
                    .get(&model.variables[idx])
                    .copied()
                    .unwrap_or(default_prior);
                (idx, Belief::from_probability(p))
            })
            .collect();
        let mut replicas = Vec::new();
        for &(variable, _) in &owned {
            for e in model.evidences_of(variable) {
                let evidence = &model.evidences[e];
                let position = evidence
                    .variables
                    .iter()
                    .position(|&v| v == variable)
                    .unwrap();
                replicas.push(ReplicaState {
                    evidence: e,
                    variable,
                    position,
                    positive: evidence.positive,
                    delta: evidence.delta,
                    scope: evidence.variables.clone(),
                    incoming: vec![Belief::unit(); evidence.variables.len()],
                    outgoing: Belief::unit(),
                });
            }
        }
        let posteriors = vec![default_prior; owned.len()];
        Self {
            peer,
            owned,
            replicas,
            schedule,
            saw_query: false,
            posteriors,
        }
    }

    /// The posterior of every owned variable, as `(model variable index, probability)`.
    pub fn posteriors(&self) -> Vec<(usize, f64)> {
        self.owned
            .iter()
            .map(|(v, _)| *v)
            .zip(self.posteriors.iter().copied())
            .collect()
    }

    fn prior_of(&self, variable: usize) -> Belief {
        self.owned
            .iter()
            .find(|(v, _)| *v == variable)
            .map(|(_, b)| *b)
            .expect("variable is owned")
    }

    /// Recomputes local factor→variable messages and posteriors from current replicas.
    fn refresh_local(&mut self) {
        for r in &mut self.replicas {
            let sign = FeedbackSign::from_positive(r.positive);
            r.outgoing = feedback_message(sign, r.delta, r.position, &r.incoming).normalized();
        }
        for (slot, (variable, prior)) in self.owned.iter().enumerate() {
            let mut belief = *prior;
            for r in self.replicas.iter().filter(|r| r.variable == *variable) {
                belief *= r.outgoing;
            }
            self.posteriors[slot] = belief.probability_correct();
        }
    }

    /// The remote message this peer would send about `variable`, excluding evidence `e`.
    fn remote_message(&self, variable: usize, excluding: usize) -> Belief {
        let mut belief = self.prior_of(variable);
        for r in self
            .replicas
            .iter()
            .filter(|r| r.variable == variable && r.evidence != excluding)
        {
            belief *= r.outgoing;
        }
        belief.normalized()
    }

    fn should_send(&self, round: u64) -> bool {
        match self.schedule {
            ScheduleKind::Periodic { period } => period != 0 && round.is_multiple_of(period),
            ScheduleKind::Lazy { .. } => self.saw_query,
        }
    }

    fn emit_remote_messages(&self, model: &MappingModel, outbox: &mut Outbox) {
        for &(variable, _) in &self.owned {
            for e in model.evidences_of(variable) {
                let message = self.remote_message(variable, e);
                let key = model.variables[variable];
                for &other in &model.evidences[e].variables {
                    if other == variable {
                        continue;
                    }
                    // Note: when the recipient is this very peer (it owns another
                    // mapping of the same evidence) the message still goes through the
                    // transport — a peer talking to itself is cheap and keeps the code
                    // uniform with the remote case.
                    let recipient = model.owner(other);
                    outbox.send(
                        recipient,
                        Payload::Belief(pdms_network::BeliefPayload {
                            mapping: key.mapping,
                            attribute: key.attribute.unwrap_or(AttributeId(0)),
                            evidence: e,
                            mu_correct: message.correct(),
                            mu_incorrect: message.incorrect(),
                        }),
                    );
                }
            }
        }
    }
}

/// A decentralized run: the model, the per-peer logics, and the simulator.
pub struct DecentralizedRun<'m> {
    model: &'m MappingModel,
    simulator: Simulator<LogicAdapter<'m>>,
    config: DecentralizedConfig,
}

/// Adapter binding a [`PeerInferenceLogic`] to the simulator's [`PeerLogic`] trait,
/// carrying the shared model reference and the query-injection RNG.
pub struct LogicAdapter<'m> {
    model: &'m MappingModel,
    inner: PeerInferenceLogic,
    rng: StdRng,
}

impl<'m> PeerLogic for LogicAdapter<'m> {
    fn on_round(&mut self, _peer: PeerId, round: u64, inbox: &[Envelope], outbox: &mut Outbox) {
        self.inner.saw_query = false;
        // Absorb incoming messages.
        for envelope in inbox {
            match &envelope.payload {
                Payload::Belief(belief) => {
                    let key = VariableKey {
                        mapping: belief.mapping,
                        attribute: self
                            .model
                            .variable_index(&VariableKey {
                                mapping: belief.mapping,
                                attribute: Some(belief.attribute),
                            })
                            .map(|_| belief.attribute),
                    };
                    let variable = self.model.variable_index(&key).or_else(|| {
                        self.model.variable_index(&VariableKey {
                            mapping: belief.mapping,
                            attribute: None,
                        })
                    });
                    if let Some(variable) = variable {
                        for r in &mut self.inner.replicas {
                            if r.evidence == belief.evidence {
                                if let Some(pos) = r.scope.iter().position(|&v| v == variable) {
                                    if pos != r.position {
                                        r.incoming[pos] = Belief::from_weights(
                                            belief.mu_correct,
                                            belief.mu_incorrect,
                                        );
                                    }
                                }
                            }
                        }
                    }
                }
                Payload::Query { .. } => {
                    self.inner.saw_query = true;
                }
                _ => {}
            }
        }
        self.inner.refresh_local();
        // Lazy schedule: inject queries at random so traffic exists to piggyback on.
        if let ScheduleKind::Lazy { query_probability } = self.inner.schedule {
            if self.rng.gen_bool(query_probability.clamp(0.0, 1.0)) {
                self.inner.saw_query = true;
                // Forward a dummy query to a random neighbour-ish peer: the recipient
                // marking `saw_query` is what matters for the schedule.
                let recipients: Vec<PeerId> = self
                    .inner
                    .owned
                    .iter()
                    .flat_map(|(v, _)| self.model.evidences_of(*v))
                    .flat_map(|e| self.model.peers_of_evidence(e))
                    .filter(|p| *p != self.inner.peer)
                    .collect();
                if let Some(&to) = recipients.first() {
                    outbox.send(
                        to,
                        Payload::Query {
                            query_id: round,
                            origin: self.inner.peer,
                            query: Query::new(),
                            ttl: 1,
                            via: Vec::new(),
                            piggyback: Vec::new(),
                        },
                    );
                }
            }
        }
        if self.inner.should_send(round) {
            self.inner.emit_remote_messages(self.model, outbox);
        }
    }
}

impl<'m> DecentralizedRun<'m> {
    /// Creates a decentralized run over the peers of `catalog`.
    pub fn new(
        catalog: &Catalog,
        model: &'m MappingModel,
        priors: &BTreeMap<VariableKey, f64>,
        default_prior: f64,
        config: DecentralizedConfig,
    ) -> Self {
        let logics: Vec<LogicAdapter<'m>> = catalog
            .peers()
            .map(|peer| LogicAdapter {
                model,
                inner: PeerInferenceLogic::new(peer, model, priors, default_prior, config.schedule),
                rng: StdRng::seed_from_u64(config.seed ^ (peer.0 as u64).wrapping_mul(0x9e3779b9)),
            })
            .collect();
        let simulator = Simulator::new(logics, config.simulator.clone());
        Self {
            model,
            simulator,
            config,
        }
    }

    /// Runs the configured number of rounds and returns the posterior of every model
    /// variable (as estimated by its owner).
    pub fn run(&mut self) -> Vec<f64> {
        self.simulator.run(self.config.rounds);
        self.posteriors()
    }

    /// Posterior per model variable, gathered from the owning peers.
    pub fn posteriors(&self) -> Vec<f64> {
        let mut out = vec![0.5; self.model.variable_count()];
        for logic in self.simulator.logics() {
            for (variable, p) in logic.inner.posteriors() {
                out[variable] = p;
            }
        }
        out
    }

    /// Network statistics of the run (message counts per kind, drops).
    pub fn stats(&self) -> &pdms_network::NetworkStats {
        self.simulator.stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cycle_analysis::{AnalysisConfig, CycleAnalysis};
    use crate::embedded::{run_embedded, EmbeddedConfig};
    use crate::local_graph::Granularity;
    use pdms_network::TransportConfig;

    fn example_catalog() -> Catalog {
        let mut cat = Catalog::new();
        let peers: Vec<PeerId> = (0..4)
            .map(|i| {
                cat.add_peer_with_schema(format!("p{}", i + 1), |s| {
                    s.attributes(["Creator", "Item", "CreatedOn"]);
                })
            })
            .collect();
        let correct = |m: pdms_schema::MappingBuilder| {
            m.correct(AttributeId(0), AttributeId(0))
                .correct(AttributeId(1), AttributeId(1))
                .correct(AttributeId(2), AttributeId(2))
        };
        cat.add_mapping(peers[0], peers[1], correct);
        cat.add_mapping(peers[1], peers[2], correct);
        cat.add_mapping(peers[2], peers[3], correct);
        cat.add_mapping(peers[3], peers[0], correct);
        cat.add_mapping(peers[1], peers[3], |m| {
            m.erroneous(AttributeId(0), AttributeId(2), AttributeId(0))
                .correct(AttributeId(1), AttributeId(1))
                .correct(AttributeId(2), AttributeId(2))
        });
        cat
    }

    fn model_of(cat: &Catalog) -> MappingModel {
        let analysis = CycleAnalysis::analyze(cat, &AnalysisConfig::default());
        MappingModel::build(cat, &analysis, Granularity::Fine, 0.1)
    }

    #[test]
    fn periodic_schedule_matches_direct_embedded_iteration() {
        let cat = example_catalog();
        let model = model_of(&cat);
        let priors = BTreeMap::new();
        let reference = run_embedded(&model, &priors, 0.5, EmbeddedConfig::default());
        let mut run =
            DecentralizedRun::new(&cat, &model, &priors, 0.5, DecentralizedConfig::default());
        let posteriors = run.run();
        for (i, p) in posteriors.iter().enumerate() {
            assert!(
                (p - reference.posterior(i)).abs() < 5e-2,
                "variable {i}: decentralized {p} vs embedded {}",
                reference.posterior(i)
            );
        }
        // The run actually exchanged belief messages over the simulated network.
        assert!(run.stats().sent_of("belief") > 0);
    }

    #[test]
    fn lossy_network_still_identifies_the_faulty_mapping() {
        let cat = example_catalog();
        let model = model_of(&cat);
        let priors = BTreeMap::new();
        let mut run = DecentralizedRun::new(
            &cat,
            &model,
            &priors,
            0.5,
            DecentralizedConfig {
                rounds: 300,
                simulator: SimulatorConfig {
                    transport: TransportConfig {
                        send_probability: 0.5,
                        seed: 17,
                        ..Default::default()
                    },
                },
                ..Default::default()
            },
        );
        let posteriors = run.run();
        let m24_creator = model
            .variable_index(&VariableKey {
                mapping: pdms_schema::MappingId(4),
                attribute: Some(AttributeId(0)),
            })
            .unwrap();
        assert!(
            posteriors[m24_creator] < 0.5,
            "got {}",
            posteriors[m24_creator]
        );
        assert!(run.stats().dropped_total() > 0);
    }

    #[test]
    fn lazy_schedule_converges_with_enough_query_traffic() {
        let cat = example_catalog();
        let model = model_of(&cat);
        let priors = BTreeMap::new();
        let mut run = DecentralizedRun::new(
            &cat,
            &model,
            &priors,
            0.5,
            DecentralizedConfig {
                schedule: ScheduleKind::Lazy {
                    query_probability: 0.8,
                },
                rounds: 400,
                ..Default::default()
            },
        );
        let posteriors = run.run();
        let m24_creator = model
            .variable_index(&VariableKey {
                mapping: pdms_schema::MappingId(4),
                attribute: Some(AttributeId(0)),
            })
            .unwrap();
        assert!(
            posteriors[m24_creator] < 0.5,
            "got {}",
            posteriors[m24_creator]
        );
        // Lazy runs generate query traffic that the belief messages piggyback on.
        assert!(run.stats().sent_of("query") > 0);
    }

    #[test]
    fn periodic_schedule_with_longer_period_sends_fewer_messages() {
        let cat = example_catalog();
        let model = model_of(&cat);
        let priors = BTreeMap::new();
        let mut every_round = DecentralizedRun::new(
            &cat,
            &model,
            &priors,
            0.5,
            DecentralizedConfig {
                rounds: 40,
                ..Default::default()
            },
        );
        let mut every_fourth = DecentralizedRun::new(
            &cat,
            &model,
            &priors,
            0.5,
            DecentralizedConfig {
                schedule: ScheduleKind::Periodic { period: 4 },
                rounds: 40,
                ..Default::default()
            },
        );
        every_round.run();
        every_fourth.run();
        assert!(every_fourth.stats().sent_of("belief") < every_round.stats().sent_of("belief"));
    }
}

//! Evolving mapping networks: the maintenance-versus-relevance trade-off (Sections 4.4
//! and 7).
//!
//! PDMS are not static: mappings get created, corrupted, repaired and deleted as
//! schemas evolve. The paper's prior-update rule (Section 4.4) exists precisely so the
//! evidence gathered before a change is not thrown away, and its conclusions call out
//! the "tradeoff between the efforts required to maintain the probabilistic network in
//! a coherent state and the potential gain in terms of relevance of results" as an open
//! question. This module provides the machinery to study that trade-off: a
//! [`DynamicPdms`] owns an evolving catalog, applies [`NetworkEvent`]s, re-runs the
//! inference engine epoch by epoch with prior carry-over, and records per-epoch
//! detection quality, posterior drift, and maintenance cost.

use crate::cycle_analysis::CycleAnalysis;
use crate::engine::{Engine, EngineConfig};
use crate::local_graph::MappingModel;
use crate::metrics::EvaluationReport;
use crate::overhead::communication_overhead;
use crate::posterior::PosteriorTable;
use crate::priors::PriorStore;
use pdms_schema::{AttributeId, Catalog, MappingId, PeerId};

/// One change applied to the mapping network between two epochs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetworkEvent {
    /// A new peer joins the network with its own schema. The peer is isolated until
    /// mappings to or from it are declared.
    AddPeer {
        /// Name of the new peer (also used as its schema name).
        name: String,
        /// Attribute names of the peer's schema.
        attributes: Vec<String>,
    },
    /// A new mapping is declared between two existing peers. Each correspondence is
    /// `(source attribute, proposed target, ground-truth target if known)`.
    AddMapping {
        /// Peer the mapping departs from.
        source: PeerId,
        /// Peer the mapping arrives at.
        target: PeerId,
        /// The attribute correspondences of the new mapping.
        correspondences: Vec<(AttributeId, AttributeId, Option<AttributeId>)>,
    },
    /// A mapping is withdrawn entirely (peer departure or administrative removal).
    /// The id slot is tombstoned so other identifiers stay stable.
    RemoveMapping {
        /// The mapping to remove.
        mapping: MappingId,
    },
    /// A peer leaves the network: every live mapping departing from or arriving at
    /// it is withdrawn (tombstoned). The peer id slot itself survives, as an
    /// isolated node, so peer identifiers stay stable — rejoining is modelled by
    /// declaring new mappings to or from the same peer. The event is a no-op when
    /// the peer has no live mappings.
    RemovePeer {
        /// The peer leaving the network.
        peer: PeerId,
    },
    /// An existing correspondence is corrupted: the attribute is re-routed to a wrong
    /// target (the previous ground truth is preserved so the corruption is detectable).
    Corrupt {
        /// The mapping being corrupted.
        mapping: MappingId,
        /// The source attribute whose correspondence changes.
        attribute: AttributeId,
        /// The (wrong) target the attribute now maps to.
        wrong_target: AttributeId,
    },
    /// A corrupted correspondence is repaired back to its ground-truth target. The
    /// event is ignored when no ground truth is recorded.
    Repair {
        /// The mapping being repaired.
        mapping: MappingId,
        /// The source attribute to repair.
        attribute: AttributeId,
    },
    /// A correspondence is deleted; the attribute becomes `⊥` under the mapping.
    Drop {
        /// The mapping losing a correspondence.
        mapping: MappingId,
        /// The source attribute dropped.
        attribute: AttributeId,
    },
}

/// What applying one [`NetworkEvent`] to a catalog actually changed — the signal the
/// incremental session uses to invalidate only the affected evidence.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventEffect {
    /// A peer (and its schema) was added; no evidence is affected until mappings
    /// arrive.
    PeerAdded(PeerId),
    /// A mapping was added: new evidence paths may run through its edge.
    MappingAdded(MappingId),
    /// A mapping was removed: every evidence path through it is gone.
    MappingRemoved(MappingId),
    /// A peer left: all of its incident live mappings were removed at once.
    /// Callers that need the exact list, like the incremental sessions, apply the
    /// event through [`apply_event_traced`], which returns it.
    PeerRetired(PeerId),
    /// A mapping's correspondences changed: evidence structure is intact but the
    /// observations through the mapping must be recomputed.
    MappingChanged(MappingId),
}

impl EventEffect {
    /// The mapping the effect concerns, if any.
    pub fn mapping(&self) -> Option<MappingId> {
        match self {
            EventEffect::PeerAdded(_) | EventEffect::PeerRetired(_) => None,
            EventEffect::MappingAdded(m)
            | EventEffect::MappingRemoved(m)
            | EventEffect::MappingChanged(m) => Some(*m),
        }
    }
}

/// Applies one event to a catalog, reporting what changed. Returns `None` when the
/// event had no effect (repair without ground truth, drop of a missing
/// correspondence, removal of an already-removed mapping, empty new mapping).
///
/// This is the single source of truth for event semantics, shared by the epoch-based
/// [`DynamicPdms`] and the incremental [`crate::session::EngineSession`]. Callers
/// that need the mappings a [`NetworkEvent::RemovePeer`] withdrew should use
/// [`apply_event_traced`] instead of re-scanning the catalog.
pub fn apply_event(catalog: &mut Catalog, event: &NetworkEvent) -> Option<EventEffect> {
    apply_event_traced(catalog, event).map(|(effect, _)| effect)
}

/// [`apply_event`], additionally returning the mappings the event withdrew —
/// non-empty only for [`NetworkEvent::RemovePeer`], whose single
/// [`EventEffect::PeerRetired`] effect stands for one removal per incident live
/// mapping (ascending). The incremental sessions consume this list to tombstone
/// topology edges and drop evidence without re-scanning the catalog.
pub fn apply_event_traced(
    catalog: &mut Catalog,
    event: &NetworkEvent,
) -> Option<(EventEffect, Vec<MappingId>)> {
    if let NetworkEvent::RemovePeer { peer } = event {
        let incident = incident_live_mappings(catalog, *peer);
        if incident.is_empty() {
            return None;
        }
        for mapping in &incident {
            catalog.remove_mapping(*mapping);
        }
        return Some((EventEffect::PeerRetired(*peer), incident));
    }
    let effect = match event {
        NetworkEvent::AddPeer { name, attributes } => {
            let peer = catalog.add_peer_with_schema(name.clone(), |schema| {
                for attribute in attributes {
                    schema.attribute(attribute.clone());
                }
            });
            Some(EventEffect::PeerAdded(peer))
        }
        NetworkEvent::AddMapping {
            source,
            target,
            correspondences,
        } => {
            if correspondences.is_empty() {
                return None;
            }
            let correspondences = correspondences.clone();
            let id = catalog.add_mapping(*source, *target, |mut m| {
                for (source_attr, target_attr, expected) in &correspondences {
                    m = match expected {
                        Some(expected) if expected == target_attr => {
                            m.correct(*source_attr, *target_attr)
                        }
                        Some(expected) => m.erroneous(*source_attr, *target_attr, *expected),
                        None => m.unjudged(*source_attr, *target_attr),
                    };
                }
                m
            });
            Some(EventEffect::MappingAdded(id))
        }
        NetworkEvent::RemoveMapping { mapping } => catalog
            .remove_mapping(*mapping)
            .then_some(EventEffect::MappingRemoved(*mapping)),
        NetworkEvent::RemovePeer { .. } => unreachable!("handled above"),
        NetworkEvent::Corrupt {
            mapping,
            attribute,
            wrong_target,
        } => {
            if catalog.is_mapping_removed(*mapping) {
                return None;
            }
            let current = catalog
                .mapping(*mapping)
                .correspondences()
                .find(|(a, _)| a == attribute)
                .map(|(_, c)| *c);
            let expected = match current {
                Some(c) => c.expected.or(Some(c.target)),
                // Corrupting a correspondence that does not exist yet: the ground
                // truth is unknown, record the proposal as wrong against nothing.
                None => None,
            };
            catalog
                .mapping_mut(*mapping)
                .set_correspondence(*attribute, *wrong_target, expected);
            Some(EventEffect::MappingChanged(*mapping))
        }
        NetworkEvent::Repair { mapping, attribute } => {
            if catalog.is_mapping_removed(*mapping) {
                return None;
            }
            let expected = catalog
                .mapping(*mapping)
                .correspondences()
                .find(|(a, _)| a == attribute)
                .and_then(|(_, c)| c.expected);
            match expected {
                Some(expected) => {
                    catalog.mapping_mut(*mapping).set_correspondence(
                        *attribute,
                        expected,
                        Some(expected),
                    );
                    Some(EventEffect::MappingChanged(*mapping))
                }
                None => None,
            }
        }
        NetworkEvent::Drop { mapping, attribute } => {
            if catalog.is_mapping_removed(*mapping) {
                return None;
            }
            catalog
                .mapping_mut(*mapping)
                .remove_correspondence(*attribute)
                .then_some(EventEffect::MappingChanged(*mapping))
        }
    };
    Some((effect?, Vec::new()))
}

/// The live mappings departing from or arriving at a peer, ascending and
/// deduplicated (a self-mapping appears once) — exactly the set a
/// [`NetworkEvent::RemovePeer`] withdraws.
pub fn incident_live_mappings(catalog: &Catalog, peer: PeerId) -> Vec<MappingId> {
    catalog
        .mappings()
        .filter(|m| {
            let (source, target) = catalog.mapping_endpoints(*m);
            source == peer || target == peer
        })
        .collect()
}

/// Configuration of a dynamic run.
#[derive(Debug, Clone)]
pub struct DynamicsConfig {
    /// Detection threshold θ used for the per-epoch evaluation.
    pub theta: f64,
    /// Engine configuration used at every epoch.
    pub engine: EngineConfig,
    /// Whether posteriors are folded back into the priors after each epoch (the
    /// Section 4.4 update). Disabling it gives the memory-less ablation.
    pub update_priors: bool,
}

impl Default for DynamicsConfig {
    fn default() -> Self {
        Self {
            theta: 0.5,
            engine: EngineConfig::default(),
            update_priors: true,
        }
    }
}

/// What one epoch (inference run over the current catalog) observed.
#[derive(Debug, Clone)]
pub struct EpochReport {
    /// Epoch index (0 for the first run).
    pub epoch: usize,
    /// Events applied since the previous epoch.
    pub events_applied: usize,
    /// Mappings in the catalog at this epoch.
    pub mappings: usize,
    /// Mappings whose ground truth says they contain at least one error.
    pub erroneous_mappings: usize,
    /// Evidence paths (cycles + parallel paths) discovered.
    pub evidence_paths: usize,
    /// Iterations used by the inference backend.
    pub rounds: usize,
    /// Detection quality at the configured θ.
    pub evaluation: EvaluationReport,
    /// Largest absolute posterior change relative to the previous epoch (0 for the
    /// first epoch).
    pub posterior_drift: f64,
    /// Maintenance cost: belief messages per periodic round implied by the current
    /// evidence structure.
    pub messages_per_round: usize,
}

/// An evolving PDMS: catalog + accumulated priors + epoch history.
#[derive(Debug, Clone)]
pub struct DynamicPdms {
    catalog: Catalog,
    priors: PriorStore,
    config: DynamicsConfig,
    pending_events: usize,
    previous_posteriors: Option<PosteriorTable>,
    history: Vec<EpochReport>,
}

impl DynamicPdms {
    /// Starts a dynamic run over an initial catalog with uninformed priors.
    pub fn new(catalog: Catalog, config: DynamicsConfig) -> Self {
        Self {
            catalog,
            priors: PriorStore::uninformed(),
            config,
            pending_events: 0,
            previous_posteriors: None,
            history: Vec::new(),
        }
    }

    /// The current catalog.
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// The accumulated prior store.
    pub fn priors(&self) -> &PriorStore {
        &self.priors
    }

    /// The per-epoch history so far.
    pub fn history(&self) -> &[EpochReport] {
        &self.history
    }

    /// Applies a batch of events to the catalog, returning how many actually changed
    /// something (a repair without ground truth or a drop of a missing correspondence
    /// does not count).
    pub fn apply(&mut self, events: &[NetworkEvent]) -> usize {
        let mut applied = 0usize;
        for event in events {
            if self.apply_one(event) {
                applied += 1;
            }
        }
        self.pending_events += applied;
        applied
    }

    fn apply_one(&mut self, event: &NetworkEvent) -> bool {
        apply_event(&mut self.catalog, event).is_some()
    }

    /// Runs one inference epoch over the current catalog: cycle analysis, inference with
    /// the accumulated priors, evaluation at θ, and (optionally) the Section 4.4 prior
    /// update. Returns the epoch report (also appended to [`DynamicPdms::history`]).
    pub fn run_epoch(&mut self) -> &EpochReport {
        let mut engine = Engine::with_priors(
            self.catalog.clone(),
            self.config.engine.clone(),
            self.priors.clone(),
        );
        let report = engine.run();
        let evaluation = engine.evaluate(&report, self.config.theta);

        // Maintenance cost of the current evidence structure.
        let analysis: &CycleAnalysis = &report.analysis;
        let model: &MappingModel = &report.model;
        let overhead = communication_overhead(&self.catalog, analysis, model);

        // Posterior drift against the previous epoch.
        let drift = match &self.previous_posteriors {
            Some(previous) => max_drift(previous, &report.posteriors),
            None => 0.0,
        };

        // Prior carry-over.
        if self.config.update_priors {
            let as_map = report.posteriors.as_variable_map(model);
            self.priors.update_all(&as_map);
        }

        let epoch = EpochReport {
            epoch: self.history.len(),
            events_applied: self.pending_events,
            mappings: self.catalog.mapping_count(),
            erroneous_mappings: self.catalog.erroneous_mapping_count(),
            evidence_paths: report.analysis.evidences.len(),
            rounds: report.rounds,
            evaluation,
            posterior_drift: drift,
            messages_per_round: overhead.total_messages_per_round,
        };
        self.pending_events = 0;
        self.previous_posteriors = Some(report.posteriors);
        self.history.push(epoch);
        self.history.last().expect("just pushed")
    }
}

fn max_drift(previous: &PosteriorTable, current: &PosteriorTable) -> f64 {
    let mut drift = 0.0f64;
    for (mapping, attribute, p) in current.fine_entries() {
        let q = previous.probability_ignoring_bottom(mapping, attribute);
        drift = drift.max((p - q).abs());
    }
    for (mapping, attribute, q) in previous.fine_entries() {
        let p = current.probability_ignoring_bottom(mapping, attribute);
        drift = drift.max((p - q).abs());
    }
    drift
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A clean four-peer ring plus a chord: plenty of cycle evidence, no errors.
    fn clean_catalog() -> Catalog {
        let mut cat = Catalog::new();
        let peers: Vec<PeerId> = (0..4)
            .map(|i| {
                cat.add_peer_with_schema(format!("p{i}"), |s| {
                    s.attributes([
                        "Creator",
                        "Item",
                        "CreatedOn",
                        "Title",
                        "Subject",
                        "Medium",
                        "Height",
                        "Width",
                        "Location",
                        "Owner",
                        "Licence",
                    ]);
                })
            })
            .collect();
        let correct = |m: pdms_schema::MappingBuilder| {
            let mut m = m;
            for a in 0..11 {
                m = m.correct(AttributeId(a), AttributeId(a));
            }
            m
        };
        cat.add_mapping(peers[0], peers[1], correct);
        cat.add_mapping(peers[1], peers[2], correct);
        cat.add_mapping(peers[2], peers[3], correct);
        cat.add_mapping(peers[3], peers[0], correct);
        cat.add_mapping(peers[1], peers[3], correct);
        cat
    }

    #[test]
    fn corruption_is_detected_in_the_next_epoch_and_repair_clears_it() {
        // Prior carry-over is disabled here so the corrupted epoch is judged on its own
        // evidence; the interaction between saturated carried-over priors and fresh
        // negative evidence is exercised separately below.
        let mut pdms = DynamicPdms::new(
            clean_catalog(),
            DynamicsConfig {
                update_priors: false,
                ..Default::default()
            },
        );
        let baseline = pdms.run_epoch().clone();
        assert_eq!(baseline.erroneous_mappings, 0);
        assert_eq!(baseline.evaluation.flagged(), 0);
        assert_eq!(baseline.posterior_drift, 0.0);

        // Corrupt Creator on the chord mapping m4 (p1 → p3).
        let applied = pdms.apply(&[NetworkEvent::Corrupt {
            mapping: MappingId(4),
            attribute: AttributeId(0),
            wrong_target: AttributeId(2),
        }]);
        assert_eq!(applied, 1);
        let corrupted = pdms.run_epoch().clone();
        assert_eq!(corrupted.events_applied, 1);
        assert_eq!(corrupted.erroneous_mappings, 1);
        assert_eq!(corrupted.evaluation.true_positives, 1);
        assert_eq!(corrupted.evaluation.false_positives, 0);
        assert!(
            corrupted.posterior_drift > 0.1,
            "drift {}",
            corrupted.posterior_drift
        );

        // Repair it; the error disappears from the ground truth and the posterior
        // recovers (the prior keeps some memory of the accusation, so recovery is
        // gradual rather than instantaneous).
        let applied = pdms.apply(&[NetworkEvent::Repair {
            mapping: MappingId(4),
            attribute: AttributeId(0),
        }]);
        assert_eq!(applied, 1);
        let repaired = pdms.run_epoch().clone();
        assert_eq!(repaired.erroneous_mappings, 0);
        assert_eq!(repaired.evaluation.true_positives, 0);
        assert!(repaired.posterior_drift > 0.0);
        assert_eq!(pdms.history().len(), 3);
    }

    #[test]
    fn adding_a_mapping_creates_new_evidence_and_raises_maintenance_cost() {
        let mut pdms = DynamicPdms::new(clean_catalog(), DynamicsConfig::default());
        let before = pdms.run_epoch().clone();
        let correspondences: Vec<_> = (0..11)
            .map(|a| (AttributeId(a), AttributeId(a), Some(AttributeId(a))))
            .collect();
        pdms.apply(&[NetworkEvent::AddMapping {
            source: PeerId(2),
            target: PeerId(0),
            correspondences,
        }]);
        let after = pdms.run_epoch().clone();
        assert_eq!(after.mappings, before.mappings + 1);
        assert!(after.evidence_paths > before.evidence_paths);
        assert!(after.messages_per_round >= before.messages_per_round);
    }

    #[test]
    fn dropping_a_correspondence_is_idempotent() {
        let mut pdms = DynamicPdms::new(clean_catalog(), DynamicsConfig::default());
        let drop = NetworkEvent::Drop {
            mapping: MappingId(0),
            attribute: AttributeId(5),
        };
        assert_eq!(pdms.apply(std::slice::from_ref(&drop)), 1);
        assert_eq!(
            pdms.apply(&[drop]),
            0,
            "second drop finds nothing to remove"
        );
        assert_eq!(
            pdms.catalog().mapping(MappingId(0)).apply(AttributeId(5)),
            None
        );
    }

    #[test]
    fn repair_without_ground_truth_is_ignored() {
        let mut cat = Catalog::new();
        let a = cat.add_peer_with_schema("a", |s| {
            s.attributes(["x", "y"]);
        });
        let b = cat.add_peer_with_schema("b", |s| {
            s.attributes(["x", "y"]);
        });
        cat.add_mapping(a, b, |m| m.unjudged(AttributeId(0), AttributeId(1)));
        let mut pdms = DynamicPdms::new(cat, DynamicsConfig::default());
        let applied = pdms.apply(&[NetworkEvent::Repair {
            mapping: MappingId(0),
            attribute: AttributeId(0),
        }]);
        assert_eq!(applied, 0);
        // Adding an empty mapping is also a no-op.
        let applied = pdms.apply(&[NetworkEvent::AddMapping {
            source: PeerId(0),
            target: PeerId(1),
            correspondences: Vec::new(),
        }]);
        assert_eq!(applied, 0);
    }

    #[test]
    fn prior_carry_over_remembers_the_accusation_after_a_repair() {
        // Observe the network while it is corrupted, repair it, observe again: the
        // Section 4.4 update folds the accusation into the prior, so the prior stays
        // below the maximum-entropy value even though the repaired epoch's evidence is
        // all positive — the memory the paper's maintenance/relevance discussion is
        // about. The memory-less ablation (update_priors = false) never moves the prior
        // at all.
        let mut pdms = DynamicPdms::new(clean_catalog(), DynamicsConfig::default());
        pdms.apply(&[NetworkEvent::Corrupt {
            mapping: MappingId(4),
            attribute: AttributeId(0),
            wrong_target: AttributeId(2),
        }]);
        let corrupted = pdms.run_epoch().clone();
        assert_eq!(corrupted.evaluation.true_positives, 1);
        let key = crate::local_graph::VariableKey {
            mapping: MappingId(4),
            attribute: Some(AttributeId(0)),
        };
        let prior_after_accusation = pdms.priors().prior(&key);
        assert!(
            prior_after_accusation < 0.5,
            "prior {prior_after_accusation}"
        );

        pdms.apply(&[NetworkEvent::Repair {
            mapping: MappingId(4),
            attribute: AttributeId(0),
        }]);
        let repaired = pdms.run_epoch().clone();
        assert_eq!(repaired.erroneous_mappings, 0);
        // The posterior recovers (all evidence is positive again)…
        let recovered = pdms
            .previous_posteriors
            .as_ref()
            .expect("two epochs ran")
            .probability_ignoring_bottom(MappingId(4), AttributeId(0));
        assert!(recovered > 0.5, "recovered posterior {recovered}");
        // …while the prior, a running average over both epochs, still remembers the
        // accusation: it sits strictly below the posterior it would have adopted had
        // the corrupted epoch never happened.
        let prior_after_repair = pdms.priors().prior(&key);
        assert!(prior_after_repair > prior_after_accusation);
        assert!(prior_after_repair < recovered);

        // Memory-less ablation: the prior never moves.
        let mut ablation = DynamicPdms::new(
            clean_catalog(),
            DynamicsConfig {
                update_priors: false,
                ..Default::default()
            },
        );
        ablation.run_epoch();
        assert_eq!(ablation.priors().prior(&key), 0.5);
    }

    #[test]
    fn peers_join_and_mappings_retire_between_epochs() {
        let mut pdms = DynamicPdms::new(clean_catalog(), DynamicsConfig::default());
        let before = pdms.run_epoch().clone();

        // A peer joins and a ring mapping is withdrawn.
        let applied = pdms.apply(&[
            NetworkEvent::AddPeer {
                name: "p4".into(),
                attributes: vec!["Creator".into(), "Item".into()],
            },
            NetworkEvent::RemoveMapping {
                mapping: MappingId(4),
            },
        ]);
        assert_eq!(applied, 2);
        let after = pdms.run_epoch().clone();
        assert_eq!(pdms.catalog().peer_count(), 5);
        assert_eq!(after.mappings, before.mappings - 1);
        assert!(after.evidence_paths < before.evidence_paths);
        // Removing an already-removed mapping is a no-op.
        assert_eq!(
            pdms.apply(&[NetworkEvent::RemoveMapping {
                mapping: MappingId(4),
            }]),
            0
        );
        // Correspondence events against the tombstoned mapping are ignored too.
        assert_eq!(
            pdms.apply(&[NetworkEvent::Corrupt {
                mapping: MappingId(4),
                attribute: AttributeId(0),
                wrong_target: AttributeId(1),
            }]),
            0
        );
    }

    #[test]
    fn remove_peer_withdraws_every_incident_mapping() {
        let mut pdms = DynamicPdms::new(clean_catalog(), DynamicsConfig::default());
        let before = pdms.run_epoch().clone();
        // p1 (PeerId(1)) touches m0 (p0→p1), m1 (p1→p2) and m4 (p1→p3).
        let incident = incident_live_mappings(pdms.catalog(), PeerId(1));
        assert_eq!(incident, vec![MappingId(0), MappingId(1), MappingId(4)]);
        let applied = pdms.apply(&[NetworkEvent::RemovePeer { peer: PeerId(1) }]);
        assert_eq!(applied, 1);
        assert_eq!(pdms.catalog().mapping_count(), before.mappings - 3);
        for mapping in incident {
            assert!(pdms.catalog().is_mapping_removed(mapping));
        }
        // The peer id slot survives as an isolated node.
        assert_eq!(pdms.catalog().peer_count(), 4);
        // Removing it again is a no-op: no live incident mappings remain.
        assert_eq!(
            pdms.apply(&[NetworkEvent::RemovePeer { peer: PeerId(1) }]),
            0
        );
        let after = pdms.run_epoch().clone();
        assert!(after.evidence_paths < before.evidence_paths);
    }

    #[test]
    fn event_effects_name_what_changed() {
        let mut catalog = clean_catalog();
        let effect = apply_event(
            &mut catalog,
            &NetworkEvent::AddPeer {
                name: "new".into(),
                attributes: vec!["a".into()],
            },
        );
        assert_eq!(effect, Some(EventEffect::PeerAdded(PeerId(4))));
        assert_eq!(effect.unwrap().mapping(), None);

        let effect = apply_event(
            &mut catalog,
            &NetworkEvent::Corrupt {
                mapping: MappingId(0),
                attribute: AttributeId(0),
                wrong_target: AttributeId(1),
            },
        );
        assert_eq!(effect, Some(EventEffect::MappingChanged(MappingId(0))));
        assert_eq!(effect.unwrap().mapping(), Some(MappingId(0)));

        let effect = apply_event(
            &mut catalog,
            &NetworkEvent::RemoveMapping {
                mapping: MappingId(0),
            },
        );
        assert_eq!(effect, Some(EventEffect::MappingRemoved(MappingId(0))));
    }

    #[test]
    fn epoch_indices_and_event_counters_advance() {
        let mut pdms = DynamicPdms::new(clean_catalog(), DynamicsConfig::default());
        pdms.run_epoch();
        pdms.apply(&[
            NetworkEvent::Drop {
                mapping: MappingId(0),
                attribute: AttributeId(1),
            },
            NetworkEvent::Drop {
                mapping: MappingId(1),
                attribute: AttributeId(1),
            },
        ]);
        pdms.run_epoch();
        let history = pdms.history();
        assert_eq!(history[0].epoch, 0);
        assert_eq!(history[1].epoch, 1);
        assert_eq!(history[0].events_applied, 0);
        assert_eq!(history[1].events_applied, 2);
    }
}

//! Posterior-driven query routing.
//!
//! The per-hop forwarding behaviour of Section 2: a query is forwarded through a
//! mapping link only if, for every attribute `a_i` appearing in the query,
//! `P(a_i = correct) > θ_{a_i}` for that mapping. Queries spread from the origin peer
//! breadth-first over all admissible mappings (each peer is visited once, as in the
//! introductory example where the query reaches every database exactly once, just not
//! over the faulty link).

use crate::posterior::PosteriorTable;
use pdms_schema::{translate_query, AttributeId, Catalog, Mapping, MappingId, PeerId, Query};
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// Per-attribute forwarding thresholds θ.
#[derive(Debug, Clone)]
pub struct RoutingPolicy {
    /// Threshold used for attributes without a specific entry.
    pub default_threshold: f64,
    /// Attribute-specific thresholds (in the *origin* schema's attribute namespace).
    pub thresholds: BTreeMap<AttributeId, f64>,
}

impl RoutingPolicy {
    /// Uniform threshold for every attribute.
    pub fn uniform(theta: f64) -> Self {
        Self {
            default_threshold: theta,
            thresholds: BTreeMap::new(),
        }
    }

    /// Sets a per-attribute threshold.
    pub fn with_threshold(mut self, attribute: AttributeId, theta: f64) -> Self {
        self.thresholds.insert(attribute, theta);
        self
    }

    /// Threshold for one attribute.
    pub fn threshold(&self, attribute: AttributeId) -> f64 {
        self.thresholds
            .get(&attribute)
            .copied()
            .unwrap_or(self.default_threshold)
    }
}

impl Default for RoutingPolicy {
    fn default() -> Self {
        Self::uniform(0.5)
    }
}

/// The decision taken for one candidate mapping hop.
#[derive(Debug, Clone, PartialEq)]
pub struct RoutingDecision {
    /// The mapping considered.
    pub mapping: MappingId,
    /// Peer the query would have been forwarded from.
    pub from: PeerId,
    /// Peer the query would have been forwarded to.
    pub to: PeerId,
    /// Whether the query was forwarded over this mapping.
    pub forwarded: bool,
    /// The attribute that blocked forwarding (lowest posterior below threshold), when
    /// not forwarded.
    pub blocking_attribute: Option<AttributeId>,
    /// The minimum posterior over the query's attributes for this mapping.
    pub min_posterior: f64,
}

/// Result of routing one query through the network.
#[derive(Debug, Clone, Default)]
pub struct RoutingOutcome {
    /// Peers that received the query (not counting the origin).
    pub reached: BTreeSet<PeerId>,
    /// Per-hop decisions, in the order they were evaluated.
    pub decisions: Vec<RoutingDecision>,
    /// Peers reached through a chain in which some mapping mistranslated one of the
    /// query's attributes (ground truth) — the false positives the introduction talks
    /// about.
    pub tainted: BTreeSet<PeerId>,
}

impl RoutingOutcome {
    /// Mappings over which the query was actually forwarded.
    pub fn forwarded_mappings(&self) -> Vec<MappingId> {
        self.decisions
            .iter()
            .filter(|d| d.forwarded)
            .map(|d| d.mapping)
            .collect()
    }

    /// Number of peers reached without any mistranslation on the way.
    pub fn clean_reach(&self) -> usize {
        self.reached.difference(&self.tainted).count()
    }
}

/// True when the chain of mappings used to reach a peer translated every query
/// attribute onto its ground-truth counterpart at each step.
fn chain_is_clean(
    catalog: &Catalog,
    chain: &[MappingId],
    attributes: &BTreeSet<AttributeId>,
) -> bool {
    for &attr in attributes {
        let mut current = attr;
        for &mid in chain {
            let mapping: &Mapping = catalog.mapping(mid);
            match (mapping.apply(current), mapping.is_correct_for(current)) {
                (Some(next), Some(true)) => current = next,
                _ => return false,
            }
        }
    }
    true
}

/// Routes `query` (expressed over `origin`'s schema) through the network, forwarding
/// over every mapping whose posteriors clear the policy thresholds for every attribute
/// of the (translated) query. Each peer processes the query once.
pub fn route_query(
    catalog: &Catalog,
    posteriors: &PosteriorTable,
    origin: PeerId,
    query: &Query,
    policy: &RoutingPolicy,
) -> RoutingOutcome {
    let mut outcome = RoutingOutcome::default();
    let origin_attributes = query.attributes();
    let mut visited: BTreeSet<PeerId> = BTreeSet::new();
    visited.insert(origin);
    // Queue entries: (peer, query as seen by that peer, mapping chain used to get there).
    let mut queue: VecDeque<(PeerId, Query, Vec<MappingId>)> = VecDeque::new();
    queue.push_back((origin, query.clone(), Vec::new()));
    while let Some((peer, local_query, chain)) = queue.pop_front() {
        for mapping_id in catalog.outgoing_mappings(peer) {
            let (from, to) = catalog.mapping_endpoints(mapping_id);
            debug_assert_eq!(from, peer);
            let attributes = local_query.attributes();
            // Evaluate the per-hop condition: every attribute of the query must clear
            // its threshold on this mapping.
            let mut forwarded = true;
            let mut blocking = None;
            let mut min_posterior = 1.0f64;
            for &attr in &attributes {
                // Thresholds are expressed in the origin namespace; since the query has
                // been translated hop by hop, we use the default threshold for
                // translated attributes that no longer match an origin attribute.
                let theta = if chain.is_empty() {
                    policy.threshold(attr)
                } else {
                    policy.default_threshold
                };
                let p = posteriors.probability(catalog, mapping_id, attr);
                min_posterior = min_posterior.min(p);
                if p <= theta {
                    forwarded = false;
                    if blocking.is_none() {
                        blocking = Some(attr);
                    }
                }
            }
            if attributes.is_empty() {
                // A query touching no attribute is forwarded unconditionally.
                min_posterior = 1.0;
            }
            let forwarded = forwarded && !visited.contains(&to);
            outcome.decisions.push(RoutingDecision {
                mapping: mapping_id,
                from,
                to,
                forwarded,
                blocking_attribute: blocking,
                min_posterior,
            });
            if !forwarded {
                continue;
            }
            visited.insert(to);
            outcome.reached.insert(to);
            let mut new_chain = chain.clone();
            new_chain.push(mapping_id);
            if !chain_is_clean(catalog, &new_chain, &origin_attributes) {
                outcome.tainted.insert(to);
            }
            let report = translate_query(&local_query, &[catalog.mapping(mapping_id)]);
            queue.push_back((to, report.query, new_chain));
        }
    }
    outcome
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdms_schema::Predicate;

    /// The introductory network: p1..p4, five mappings, m24 misroutes Creator.
    fn intro_catalog() -> Catalog {
        let mut cat = Catalog::new();
        let peers: Vec<PeerId> = (0..4)
            .map(|i| {
                cat.add_peer_with_schema(format!("p{}", i + 1), |s| {
                    s.attributes(["Creator", "Item", "CreatedOn"]);
                })
            })
            .collect();
        let correct = |m: pdms_schema::MappingBuilder| {
            m.correct(AttributeId(0), AttributeId(0))
                .correct(AttributeId(1), AttributeId(1))
                .correct(AttributeId(2), AttributeId(2))
        };
        cat.add_mapping(peers[0], peers[1], correct); // m12
        cat.add_mapping(peers[1], peers[2], correct); // m23
        cat.add_mapping(peers[2], peers[3], correct); // m34
        cat.add_mapping(peers[3], peers[0], correct); // m41
        cat.add_mapping(peers[1], peers[3], |m| {
            m.erroneous(AttributeId(0), AttributeId(2), AttributeId(0))
                .correct(AttributeId(1), AttributeId(1))
                .correct(AttributeId(2), AttributeId(2))
        }); // m24
        cat
    }

    fn creator_query() -> Query {
        Query::new()
            .project(AttributeId(0))
            .select(AttributeId(1), Predicate::Contains("river".into()))
    }

    #[test]
    fn good_posteriors_route_around_the_faulty_mapping() {
        let cat = intro_catalog();
        let mut table = PosteriorTable::new(0.5);
        for m in 0..5 {
            for a in 0..3 {
                let p = if m == 4 && a == 0 { 0.3 } else { 0.8 };
                table.set(MappingId(m), AttributeId(a), p);
            }
        }
        let outcome = route_query(
            &cat,
            &table,
            PeerId(1),
            &creator_query(),
            &RoutingPolicy::uniform(0.5),
        );
        // The query reaches p3, p4 and p1 (all other databases)…
        assert_eq!(outcome.reached.len(), 3);
        // …without using m24…
        assert!(!outcome.forwarded_mappings().contains(&MappingId(4)));
        // …and therefore without any false positive.
        assert!(outcome.tainted.is_empty());
        assert_eq!(outcome.clean_reach(), 3);
    }

    #[test]
    fn uninformed_posteriors_forward_over_the_faulty_mapping() {
        // Without the message-passing scheme (all posteriors at the 0.5 default, θ
        // slightly below), the query is forwarded over m24 and p4 receives a
        // mistranslated query: a false-positive source.
        let cat = intro_catalog();
        let table = PosteriorTable::new(0.6);
        let outcome = route_query(
            &cat,
            &table,
            PeerId(1),
            &creator_query(),
            &RoutingPolicy::uniform(0.5),
        );
        assert!(
            outcome.forwarded_mappings().contains(&MappingId(4))
                || outcome.forwarded_mappings().contains(&MappingId(1))
        );
        // p4 is reached via m24 (BFS explores m24 and m23 from p2 in insertion order:
        // m23 first, so p3 is reached via the clean path; p4 via m24 is tainted).
        assert!(!outcome.tainted.is_empty());
    }

    #[test]
    fn bottom_attribute_blocks_forwarding() {
        let mut cat = Catalog::new();
        let p0 = cat.add_peer_with_schema("a", |s| {
            s.attributes(["x", "y"]);
        });
        let p1 = cat.add_peer_with_schema("b", |s| {
            s.attributes(["x", "y"]);
        });
        cat.add_mapping(p0, p1, |m| m.correct(AttributeId(0), AttributeId(0)));
        let table = PosteriorTable::new(0.9);
        let q = Query::new().project(AttributeId(1));
        let outcome = route_query(&cat, &table, p0, &q, &RoutingPolicy::uniform(0.5));
        assert!(outcome.reached.is_empty());
        assert_eq!(outcome.decisions.len(), 1);
        assert!(!outcome.decisions[0].forwarded);
        assert_eq!(
            outcome.decisions[0].blocking_attribute,
            Some(AttributeId(1))
        );
        assert_eq!(outcome.decisions[0].min_posterior, 0.0);
    }

    #[test]
    fn per_attribute_thresholds_override_the_default() {
        let cat = intro_catalog();
        let mut table = PosteriorTable::new(0.5);
        for m in 0..5 {
            for a in 0..3 {
                table.set(MappingId(m), AttributeId(a), 0.7);
            }
        }
        // A very strict threshold on Creator blocks everything at the first hop.
        let policy = RoutingPolicy::uniform(0.5).with_threshold(AttributeId(0), 0.95);
        let outcome = route_query(&cat, &table, PeerId(1), &creator_query(), &policy);
        assert!(outcome.reached.is_empty());
    }

    #[test]
    fn attribute_free_queries_flood_everywhere() {
        let cat = intro_catalog();
        let table = PosteriorTable::new(0.0);
        let outcome = route_query(
            &cat,
            &table,
            PeerId(0),
            &Query::new(),
            &RoutingPolicy::uniform(0.99),
        );
        assert_eq!(outcome.reached.len(), 3);
    }
}

//! From feedback observations to factor graphs — global and per-peer (local) views.
//!
//! The *model* assembled here is the bridge between the PDMS-level analysis and the
//! probabilistic machinery: one binary variable per `(mapping, attribute)` pair (fine
//! granularity, Section 4.1) or per mapping (coarse granularity), one prior factor per
//! variable, and one feedback factor per informative observation.
//!
//! Two renderings of the model are provided:
//!
//! * [`MappingModel::global_factor_graph`] — the whole model as one
//!   [`pdms_factor::FactorGraph`], which is what a hypothetical centralized component
//!   would build (used by the exact baseline and by tests);
//! * [`MappingModel::local_factor_graph`] — the fraction of the model a single peer
//!   stores (Figure 6): the variables of its own outgoing mappings, their priors, the
//!   feedback factors touching them, and placeholder names for the remote ("virtual
//!   peer") variables whose messages arrive over the network.

use crate::cycle_analysis::CycleAnalysis;
use crate::feedback::Feedback;
use pdms_factor::{Factor, FactorGraph};
use pdms_schema::{AttributeId, Catalog, MappingId, PeerId};
use std::collections::{BTreeMap, HashMap};

/// Variable granularity (Section 4.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Granularity {
    /// One variable per `(mapping, attribute)` pair; quality is tracked per attribute.
    #[default]
    Fine,
    /// One variable per mapping; feedback from any attribute applies to the mapping as
    /// a whole.
    Coarse,
}

/// Key of a model variable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct VariableKey {
    /// The mapping the variable is about.
    pub mapping: MappingId,
    /// The attribute handed to the mapping (`None` in coarse granularity).
    pub attribute: Option<AttributeId>,
}

impl VariableKey {
    /// Human-readable name used in factor graphs.
    pub fn name(&self) -> String {
        match self.attribute {
            Some(a) => format!("{}@{}", self.mapping, a),
            None => format!("{}", self.mapping),
        }
    }
}

/// One feedback factor of the model.
#[derive(Debug, Clone, PartialEq)]
pub struct ModelEvidence {
    /// Index of the originating evidence path in the [`CycleAnalysis`].
    pub evidence: usize,
    /// `true` for positive feedback, `false` for negative.
    pub positive: bool,
    /// The compensating-error probability Δ used for this factor.
    pub delta: f64,
    /// Indices (into [`MappingModel::variables`]) of the variables the factor connects.
    pub variables: Vec<usize>,
}

/// The assembled probabilistic model of a mapping network.
#[derive(Debug, Clone, Default)]
pub struct MappingModel {
    /// All variables, in insertion order.
    pub variables: Vec<VariableKey>,
    /// Feedback factors.
    pub evidences: Vec<ModelEvidence>,
    index: HashMap<VariableKey, usize>,
    /// Owner peer of each variable (the peer the mapping departs from).
    owners: Vec<PeerId>,
}

impl MappingModel {
    /// Builds the model from an analysis.
    ///
    /// `delta` is the compensating-error probability used for every feedback factor;
    /// use [`crate::delta::estimate_delta`] to derive it from schema sizes. Neutral
    /// observations are skipped (they create no factor). Observations whose steps
    /// collapse onto fewer than two distinct variables are also skipped in coarse
    /// granularity (a factor over a single mapping would assert the mapping is correct
    /// or incorrect with certainty, which only happens for degenerate self-referential
    /// evidence).
    pub fn build(
        catalog: &Catalog,
        analysis: &CycleAnalysis,
        granularity: Granularity,
        delta: f64,
    ) -> Self {
        let mut model = MappingModel::default();
        for observation in analysis.informative_observations() {
            let mut vars: Vec<usize> = Vec::with_capacity(observation.steps.len());
            for (mapping, attribute) in &observation.steps {
                let key = match granularity {
                    Granularity::Fine => VariableKey {
                        mapping: *mapping,
                        attribute: Some(*attribute),
                    },
                    Granularity::Coarse => VariableKey {
                        mapping: *mapping,
                        attribute: None,
                    },
                };
                let idx = model.intern(catalog, key);
                if !vars.contains(&idx) {
                    vars.push(idx);
                }
            }
            if vars.len() < 2 {
                continue;
            }
            model.evidences.push(ModelEvidence {
                evidence: observation.evidence,
                positive: observation.feedback == Feedback::Positive,
                delta,
                variables: vars,
            });
        }
        model
    }

    fn intern(&mut self, catalog: &Catalog, key: VariableKey) -> usize {
        if let Some(&idx) = self.index.get(&key) {
            return idx;
        }
        let idx = self.variables.len();
        self.variables.push(key);
        self.index.insert(key, idx);
        let (owner, _) = catalog.mapping_endpoints(key.mapping);
        self.owners.push(owner);
        idx
    }

    /// Number of variables.
    pub fn variable_count(&self) -> usize {
        self.variables.len()
    }

    /// Number of feedback factors.
    pub fn evidence_count(&self) -> usize {
        self.evidences.len()
    }

    /// Index of a variable by key.
    pub fn variable_index(&self, key: &VariableKey) -> Option<usize> {
        self.index.get(key).copied()
    }

    /// Owner peer of a variable (the peer the mapping departs from, which is the peer
    /// that stores the variable in the embedded scheme, Section 4.1).
    pub fn owner(&self, variable: usize) -> PeerId {
        self.owners[variable]
    }

    /// Variables owned by a peer.
    pub fn variables_of(&self, peer: PeerId) -> Vec<usize> {
        (0..self.variables.len())
            .filter(|&i| self.owners[i] == peer)
            .collect()
    }

    /// Evidence factors touching a variable.
    pub fn evidences_of(&self, variable: usize) -> Vec<usize> {
        self.evidences
            .iter()
            .enumerate()
            .filter(|(_, e)| e.variables.contains(&variable))
            .map(|(i, _)| i)
            .collect()
    }

    /// The peers that hold a replica of an evidence factor: the owners of the variables
    /// it touches.
    pub fn peers_of_evidence(&self, evidence: usize) -> Vec<PeerId> {
        let mut peers: Vec<PeerId> = self.evidences[evidence]
            .variables
            .iter()
            .map(|&v| self.owner(v))
            .collect();
        peers.sort_unstable();
        peers.dedup();
        peers
    }

    /// Builds the global factor graph of the model with the given per-variable priors.
    ///
    /// `priors` maps a variable key to the prior probability of the mapping being
    /// correct; missing entries default to `default_prior`.
    pub fn global_factor_graph(
        &self,
        priors: &BTreeMap<VariableKey, f64>,
        default_prior: f64,
    ) -> FactorGraph {
        let mut graph = FactorGraph::new();
        let mut var_ids = Vec::with_capacity(self.variables.len());
        for key in &self.variables {
            let v = graph.add_variable(key.name());
            let p = priors.get(key).copied().unwrap_or(default_prior);
            graph.add_prior(v, p);
            var_ids.push(v);
        }
        for e in &self.evidences {
            let scope = e.variables.iter().map(|&i| var_ids[i]).collect();
            graph.add_factor(Factor::feedback(scope, e.positive, e.delta));
        }
        graph
    }

    /// Builds the local factor graph a single peer stores (Figure 6): the variables it
    /// owns, their prior factors, every feedback factor touching one of those
    /// variables, and one "virtual peer" variable per remote mapping appearing in those
    /// factors (named `virtual:<mapping>@<attr>`), carrying a uniform prior that the
    /// embedded scheme overrides with remote messages.
    pub fn local_factor_graph(
        &self,
        peer: PeerId,
        priors: &BTreeMap<VariableKey, f64>,
        default_prior: f64,
    ) -> FactorGraph {
        let mut graph = FactorGraph::new();
        let mut local_ids: HashMap<usize, pdms_factor::VariableId> = HashMap::new();
        for &idx in &self.variables_of(peer) {
            let v = graph.add_variable(self.variables[idx].name());
            let p = priors
                .get(&self.variables[idx])
                .copied()
                .unwrap_or(default_prior);
            graph.add_prior(v, p);
            local_ids.insert(idx, v);
        }
        for e in &self.evidences {
            if !e.variables.iter().any(|v| local_ids.contains_key(v)) {
                continue;
            }
            let mut scope = Vec::with_capacity(e.variables.len());
            for &v in &e.variables {
                let id = if let Some(&id) = local_ids.get(&v) {
                    id
                } else {
                    graph.add_variable(format!("virtual:{}", self.variables[v].name()))
                };
                scope.push(id);
            }
            graph.add_factor(Factor::feedback(scope, e.positive, e.delta));
        }
        graph
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cycle_analysis::AnalysisConfig;

    /// A three-peer ring with a faulty middle mapping (same as in cycle_analysis tests).
    fn faulty_ring() -> Catalog {
        let mut cat = Catalog::new();
        let peers: Vec<PeerId> = (0..3)
            .map(|i| {
                cat.add_peer_with_schema(format!("p{i}"), |s| {
                    s.attributes(["alpha", "beta"]);
                })
            })
            .collect();
        for i in 0..3 {
            let from = peers[i];
            let to = peers[(i + 1) % 3];
            cat.add_mapping(from, to, |m| {
                if i == 1 {
                    m.erroneous(AttributeId(0), AttributeId(1), AttributeId(0))
                        .correct(AttributeId(1), AttributeId(1))
                } else {
                    m.correct(AttributeId(0), AttributeId(0))
                        .correct(AttributeId(1), AttributeId(1))
                }
            });
        }
        cat
    }

    fn build_fine(cat: &Catalog) -> (CycleAnalysis, MappingModel) {
        let analysis = CycleAnalysis::analyze(cat, &AnalysisConfig::default());
        let model = MappingModel::build(cat, &analysis, Granularity::Fine, 0.1);
        (analysis, model)
    }

    #[test]
    fn fine_granularity_creates_per_attribute_variables() {
        let cat = faulty_ring();
        let (_analysis, model) = build_fine(&cat);
        // Two informative observations (alpha negative, beta positive), each over three
        // mappings; the alpha observation passes attribute 1 to mapping 2 while the
        // beta observation also passes attribute 1 to mapping 2, so the variable is
        // shared; total distinct variables: m0@a0, m1@a0, m2@a1 (from alpha), m0@a1,
        // m1@a1, m2@a1 (from beta) = 6 - 1 shared = 5... let us just assert bounds.
        assert_eq!(model.evidence_count(), 2);
        assert!(model.variable_count() >= 5 && model.variable_count() <= 6);
    }

    #[test]
    fn coarse_granularity_collapses_to_one_variable_per_mapping() {
        let cat = faulty_ring();
        let analysis = CycleAnalysis::analyze(&cat, &AnalysisConfig::default());
        let model = MappingModel::build(&cat, &analysis, Granularity::Coarse, 0.1);
        assert_eq!(model.variable_count(), 3);
        assert_eq!(model.evidence_count(), 2);
    }

    #[test]
    fn owners_follow_mapping_sources() {
        let cat = faulty_ring();
        let (_, model) = build_fine(&cat);
        for (i, key) in model.variables.iter().enumerate() {
            let (source, _) = cat.mapping_endpoints(key.mapping);
            assert_eq!(model.owner(i), source);
        }
        // Each peer owns at least one variable.
        for p in cat.peers() {
            assert!(!model.variables_of(p).is_empty());
        }
    }

    #[test]
    fn global_factor_graph_has_priors_and_feedback() {
        let cat = faulty_ring();
        let (_, model) = build_fine(&cat);
        let graph = model.global_factor_graph(&BTreeMap::new(), 0.6);
        assert_eq!(graph.variable_count(), model.variable_count());
        assert_eq!(
            graph.factor_count(),
            model.variable_count() + model.evidence_count()
        );
        assert!(graph.uncovered_variables().is_empty());
    }

    #[test]
    fn explicit_priors_override_the_default() {
        let cat = faulty_ring();
        let (_, model) = build_fine(&cat);
        let key = model.variables[0];
        let mut priors = BTreeMap::new();
        priors.insert(key, 0.95);
        let graph = model.global_factor_graph(&priors, 0.5);
        let v = graph.variable_by_name(&key.name()).unwrap();
        // The first factor attached to a variable is its prior.
        let prior_factor = graph.factors_of(v)[0];
        let belief = graph
            .factor(prior_factor)
            .message_to(0, &[pdms_factor::Belief::unit()]);
        assert!((belief.probability_correct() - 0.95).abs() < 1e-12);
    }

    #[test]
    fn local_factor_graph_contains_virtual_peers() {
        let cat = faulty_ring();
        let (_, model) = build_fine(&cat);
        let p0 = PeerId(0);
        let local = model.local_factor_graph(p0, &BTreeMap::new(), 0.5);
        // It must contain p0's own variables plus virtual variables for the remote
        // mappings in the shared evidence factors.
        let own = model.variables_of(p0).len();
        assert!(local.variable_count() > own);
        let has_virtual = local
            .variables()
            .any(|v| local.variable_name(v).starts_with("virtual:"));
        assert!(has_virtual);
    }

    #[test]
    fn evidences_of_and_peers_of_evidence_are_consistent() {
        let cat = faulty_ring();
        let (_, model) = build_fine(&cat);
        for (i, e) in model.evidences.iter().enumerate() {
            for &v in &e.variables {
                assert!(model.evidences_of(v).contains(&i));
            }
            let peers = model.peers_of_evidence(i);
            assert!(!peers.is_empty());
            assert!(peers.len() <= 3);
        }
    }
}

//! Discovery of evidence paths (cycles and parallel paths) and feedback extraction.
//!
//! The analysis mirrors what the peers of a real PDMS would do with TTL-bounded probe
//! messages (Section 3.2.1): enumerate the mapping cycles and, in the directed case,
//! the pairs of edge-disjoint parallel paths, then push every attribute of the origin
//! schema through the transitive closure of the mappings involved and compare.
//!
//! The directed reading is used throughout: as the paper observes (end of Section 3.3),
//! undirected and directed mapping networks produce structurally identical factor
//! graphs, an undirected cycle simply showing up as either a directed cycle or a pair
//! of parallel paths depending on the edge orientations.

use crate::feedback::{Feedback, FeedbackObservation};
use pdms_graph::{
    cycles_through_edge, enumerate_cycles_scheduled, enumerate_parallel_paths_scheduled,
    parallel_paths_through_edge, DiGraph, EdgeId, NodeId, StealConfig,
};
use pdms_schema::{AttributeId, Catalog, MappingId, PeerId};

/// Where an evidence path comes from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EvidenceSource {
    /// A directed mapping cycle; feedback is evaluated from `origin`'s schema.
    Cycle {
        /// The peer at which the cycle starts and ends.
        origin: PeerId,
    },
    /// A pair of edge-disjoint directed paths sharing source and destination.
    ParallelPaths {
        /// Common source peer (whose schema provides the compared attributes).
        source: PeerId,
        /// Common destination peer (where the two translations are compared).
        destination: PeerId,
    },
}

/// One structural evidence path: the mappings of a cycle, or of both branches of a
/// parallel-path pair.
#[derive(Debug, Clone, PartialEq)]
pub struct EvidencePath {
    /// Index of this evidence within the analysis.
    pub id: usize,
    /// Cycle or parallel paths.
    pub source: EvidenceSource,
    /// For a cycle: the mappings in traversal order. For parallel paths: the left
    /// branch followed by the right branch (see `split` for the boundary).
    pub mappings: Vec<MappingId>,
    /// For parallel paths, the number of mappings belonging to the left branch;
    /// `None` for cycles.
    pub split: Option<usize>,
}

impl EvidencePath {
    /// Number of mappings involved.
    pub fn len(&self) -> usize {
        self.mappings.len()
    }

    /// True when the path involves no mapping (never produced by the analysis).
    pub fn is_empty(&self) -> bool {
        self.mappings.is_empty()
    }

    /// True if the evidence involves the given mapping.
    pub fn contains(&self, mapping: MappingId) -> bool {
        self.mappings.contains(&mapping)
    }
}

/// Configuration of the analysis.
#[derive(Debug, Clone)]
pub struct AnalysisConfig {
    /// Maximum cycle length considered (the probe TTL). Section 5.1.2 argues 5–10 is
    /// enough in practice because longer cycles carry almost no evidence.
    pub max_cycle_len: usize,
    /// Maximum length of each branch of a parallel-path pair.
    pub max_path_len: usize,
    /// Also enumerate parallel paths (directed networks). Disable for workloads that
    /// only want cycle feedback.
    pub include_parallel_paths: bool,
    /// Worker threads for the full cycle / parallel-path enumerations: `0` = auto
    /// (the `PDMS_PARALLELISM` environment variable, else every available core), `1`
    /// = serial, `n` = exactly `n` workers. Results are identical at every setting —
    /// the work-stealing fan-out merges in deterministic origin-then-subtask order
    /// (see [`pdms_graph::effective_parallelism`]).
    pub parallelism: usize,
    /// First-hop degree at which an origin counts as *heavy* and its DFS is split
    /// into stealable subtasks (hub peers in scale-free networks). `0` = auto: the
    /// `PDMS_HEAVY_ORIGIN_THRESHOLD` environment variable, else
    /// [`pdms_graph::DEFAULT_HEAVY_ORIGIN_THRESHOLD`]. Scheduling only — results
    /// are identical at every setting.
    pub heavy_origin_threshold: usize,
    /// First-hop edges per stolen subtask of a heavy origin. Smaller values flatten
    /// the per-worker tail harder at slightly more scheduling overhead. `0` = auto:
    /// the `PDMS_STEAL_GRANULARITY` environment variable, else
    /// [`pdms_graph::DEFAULT_STEAL_GRANULARITY`]. Scheduling only — results are
    /// identical at every setting.
    pub steal_granularity: usize,
    /// Worker threads a [`crate::sharding::ShardedSession`] dispatches its
    /// component shards over: `0` = auto (the `PDMS_SHARD_PARALLELISM` environment
    /// variable, else every available core), `1` = serial, `n` = exactly `n`
    /// workers. Distinct from [`AnalysisConfig::parallelism`], which fans out
    /// *within* one enumeration. Scheduling only — per-shard results merge by
    /// global mapping id, so posteriors are identical at every setting. Ignored by
    /// non-sharded sessions.
    pub shard_parallelism: usize,
    /// Ingestion batch size of a [`crate::sharding::ShardedSession`]: event slices
    /// longer than this are split into consecutive batches of at most this many
    /// events, each triggering one inference pass per touched shard. `0` = auto
    /// (the `PDMS_BATCH_SIZE` environment variable, else "one batch per submitted
    /// slice"). Ignored by non-sharded sessions.
    pub batch_size: usize,
    /// Warm shard splicing of a [`crate::sharding::ShardedSession`]: on a component
    /// merge or split, splice the donor shards' cached analyses and converged
    /// posteriors into the new shard — searching only the evidence through the
    /// bridging mappings — instead of rebuilding the touched shards cold. `None` =
    /// auto (the `PDMS_SPLICE` environment variable; `0`/`false`/`off`/`no`
    /// disable, default enabled), `Some(v)` pins it. The knob never changes
    /// results (exact evidence sets; posteriors within the warm-restart ulp
    /// envelope, bit-identical on cold comparison points — see
    /// `docs/SHARDING.md`); it exists as a cost comparison and fallback. Ignored
    /// by non-sharded sessions.
    pub splice: Option<bool>,
}

impl Default for AnalysisConfig {
    fn default() -> Self {
        Self {
            max_cycle_len: 6,
            max_path_len: 4,
            include_parallel_paths: true,
            parallelism: 0,
            heavy_origin_threshold: 0,
            steal_granularity: 0,
            shard_parallelism: 0,
            batch_size: 0,
            splice: None,
        }
    }
}

impl AnalysisConfig {
    /// The work-stealing schedule knobs as the graph layer consumes them.
    pub fn steal_config(&self) -> StealConfig {
        StealConfig {
            heavy_origin_threshold: self.heavy_origin_threshold,
            steal_granularity: self.steal_granularity,
        }
    }
}

/// The result of analysing a catalog: the evidence paths and, per evidence and per
/// origin attribute, the feedback observation.
#[derive(Debug, Clone, Default)]
pub struct CycleAnalysis {
    /// All structural evidence paths found.
    pub evidences: Vec<EvidencePath>,
    /// All per-attribute observations (positive, negative and neutral).
    pub observations: Vec<FeedbackObservation>,
}

impl CycleAnalysis {
    /// Runs the analysis over a catalog.
    ///
    /// The cycle and parallel-path enumerations fan out across
    /// [`AnalysisConfig::parallelism`] workers; the merge order is deterministic, so
    /// evidence ids do not depend on the worker count.
    pub fn analyze(catalog: &Catalog, config: &AnalysisConfig) -> Self {
        let graph = build_topology(catalog);
        let steal = config.steal_config();
        let mut evidences = Vec::new();
        // Directed cycles. Edge ids and mapping ids coincide by construction.
        for cycle in
            enumerate_cycles_scheduled(&graph, config.max_cycle_len, config.parallelism, &steal)
        {
            let origin = PeerId(cycle.nodes[0].0);
            evidences.push(EvidencePath {
                id: evidences.len(),
                source: EvidenceSource::Cycle { origin },
                mappings: cycle.edges.iter().map(|e| MappingId(e.0)).collect(),
                split: None,
            });
        }
        if config.include_parallel_paths {
            for pp in enumerate_parallel_paths_scheduled(
                &graph,
                config.max_path_len,
                config.parallelism,
                &steal,
            ) {
                let mut mappings: Vec<MappingId> = pp.left.iter().map(|e| MappingId(e.0)).collect();
                let split = mappings.len();
                mappings.extend(pp.right.iter().map(|e| MappingId(e.0)));
                evidences.push(EvidencePath {
                    id: evidences.len(),
                    source: EvidenceSource::ParallelPaths {
                        source: PeerId(pp.source.0),
                        destination: PeerId(pp.destination.0),
                    },
                    mappings,
                    split: Some(split),
                });
            }
        }
        let mut observations = Vec::new();
        for evidence in &evidences {
            observations.extend(observe(catalog, evidence));
        }
        Self {
            evidences,
            observations,
        }
    }

    /// Observations that carry information (positive or negative feedback).
    pub fn informative_observations(&self) -> impl Iterator<Item = &FeedbackObservation> {
        self.observations
            .iter()
            .filter(|o| o.feedback.is_informative())
    }

    /// Observations about a given mapping (any feedback sign).
    pub fn observations_about(&self, mapping: MappingId) -> Vec<&FeedbackObservation> {
        self.observations
            .iter()
            .filter(|o| o.mappings().any(|m| m == mapping) || o.dropped_by == Some(mapping))
            .collect()
    }

    /// Evidence paths through a given mapping.
    pub fn evidences_through(&self, mapping: MappingId) -> Vec<&EvidencePath> {
        self.evidences
            .iter()
            .filter(|e| e.contains(mapping))
            .collect()
    }

    /// Counts of (positive, negative, neutral) observations.
    pub fn feedback_counts(&self) -> (usize, usize, usize) {
        let mut counts = (0usize, 0usize, 0usize);
        for o in &self.observations {
            match o.feedback {
                Feedback::Positive => counts.0 += 1,
                Feedback::Negative => counts.1 += 1,
                Feedback::Neutral => counts.2 += 1,
            }
        }
        counts
    }

    /// Incorporates a mapping just added to `catalog` without re-enumerating the whole
    /// network: only the cycles and parallel-path pairs through the new mapping's edge
    /// are searched (every other evidence path is untouched — an edge addition cannot
    /// create or destroy evidence that does not use it).
    ///
    /// Rebuilds the topology from the catalog on every call; long-lived callers that
    /// maintain a live [`DiGraph`] mirror (as [`crate::session::EngineSession`] does)
    /// should use [`CycleAnalysis::add_mapping_incremental_in`] instead and skip the
    /// O(mapping slots) rebuild.
    pub fn add_mapping_incremental(
        &mut self,
        catalog: &Catalog,
        mapping: MappingId,
        config: &AnalysisConfig,
    ) -> AnalysisDelta {
        let graph = build_topology(catalog);
        self.add_mapping_incremental_in(catalog, &graph, mapping, config)
    }

    /// [`CycleAnalysis::add_mapping_incremental`] against a caller-maintained
    /// topology.
    ///
    /// `graph` must mirror `catalog` exactly — one edge per mapping slot, edge ids
    /// equal to mapping ids, tombstoned mappings as tombstoned edges — and already
    /// contain the edge of `mapping`. [`build_topology`] produces such a mirror from
    /// scratch; an [`crate::session::EngineSession`] keeps one alive across events
    /// so each `AddMapping` costs only the targeted search, not a topology rebuild.
    pub fn add_mapping_incremental_in(
        &mut self,
        catalog: &Catalog,
        graph: &DiGraph,
        mapping: MappingId,
        config: &AnalysisConfig,
    ) -> AnalysisDelta {
        // The invariant targeted searches rely on is *id alignment*: one edge slot
        // per mapping slot, tombstones included. Live counts may legitimately
        // differ transiently — a batch-coalesced add/remove pair tombstones its
        // mirror edge while the catalog still counts the mapping live until the
        // removal event is reached.
        debug_assert_eq!(
            graph.edge_slot_count(),
            catalog.mapping_slot_count(),
            "topology mirror out of sync with the catalog"
        );
        let edge = EdgeId(mapping.0);
        let reused = self.evidences.len();
        for cycle in cycles_through_edge(graph, edge, config.max_cycle_len, true) {
            let origin = PeerId(cycle.nodes[0].0);
            self.evidences.push(EvidencePath {
                id: self.evidences.len(),
                source: EvidenceSource::Cycle { origin },
                mappings: cycle.edges.iter().map(|e| MappingId(e.0)).collect(),
                split: None,
            });
        }
        if config.include_parallel_paths {
            for pp in parallel_paths_through_edge(graph, edge, config.max_path_len) {
                let mut mappings: Vec<MappingId> = pp.left.iter().map(|e| MappingId(e.0)).collect();
                let split = mappings.len();
                mappings.extend(pp.right.iter().map(|e| MappingId(e.0)));
                self.evidences.push(EvidencePath {
                    id: self.evidences.len(),
                    source: EvidenceSource::ParallelPaths {
                        source: PeerId(pp.source.0),
                        destination: PeerId(pp.destination.0),
                    },
                    mappings,
                    split: Some(split),
                });
            }
        }
        let added = self.evidences.len() - reused;
        for evidence in &self.evidences[reused..] {
            self.observations.extend(observe(catalog, evidence));
        }
        AnalysisDelta {
            evidences_added: added,
            evidences_removed: 0,
            evidences_reobserved: 0,
            evidences_reused: reused,
        }
    }

    /// Drops every evidence path using a removed mapping, compacting evidence ids (an
    /// edge removal cannot affect evidence that does not use it).
    pub fn remove_mapping_incremental(&mut self, mapping: MappingId) -> AnalysisDelta {
        let mut remap: Vec<Option<usize>> = Vec::with_capacity(self.evidences.len());
        let mut kept = 0usize;
        for evidence in &self.evidences {
            if evidence.contains(mapping) {
                remap.push(None);
            } else {
                remap.push(Some(kept));
                kept += 1;
            }
        }
        let removed = self.evidences.len() - kept;
        if removed == 0 {
            return AnalysisDelta {
                evidences_added: 0,
                evidences_removed: 0,
                evidences_reobserved: 0,
                evidences_reused: kept,
            };
        }
        self.evidences.retain(|e| remap[e.id].is_some());
        for evidence in &mut self.evidences {
            evidence.id = remap[evidence.id].expect("retained evidence has a slot");
        }
        self.observations.retain(|o| remap[o.evidence].is_some());
        for observation in &mut self.observations {
            observation.evidence = remap[observation.evidence].expect("retained observation");
        }
        AnalysisDelta {
            evidences_added: 0,
            evidences_removed: removed,
            evidences_reobserved: 0,
            evidences_reused: kept,
        }
    }

    /// Recomputes the observations of every evidence path through a mapping whose
    /// correspondences changed (corruption, repair, or a dropped correspondence). The
    /// evidence structure itself is untouched: correspondence edits do not change the
    /// network topology.
    pub fn reobserve_mapping(&mut self, catalog: &Catalog, mapping: MappingId) -> AnalysisDelta {
        self.reobserve_mappings(catalog, std::slice::from_ref(&mapping))
    }

    /// Batch form of [`CycleAnalysis::reobserve_mapping`]: an evidence path through
    /// several changed mappings is re-observed exactly once.
    pub fn reobserve_mappings(
        &mut self,
        catalog: &Catalog,
        mappings: &[MappingId],
    ) -> AnalysisDelta {
        let affected: Vec<usize> = self
            .evidences
            .iter()
            .filter(|e| mappings.iter().any(|m| e.contains(*m)))
            .map(|e| e.id)
            .collect();
        if affected.is_empty() {
            return AnalysisDelta {
                evidences_added: 0,
                evidences_removed: 0,
                evidences_reobserved: 0,
                evidences_reused: self.evidences.len(),
            };
        }
        let affected_set: std::collections::BTreeSet<usize> = affected.iter().copied().collect();
        self.observations
            .retain(|o| !affected_set.contains(&o.evidence));
        for &id in &affected {
            let fresh = observe(catalog, &self.evidences[id]);
            self.observations.extend(fresh);
        }
        AnalysisDelta {
            evidences_added: 0,
            evidences_removed: 0,
            evidences_reobserved: affected.len(),
            evidences_reused: self.evidences.len() - affected.len(),
        }
    }
}

/// What one incremental analysis update did — the bookkeeping behind the session's
/// maintenance statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AnalysisDelta {
    /// Evidence paths newly discovered (through an added mapping).
    pub evidences_added: usize,
    /// Evidence paths dropped (through a removed mapping).
    pub evidences_removed: usize,
    /// Evidence paths whose observations were recomputed in place.
    pub evidences_reobserved: usize,
    /// Evidence paths left completely untouched.
    pub evidences_reused: usize,
}

impl AnalysisDelta {
    /// Merges the added/removed/re-observed counters of two consecutive updates.
    ///
    /// `evidences_reused` is deliberately left untouched: each update measures it
    /// against a different evidence total, so no pairwise combination of the two
    /// values is meaningful. Callers merging deltas across a batch must recount the
    /// untouched evidence at the end (as [`crate::session::EngineSession::apply`]
    /// does).
    pub fn merge(&mut self, other: AnalysisDelta) {
        self.evidences_added += other.evidences_added;
        self.evidences_removed += other.evidences_removed;
        self.evidences_reobserved += other.evidences_reobserved;
    }
}

/// Builds the mapping-network topology of a catalog. Edge ids coincide with mapping
/// ids: every mapping slot becomes an edge, and tombstoned (removed) mappings become
/// tombstoned edges, so the alignment survives network evolution.
pub fn build_topology(catalog: &Catalog) -> DiGraph {
    let mut graph = DiGraph::with_nodes(catalog.peer_count());
    for slot in 0..catalog.mapping_slot_count() {
        let mapping = MappingId(slot);
        let (source, target) = catalog.mapping_endpoints(mapping);
        let edge = graph.add_edge(NodeId(source.0), NodeId(target.0));
        debug_assert_eq!(edge.0, mapping.0, "edge ids must mirror mapping ids");
        if catalog.is_mapping_removed(mapping) {
            graph.remove_edge(edge);
        }
    }
    graph
}

/// Computes the feedback observations of one evidence path, one per attribute of the
/// origin schema.
fn observe(catalog: &Catalog, evidence: &EvidencePath) -> Vec<FeedbackObservation> {
    match evidence.source {
        EvidenceSource::Cycle { origin } => observe_cycle(catalog, evidence, origin),
        EvidenceSource::ParallelPaths { source, .. } => observe_parallel(catalog, evidence, source),
    }
}

/// Pushes `attribute` through a chain of mappings, recording `(mapping, input)` steps.
/// Returns the steps plus the final attribute (or `None` if dropped, with the dropping
/// mapping recorded as the last step).
fn push_through(
    catalog: &Catalog,
    chain: &[MappingId],
    attribute: AttributeId,
) -> (Vec<(MappingId, AttributeId)>, Option<AttributeId>) {
    let mut steps = Vec::with_capacity(chain.len());
    let mut current = attribute;
    for &mapping_id in chain {
        let mapping = catalog.mapping(mapping_id);
        steps.push((mapping_id, current));
        match mapping.apply(current) {
            Some(next) => current = next,
            None => return (steps, None),
        }
    }
    (steps, Some(current))
}

fn observe_cycle(
    catalog: &Catalog,
    evidence: &EvidencePath,
    origin: PeerId,
) -> Vec<FeedbackObservation> {
    let schema = catalog.peer_schema(origin);
    let mut out = Vec::with_capacity(schema.attribute_count());
    for attr in schema.attributes() {
        let (steps, returned) = push_through(catalog, &evidence.mappings, attr.id);
        let feedback = Feedback::from_comparison(attr.id, returned);
        let dropped_by = if returned.is_none() {
            steps.last().map(|(m, _)| *m)
        } else {
            None
        };
        out.push(FeedbackObservation {
            evidence: evidence.id,
            origin_attribute: attr.id,
            feedback,
            steps,
            dropped_by,
        });
    }
    out
}

fn observe_parallel(
    catalog: &Catalog,
    evidence: &EvidencePath,
    source: PeerId,
) -> Vec<FeedbackObservation> {
    let split = evidence.split.expect("parallel evidence has a split point");
    let (left, right) = evidence.mappings.split_at(split);
    let schema = catalog.peer_schema(source);
    let mut out = Vec::with_capacity(schema.attribute_count());
    for attr in schema.attributes() {
        let (left_steps, left_result) = push_through(catalog, left, attr.id);
        let (right_steps, right_result) = push_through(catalog, right, attr.id);
        let feedback = Feedback::from_parallel(left_result, right_result);
        let mut steps = left_steps;
        steps.extend(right_steps);
        let dropped_by = match (left_result, right_result) {
            (None, _) | (_, None) => steps.last().map(|(m, _)| *m),
            _ => None,
        };
        // For neutral parallel feedback the dropping mapping is whichever branch ended
        // early; recompute it precisely.
        let dropped_by = if feedback == Feedback::Neutral {
            if left_result.is_none() {
                left.get(steps.len().min(left.len()).saturating_sub(1))
                    .copied()
                    .or(dropped_by)
            } else {
                dropped_by
            }
        } else {
            None
        };
        out.push(FeedbackObservation {
            evidence: evidence.id,
            origin_attribute: attr.id,
            feedback,
            steps,
            dropped_by,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdms_schema::AttributeId;

    /// A three-peer directed ring where every schema has two attributes and every
    /// mapping is correct for attribute 0 but drops attribute 1 at the last hop.
    fn ring_catalog() -> Catalog {
        let mut cat = Catalog::new();
        let peers: Vec<PeerId> = (0..3)
            .map(|i| {
                cat.add_peer_with_schema(format!("p{i}"), |s| {
                    s.attributes(["alpha", "beta"]);
                })
            })
            .collect();
        for i in 0..3 {
            let from = peers[i];
            let to = peers[(i + 1) % 3];
            cat.add_mapping(from, to, |m| {
                let m = m.correct(AttributeId(0), AttributeId(0));
                if i < 2 {
                    m.correct(AttributeId(1), AttributeId(1))
                } else {
                    m
                }
            });
        }
        cat
    }

    /// Ring where one mapping misroutes attribute 0 to attribute 1.
    fn faulty_ring_catalog() -> Catalog {
        let mut cat = Catalog::new();
        let peers: Vec<PeerId> = (0..3)
            .map(|i| {
                cat.add_peer_with_schema(format!("p{i}"), |s| {
                    s.attributes(["alpha", "beta"]);
                })
            })
            .collect();
        for i in 0..3 {
            let from = peers[i];
            let to = peers[(i + 1) % 3];
            cat.add_mapping(from, to, |m| {
                if i == 1 {
                    m.erroneous(AttributeId(0), AttributeId(1), AttributeId(0))
                        .correct(AttributeId(1), AttributeId(1))
                } else {
                    m.correct(AttributeId(0), AttributeId(0))
                        .correct(AttributeId(1), AttributeId(1))
                }
            });
        }
        cat
    }

    #[test]
    fn topology_mirrors_catalog() {
        let cat = ring_catalog();
        let g = build_topology(&cat);
        assert_eq!(g.node_count(), 3);
        assert_eq!(g.edge_count(), 3);
    }

    #[test]
    fn ring_produces_one_cycle_evidence() {
        let cat = ring_catalog();
        let analysis = CycleAnalysis::analyze(&cat, &AnalysisConfig::default());
        assert_eq!(analysis.evidences.len(), 1);
        assert_eq!(analysis.evidences[0].len(), 3);
        assert!(matches!(
            analysis.evidences[0].source,
            EvidenceSource::Cycle { .. }
        ));
    }

    #[test]
    fn correct_cycle_gives_positive_feedback_and_drop_gives_neutral() {
        let cat = ring_catalog();
        let analysis = CycleAnalysis::analyze(&cat, &AnalysisConfig::default());
        let (pos, neg, neutral) = analysis.feedback_counts();
        // Attribute 0 survives the cycle (positive); attribute 1 is dropped by the last
        // mapping (neutral). One cycle, two attributes.
        assert_eq!((pos, neg, neutral), (1, 0, 1));
        let neutral_obs = analysis
            .observations
            .iter()
            .find(|o| o.feedback == Feedback::Neutral)
            .unwrap();
        assert_eq!(neutral_obs.dropped_by, Some(MappingId(2)));
    }

    #[test]
    fn faulty_mapping_produces_negative_feedback() {
        let cat = faulty_ring_catalog();
        let analysis = CycleAnalysis::analyze(&cat, &AnalysisConfig::default());
        let (pos, neg, _neutral) = analysis.feedback_counts();
        // Attribute 0: the error at mapping 1 sends it to attribute 1, which then maps
        // to attribute 1 at the origin -> negative. Attribute 1 survives -> positive.
        assert_eq!(pos, 1);
        assert_eq!(neg, 1);
        let negative = analysis
            .observations
            .iter()
            .find(|o| o.feedback == Feedback::Negative)
            .unwrap();
        assert_eq!(negative.origin_attribute, AttributeId(0));
        assert_eq!(negative.steps.len(), 3);
        // The second step hands attribute 0 to the faulty mapping, the third step hands
        // the wrong attribute 1 onward.
        assert_eq!(negative.steps[1], (MappingId(1), AttributeId(0)));
        assert_eq!(negative.steps[2], (MappingId(2), AttributeId(1)));
    }

    #[test]
    fn parallel_paths_are_detected_in_diamond_topologies() {
        let mut cat = Catalog::new();
        let peers: Vec<PeerId> = (0..4)
            .map(|i| {
                cat.add_peer_with_schema(format!("p{i}"), |s| {
                    s.attributes(["alpha", "beta", "gamma"]);
                })
            })
            .collect();
        // p0 -> p1 -> p3 and p0 -> p2 -> p3, all correct for alpha.
        for (a, b) in [(0, 1), (1, 3), (0, 2), (2, 3)] {
            cat.add_mapping(peers[a], peers[b], |m| {
                m.correct(AttributeId(0), AttributeId(0))
            });
        }
        let analysis = CycleAnalysis::analyze(&cat, &AnalysisConfig::default());
        let parallel: Vec<&EvidencePath> = analysis
            .evidences
            .iter()
            .filter(|e| matches!(e.source, EvidenceSource::ParallelPaths { .. }))
            .collect();
        assert_eq!(parallel.len(), 1);
        assert_eq!(parallel[0].len(), 4);
        // Alpha agrees on both branches -> positive; beta and gamma are dropped by the
        // very first mappings -> neutral.
        let obs: Vec<&FeedbackObservation> = analysis
            .observations
            .iter()
            .filter(|o| o.evidence == parallel[0].id)
            .collect();
        assert_eq!(obs.len(), 3);
        assert_eq!(
            obs.iter()
                .filter(|o| o.feedback == Feedback::Positive)
                .count(),
            1
        );
        assert_eq!(
            obs.iter()
                .filter(|o| o.feedback == Feedback::Neutral)
                .count(),
            2
        );
    }

    #[test]
    fn parallel_paths_disagreeing_give_negative_feedback() {
        let mut cat = Catalog::new();
        let peers: Vec<PeerId> = (0..3)
            .map(|i| {
                cat.add_peer_with_schema(format!("p{i}"), |s| {
                    s.attributes(["alpha", "beta"]);
                })
            })
            .collect();
        // Two direct mappings p0 -> p1 that disagree on alpha, plus nothing else.
        cat.add_mapping(peers[0], peers[1], |m| {
            m.correct(AttributeId(0), AttributeId(0))
        });
        cat.add_mapping(peers[0], peers[1], |m| {
            m.erroneous(AttributeId(0), AttributeId(1), AttributeId(0))
        });
        let _ = peers[2];
        let analysis = CycleAnalysis::analyze(&cat, &AnalysisConfig::default());
        let (pos, neg, _) = analysis.feedback_counts();
        assert_eq!(pos, 0);
        assert_eq!(neg, 1);
    }

    #[test]
    fn observations_about_a_mapping_include_drops() {
        let cat = ring_catalog();
        let analysis = CycleAnalysis::analyze(&cat, &AnalysisConfig::default());
        let about_last = analysis.observations_about(MappingId(2));
        // Both the positive observation (it participates) and the neutral one (it
        // dropped the attribute) mention mapping 2.
        assert_eq!(about_last.len(), 2);
        assert_eq!(analysis.evidences_through(MappingId(2)).len(), 1);
    }

    #[test]
    fn cycle_length_bound_is_respected() {
        let cat = ring_catalog();
        let analysis = CycleAnalysis::analyze(
            &cat,
            &AnalysisConfig {
                max_cycle_len: 2,
                ..Default::default()
            },
        );
        assert!(analysis.evidences.is_empty());
    }
}

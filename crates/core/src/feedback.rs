//! Feedback: the observations extracted from cycles and parallel paths.
//!
//! Comparing an attribute `ai` of the original query with the attribute `aj` produced
//! by the transitive closure of the mappings of a cycle (or by the second branch of a
//! pair of parallel paths) yields one of three observations (Section 3.2.1):
//!
//! * `aj = ai` — **positive** feedback on the mappings of the cycle;
//! * `aj ≠ ai` — **negative** feedback;
//! * `aj = ⊥`  — **neutral**: some mapping had no correspondence; no factor is created,
//!   but the information is kept because a mapping that drops the attribute gets
//!   probability zero for that attribute during routing (Section 3.2.1, last case).

use pdms_schema::{AttributeId, MappingId};

/// The three possible comparisons of the original and the returned attribute.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Feedback {
    /// The attribute came back unchanged: evidence that all mappings of the path agree.
    Positive,
    /// The attribute came back as a different attribute: at least one mapping disagrees.
    Negative,
    /// The attribute was dropped along the way; no semantic evidence either way.
    Neutral,
}

impl Feedback {
    /// True when the observation creates a factor in the probabilistic model.
    pub fn is_informative(&self) -> bool {
        !matches!(self, Feedback::Neutral)
    }

    /// True for positive feedback.
    pub fn is_positive(&self) -> bool {
        matches!(self, Feedback::Positive)
    }

    /// Compares the original attribute with an optional returned attribute.
    pub fn from_comparison(original: AttributeId, returned: Option<AttributeId>) -> Self {
        match returned {
            Some(a) if a == original => Feedback::Positive,
            Some(_) => Feedback::Negative,
            None => Feedback::Neutral,
        }
    }

    /// Compares the two endpoints of a pair of parallel paths: positive when both
    /// branches agree on a concrete attribute, negative when they disagree, neutral
    /// when either branch dropped the attribute.
    pub fn from_parallel(left: Option<AttributeId>, right: Option<AttributeId>) -> Self {
        match (left, right) {
            (Some(a), Some(b)) if a == b => Feedback::Positive,
            (Some(_), Some(_)) => Feedback::Negative,
            _ => Feedback::Neutral,
        }
    }
}

/// One observation: the feedback obtained for one attribute over one evidence path.
///
/// Besides the sign, the observation records *which attribute each mapping was asked
/// to translate* along the path (`steps`). This is what the fine-granularity mode of
/// Section 4.1 needs: the factor for this observation connects the per-attribute
/// mapping variables `(mapping, attribute fed into it)`, so two observations reinforce
/// each other exactly when they exercise the same mapping on the same concept.
#[derive(Debug, Clone, PartialEq)]
pub struct FeedbackObservation {
    /// Index of the evidence path (cycle or parallel-path pair) in the
    /// [`crate::cycle_analysis::CycleAnalysis`] that produced it.
    pub evidence: usize,
    /// The attribute (of the evidence origin's schema) the observation refers to.
    pub origin_attribute: AttributeId,
    /// The observation.
    pub feedback: Feedback,
    /// `(mapping, attribute handed to that mapping)` for every step actually taken.
    /// For neutral feedback the list stops at the mapping that dropped the attribute.
    pub steps: Vec<(MappingId, AttributeId)>,
    /// The mapping that had no correspondence for the attribute, when feedback is
    /// neutral. Routing treats that mapping as having probability zero of preserving
    /// this attribute (Section 3.2.1).
    pub dropped_by: Option<MappingId>,
}

impl FeedbackObservation {
    /// Number of mappings involved in the steps actually taken.
    pub fn mapping_count(&self) -> usize {
        self.steps.len()
    }

    /// The mappings of the observation, in path order.
    pub fn mappings(&self) -> impl Iterator<Item = MappingId> + '_ {
        self.steps.iter().map(|(m, _)| *m)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comparison_covers_all_cases() {
        let a = AttributeId(3);
        assert_eq!(
            Feedback::from_comparison(a, Some(AttributeId(3))),
            Feedback::Positive
        );
        assert_eq!(
            Feedback::from_comparison(a, Some(AttributeId(5))),
            Feedback::Negative
        );
        assert_eq!(Feedback::from_comparison(a, None), Feedback::Neutral);
    }

    #[test]
    fn parallel_comparison_covers_all_cases() {
        let a = Some(AttributeId(1));
        let b = Some(AttributeId(2));
        assert_eq!(Feedback::from_parallel(a, a), Feedback::Positive);
        assert_eq!(Feedback::from_parallel(a, b), Feedback::Negative);
        assert_eq!(Feedback::from_parallel(a, None), Feedback::Neutral);
        assert_eq!(Feedback::from_parallel(None, None), Feedback::Neutral);
    }

    #[test]
    fn informativeness() {
        assert!(Feedback::Positive.is_informative());
        assert!(Feedback::Negative.is_informative());
        assert!(!Feedback::Neutral.is_informative());
        assert!(Feedback::Positive.is_positive());
        assert!(!Feedback::Negative.is_positive());
    }

    #[test]
    fn observation_reports_mapping_count() {
        let obs = FeedbackObservation {
            evidence: 0,
            origin_attribute: AttributeId(0),
            feedback: Feedback::Positive,
            steps: vec![
                (MappingId(0), AttributeId(0)),
                (MappingId(1), AttributeId(4)),
                (MappingId(2), AttributeId(7)),
            ],
            dropped_by: None,
        };
        assert_eq!(obs.mapping_count(), 3);
        assert_eq!(
            obs.mappings().collect::<Vec<_>>(),
            vec![MappingId(0), MappingId(1), MappingId(2)]
        );
    }
}

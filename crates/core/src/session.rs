//! Incremental engine sessions: builder-constructed, delta-driven, batch-routing.
//!
//! [`crate::engine::Engine::run`] recomputes everything — cycle enumeration, model
//! construction, inference from cold — on every call, which cannot scale to evolving
//! networks where each epoch changes a handful of mappings out of thousands. An
//! [`EngineSession`] is the incremental counterpart:
//!
//! * **built once** from a catalog via the builder
//!   (`Engine::builder().granularity(..).backend(..).build(catalog)`), running the
//!   full pipeline a single time;
//! * **updated by deltas**: [`EngineSession::apply`] consumes
//!   [`NetworkEvent`]s (peer/mapping additions, removals, corruptions, repairs — the
//!   Section 4.4 dynamics) and invalidates only the cycles and parallel paths that
//!   touch the changed mappings. Additions search just the paths through the new
//!   edge, removals drop just the paths through the dead edge, correspondence edits
//!   re-observe just the paths through the edited mapping — everything else is
//!   reused verbatim;
//! * **warm-started**: iterative backends restart message passing from the previous
//!   posteriors ([`crate::embedded::EmbeddedMessagePassing::warm_start`]), so
//!   inference after a local change takes a fraction of the cold-start rounds;
//! * **batch-routing**: [`EngineSession::route_all`] answers a whole query workload
//!   against one cached posterior snapshot instead of rebuilding the posterior table
//!   per query.
//!
//! The session always reaches the same posteriors as a from-scratch engine run on the
//! mutated catalog (exactly for one-shot backends, to convergence tolerance for
//! iterative ones) — `tests/session_incremental.rs` asserts this round trip.

use crate::backend::{backend_for_method, InferenceBackend, InferenceTask};
use crate::cycle_analysis::{build_topology, AnalysisConfig, AnalysisDelta, CycleAnalysis};
use crate::delta::estimate_delta_for_catalog;
use crate::dynamics::{apply_event_traced, EventEffect, NetworkEvent};
use crate::embedded::EmbeddedConfig;
use crate::engine::{EngineConfig, InferenceMethod};
use crate::local_graph::{Granularity, MappingModel, VariableKey};
use crate::metrics::{precision_recall, EvaluationReport};
use crate::posterior::PosteriorTable;
use crate::priors::PriorStore;
use crate::routing::{route_query, RoutingOutcome, RoutingPolicy};
use pdms_graph::{DiGraph, EdgeId, NodeId};
use pdms_schema::{Catalog, PeerId, Query};
use std::collections::BTreeMap;
use std::sync::Arc;

/// Builder for [`EngineSession`]s (obtained from [`crate::engine::Engine::builder`]).
#[derive(Debug, Clone, Default)]
pub struct EngineBuilder {
    analysis: AnalysisConfig,
    granularity: Granularity,
    delta: Option<f64>,
    embedded: EmbeddedConfig,
    backend: Option<Arc<dyn InferenceBackend>>,
    method: Option<InferenceMethod>,
    priors: Option<PriorStore>,
}

impl EngineBuilder {
    /// A builder with the paper's defaults (fine granularity, embedded backend,
    /// estimated Δ, maximum-entropy priors).
    pub fn new() -> Self {
        Self::default()
    }

    /// Imports an existing [`EngineConfig`] (the migration path from the deprecated
    /// batch configuration; see `MIGRATION.md`).
    ///
    /// Only an explicit `config.backend` trait object is carried over as-is; the
    /// `method` + `embedded` pair is re-resolved at [`EngineBuilder::build`] time, so
    /// further builder calls (`.embedded(..)`, `.method(..)`) compose the same way
    /// they do on a fresh builder.
    pub fn from_config(config: EngineConfig) -> Self {
        Self {
            analysis: config.analysis,
            granularity: config.granularity,
            delta: config.delta,
            embedded: config.embedded,
            backend: config.backend,
            method: Some(config.method),
            priors: None,
        }
    }

    /// Sets the cycle / parallel-path discovery bounds.
    pub fn analysis(mut self, analysis: AnalysisConfig) -> Self {
        self.analysis = analysis;
        self
    }

    /// Sets the worker count for full evidence enumerations (`0` = auto via
    /// `PDMS_PARALLELISM` / available cores, `1` = serial). Shorthand for setting
    /// [`AnalysisConfig::parallelism`]; results are identical at every setting.
    pub fn parallelism(mut self, parallelism: usize) -> Self {
        self.analysis.parallelism = parallelism;
        self
    }

    /// Sets the first-hop degree at which an origin peer counts as *heavy* and its
    /// enumeration DFS is split into work-stealing subtasks (`0` = auto via
    /// `PDMS_HEAVY_ORIGIN_THRESHOLD`, else the built-in default). Shorthand for
    /// [`AnalysisConfig::heavy_origin_threshold`]. Scheduling only — evidence ids
    /// are identical at every setting.
    pub fn heavy_origin_threshold(mut self, threshold: usize) -> Self {
        self.analysis.heavy_origin_threshold = threshold;
        self
    }

    /// Sets how many first-hop edges each stolen subtask of a heavy origin covers
    /// (`0` = auto via `PDMS_STEAL_GRANULARITY`, else the built-in default).
    /// Shorthand for [`AnalysisConfig::steal_granularity`]. Scheduling only —
    /// evidence ids are identical at every setting.
    ///
    /// ```
    /// use pdms_core::Engine;
    ///
    /// let catalog = {
    ///     let mut c = pdms_schema::Catalog::new();
    ///     let a = c.add_peer_with_schema("a", |s| { s.attributes(["x"]); });
    ///     let b = c.add_peer_with_schema("b", |s| { s.attributes(["x"]); });
    ///     use pdms_schema::AttributeId;
    ///     c.add_mapping(a, b, |m| m.correct(AttributeId(0), AttributeId(0)));
    ///     c.add_mapping(b, a, |m| m.correct(AttributeId(0), AttributeId(0)));
    ///     c
    /// };
    /// // Hub-splitting knobs never change the evidence — only how it is scheduled.
    /// let fine = Engine::builder()
    ///     .parallelism(4)
    ///     .heavy_origin_threshold(1)
    ///     .steal_granularity(1)
    ///     .build(catalog.clone());
    /// let serial = Engine::builder().parallelism(1).build(catalog);
    /// assert_eq!(fine.analysis().evidences.len(), serial.analysis().evidences.len());
    /// ```
    pub fn steal_granularity(mut self, granularity: usize) -> Self {
        self.analysis.steal_granularity = granularity;
        self
    }

    /// Sets the worker count a [`crate::sharding::ShardedSession`] dispatches its
    /// component shards over (`0` = auto via `PDMS_SHARD_PARALLELISM` / available
    /// cores, `1` = serial). Shorthand for [`AnalysisConfig::shard_parallelism`];
    /// scheduling only, posteriors are identical at every setting. Ignored by
    /// [`EngineBuilder::build`].
    pub fn shard_parallelism(mut self, workers: usize) -> Self {
        self.analysis.shard_parallelism = workers;
        self
    }

    /// Sets the ingestion batch size of a [`crate::sharding::ShardedSession`]
    /// (`0` = auto via `PDMS_BATCH_SIZE`, else one batch per submitted slice).
    /// Shorthand for [`AnalysisConfig::batch_size`]. Ignored by
    /// [`EngineBuilder::build`].
    pub fn batch_size(mut self, events: usize) -> Self {
        self.analysis.batch_size = events;
        self
    }

    /// Pins the warm shard-splice path of a [`crate::sharding::ShardedSession`] on
    /// or off (unset = auto via `PDMS_SPLICE`, default on). Shorthand for
    /// [`AnalysisConfig::splice`]; results are identical either way — disabling it
    /// falls back to cold shard rebuilds on component merges and splits. Ignored
    /// by [`EngineBuilder::build`].
    pub fn splice(mut self, enabled: bool) -> Self {
        self.analysis.splice = Some(enabled);
        self
    }

    /// Sets the variable granularity (Section 4.1).
    pub fn granularity(mut self, granularity: Granularity) -> Self {
        self.granularity = granularity;
        self
    }

    /// Pins the compensating-error probability Δ (Section 4.5); unset, Δ is estimated
    /// from the catalog's schema sizes.
    pub fn delta(mut self, delta: f64) -> Self {
        self.delta = Some(delta);
        self
    }

    /// Sets the inference backend.
    pub fn backend(mut self, backend: impl InferenceBackend + 'static) -> Self {
        self.backend = Some(Arc::new(backend));
        self
    }

    /// Sets an already-shared inference backend.
    pub fn backend_arc(mut self, backend: Arc<dyn InferenceBackend>) -> Self {
        self.backend = Some(backend);
        self
    }

    /// Selects a built-in backend by the deprecated [`InferenceMethod`] name.
    ///
    /// The backend is resolved at [`EngineBuilder::build`] time, so `.method(..)`
    /// and `.embedded(..)` compose in either order (an explicit `.backend(..)` /
    /// `.backend_arc(..)` always wins over `method`).
    pub fn method(mut self, method: InferenceMethod) -> Self {
        self.method = Some(method);
        self
    }

    /// Sets the embedded message-passing parameters consumed by the default
    /// [`crate::backend::EmbeddedBackend`] (ignored once an explicit backend is set).
    pub fn embedded(mut self, embedded: EmbeddedConfig) -> Self {
        self.embedded = embedded;
        self
    }

    /// Starts from an explicit prior store (e.g. default prior 0.7 for mappings from
    /// an aligner of known quality, or pinned expert-validated mappings).
    pub fn priors(mut self, priors: PriorStore) -> Self {
        self.priors = Some(priors);
        self
    }

    /// Builds the session: runs the full pipeline once over `catalog` and caches
    /// analysis, model and posteriors for incremental maintenance.
    pub fn build(self, catalog: Catalog) -> EngineSession {
        let backend = self
            .backend
            .unwrap_or_else(|| backend_for_method(self.method.unwrap_or_default(), &self.embedded));
        let mut session = EngineSession {
            catalog,
            analysis_config: self.analysis,
            granularity: self.granularity,
            delta_override: self.delta,
            backend,
            priors: self.priors.unwrap_or_default(),
            topology: DiGraph::default(),
            analysis: CycleAnalysis::default(),
            model: MappingModel::default(),
            variable_posteriors: BTreeMap::new(),
            posteriors: PosteriorTable::new(0.5),
            rounds: 0,
            converged: true,
            stats: SessionStats::default(),
        };
        session.rebuild_from_scratch();
        session
    }

    /// Builds a component-sharded session instead: the catalog is partitioned into
    /// weakly-connected-component shards, each running its own incremental
    /// [`EngineSession`], dispatched in parallel over
    /// [`AnalysisConfig::shard_parallelism`] workers. Exact by construction —
    /// evidence paths never cross component boundaries. See
    /// [`crate::sharding::ShardedSession`].
    pub fn build_sharded(self, catalog: Catalog) -> crate::sharding::ShardedSession {
        crate::sharding::ShardedSession::build(self, catalog)
    }

    /// The accumulated analysis configuration (consumed by
    /// [`crate::sharding::ShardedSession::build`]).
    pub(crate) fn into_parts(self) -> ShardSeedParts {
        let backend = self
            .backend
            .clone()
            .unwrap_or_else(|| backend_for_method(self.method.unwrap_or_default(), &self.embedded));
        ShardSeedParts {
            analysis: self.analysis,
            granularity: self.granularity,
            delta: self.delta,
            backend,
            priors: self.priors.unwrap_or_default(),
        }
    }
}

/// The builder state a [`crate::sharding::ShardedSession`] needs to construct and
/// re-construct per-shard sessions.
pub(crate) struct ShardSeedParts {
    pub(crate) analysis: AnalysisConfig,
    pub(crate) granularity: Granularity,
    pub(crate) delta: Option<f64>,
    pub(crate) backend: Arc<dyn InferenceBackend>,
    pub(crate) priors: PriorStore,
}

/// Everything a shard splice (see `crate::sharding`) assembles *before* inference:
/// the merged sub-catalog, its live topology mirror, the spliced evidence analysis,
/// and the donors' converged posteriors keyed by the new shard-local variables.
/// [`EngineSession::from_spliced_parts`] turns this into a running session without
/// ever paying the full enumeration pipeline.
pub(crate) struct SplicedParts {
    pub(crate) catalog: Catalog,
    pub(crate) topology: DiGraph,
    pub(crate) analysis: CycleAnalysis,
    /// Warm-start posteriors for the variables untouched by the splice (donor
    /// variables not on a bridging or edited mapping). Variables absent here
    /// restart from the unit message, exactly like [`EngineSession::apply`] treats
    /// added or edited mappings.
    pub(crate) warm: BTreeMap<VariableKey, f64>,
}

/// Scans a batch for additions that a later event of the *same* batch withdraws
/// again — either an explicit [`NetworkEvent::RemoveMapping`] naming the id the
/// addition will receive (ids are allocated sequentially from
/// [`Catalog::mapping_slot_count`], so batch authors can know them), or a
/// [`NetworkEvent::RemovePeer`] covering one of its endpoints. Such pairs are
/// *coalesced*: the slot is allocated and tombstoned for id stability, but evidence
/// discovery is skipped on both sides.
pub(crate) fn doomed_additions(
    catalog: &Catalog,
    events: &[NetworkEvent],
) -> std::collections::BTreeSet<pdms_schema::MappingId> {
    use std::collections::{BTreeMap, BTreeSet};
    let mut next = catalog.mapping_slot_count();
    let mut pending: BTreeMap<pdms_schema::MappingId, (PeerId, PeerId)> = BTreeMap::new();
    let mut doomed = BTreeSet::new();
    for event in events {
        match event {
            NetworkEvent::AddMapping {
                source,
                target,
                correspondences,
            } if !correspondences.is_empty() => {
                pending.insert(pdms_schema::MappingId(next), (*source, *target));
                next += 1;
            }
            NetworkEvent::RemoveMapping { mapping } if pending.remove(mapping).is_some() => {
                doomed.insert(*mapping);
            }
            NetworkEvent::RemovePeer { peer } => {
                let dead: Vec<pdms_schema::MappingId> = pending
                    .iter()
                    .filter(|(_, (source, target))| source == peer || target == peer)
                    .map(|(mapping, _)| *mapping)
                    .collect();
                for mapping in dead {
                    pending.remove(&mapping);
                    doomed.insert(mapping);
                }
            }
            _ => {}
        }
    }
    doomed
}

/// What one [`EngineSession::apply`] call did.
#[derive(Debug, Clone, Copy, Default)]
pub struct ApplyReport {
    /// Events that actually changed the catalog.
    pub events_applied: usize,
    /// Events that were no-ops (repair without ground truth, drop of a missing
    /// correspondence, removal of a removed mapping, empty mapping).
    pub events_ignored: usize,
    /// Mappings that were added *and* removed within this same batch. Their
    /// catalog/topology slots are still allocated (and tombstoned) so identifiers
    /// line up with per-event application, but evidence discovery and removal were
    /// skipped entirely — the batch-coalescing rule (see `docs/SHARDING.md`).
    pub mappings_coalesced: usize,
    /// What the incremental analysis maintenance did.
    pub analysis: AnalysisDelta,
    /// Rounds the (warm-started) inference used after the update — 0 when the batch
    /// touched no evidence and inference was skipped entirely.
    pub rounds: usize,
    /// Whether inference converged after the update.
    pub converged: bool,
}

/// Cumulative maintenance statistics of a session.
#[derive(Debug, Clone, Copy, Default)]
pub struct SessionStats {
    /// Full from-scratch pipeline runs (1 after `build`).
    pub full_builds: usize,
    /// Incremental `apply` calls.
    pub incremental_applies: usize,
    /// Inference rounds summed over the session's lifetime.
    pub total_rounds: usize,
    /// Evidence paths discovered incrementally.
    pub evidences_added: usize,
    /// Evidence paths dropped incrementally.
    pub evidences_removed: usize,
    /// Evidence paths re-observed in place.
    pub evidences_reobserved: usize,
}

/// A stateful, incrementally maintained inference session over an evolving catalog.
#[derive(Debug, Clone)]
pub struct EngineSession {
    catalog: Catalog,
    analysis_config: AnalysisConfig,
    granularity: Granularity,
    delta_override: Option<f64>,
    backend: Arc<dyn InferenceBackend>,
    priors: PriorStore,
    /// Live mirror of the catalog's mapping network: one node per peer, one edge per
    /// mapping slot (edge ids == mapping ids, tombstones aligned). Maintained
    /// event-by-event so incremental evidence discovery never pays a
    /// [`build_topology`] rebuild.
    topology: DiGraph,
    analysis: CycleAnalysis,
    model: MappingModel,
    variable_posteriors: BTreeMap<VariableKey, f64>,
    posteriors: PosteriorTable,
    rounds: usize,
    converged: bool,
    stats: SessionStats,
}

impl EngineSession {
    /// Builds a session from pre-spliced parts: the analysis is taken as given (the
    /// splice already appended the evidence through the bridging mappings), so the
    /// only work left is one warm-started inference pass. The splice counterpart of
    /// [`EngineBuilder::build`]; `delta` is always pinned (shard sub-catalogs must
    /// not re-estimate it from their own schemas).
    pub(crate) fn from_spliced_parts(
        analysis_config: AnalysisConfig,
        granularity: Granularity,
        delta: f64,
        backend: Arc<dyn InferenceBackend>,
        priors: PriorStore,
        parts: SplicedParts,
    ) -> EngineSession {
        let mut session = EngineSession {
            catalog: parts.catalog,
            analysis_config,
            granularity,
            delta_override: Some(delta),
            backend,
            priors,
            topology: parts.topology,
            analysis: parts.analysis,
            model: MappingModel::default(),
            variable_posteriors: BTreeMap::new(),
            posteriors: PosteriorTable::new(0.5),
            rounds: 0,
            converged: true,
            stats: SessionStats::default(),
        };
        let warm = parts.warm;
        session.reinfer((!warm.is_empty()).then_some(&warm));
        session
    }

    /// The posterior of every model variable as of the most recent inference run —
    /// the warm state a shard splice carries into the merged shard.
    pub(crate) fn variable_posteriors(&self) -> &BTreeMap<VariableKey, f64> {
        &self.variable_posteriors
    }

    /// The catalog in its current (post-deltas) state.
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// The cached evidence analysis.
    pub fn analysis(&self) -> &CycleAnalysis {
        &self.analysis
    }

    /// The live topology mirror of the catalog (edge ids == mapping ids; tombstoned
    /// mappings are tombstoned edges). Maintained incrementally across
    /// [`EngineSession::apply`] calls.
    pub fn topology(&self) -> &DiGraph {
        &self.topology
    }

    /// The cached probabilistic model.
    pub fn model(&self) -> &MappingModel {
        &self.model
    }

    /// The cached posterior snapshot all routing and evaluation runs against.
    pub fn posteriors(&self) -> &PosteriorTable {
        &self.posteriors
    }

    /// The accumulated prior store.
    pub fn priors(&self) -> &PriorStore {
        &self.priors
    }

    /// Mutable prior access (e.g. to pin expert-validated mappings).
    pub fn priors_mut(&mut self) -> &mut PriorStore {
        &mut self.priors
    }

    /// Name of the inference backend in use.
    pub fn backend_name(&self) -> &'static str {
        self.backend.name()
    }

    /// Rounds the most recent inference run used.
    pub fn rounds(&self) -> usize {
        self.rounds
    }

    /// Whether the most recent inference run converged.
    pub fn converged(&self) -> bool {
        self.converged
    }

    /// Cumulative maintenance statistics.
    pub fn stats(&self) -> &SessionStats {
        &self.stats
    }

    /// Δ in effect: the pinned value or the schema-size estimate over the current
    /// catalog.
    pub fn delta(&self) -> f64 {
        self.delta_override
            .unwrap_or_else(|| estimate_delta_for_catalog(&self.catalog))
    }

    /// Applies a batch of network events, invalidating only the evidence touching
    /// the changed mappings, then re-runs inference warm-started from the previous
    /// posteriors.
    ///
    /// Add/remove pairs that cancel within the batch are *coalesced*: the mapping's
    /// id slot (and its tombstoned topology edge) is still allocated, so every
    /// identifier matches per-event application exactly, but no evidence is ever
    /// searched for or dropped through it. The final analysis, posterior and id
    /// state is identical to applying the events one at a time.
    pub fn apply(&mut self, events: &[NetworkEvent]) -> ApplyReport {
        // `analysis.evidences_reused` is recounted exactly at the end of the batch;
        // everything else accumulates through `AnalysisDelta::merge`.
        let mut report = ApplyReport::default();
        let doomed = doomed_additions(&self.catalog, events);
        // Events are processed strictly in order: each incremental analysis update
        // sees the catalog exactly as of its own event, so a batch adding two
        // mappings discovers a cycle using both exactly once (from the second edge).
        // Correspondence-level edits only mark their mapping: re-observation is
        // deferred and deduplicated, so a batch corrupting five attributes of one
        // mapping re-observes its evidence once, not five times.
        let mut edited: std::collections::BTreeSet<pdms_schema::MappingId> =
            std::collections::BTreeSet::new();
        let mut added: std::collections::BTreeSet<pdms_schema::MappingId> =
            std::collections::BTreeSet::new();
        for event in events {
            // `retired` is non-empty only for RemovePeer: the mappings its single
            // PeerRetired effect withdrew.
            match apply_event_traced(&mut self.catalog, event) {
                None => report.events_ignored += 1,
                Some((effect, retired)) => {
                    report.events_applied += 1;
                    match effect {
                        EventEffect::PeerAdded(_) => {
                            // Keep the topology mirror's node set aligned with the
                            // catalog's peer ids.
                            let node = self.topology.add_node();
                            debug_assert_eq!(node.0 + 1, self.catalog.peer_count());
                        }
                        EventEffect::MappingAdded(mapping) => {
                            let (source, target) = self.catalog.mapping_endpoints(mapping);
                            let edge = self.topology.add_edge(NodeId(source.0), NodeId(target.0));
                            debug_assert_eq!(edge.0, mapping.0, "mirror edge ids = mapping ids");
                            if doomed.contains(&mapping) {
                                // The same batch removes this mapping again: tombstone
                                // the mirror edge now so later in-batch searches never
                                // route evidence through it, and skip the discovery
                                // pass outright.
                                self.topology.remove_edge(edge);
                            } else {
                                let delta = self.analysis.add_mapping_incremental_in(
                                    &self.catalog,
                                    &self.topology,
                                    mapping,
                                    &self.analysis_config,
                                );
                                report.analysis.merge(delta);
                                added.insert(mapping);
                            }
                        }
                        EventEffect::MappingRemoved(mapping) => {
                            self.remove_one_mapping(
                                mapping,
                                &doomed,
                                &mut report,
                                &mut edited,
                                &mut added,
                            );
                        }
                        EventEffect::PeerRetired(_) => {
                            for mapping in retired {
                                self.remove_one_mapping(
                                    mapping,
                                    &doomed,
                                    &mut report,
                                    &mut edited,
                                    &mut added,
                                );
                            }
                        }
                        EventEffect::MappingChanged(mapping) => {
                            edited.insert(mapping);
                        }
                    }
                }
            }
        }
        if !edited.is_empty() {
            let edited_list: Vec<pdms_schema::MappingId> = edited.iter().copied().collect();
            let delta = self
                .analysis
                .reobserve_mappings(&self.catalog, &edited_list);
            report.analysis.merge(delta);
        }
        // Exact reuse count: the evidence paths still present that go through no
        // added or edited mapping were left completely untouched by this batch.
        // (The per-delta min-merge undercounts or overcounts when a batch mixes
        // additions with edits, because each delta measures against a different
        // evidence total.)
        report.analysis.evidences_reused = self
            .analysis
            .evidences
            .iter()
            .filter(|e| {
                !edited.iter().any(|m| e.contains(*m)) && !added.iter().any(|m| e.contains(*m))
            })
            .count();
        let analysis_changed = report.analysis.evidences_added > 0
            || report.analysis.evidences_removed > 0
            || report.analysis.evidences_reobserved > 0;
        // Events that applied but touched no evidence (an isolated AddPeer, a new
        // mapping on a peer with no return paths yet) leave the model — and thus the
        // posteriors — bit-identical, so inference is skipped entirely.
        if analysis_changed {
            // Warm-start only the variables of untouched mappings: their messages sit
            // at (or near) the fixpoint. Variables on changed or added mappings
            // restart from the unit message — seeding them with stale posteriors
            // would anchor the iteration at the pre-change fixpoint and slow
            // convergence down.
            let warm: BTreeMap<VariableKey, f64> = self
                .variable_posteriors
                .iter()
                .filter(|(key, _)| !edited.contains(&key.mapping) && !added.contains(&key.mapping))
                .map(|(key, p)| (*key, *p))
                .collect();
            self.reinfer(Some(&warm));
            report.rounds = self.rounds;
        }
        // When inference was skipped, rounds stays 0: no inference ran for this
        // update. `converged` always describes the posteriors currently served.
        report.converged = self.converged;
        self.stats.incremental_applies += 1;
        self.stats.evidences_added += report.analysis.evidences_added;
        self.stats.evidences_removed += report.analysis.evidences_removed;
        self.stats.evidences_reobserved += report.analysis.evidences_reobserved;
        report
    }

    /// Processes one mapping removal: drops the mirror edge and the evidence through
    /// the mapping — unless the mapping was added by this very batch (coalesced), in
    /// which case the edge is already tombstoned and no evidence ever existed.
    fn remove_one_mapping(
        &mut self,
        mapping: pdms_schema::MappingId,
        doomed: &std::collections::BTreeSet<pdms_schema::MappingId>,
        report: &mut ApplyReport,
        edited: &mut std::collections::BTreeSet<pdms_schema::MappingId>,
        added: &mut std::collections::BTreeSet<pdms_schema::MappingId>,
    ) {
        if doomed.contains(&mapping) {
            report.mappings_coalesced += 1;
        } else {
            self.topology.remove_edge(EdgeId(mapping.0));
            let delta = self.analysis.remove_mapping_incremental(mapping);
            report.analysis.merge(delta);
        }
        edited.remove(&mapping);
        added.remove(&mapping);
    }

    /// Folds the current posteriors back into the priors (the Section 4.4 update), so
    /// subsequent inference starts from the accumulated evidence.
    pub fn update_priors(&mut self) {
        let as_map = self.posteriors.as_variable_map(&self.model);
        self.priors.update_all(&as_map);
    }

    /// Routes one query from `origin` against the cached posterior snapshot.
    pub fn route(&self, origin: PeerId, query: &Query, policy: &RoutingPolicy) -> RoutingOutcome {
        route_query(&self.catalog, &self.posteriors, origin, query, policy)
    }

    /// Routes a whole workload of `(origin, query)` pairs against one cached
    /// posterior snapshot — the batch entry point that avoids any per-query posterior
    /// rebuild.
    pub fn route_all(
        &self,
        requests: &[(PeerId, Query)],
        policy: &RoutingPolicy,
    ) -> Vec<RoutingOutcome> {
        requests
            .iter()
            .map(|(origin, query)| {
                route_query(&self.catalog, &self.posteriors, *origin, query, policy)
            })
            .collect()
    }

    /// Evaluates erroneous-mapping detection at threshold θ against ground truth,
    /// using the cached posteriors.
    pub fn evaluate(&self, theta: f64) -> EvaluationReport {
        precision_recall(&self.catalog, &self.posteriors, theta)
    }

    /// Discards every cache and recomputes the full pipeline (the non-incremental
    /// path; also useful to bound warm-start drift in very long sessions).
    pub fn rebuild_from_scratch(&mut self) {
        self.topology = build_topology(&self.catalog);
        self.analysis = CycleAnalysis::analyze(&self.catalog, &self.analysis_config);
        self.reinfer(None);
        self.stats.full_builds += 1;
    }

    /// Rebuilds the model from the cached analysis and re-runs inference, optionally
    /// warm-starting iterative backends from the given previous posteriors.
    fn reinfer(&mut self, warm_start: Option<&BTreeMap<VariableKey, f64>>) {
        let delta = self.delta();
        self.model = MappingModel::build(&self.catalog, &self.analysis, self.granularity, delta);
        let prior_map = self.priors.snapshot();
        let default_prior = self.priors.default_prior();
        let warm_start = warm_start.filter(|map| !map.is_empty());
        let outcome = self.backend.infer(&InferenceTask {
            model: &self.model,
            analysis: &self.analysis,
            priors: &prior_map,
            default_prior,
            warm_start,
        });
        self.rounds = outcome.rounds;
        self.converged = outcome.converged;
        self.stats.total_rounds += outcome.rounds;
        self.variable_posteriors = self
            .model
            .variables
            .iter()
            .zip(&outcome.posteriors)
            .map(|(key, p)| (*key, *p))
            .collect();
        self.posteriors =
            PosteriorTable::from_model(&self.model, &outcome.posteriors, default_prior);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::ExactBackend;
    use crate::engine::Engine;
    use pdms_schema::{AttributeId, MappingId, Predicate};

    /// Four peers, ring plus chord, three attributes (small enough for exact).
    fn intro_catalog_small() -> Catalog {
        let mut cat = Catalog::new();
        let peers: Vec<PeerId> = (0..4)
            .map(|i| {
                cat.add_peer_with_schema(format!("p{}", i + 1), |s| {
                    s.attributes(["Creator", "Item", "CreatedOn"]);
                })
            })
            .collect();
        let correct = |m: pdms_schema::MappingBuilder| {
            m.correct(AttributeId(0), AttributeId(0))
                .correct(AttributeId(1), AttributeId(1))
                .correct(AttributeId(2), AttributeId(2))
        };
        cat.add_mapping(peers[0], peers[1], correct);
        cat.add_mapping(peers[1], peers[2], correct);
        cat.add_mapping(peers[2], peers[3], correct);
        cat.add_mapping(peers[3], peers[0], correct);
        cat.add_mapping(peers[1], peers[3], |m| {
            m.erroneous(AttributeId(0), AttributeId(2), AttributeId(0))
                .correct(AttributeId(1), AttributeId(1))
                .correct(AttributeId(2), AttributeId(2))
        });
        cat
    }

    fn exact_session() -> EngineSession {
        Engine::builder()
            .backend(ExactBackend)
            .delta(0.1)
            .build(intro_catalog_small())
    }

    #[test]
    fn builder_runs_the_full_pipeline_once() {
        let session = exact_session();
        assert_eq!(session.stats().full_builds, 1);
        assert_eq!(session.backend_name(), "exact");
        assert!(session.converged());
        assert!(session.posteriors().mapping_probability(MappingId(4)) < 0.5);
        assert!(session.posteriors().mapping_probability(MappingId(0)) > 0.5);
    }

    #[test]
    fn apply_reports_reuse_and_invalidation() {
        let mut session = exact_session();
        let evidences_before = session.analysis().evidences.len();
        // Corrupting the ring mapping m23 only re-observes the paths through it.
        let report = session.apply(&[NetworkEvent::Corrupt {
            mapping: MappingId(1),
            attribute: AttributeId(1),
            wrong_target: AttributeId(0),
        }]);
        assert_eq!(report.events_applied, 1);
        assert_eq!(report.analysis.evidences_removed, 0);
        assert_eq!(report.analysis.evidences_added, 0);
        assert!(report.analysis.evidences_reobserved > 0);
        assert!(report.analysis.evidences_reused < evidences_before);
        assert_eq!(session.analysis().evidences.len(), evidences_before);
        // The corruption is visible in the posterior snapshot.
        assert!(
            session
                .posteriors()
                .probability_ignoring_bottom(MappingId(1), AttributeId(1))
                < 0.5
        );
    }

    #[test]
    fn remove_mapping_drops_only_its_evidence() {
        let mut session = exact_session();
        let through_chord = session.analysis().evidences_through(MappingId(4)).len();
        assert!(through_chord > 0);
        let before = session.analysis().evidences.len();
        let report = session.apply(&[NetworkEvent::RemoveMapping {
            mapping: MappingId(4),
        }]);
        assert_eq!(report.analysis.evidences_removed, through_chord);
        assert_eq!(session.analysis().evidences.len(), before - through_chord);
        assert!(session
            .analysis()
            .evidences_through(MappingId(4))
            .is_empty());
        // Evidence ids stay dense and aligned with observations.
        for (i, evidence) in session.analysis().evidences.iter().enumerate() {
            assert_eq!(evidence.id, i);
        }
        for observation in &session.analysis().observations {
            assert!(observation.evidence < session.analysis().evidences.len());
        }
        // Removing it again is a no-op event.
        let report = session.apply(&[NetworkEvent::RemoveMapping {
            mapping: MappingId(4),
        }]);
        assert_eq!(report.events_applied, 0);
        assert_eq!(report.events_ignored, 1);
    }

    #[test]
    fn add_peer_then_mapping_grows_the_evidence() {
        let mut session = exact_session();
        let before = session.analysis().evidences.len();
        let report = session.apply(&[NetworkEvent::AddPeer {
            name: "p5".into(),
            attributes: vec!["Creator".into(), "Item".into(), "CreatedOn".into()],
        }]);
        assert_eq!(report.events_applied, 1);
        assert_eq!(report.analysis.evidences_added, 0);
        assert_eq!(session.catalog().peer_count(), 5);
        // Close a new cycle p4 -> p5 -> p1.
        let correspondences: Vec<_> = (0..3)
            .map(|a| (AttributeId(a), AttributeId(a), Some(AttributeId(a))))
            .collect();
        let report = session.apply(&[
            NetworkEvent::AddMapping {
                source: PeerId(3),
                target: PeerId(4),
                correspondences: correspondences.clone(),
            },
            NetworkEvent::AddMapping {
                source: PeerId(4),
                target: PeerId(0),
                correspondences,
            },
        ]);
        assert_eq!(report.events_applied, 2);
        assert!(report.analysis.evidences_added > 0);
        assert!(session.analysis().evidences.len() > before);
    }

    #[test]
    fn route_all_reuses_one_snapshot() {
        let session = exact_session();
        let query = Query::new()
            .project(AttributeId(0))
            .select(AttributeId(1), Predicate::Contains("river".into()));
        let requests: Vec<(PeerId, Query)> = (0..4).map(|p| (PeerId(p), query.clone())).collect();
        let outcomes = session.route_all(&requests, &RoutingPolicy::uniform(0.5));
        assert_eq!(outcomes.len(), 4);
        // Each batched outcome matches the per-query entry point.
        for ((origin, query), batched) in requests.iter().zip(&outcomes) {
            let single = session.route(*origin, query, &RoutingPolicy::uniform(0.5));
            assert_eq!(single.reached, batched.reached);
            assert_eq!(single.tainted, batched.tainted);
        }
        // Routing from p2 avoids the faulty chord.
        assert!(!outcomes[1]
            .decisions
            .iter()
            .any(|d| d.mapping == MappingId(4) && d.forwarded));
    }

    #[test]
    fn update_priors_accumulates_like_the_engine() {
        let mut session = exact_session();
        session.update_priors();
        let key = VariableKey {
            mapping: MappingId(4),
            attribute: Some(AttributeId(0)),
        };
        assert!(session.priors().prior(&key) < 0.5);
    }

    #[test]
    fn builder_from_config_carries_the_settings_over() {
        let config = EngineConfig {
            delta: Some(0.1),
            method: InferenceMethod::Exact,
            ..Default::default()
        };
        let session = EngineBuilder::from_config(config).build(intro_catalog_small());
        assert_eq!(session.backend_name(), "exact");
        assert_eq!(session.delta(), 0.1);

        // Builder calls after from_config still compose: an embedded cap set later
        // reaches the default backend (the method/embedded pair resolves at build).
        let capped = EngineBuilder::from_config(EngineConfig {
            delta: Some(0.1),
            ..Default::default()
        })
        .embedded(EmbeddedConfig {
            max_rounds: 2,
            record_history: false,
            ..Default::default()
        })
        .build(intro_catalog_small());
        assert_eq!(capped.rounds(), 2);
        assert!(!capped.converged());
    }

    #[test]
    fn builder_method_and_embedded_compose_in_either_order() {
        // Two rounds are not enough to converge on the intro network (the default
        // would run to ~12), so rounds() == 2 proves the embedded config reached the
        // backend regardless of whether .method() came before or after .embedded().
        let capped = EmbeddedConfig {
            max_rounds: 2,
            record_history: false,
            ..Default::default()
        };
        let method_first = Engine::builder()
            .method(InferenceMethod::Embedded)
            .embedded(capped.clone())
            .delta(0.1)
            .build(intro_catalog_small());
        let embedded_first = Engine::builder()
            .embedded(capped)
            .method(InferenceMethod::Embedded)
            .delta(0.1)
            .build(intro_catalog_small());
        assert_eq!(method_first.rounds(), 2);
        assert_eq!(embedded_first.rounds(), 2);
        assert!(!method_first.converged());
    }

    #[test]
    fn topology_mirror_tracks_the_catalog_through_churn() {
        use crate::cycle_analysis::build_topology;
        let mut session = exact_session();
        let assert_mirrors = |session: &EngineSession| {
            let rebuilt = build_topology(session.catalog());
            let mirror = session.topology();
            assert_eq!(mirror.node_count(), rebuilt.node_count());
            assert_eq!(mirror.edge_count(), rebuilt.edge_count());
            let mirror_edges: Vec<_> = mirror.edges().collect();
            let rebuilt_edges: Vec<_> = rebuilt.edges().collect();
            assert_eq!(mirror_edges, rebuilt_edges);
        };
        assert_mirrors(&session);
        session.apply(&[NetworkEvent::AddPeer {
            name: "p5".into(),
            attributes: vec!["Creator".into(), "Item".into(), "CreatedOn".into()],
        }]);
        assert_mirrors(&session);
        let correspondences: Vec<_> = (0..3)
            .map(|a| (AttributeId(a), AttributeId(a), Some(AttributeId(a))))
            .collect();
        session.apply(&[
            NetworkEvent::AddMapping {
                source: PeerId(3),
                target: PeerId(4),
                correspondences: correspondences.clone(),
            },
            NetworkEvent::AddMapping {
                source: PeerId(4),
                target: PeerId(0),
                correspondences,
            },
            NetworkEvent::RemoveMapping {
                mapping: MappingId(4),
            },
        ]);
        assert_mirrors(&session);
        // A full rebuild resynchronises from scratch and still matches.
        session.rebuild_from_scratch();
        assert_mirrors(&session);
    }

    #[test]
    fn parallelism_knob_does_not_change_the_session_result() {
        let serial = Engine::builder()
            .backend(ExactBackend)
            .delta(0.1)
            .parallelism(1)
            .build(intro_catalog_small());
        let threaded = Engine::builder()
            .backend(ExactBackend)
            .delta(0.1)
            .parallelism(4)
            .build(intro_catalog_small());
        assert_eq!(
            serial.analysis().evidences.len(),
            threaded.analysis().evidences.len()
        );
        for (a, b) in serial
            .analysis()
            .evidences
            .iter()
            .zip(&threaded.analysis().evidences)
        {
            assert_eq!(a, b, "evidence ids must not depend on the worker count");
        }
        for m in 0..5 {
            assert_eq!(
                serial.posteriors().mapping_probability(MappingId(m)),
                threaded.posteriors().mapping_probability(MappingId(m))
            );
        }
    }

    #[test]
    fn peer_only_batches_skip_reinference() {
        // Embedded backend: every inference run adds rounds to the total, so a
        // stable total proves the backend never ran.
        let mut session = Engine::builder().delta(0.1).build(intro_catalog_small());
        let rounds_before = session.stats().total_rounds;
        assert!(rounds_before > 0);
        let report = session.apply(&[NetworkEvent::AddPeer {
            name: "lurker".into(),
            attributes: vec!["Creator".into()],
        }]);
        assert_eq!(report.events_applied, 1);
        // No evidence changed, so inference was skipped entirely.
        assert_eq!(session.stats().total_rounds, rounds_before);
        assert_eq!(
            report.analysis.evidences_reused,
            session.analysis().evidences.len()
        );
    }
}

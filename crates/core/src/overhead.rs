//! Communication-overhead accounting for the message-passing schedules (Section 4.3).
//!
//! The paper bounds the cost of the periodic schedule at "a maximum of Σ_cᵢ (l_cᵢ − 1)
//! messages per peer every τ", where the sum ranges over the mapping cycles through the
//! peer and l_cᵢ is the cycle length; the lazy schedule eliminates that overhead
//! entirely by piggybacking on query traffic. This module computes both the paper's
//! per-peer bound and the tighter count our implementation actually needs (one message
//! per distinct remote peer per shared evidence factor), so the schedules can be
//! compared quantitatively (see the `overhead` harness binary).

use crate::cycle_analysis::CycleAnalysis;
use crate::local_graph::MappingModel;
use pdms_schema::{Catalog, PeerId};

/// Communication profile of one peer.
#[derive(Debug, Clone, PartialEq)]
pub struct PeerOverhead {
    /// The peer.
    pub peer: PeerId,
    /// Number of evidence paths (cycles or parallel paths) involving one of the peer's
    /// outgoing mappings.
    pub evidence_paths: usize,
    /// The paper's bound: Σ over those evidence paths of (length − 1).
    pub paper_bound_per_round: usize,
    /// Messages per round actually required by the embedded scheme: one per distinct
    /// remote peer sharing an evidence factor with this peer (deduplicated across
    /// factors — a single physical message can carry every belief destined to the same
    /// neighbour).
    pub distinct_remote_peers: usize,
}

/// Aggregate communication profile of a catalog under the different schedules.
#[derive(Debug, Clone, PartialEq)]
pub struct OverheadReport {
    /// Per-peer profiles, indexed by peer id.
    pub peers: Vec<PeerOverhead>,
    /// Σ of the paper bound over all peers (upper bound on messages per periodic round).
    pub total_paper_bound: usize,
    /// Σ of the deduplicated per-peer counts (messages per periodic round in this
    /// implementation).
    pub total_messages_per_round: usize,
    /// Extra messages per round of the lazy schedule (always zero: belief messages ride
    /// on query messages that are sent anyway).
    pub lazy_extra_messages: usize,
}

impl OverheadReport {
    /// Profile of one peer.
    pub fn peer(&self, peer: PeerId) -> &PeerOverhead {
        &self.peers[peer.0]
    }

    /// Mean messages per peer per round under the periodic schedule.
    pub fn mean_messages_per_peer(&self) -> f64 {
        if self.peers.is_empty() {
            0.0
        } else {
            self.total_messages_per_round as f64 / self.peers.len() as f64
        }
    }
}

/// Computes the communication profile of a catalog from its cycle analysis and the
/// probabilistic model built over it.
pub fn communication_overhead(
    catalog: &Catalog,
    analysis: &CycleAnalysis,
    model: &MappingModel,
) -> OverheadReport {
    let mut peers: Vec<PeerOverhead> = catalog
        .peers()
        .map(|peer| PeerOverhead {
            peer,
            evidence_paths: 0,
            paper_bound_per_round: 0,
            distinct_remote_peers: 0,
        })
        .collect();

    // The paper's bound, from the raw evidence paths.
    for evidence in &analysis.evidences {
        let mut involved: Vec<PeerId> = evidence
            .mappings
            .iter()
            .map(|m| catalog.mapping_endpoints(*m).0)
            .collect();
        involved.sort_unstable();
        involved.dedup();
        for peer in involved {
            peers[peer.0].evidence_paths += 1;
            peers[peer.0].paper_bound_per_round += evidence.len().saturating_sub(1);
        }
    }

    // The implementation's count, from the model: for each peer, the union of the other
    // owners across every evidence factor touching one of its variables.
    for peer in catalog.peers() {
        let mut remotes: Vec<PeerId> = Vec::new();
        for variable in model.variables_of(peer) {
            for evidence in model.evidences_of(variable) {
                for other in model.peers_of_evidence(evidence) {
                    if other != peer && !remotes.contains(&other) {
                        remotes.push(other);
                    }
                }
            }
        }
        peers[peer.0].distinct_remote_peers = remotes.len();
    }

    let total_paper_bound = peers.iter().map(|p| p.paper_bound_per_round).sum();
    let total_messages_per_round = peers.iter().map(|p| p.distinct_remote_peers).sum();
    OverheadReport {
        peers,
        total_paper_bound,
        total_messages_per_round,
        lazy_extra_messages: 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cycle_analysis::AnalysisConfig;
    use crate::local_graph::Granularity;
    use pdms_schema::AttributeId;

    /// A directed triangle: every peer sits on exactly one 3-cycle.
    fn triangle() -> Catalog {
        let mut cat = Catalog::new();
        let peers: Vec<PeerId> = (0..3)
            .map(|i| {
                cat.add_peer_with_schema(format!("p{i}"), |s| {
                    s.attributes(["x", "y", "z"]);
                })
            })
            .collect();
        for i in 0..3 {
            cat.add_mapping(peers[i], peers[(i + 1) % 3], |m| {
                m.correct(AttributeId(0), AttributeId(0))
            });
        }
        cat
    }

    fn analyse(cat: &Catalog) -> (CycleAnalysis, MappingModel) {
        let analysis = CycleAnalysis::analyze(cat, &AnalysisConfig::default());
        let model = MappingModel::build(cat, &analysis, Granularity::Fine, 0.1);
        (analysis, model)
    }

    #[test]
    fn triangle_matches_the_paper_formula() {
        let cat = triangle();
        let (analysis, model) = analyse(&cat);
        let report = communication_overhead(&cat, &analysis, &model);
        // One cycle of length 3 through every peer: bound = 3 − 1 = 2 per peer.
        for peer in &report.peers {
            assert_eq!(peer.evidence_paths, 1);
            assert_eq!(peer.paper_bound_per_round, 2);
            assert_eq!(peer.distinct_remote_peers, 2);
        }
        assert_eq!(report.total_paper_bound, 6);
        assert_eq!(report.total_messages_per_round, 6);
        assert_eq!(report.lazy_extra_messages, 0);
        assert!((report.mean_messages_per_peer() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn deduplication_makes_the_implementation_count_no_larger_than_the_bound() {
        // The intro-style network with overlapping cycles: the same neighbour appears in
        // several cycles, so the deduplicated count is strictly below the paper bound.
        let mut cat = Catalog::new();
        let peers: Vec<PeerId> = (0..4)
            .map(|i| {
                cat.add_peer_with_schema(format!("p{i}"), |s| {
                    s.attributes(["x"]);
                })
            })
            .collect();
        let correct = |m: pdms_schema::MappingBuilder| m.correct(AttributeId(0), AttributeId(0));
        cat.add_mapping(peers[0], peers[1], correct);
        cat.add_mapping(peers[1], peers[2], correct);
        cat.add_mapping(peers[2], peers[3], correct);
        cat.add_mapping(peers[3], peers[0], correct);
        cat.add_mapping(peers[1], peers[3], correct);
        let (analysis, model) = analyse(&cat);
        let report = communication_overhead(&cat, &analysis, &model);
        for peer in &report.peers {
            assert!(
                peer.distinct_remote_peers <= peer.paper_bound_per_round,
                "{:?}",
                peer
            );
        }
        assert!(report.total_messages_per_round < report.total_paper_bound);
        // Peer p1 sits on two cycles and one parallel path; it talks to every other peer.
        assert_eq!(report.peer(PeerId(1)).distinct_remote_peers, 3);
    }

    #[test]
    fn acyclic_catalogs_need_no_messages() {
        let mut cat = Catalog::new();
        let a = cat.add_peer_with_schema("a", |s| {
            s.attributes(["x"]);
        });
        let b = cat.add_peer_with_schema("b", |s| {
            s.attributes(["x"]);
        });
        cat.add_mapping(a, b, |m| m.correct(AttributeId(0), AttributeId(0)));
        let (analysis, model) = analyse(&cat);
        let report = communication_overhead(&cat, &analysis, &model);
        assert_eq!(report.total_paper_bound, 0);
        assert_eq!(report.total_messages_per_round, 0);
        assert_eq!(report.mean_messages_per_peer(), 0.0);
    }
}

//! Estimation of Δ, the probability of compensating mapping errors.
//!
//! When two or more mappings of a cycle are wrong, their errors can cancel out and the
//! cycle still returns the original attribute. The paper approximates this probability
//! from the schema size: if the schema contains `k` attributes and an erroneous mapping
//! sends an attribute to a uniformly random *wrong* attribute, the probability that the
//! last error undoes the previous ones is about `1/(k − 1)` — `1/10` for the eleven-
//! attribute schema of the worked example (Section 4.5).

/// Default Δ used when nothing is known about the schemas (matches the ten-attribute
/// schemas used throughout the paper's evaluation).
pub const DEFAULT_DELTA: f64 = 0.1;

/// Estimates Δ from the number of attributes of the schema the cycle returns to.
///
/// Schemas with one attribute (or zero) give no room for a *wrong* target, so the
/// estimate is clamped to 1.0 in that degenerate case and to `[0, 1]` in general.
pub fn estimate_delta(attribute_count: usize) -> f64 {
    if attribute_count <= 1 {
        1.0
    } else {
        (1.0 / (attribute_count as f64 - 1.0)).clamp(0.0, 1.0)
    }
}

/// Estimates Δ for a whole collection of schema sizes by averaging the per-schema
/// estimates — the pragmatic choice when a cycle spans schemas of different sizes.
pub fn estimate_delta_for_sizes(sizes: &[usize]) -> f64 {
    if sizes.is_empty() {
        return DEFAULT_DELTA;
    }
    sizes.iter().map(|s| estimate_delta(*s)).sum::<f64>() / sizes.len() as f64
}

/// Estimates Δ from the schema sizes of every peer of a catalog ([`DEFAULT_DELTA`]
/// for an empty catalog) — the shared fallback of the batch engine and the session
/// when no explicit Δ is configured.
pub fn estimate_delta_for_catalog(catalog: &pdms_schema::Catalog) -> f64 {
    let sizes: Vec<usize> = catalog
        .peers()
        .map(|p| catalog.peer_schema(p).attribute_count())
        .collect();
    if sizes.is_empty() {
        DEFAULT_DELTA
    } else {
        estimate_delta_for_sizes(&sizes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eleven_attributes_give_one_tenth() {
        // The worked example: "if we consider that the schema of p2 contains eleven
        // attributes … the probability of the last mapping error compensating any
        // previous error is 1/10".
        assert!((estimate_delta(11) - 0.1).abs() < 1e-12);
    }

    #[test]
    fn bigger_schemas_give_smaller_delta() {
        assert!(estimate_delta(101) < estimate_delta(11));
        assert!((estimate_delta(101) - 0.01).abs() < 1e-12);
    }

    #[test]
    fn degenerate_schemas_clamp_to_one() {
        assert_eq!(estimate_delta(0), 1.0);
        assert_eq!(estimate_delta(1), 1.0);
        assert_eq!(estimate_delta(2), 1.0);
    }

    #[test]
    fn averaging_over_sizes() {
        let d = estimate_delta_for_sizes(&[11, 11, 11]);
        assert!((d - 0.1).abs() < 1e-12);
        assert_eq!(estimate_delta_for_sizes(&[]), DEFAULT_DELTA);
    }
}

//! Embedded (decentralized) message passing — the algorithm of Section 4.3.
//!
//! Every peer stores the fraction of the factor graph that touches its outgoing
//! mappings (Figure 6): the mapping variables it owns, their prior factors, and a
//! replica of every feedback factor involving one of those mappings. The entries of a
//! replicated feedback factor that concern *other* peers' mappings ("virtual peers")
//! are filled by **remote messages**:
//!
//! ```text
//! local  message, factor fa_j → mapping m_i :
//!     µ_{fa_j→m_i}(m_i) = Σ_{~m_i} fa_j(X) · Π_{p_k ∈ n(fa_j)} µ_{p_k→fa_j}
//! local  message, mapping m_i → factor fa_j :
//!     µ_{m_i→fa_j}(m_i) = Π_{fa ∈ n(m_i)\{fa_j}} µ_{fa→m_i}(m_i)
//! remote message, peer p_0 → peer p_j, about factor fa_k :
//!     µ_{p_0→fa_k}(m_i) = Π_{fa ∈ n(m_i)\{fa_k}} µ_{fa→m_i}(m_i)
//! posterior:
//!     P(m_i | {F}) = α · Π_{fa ∈ n(m_i)} µ_{fa→m_i}(m_i)
//! ```
//!
//! Before the first real message arrives every peer assumes it has received the unit
//! message from everyone else, which is how the iteration bootstraps on cyclic graphs.
//! Remote messages may be lost (each send succeeds with probability `P(send)`); the
//! recipient simply keeps the last value it has, which is why the scheme tolerates
//! arbitrary message loss and merely converges more slowly (Section 5.1.3).
//!
//! This module simulates the exchange directly (one "round" = one iteration of the
//! periodic schedule); [`crate::schedules`] additionally runs the same state machine on
//! top of the lossy [`pdms_network`] simulator with explicit wire messages.

use crate::local_graph::{MappingModel, VariableKey};
use pdms_factor::feedback_factor::{feedback_message, FeedbackSign};
use pdms_factor::Belief;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeMap;

/// Configuration of the embedded message-passing run.
#[derive(Debug, Clone)]
pub struct EmbeddedConfig {
    /// Maximum number of rounds (periodic-schedule periods).
    pub max_rounds: usize,
    /// Convergence threshold on the largest posterior change between rounds.
    pub tolerance: f64,
    /// Probability that an individual remote message is delivered (Figure 11).
    pub send_probability: f64,
    /// RNG seed driving message loss.
    pub seed: u64,
    /// Record the posterior trajectory round by round.
    pub record_history: bool,
}

impl Default for EmbeddedConfig {
    fn default() -> Self {
        Self {
            max_rounds: 100,
            tolerance: 1e-4,
            send_probability: 1.0,
            seed: 11,
            record_history: true,
        }
    }
}

/// Result of an embedded message-passing run.
#[derive(Debug, Clone)]
pub struct EmbeddedReport {
    /// Posterior `P(correct)` per model variable.
    pub posteriors: Vec<f64>,
    /// Rounds executed.
    pub rounds: usize,
    /// Whether the tolerance was met before the round cap.
    pub converged: bool,
    /// Posterior trajectory (`history[round][variable]`), including round 0.
    pub history: Vec<Vec<f64>>,
    /// Remote messages successfully delivered.
    pub messages_delivered: u64,
    /// Remote messages lost.
    pub messages_dropped: u64,
}

impl EmbeddedReport {
    /// Posterior of a model variable by index.
    pub fn posterior(&self, variable: usize) -> f64 {
        self.posteriors[variable]
    }
}

/// The embedded message-passing state machine.
///
/// State is organised exactly as it would be distributed: for every feedback factor
/// and every variable position in it, the *owner of that variable* keeps its own copy
/// of the messages received from the owners of the other variables. Nothing is shared
/// between peers except through [`EmbeddedMessagePassing::round`]'s explicit (and
/// possibly lost) remote messages.
#[derive(Debug, Clone)]
pub struct EmbeddedMessagePassing<'m> {
    model: &'m MappingModel,
    priors: Vec<Belief>,
    /// `incoming[e][k][j]`: the message about variable `e.variables[j]` as currently
    /// known by the owner of `e.variables[k]` (unit before anything arrives).
    incoming: Vec<Vec<Vec<Belief>>>,
    /// `factor_to_var[e][k]`: the locally computed message from the replica of factor
    /// `e` to its variable at position `k`.
    factor_to_var: Vec<Vec<Belief>>,
    /// `evidences_of_var[v]`: every `(evidence, position)` where variable `v` appears
    /// (precomputed; the per-round loops and the posterior reads are on the hot path).
    evidences_of_var: Vec<Vec<(usize, usize)>>,
    /// `stale_factor[e][k]`: an input of the factor replica changed, so
    /// `factor_to_var[e][k]` must be recomputed next round. Change-driven
    /// recomputation keeps the per-round cost proportional to the part of the model
    /// still moving: converged regions (and warm-started regions under incremental
    /// updates) cost nothing.
    stale_factor: Vec<Vec<bool>>,
    /// `var_active[v]`: some factor→variable message into `v` changed last phase, so
    /// `v`'s outgoing remote messages must be recomputed (otherwise the cached value
    /// is provably identical).
    var_active: Vec<bool>,
    /// `last_remote[e][j]`: cached remote message `µ_{vars[j]→e}` from the previous
    /// round.
    last_remote: Vec<Vec<Belief>>,
    config: EmbeddedConfig,
    rng: StdRng,
    messages_delivered: u64,
    messages_dropped: u64,
}

impl<'m> EmbeddedMessagePassing<'m> {
    /// Creates the state machine with per-variable priors.
    ///
    /// `priors` maps variable keys to prior probabilities; missing entries use
    /// `default_prior`.
    pub fn new(
        model: &'m MappingModel,
        priors: &BTreeMap<VariableKey, f64>,
        default_prior: f64,
        config: EmbeddedConfig,
    ) -> Self {
        let prior_beliefs = model
            .variables
            .iter()
            .map(|key| Belief::from_probability(priors.get(key).copied().unwrap_or(default_prior)))
            .collect();
        let incoming: Vec<Vec<Vec<Belief>>> = model
            .evidences
            .iter()
            .map(|e| vec![vec![Belief::unit(); e.variables.len()]; e.variables.len()])
            .collect();
        let factor_to_var: Vec<Vec<Belief>> = model
            .evidences
            .iter()
            .map(|e| vec![Belief::unit(); e.variables.len()])
            .collect();
        let mut evidences_of_var = vec![Vec::new(); model.variable_count()];
        for (e_idx, evidence) in model.evidences.iter().enumerate() {
            for (position, &variable) in evidence.variables.iter().enumerate() {
                evidences_of_var[variable].push((e_idx, position));
            }
        }
        let stale_factor = model
            .evidences
            .iter()
            .map(|e| vec![true; e.variables.len()])
            .collect();
        let last_remote = model
            .evidences
            .iter()
            .map(|e| vec![Belief::unit(); e.variables.len()])
            .collect();
        let var_active = vec![true; model.variable_count()];
        let rng = StdRng::seed_from_u64(config.seed);
        Self {
            model,
            priors: prior_beliefs,
            incoming,
            factor_to_var,
            evidences_of_var,
            stale_factor,
            var_active,
            last_remote,
            config,
            rng,
            messages_delivered: 0,
            messages_dropped: 0,
        }
    }

    /// Seeds the message state from the posteriors of a previous run (keyed by
    /// variable, so the previous model may differ structurally — only variables that
    /// still exist contribute).
    ///
    /// Every remote message about a surviving variable starts at the variable's last
    /// known posterior belief instead of the unit message. This is a pure
    /// initialization: the fixpoint of the iteration is unchanged (the same update
    /// equations are applied), but on a model that changed only locally most messages
    /// start where they previously converged, so far fewer rounds are needed — the
    /// warm-start half of incremental session maintenance.
    pub fn warm_start(&mut self, previous: &BTreeMap<VariableKey, f64>) {
        for (e_idx, evidence) in self.model.evidences.iter().enumerate() {
            for (j, &var_j) in evidence.variables.iter().enumerate() {
                let Some(&p) = previous.get(&self.model.variables[var_j]) else {
                    continue;
                };
                let message = Belief::from_probability(p.clamp(0.0, 1.0)).normalized();
                for k in 0..evidence.variables.len() {
                    self.incoming[e_idx][k][j] = message;
                    self.stale_factor[e_idx][k] = true;
                }
            }
        }
    }

    /// Posterior `P(correct)` of one model variable, from the owner's perspective.
    pub fn posterior(&self, variable: usize) -> f64 {
        let mut belief = self.priors[variable];
        for &(e, pos) in &self.evidences_of_var[variable] {
            belief *= self.factor_to_var[e][pos];
        }
        belief.probability_correct()
    }

    /// Posteriors of all variables.
    pub fn posteriors(&self) -> Vec<f64> {
        (0..self.model.variable_count())
            .map(|v| self.posterior(v))
            .collect()
    }

    /// The remote message `µ_{p→fa_e}(variable)`: the owner's current belief about its
    /// variable excluding what factor `e` itself contributed.
    fn remote_message(&self, variable: usize, excluding_evidence: usize) -> Belief {
        let mut belief = self.priors[variable];
        for &(e, pos) in &self.evidences_of_var[variable] {
            if e == excluding_evidence {
                continue;
            }
            belief *= self.factor_to_var[e][pos];
        }
        belief.normalized()
    }

    /// Runs one round of the periodic schedule. Returns the largest posterior change.
    ///
    /// Message recomputation is change-driven: a factor replica only re-evaluates a
    /// message when one of its inputs actually changed, and a variable only
    /// recomputes its outgoing remote messages when some factor message into it
    /// changed. Both are pure caching — unchanged inputs provably reproduce the
    /// previous output — so the numbers (and the loss-model RNG stream) are
    /// bit-identical to the naive schedule, but the per-round cost shrinks to the
    /// part of the model still in motion: converged and warm-started regions are
    /// free.
    pub fn round(&mut self) -> f64 {
        let before = self.posteriors();
        // Phase 1: every owner recomputes the local factor→variable messages of its
        // replicas whose received inputs changed.
        let mut var_activated = vec![false; self.model.variable_count()];
        for (e_idx, evidence) in self.model.evidences.iter().enumerate() {
            let sign = FeedbackSign::from_positive(evidence.positive);
            for k in 0..evidence.variables.len() {
                if !self.stale_factor[e_idx][k] {
                    continue;
                }
                self.stale_factor[e_idx][k] = false;
                // The replica held by the owner of position k: incoming messages for
                // the other positions are whatever that owner has received; its own
                // position's entry is its current local belief (it owns the variable).
                let mut inputs = self.incoming[e_idx][k].clone();
                inputs[k] = Belief::unit(); // ignored by message computation
                let message = feedback_message(sign, evidence.delta, k, &inputs).normalized();
                if message != self.factor_to_var[e_idx][k] {
                    self.factor_to_var[e_idx][k] = message;
                    var_activated[evidence.variables[k]] = true;
                }
            }
        }
        for (variable, activated) in var_activated.into_iter().enumerate() {
            if activated {
                self.var_active[variable] = true;
            }
        }
        // Phase 2: every owner sends its remote messages; each individual message may
        // be lost, in which case the recipient keeps the stale value.
        for (e_idx, evidence) in self.model.evidences.iter().enumerate() {
            for (j, &var_j) in evidence.variables.iter().enumerate() {
                let message = if self.var_active[var_j] {
                    let message = self.remote_message(var_j, e_idx);
                    self.last_remote[e_idx][j] = message;
                    message
                } else {
                    self.last_remote[e_idx][j]
                };
                for k in 0..evidence.variables.len() {
                    if k == j {
                        // The owner always knows its own variable's message (only the
                        // other positions' entries feed its replica's computation).
                        self.incoming[e_idx][k][j] = message;
                        continue;
                    }
                    let delivered = self.config.send_probability >= 1.0
                        || self
                            .rng
                            .gen_bool(self.config.send_probability.clamp(0.0, 1.0));
                    if delivered {
                        if self.incoming[e_idx][k][j] != message {
                            self.incoming[e_idx][k][j] = message;
                            self.stale_factor[e_idx][k] = true;
                        }
                        self.messages_delivered += 1;
                    } else {
                        self.messages_dropped += 1;
                    }
                }
            }
        }
        for active in &mut self.var_active {
            *active = false;
        }
        let after = self.posteriors();
        before
            .iter()
            .zip(&after)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f64::max)
    }

    /// Runs rounds until convergence or the cap, returning the report.
    pub fn run(&mut self) -> EmbeddedReport {
        let mut history = Vec::new();
        if self.config.record_history {
            history.push(self.posteriors());
        }
        let mut converged = false;
        let mut rounds = 0;
        for _ in 0..self.config.max_rounds {
            let delta = self.round();
            rounds += 1;
            if self.config.record_history {
                history.push(self.posteriors());
            }
            if delta < self.config.tolerance {
                converged = true;
                break;
            }
        }
        EmbeddedReport {
            posteriors: self.posteriors(),
            rounds,
            converged,
            history,
            messages_delivered: self.messages_delivered,
            messages_dropped: self.messages_dropped,
        }
    }

    /// Remote messages each peer sends per round, summed over all peers — the paper's
    /// `Σ_ci (l_ci − 1)` communication-overhead bound for the periodic schedule.
    pub fn messages_per_round(&self) -> usize {
        self.model
            .evidences
            .iter()
            .map(|e| e.variables.len() * (e.variables.len() - 1))
            .sum()
    }
}

/// Convenience: build the state machine, run it, return the report.
pub fn run_embedded(
    model: &MappingModel,
    priors: &BTreeMap<VariableKey, f64>,
    default_prior: f64,
    config: EmbeddedConfig,
) -> EmbeddedReport {
    EmbeddedMessagePassing::new(model, priors, default_prior, config).run()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cycle_analysis::{AnalysisConfig, CycleAnalysis};
    use crate::local_graph::Granularity;
    use pdms_factor::{exact_marginals, run_sum_product, SumProductConfig};
    use pdms_schema::{AttributeId, Catalog, PeerId};

    /// The paper's example network (Figure 5 without m21): four peers, five mappings,
    /// m24 erroneously maps attribute 0.
    fn example_catalog() -> Catalog {
        let mut cat = Catalog::new();
        let peers: Vec<PeerId> = (0..4)
            .map(|i| {
                cat.add_peer_with_schema(format!("p{}", i + 1), |s| {
                    s.attributes(["Creator", "Title", "Date"]);
                })
            })
            .collect();
        let correct = |m: pdms_schema::MappingBuilder| {
            m.correct(AttributeId(0), AttributeId(0))
                .correct(AttributeId(1), AttributeId(1))
                .correct(AttributeId(2), AttributeId(2))
        };
        cat.add_mapping(peers[0], peers[1], correct); // m12
        cat.add_mapping(peers[1], peers[2], correct); // m23
        cat.add_mapping(peers[2], peers[3], correct); // m34
        cat.add_mapping(peers[3], peers[0], correct); // m41
        cat.add_mapping(peers[1], peers[3], |m| {
            // m24: Creator is misrouted to Date.
            m.erroneous(AttributeId(0), AttributeId(2), AttributeId(0))
                .correct(AttributeId(1), AttributeId(1))
                .correct(AttributeId(2), AttributeId(2))
        });
        cat
    }

    fn example_model(cat: &Catalog) -> MappingModel {
        let analysis = CycleAnalysis::analyze(cat, &AnalysisConfig::default());
        MappingModel::build(cat, &analysis, Granularity::Fine, 0.1)
    }

    #[test]
    fn embedded_matches_centralized_loopy_bp() {
        // The embedded scheme with a perfect network must converge to the same fixpoint
        // as running loopy BP on the global factor graph.
        let cat = example_catalog();
        let model = example_model(&cat);
        let priors = BTreeMap::new();
        let embedded = run_embedded(&model, &priors, 0.6, EmbeddedConfig::default());
        assert!(embedded.converged);
        let graph = model.global_factor_graph(&priors, 0.6);
        let central = run_sum_product(&graph, SumProductConfig::default());
        for (i, key) in model.variables.iter().enumerate() {
            let v = graph.variable_by_name(&key.name()).unwrap();
            assert!(
                (embedded.posterior(i) - central.posterior(v)).abs() < 1e-3,
                "{}: embedded {} vs central {}",
                key.name(),
                embedded.posterior(i),
                central.posterior(v)
            );
        }
    }

    #[test]
    fn faulty_mapping_attribute_gets_low_posterior() {
        let cat = example_catalog();
        let model = example_model(&cat);
        let report = run_embedded(&model, &BTreeMap::new(), 0.5, EmbeddedConfig::default());
        // Variable (m24, Creator) must end below 0.5; correct mappings' Creator
        // variables must end above 0.5.
        let m24_creator = model
            .variable_index(&VariableKey {
                mapping: pdms_schema::MappingId(4),
                attribute: Some(AttributeId(0)),
            })
            .expect("variable exists");
        assert!(report.posterior(m24_creator) < 0.5);
        for (i, key) in model.variables.iter().enumerate() {
            if key.attribute == Some(AttributeId(0)) && i != m24_creator {
                assert!(
                    report.posterior(i) > 0.5,
                    "{} should look correct, got {}",
                    key.name(),
                    report.posterior(i)
                );
            }
        }
    }

    #[test]
    fn worked_example_numbers_are_close_to_the_paper() {
        // Section 4.5: with no prior information (priors 0.5) and Δ = 1/10 the
        // posteriors converge to ≈0.59 for the correct mapping out of p2 and ≈0.3 for
        // the faulty one. Exact inference on our model of the same situation gives
        // 0.59 / 0.31; the embedded estimate must land in the same region.
        let cat = example_catalog();
        let model = example_model(&cat);
        let report = run_embedded(&model, &BTreeMap::new(), 0.5, EmbeddedConfig::default());
        let m23_creator = model
            .variable_index(&VariableKey {
                mapping: pdms_schema::MappingId(1),
                attribute: Some(AttributeId(0)),
            })
            .unwrap();
        let m24_creator = model
            .variable_index(&VariableKey {
                mapping: pdms_schema::MappingId(4),
                attribute: Some(AttributeId(0)),
            })
            .unwrap();
        let p23 = report.posterior(m23_creator);
        let p24 = report.posterior(m24_creator);
        assert!((0.50..=0.70).contains(&p23), "m23 Creator posterior {p23}");
        assert!((0.15..=0.40).contains(&p24), "m24 Creator posterior {p24}");
    }

    #[test]
    fn embedded_tracks_exact_inference_closely() {
        let cat = example_catalog();
        let model = example_model(&cat);
        let priors = BTreeMap::new();
        let report = run_embedded(&model, &priors, 0.5, EmbeddedConfig::default());
        let graph = model.global_factor_graph(&priors, 0.5);
        let exact = exact_marginals(&graph);
        for (i, key) in model.variables.iter().enumerate() {
            let v = graph.variable_by_name(&key.name()).unwrap();
            assert!(
                (report.posterior(i) - exact[v.0]).abs() < 0.06,
                "{}: embedded {} vs exact {}",
                key.name(),
                report.posterior(i),
                exact[v.0]
            );
        }
    }

    #[test]
    fn message_loss_slows_but_does_not_break_convergence() {
        let cat = example_catalog();
        let model = example_model(&cat);
        let reliable = run_embedded(&model, &BTreeMap::new(), 0.8, EmbeddedConfig::default());
        let lossy = run_embedded(
            &model,
            &BTreeMap::new(),
            0.8,
            EmbeddedConfig {
                send_probability: 0.3,
                max_rounds: 2000,
                seed: 5,
                ..Default::default()
            },
        );
        assert!(reliable.converged && lossy.converged);
        assert!(
            lossy.rounds >= reliable.rounds,
            "{} < {}",
            lossy.rounds,
            reliable.rounds
        );
        assert!(lossy.messages_dropped > 0);
        for i in 0..model.variable_count() {
            assert!(
                (reliable.posterior(i) - lossy.posterior(i)).abs() < 2e-2,
                "variable {i}: {} vs {}",
                reliable.posterior(i),
                lossy.posterior(i)
            );
        }
    }

    #[test]
    fn history_and_message_accounting_are_consistent() {
        let cat = example_catalog();
        let model = example_model(&cat);
        let report = run_embedded(&model, &BTreeMap::new(), 0.7, EmbeddedConfig::default());
        assert_eq!(report.history.len(), report.rounds + 1);
        assert_eq!(report.messages_dropped, 0);
        let per_round =
            EmbeddedMessagePassing::new(&model, &BTreeMap::new(), 0.7, EmbeddedConfig::default())
                .messages_per_round();
        assert_eq!(
            report.messages_delivered,
            (per_round * report.rounds) as u64
        );
    }
}

//! Embedded (decentralized) message passing — the algorithm of Section 4.3.
//!
//! Every peer stores the fraction of the factor graph that touches its outgoing
//! mappings (Figure 6): the mapping variables it owns, their prior factors, and a
//! replica of every feedback factor involving one of those mappings. The entries of a
//! replicated feedback factor that concern *other* peers' mappings ("virtual peers")
//! are filled by **remote messages**:
//!
//! ```text
//! local  message, factor fa_j → mapping m_i :
//!     µ_{fa_j→m_i}(m_i) = Σ_{~m_i} fa_j(X) · Π_{p_k ∈ n(fa_j)} µ_{p_k→fa_j}
//! local  message, mapping m_i → factor fa_j :
//!     µ_{m_i→fa_j}(m_i) = Π_{fa ∈ n(m_i)\{fa_j}} µ_{fa→m_i}(m_i)
//! remote message, peer p_0 → peer p_j, about factor fa_k :
//!     µ_{p_0→fa_k}(m_i) = Π_{fa ∈ n(m_i)\{fa_k}} µ_{fa→m_i}(m_i)
//! posterior:
//!     P(m_i | {F}) = α · Π_{fa ∈ n(m_i)} µ_{fa→m_i}(m_i)
//! ```
//!
//! Before the first real message arrives every peer assumes it has received the unit
//! message from everyone else, which is how the iteration bootstraps on cyclic graphs.
//! Remote messages may be lost (each send succeeds with probability `P(send)`); the
//! recipient simply keeps the last value it has, which is why the scheme tolerates
//! arbitrary message loss and merely converges more slowly (Section 5.1.3).
//!
//! This module simulates the exchange directly (one "round" = one iteration of the
//! periodic schedule); [`crate::schedules`] additionally runs the same state machine on
//! top of the lossy [`pdms_network`] simulator with explicit wire messages.

use crate::local_graph::{MappingModel, VariableKey};
use pdms_factor::feedback_factor::{feedback_message, FeedbackSign};
use pdms_factor::Belief;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeMap;

/// Configuration of the embedded message-passing run.
#[derive(Debug, Clone)]
pub struct EmbeddedConfig {
    /// Maximum number of rounds (periodic-schedule periods).
    pub max_rounds: usize,
    /// Convergence threshold on the largest posterior change between rounds.
    pub tolerance: f64,
    /// Probability that an individual remote message is delivered (Figure 11).
    pub send_probability: f64,
    /// RNG seed driving message loss.
    pub seed: u64,
    /// Record the posterior trajectory round by round.
    pub record_history: bool,
}

impl Default for EmbeddedConfig {
    fn default() -> Self {
        Self {
            max_rounds: 100,
            tolerance: 1e-4,
            send_probability: 1.0,
            seed: 11,
            record_history: true,
        }
    }
}

/// Result of an embedded message-passing run.
#[derive(Debug, Clone)]
pub struct EmbeddedReport {
    /// Posterior `P(correct)` per model variable.
    pub posteriors: Vec<f64>,
    /// Rounds executed.
    pub rounds: usize,
    /// Whether the tolerance was met before the round cap.
    pub converged: bool,
    /// Posterior trajectory (`history[round][variable]`), including round 0.
    pub history: Vec<Vec<f64>>,
    /// Remote messages successfully delivered.
    pub messages_delivered: u64,
    /// Remote messages lost.
    pub messages_dropped: u64,
}

impl EmbeddedReport {
    /// Posterior of a model variable by index.
    pub fn posterior(&self, variable: usize) -> f64 {
        self.posteriors[variable]
    }
}

/// The embedded message-passing state machine.
///
/// State is organised exactly as it would be distributed: for every feedback factor
/// and every variable position in it, the *owner of that variable* keeps its own copy
/// of the messages received from the owners of the other variables. Nothing is shared
/// between peers except through [`EmbeddedMessagePassing::round`]'s explicit (and
/// possibly lost) remote messages.
///
/// # Arena layout
///
/// All message state lives in flat, contiguous slabs addressed by two CSR-style
/// offset tables computed once at construction (the nested
/// `Vec<Vec<Vec<Belief>>>` layout this replaces is preserved bit-for-bit in
/// [`crate::embedded_baseline`]):
///
/// ```text
/// msg_offsets[e]      = Σ_{e' < e} arity(e')         (len E + 1)
/// replica_offsets[e]  = Σ_{e' < e} arity(e')²        (len E + 1)
///
/// slot (e, k)         = msg_offsets[e] + k
///     factor_to_var[slot]   µ_{fa_e → vars[k]}, computed by the owner of vars[k]
///     last_remote[slot]     cached remote message µ_{vars[k] → fa_e}
///     stale_factor[slot]    an input of replica (e, k) changed; recompute next round
///     evidence_vars[slot]   model variable index at position k of evidence e
///
/// entry (e, k, j)     = replica_offsets[e] + k · arity(e) + j
///     incoming[entry]       message about vars[j] as known by the owner of vars[k]
/// ```
///
/// The per-variable adjacency is likewise flat: `var_evidences[var_offsets[v] ..
/// var_offsets[v + 1]]` lists every `(evidence, message slot)` pair in which
/// variable `v` appears, in evidence order — the slot is precomputed so posterior
/// and remote-message products are single-indirection loads.
///
/// # Invariants
///
/// * The traversal order of every loop (evidences ascending, positions ascending,
///   `var_evidences` in evidence order) is identical to the baseline's nested-`Vec`
///   iteration, so message products, the loss-model RNG stream, and therefore the
///   posteriors are **bit-identical** to [`crate::embedded_baseline`] — the
///   golden-posterior tests assert exact equality, not tolerance.
/// * `posterior_cache[v]` always equals `compute_posterior(v)`: it is refreshed for
///   exactly the variables whose incident `factor_to_var` slots changed during
///   phase 1 (`factor_to_var` is never written anywhere else), which is also what
///   lets [`EmbeddedMessagePassing::round`] report the max posterior delta without
///   materialising two full posterior vectors per round.
/// * `dirty_list` / `round_dirty` are empty/false between rounds, and
///   `feedback_message` is fed the replica row straight out of the `incoming`
///   arena (the destination position's entry is never read, so the baseline's
///   per-call `inputs` clone has no replacement — it is simply gone), so the round
///   loop performs no allocations at all.
/// * Under reliable delivery (`send_probability >= 1.0`) every recipient of a
///   remote message already holds it the round after it last changed, so phase 2
///   skips the whole fan-out of inactive variables; with possible loss the full
///   per-recipient path runs, keeping the RNG stream and the delivery counters
///   exact.
#[derive(Debug, Clone)]
pub struct EmbeddedMessagePassing<'m> {
    model: &'m MappingModel,
    priors: Vec<Belief>,
    /// Number of feedback factors (cached; the hot loops never touch `model`).
    evidence_count: usize,
    /// CSR offsets over per-evidence message slots (see the arena layout above).
    msg_offsets: Vec<usize>,
    /// CSR offsets over per-evidence replica entries.
    replica_offsets: Vec<usize>,
    /// Variable index at each message slot: `evidence_vars[msg_offsets[e] + k]`.
    evidence_vars: Vec<u32>,
    /// Feedback sign per evidence.
    signs: Vec<FeedbackSign>,
    /// Compensating-error probability Δ per evidence.
    deltas: Vec<f64>,
    /// Replica arena: `incoming[replica_offsets[e] + k * arity(e) + j]`.
    incoming: Vec<Belief>,
    /// Message arena: `factor_to_var[msg_offsets[e] + k]`.
    factor_to_var: Vec<Belief>,
    /// Message arena: `last_remote[msg_offsets[e] + j]`.
    last_remote: Vec<Belief>,
    /// Message arena: replica input changed, recompute the slot next round.
    /// Change-driven recomputation keeps the per-round cost proportional to the part
    /// of the model still moving: converged regions (and warm-started regions under
    /// incremental updates) cost nothing.
    stale_factor: Vec<bool>,
    /// CSR offsets into `var_evidences` (len V + 1).
    var_offsets: Vec<usize>,
    /// Flat `(evidence, message slot)` adjacency of every variable, in evidence
    /// order; the slot is `msg_offsets[evidence] + position`, precomputed.
    var_evidences: Vec<(u32, u32)>,
    /// `var_active[v]`: some factor→variable message into `v` changed last phase, so
    /// `v`'s outgoing remote messages must be recomputed (otherwise the cached value
    /// is provably identical).
    var_active: Vec<bool>,
    /// Current posterior of every variable (kept in lockstep with `factor_to_var`).
    posterior_cache: Vec<f64>,
    /// Scratch: variables whose posterior changed during the current round.
    dirty_list: Vec<usize>,
    /// Scratch: dedup mask for `dirty_list`.
    round_dirty: Vec<bool>,
    config: EmbeddedConfig,
    rng: StdRng,
    messages_delivered: u64,
    messages_dropped: u64,
}

impl<'m> EmbeddedMessagePassing<'m> {
    /// Creates the state machine with per-variable priors.
    ///
    /// `priors` maps variable keys to prior probabilities; missing entries use
    /// `default_prior`.
    pub fn new(
        model: &'m MappingModel,
        priors: &BTreeMap<VariableKey, f64>,
        default_prior: f64,
        config: EmbeddedConfig,
    ) -> Self {
        let prior_beliefs: Vec<Belief> = model
            .variables
            .iter()
            .map(|key| Belief::from_probability(priors.get(key).copied().unwrap_or(default_prior)))
            .collect();
        let evidence_count = model.evidence_count();
        let mut msg_offsets = Vec::with_capacity(evidence_count + 1);
        let mut replica_offsets = Vec::with_capacity(evidence_count + 1);
        let (mut slots, mut entries) = (0usize, 0usize);
        msg_offsets.push(0);
        replica_offsets.push(0);
        for e in &model.evidences {
            let arity = e.variables.len();
            slots += arity;
            entries += arity * arity;
            msg_offsets.push(slots);
            replica_offsets.push(entries);
        }
        // `evidence_vars` / `var_evidences` store variable indices and message-slot
        // indices as u32; construction is cold, so guard the exact quantities that
        // get truncated (a hard assert — silent index corruption is never acceptable).
        assert!(
            slots <= u32::MAX as usize && model.variable_count() <= u32::MAX as usize,
            "arena exceeds u32 indexing: {} message slots, {} variables",
            slots,
            model.variable_count()
        );
        let mut evidence_vars = Vec::with_capacity(slots);
        let mut signs = Vec::with_capacity(evidence_count);
        let mut deltas = Vec::with_capacity(evidence_count);
        let mut var_degree = vec![0usize; model.variable_count()];
        for e in &model.evidences {
            signs.push(FeedbackSign::from_positive(e.positive));
            deltas.push(e.delta);
            for &v in &e.variables {
                evidence_vars.push(v as u32);
                var_degree[v] += 1;
            }
        }
        let mut var_offsets = Vec::with_capacity(model.variable_count() + 1);
        var_offsets.push(0);
        let mut acc = 0usize;
        for d in &var_degree {
            acc += d;
            var_offsets.push(acc);
        }
        let mut var_evidences = vec![(0u32, 0u32); acc];
        let mut cursor = var_offsets.clone();
        for (e_idx, evidence) in model.evidences.iter().enumerate() {
            for (position, &variable) in evidence.variables.iter().enumerate() {
                let slot = msg_offsets[e_idx] + position;
                var_evidences[cursor[variable]] = (e_idx as u32, slot as u32);
                cursor[variable] += 1;
            }
        }
        let rng = StdRng::seed_from_u64(config.seed);
        let mut machine = Self {
            model,
            priors: prior_beliefs,
            evidence_count,
            msg_offsets,
            replica_offsets,
            evidence_vars,
            signs,
            deltas,
            incoming: vec![Belief::unit(); entries],
            factor_to_var: vec![Belief::unit(); slots],
            last_remote: vec![Belief::unit(); slots],
            stale_factor: vec![true; slots],
            var_offsets,
            var_evidences,
            var_active: vec![true; model.variable_count()],
            posterior_cache: vec![0.0; model.variable_count()],
            dirty_list: Vec::with_capacity(model.variable_count()),
            round_dirty: vec![false; model.variable_count()],
            config,
            rng,
            messages_delivered: 0,
            messages_dropped: 0,
        };
        for v in 0..machine.model.variable_count() {
            machine.posterior_cache[v] = machine.compute_posterior(v);
        }
        machine
    }

    /// Seeds the message state from the posteriors of a previous run (keyed by
    /// variable, so the previous model may differ structurally — only variables that
    /// still exist contribute).
    ///
    /// Every remote message about a surviving variable starts at the variable's last
    /// known posterior belief instead of the unit message. This is a pure
    /// initialization: the fixpoint of the iteration is unchanged (the same update
    /// equations are applied), but on a model that changed only locally most messages
    /// start where they previously converged, so far fewer rounds are needed — the
    /// warm-start half of incremental session maintenance.
    pub fn warm_start(&mut self, previous: &BTreeMap<VariableKey, f64>) {
        for e_idx in 0..self.evidence_count {
            let base = self.msg_offsets[e_idx];
            let arity = self.msg_offsets[e_idx + 1] - base;
            let rep_base = self.replica_offsets[e_idx];
            for j in 0..arity {
                let var_j = self.evidence_vars[base + j] as usize;
                let Some(&p) = previous.get(&self.model.variables[var_j]) else {
                    continue;
                };
                let message = Belief::from_probability(p.clamp(0.0, 1.0)).normalized();
                for k in 0..arity {
                    self.incoming[rep_base + k * arity + j] = message;
                    self.stale_factor[base + k] = true;
                }
                // The seeded `incoming` entries no longer match `last_remote`, so the
                // reliable-delivery fast path (which assumes they agree) must not
                // skip this variable's fan-out next round. Forcing it active makes
                // phase 2 take the full per-recipient path; the recomputed remote
                // message is bit-identical to the cached one (its `factor_to_var`
                // inputs have not changed since it was cached), so this reproduces
                // the baseline's behaviour exactly — on a fresh machine every
                // variable is active anyway and this is a no-op.
                self.var_active[var_j] = true;
            }
        }
    }

    /// Posterior `P(correct)` of one model variable, from the owner's perspective.
    ///
    /// Served from `posterior_cache`, which `round` keeps in lockstep with the
    /// `factor_to_var` arena — reading it is free.
    pub fn posterior(&self, variable: usize) -> f64 {
        self.posterior_cache[variable]
    }

    /// Posteriors of all variables.
    pub fn posteriors(&self) -> Vec<f64> {
        self.posterior_cache.clone()
    }

    /// Recomputes the posterior of one variable from the message arena: the prior
    /// times every incident factor→variable message, in evidence order (the same
    /// multiplication order as the baseline, so the product is bit-identical).
    fn compute_posterior(&self, variable: usize) -> f64 {
        let mut belief = self.priors[variable];
        for &(_, slot) in
            &self.var_evidences[self.var_offsets[variable]..self.var_offsets[variable + 1]]
        {
            belief *= self.factor_to_var[slot as usize];
        }
        belief.probability_correct()
    }

    /// The remote message `µ_{p→fa_e}(variable)`: the owner's current belief about its
    /// variable excluding what factor `e` itself contributed.
    ///
    /// Reads straight out of the `factor_to_var` arena via the per-variable CSR
    /// adjacency; the caller stores the result into its `last_remote` slot, so the
    /// exchange allocates nothing.
    fn remote_message(&self, variable: usize, excluding_evidence: usize) -> Belief {
        let mut belief = self.priors[variable];
        for &(e, slot) in
            &self.var_evidences[self.var_offsets[variable]..self.var_offsets[variable + 1]]
        {
            if e as usize == excluding_evidence {
                continue;
            }
            belief *= self.factor_to_var[slot as usize];
        }
        belief.normalized()
    }

    /// Runs one round of the periodic schedule. Returns the largest posterior change.
    ///
    /// Message recomputation is change-driven: a factor replica only re-evaluates a
    /// message when one of its inputs actually changed, and a variable only
    /// recomputes its outgoing remote messages when some factor message into it
    /// changed. Both are pure caching — unchanged inputs provably reproduce the
    /// previous output — so the numbers (and the loss-model RNG stream) are
    /// bit-identical to the naive schedule, but the per-round cost shrinks to the
    /// part of the model still in motion: converged and warm-started regions are
    /// free.
    pub fn round(&mut self) -> f64 {
        // Phase 1: every owner recomputes the local factor→variable messages of its
        // replicas whose received inputs changed.
        for e_idx in 0..self.evidence_count {
            let base = self.msg_offsets[e_idx];
            let arity = self.msg_offsets[e_idx + 1] - base;
            let rep_base = self.replica_offsets[e_idx];
            let sign = self.signs[e_idx];
            let delta = self.deltas[e_idx];
            for k in 0..arity {
                let slot = base + k;
                if !self.stale_factor[slot] {
                    continue;
                }
                self.stale_factor[slot] = false;
                // The replica held by the owner of position k: incoming messages for
                // the other positions are whatever that owner has received; its own
                // position's entry is never read by the message computation (the
                // closed form marginalises it out), so the row is passed straight
                // from the arena — no per-call input buffer at all.
                let row = rep_base + k * arity;
                let message =
                    feedback_message(sign, delta, k, &self.incoming[row..row + arity]).normalized();
                if message != self.factor_to_var[slot] {
                    self.factor_to_var[slot] = message;
                    let variable = self.evidence_vars[slot] as usize;
                    self.var_active[variable] = true;
                    if !self.round_dirty[variable] {
                        self.round_dirty[variable] = true;
                        self.dirty_list.push(variable);
                    }
                }
            }
        }
        // Posterior delta: only the variables whose factor→variable messages changed
        // in phase 1 can have moved (phase 2 never writes `factor_to_var`), and every
        // other variable contributes exactly 0.0 to the max — so the incremental scan
        // reports the same L∞ delta as differencing two full posterior snapshots,
        // without allocating either.
        let mut max_delta = 0.0f64;
        for i in 0..self.dirty_list.len() {
            let variable = self.dirty_list[i];
            let fresh = self.compute_posterior(variable);
            max_delta = max_delta.max((self.posterior_cache[variable] - fresh).abs());
            self.posterior_cache[variable] = fresh;
            self.round_dirty[variable] = false;
        }
        self.dirty_list.clear();
        // Phase 2: every owner sends its remote messages; each individual message may
        // be lost, in which case the recipient keeps the stale value.
        let reliable = self.config.send_probability >= 1.0;
        for e_idx in 0..self.evidence_count {
            let base = self.msg_offsets[e_idx];
            let arity = self.msg_offsets[e_idx + 1] - base;
            let rep_base = self.replica_offsets[e_idx];
            for j in 0..arity {
                let slot = base + j;
                let var_j = self.evidence_vars[slot] as usize;
                if self.var_active[var_j] {
                    self.last_remote[slot] = self.remote_message(var_j, e_idx);
                } else if reliable {
                    // The message did not change, and when it last did every
                    // recipient received it with certainty (no loss model), so every
                    // `incoming` entry already equals it: the fan-out below would be
                    // all no-ops. Skipping it only needs the delivery accounting.
                    // (With `send_probability < 1.0` a past drop can leave a
                    // recipient stale, and the skip would also desynchronise the
                    // loss RNG stream — the full path runs in that case.)
                    self.messages_delivered += (arity - 1) as u64;
                    continue;
                }
                let message = self.last_remote[slot];
                for k in 0..arity {
                    let entry = rep_base + k * arity + j;
                    if k == j {
                        // The owner always knows its own variable's message (only the
                        // other positions' entries feed its replica's computation).
                        self.incoming[entry] = message;
                        continue;
                    }
                    let delivered = self.config.send_probability >= 1.0
                        || self
                            .rng
                            .gen_bool(self.config.send_probability.clamp(0.0, 1.0));
                    if delivered {
                        if self.incoming[entry] != message {
                            self.incoming[entry] = message;
                            self.stale_factor[base + k] = true;
                        }
                        self.messages_delivered += 1;
                    } else {
                        self.messages_dropped += 1;
                    }
                }
            }
        }
        for active in &mut self.var_active {
            *active = false;
        }
        max_delta
    }

    /// Runs rounds until convergence or the cap, returning the report.
    pub fn run(&mut self) -> EmbeddedReport {
        let mut history = Vec::new();
        if self.config.record_history {
            history.push(self.posteriors());
        }
        let mut converged = false;
        let mut rounds = 0;
        for _ in 0..self.config.max_rounds {
            let delta = self.round();
            rounds += 1;
            if self.config.record_history {
                history.push(self.posteriors());
            }
            if delta < self.config.tolerance {
                converged = true;
                break;
            }
        }
        EmbeddedReport {
            posteriors: self.posteriors(),
            rounds,
            converged,
            history,
            messages_delivered: self.messages_delivered,
            messages_dropped: self.messages_dropped,
        }
    }

    /// Remote messages each peer sends per round, summed over all peers — the paper's
    /// `Σ_ci (l_ci − 1)` communication-overhead bound for the periodic schedule.
    pub fn messages_per_round(&self) -> usize {
        self.model
            .evidences
            .iter()
            .map(|e| e.variables.len() * (e.variables.len() - 1))
            .sum()
    }
}

/// Convenience: build the state machine, run it, return the report.
pub fn run_embedded(
    model: &MappingModel,
    priors: &BTreeMap<VariableKey, f64>,
    default_prior: f64,
    config: EmbeddedConfig,
) -> EmbeddedReport {
    EmbeddedMessagePassing::new(model, priors, default_prior, config).run()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cycle_analysis::{AnalysisConfig, CycleAnalysis};
    use crate::local_graph::Granularity;
    use pdms_factor::{exact_marginals, run_sum_product, SumProductConfig};
    use pdms_schema::{AttributeId, Catalog, PeerId};

    /// The paper's example network (Figure 5 without m21): four peers, five mappings,
    /// m24 erroneously maps attribute 0.
    fn example_catalog() -> Catalog {
        let mut cat = Catalog::new();
        let peers: Vec<PeerId> = (0..4)
            .map(|i| {
                cat.add_peer_with_schema(format!("p{}", i + 1), |s| {
                    s.attributes(["Creator", "Title", "Date"]);
                })
            })
            .collect();
        let correct = |m: pdms_schema::MappingBuilder| {
            m.correct(AttributeId(0), AttributeId(0))
                .correct(AttributeId(1), AttributeId(1))
                .correct(AttributeId(2), AttributeId(2))
        };
        cat.add_mapping(peers[0], peers[1], correct); // m12
        cat.add_mapping(peers[1], peers[2], correct); // m23
        cat.add_mapping(peers[2], peers[3], correct); // m34
        cat.add_mapping(peers[3], peers[0], correct); // m41
        cat.add_mapping(peers[1], peers[3], |m| {
            // m24: Creator is misrouted to Date.
            m.erroneous(AttributeId(0), AttributeId(2), AttributeId(0))
                .correct(AttributeId(1), AttributeId(1))
                .correct(AttributeId(2), AttributeId(2))
        });
        cat
    }

    fn example_model(cat: &Catalog) -> MappingModel {
        let analysis = CycleAnalysis::analyze(cat, &AnalysisConfig::default());
        MappingModel::build(cat, &analysis, Granularity::Fine, 0.1)
    }

    #[test]
    fn embedded_matches_centralized_loopy_bp() {
        // The embedded scheme with a perfect network must converge to the same fixpoint
        // as running loopy BP on the global factor graph.
        let cat = example_catalog();
        let model = example_model(&cat);
        let priors = BTreeMap::new();
        let embedded = run_embedded(&model, &priors, 0.6, EmbeddedConfig::default());
        assert!(embedded.converged);
        let graph = model.global_factor_graph(&priors, 0.6);
        let central = run_sum_product(&graph, SumProductConfig::default());
        for (i, key) in model.variables.iter().enumerate() {
            let v = graph.variable_by_name(&key.name()).unwrap();
            assert!(
                (embedded.posterior(i) - central.posterior(v)).abs() < 1e-3,
                "{}: embedded {} vs central {}",
                key.name(),
                embedded.posterior(i),
                central.posterior(v)
            );
        }
    }

    #[test]
    fn faulty_mapping_attribute_gets_low_posterior() {
        let cat = example_catalog();
        let model = example_model(&cat);
        let report = run_embedded(&model, &BTreeMap::new(), 0.5, EmbeddedConfig::default());
        // Variable (m24, Creator) must end below 0.5; correct mappings' Creator
        // variables must end above 0.5.
        let m24_creator = model
            .variable_index(&VariableKey {
                mapping: pdms_schema::MappingId(4),
                attribute: Some(AttributeId(0)),
            })
            .expect("variable exists");
        assert!(report.posterior(m24_creator) < 0.5);
        for (i, key) in model.variables.iter().enumerate() {
            if key.attribute == Some(AttributeId(0)) && i != m24_creator {
                assert!(
                    report.posterior(i) > 0.5,
                    "{} should look correct, got {}",
                    key.name(),
                    report.posterior(i)
                );
            }
        }
    }

    #[test]
    fn worked_example_numbers_are_close_to_the_paper() {
        // Section 4.5: with no prior information (priors 0.5) and Δ = 1/10 the
        // posteriors converge to ≈0.59 for the correct mapping out of p2 and ≈0.3 for
        // the faulty one. Exact inference on our model of the same situation gives
        // 0.59 / 0.31; the embedded estimate must land in the same region.
        let cat = example_catalog();
        let model = example_model(&cat);
        let report = run_embedded(&model, &BTreeMap::new(), 0.5, EmbeddedConfig::default());
        let m23_creator = model
            .variable_index(&VariableKey {
                mapping: pdms_schema::MappingId(1),
                attribute: Some(AttributeId(0)),
            })
            .unwrap();
        let m24_creator = model
            .variable_index(&VariableKey {
                mapping: pdms_schema::MappingId(4),
                attribute: Some(AttributeId(0)),
            })
            .unwrap();
        let p23 = report.posterior(m23_creator);
        let p24 = report.posterior(m24_creator);
        assert!((0.50..=0.70).contains(&p23), "m23 Creator posterior {p23}");
        assert!((0.15..=0.40).contains(&p24), "m24 Creator posterior {p24}");
    }

    #[test]
    fn embedded_tracks_exact_inference_closely() {
        let cat = example_catalog();
        let model = example_model(&cat);
        let priors = BTreeMap::new();
        let report = run_embedded(&model, &priors, 0.5, EmbeddedConfig::default());
        let graph = model.global_factor_graph(&priors, 0.5);
        let exact = exact_marginals(&graph);
        for (i, key) in model.variables.iter().enumerate() {
            let v = graph.variable_by_name(&key.name()).unwrap();
            assert!(
                (report.posterior(i) - exact[v.0]).abs() < 0.06,
                "{}: embedded {} vs exact {}",
                key.name(),
                report.posterior(i),
                exact[v.0]
            );
        }
    }

    #[test]
    fn message_loss_slows_but_does_not_break_convergence() {
        let cat = example_catalog();
        let model = example_model(&cat);
        let reliable = run_embedded(&model, &BTreeMap::new(), 0.8, EmbeddedConfig::default());
        let lossy = run_embedded(
            &model,
            &BTreeMap::new(),
            0.8,
            EmbeddedConfig {
                send_probability: 0.3,
                max_rounds: 2000,
                seed: 5,
                ..Default::default()
            },
        );
        assert!(reliable.converged && lossy.converged);
        assert!(
            lossy.rounds >= reliable.rounds,
            "{} < {}",
            lossy.rounds,
            reliable.rounds
        );
        assert!(lossy.messages_dropped > 0);
        for i in 0..model.variable_count() {
            assert!(
                (reliable.posterior(i) - lossy.posterior(i)).abs() < 2e-2,
                "variable {i}: {} vs {}",
                reliable.posterior(i),
                lossy.posterior(i)
            );
        }
    }

    #[test]
    fn flat_arena_is_bit_identical_to_the_nested_baseline() {
        // The arena refactor is pure data-layout: posteriors, history, round count
        // and the loss-model RNG stream must match the preserved nested-Vec
        // implementation exactly — not within tolerance.
        let cat = example_catalog();
        let model = example_model(&cat);
        let configs = [
            EmbeddedConfig::default(),
            EmbeddedConfig {
                send_probability: 0.4,
                max_rounds: 500,
                seed: 3,
                ..Default::default()
            },
            EmbeddedConfig {
                send_probability: 0.9,
                tolerance: 1e-8,
                seed: 99,
                ..Default::default()
            },
        ];
        for config in configs {
            let flat = run_embedded(&model, &BTreeMap::new(), 0.6, config.clone());
            let baseline = crate::embedded_baseline::run_embedded_baseline(
                &model,
                &BTreeMap::new(),
                0.6,
                config,
            );
            assert_eq!(flat.posteriors, baseline.posteriors);
            assert_eq!(flat.rounds, baseline.rounds);
            assert_eq!(flat.converged, baseline.converged);
            assert_eq!(flat.history, baseline.history);
            assert_eq!(flat.messages_delivered, baseline.messages_delivered);
            assert_eq!(flat.messages_dropped, baseline.messages_dropped);
        }
    }

    #[test]
    fn warm_started_flat_arena_matches_warm_started_baseline() {
        let cat = example_catalog();
        let model = example_model(&cat);
        let cold = run_embedded(&model, &BTreeMap::new(), 0.6, EmbeddedConfig::default());
        let previous: BTreeMap<VariableKey, f64> = model
            .variables
            .iter()
            .enumerate()
            .map(|(i, key)| (*key, cold.posterior(i)))
            .collect();
        let mut flat =
            EmbeddedMessagePassing::new(&model, &BTreeMap::new(), 0.6, EmbeddedConfig::default());
        flat.warm_start(&previous);
        let mut baseline = crate::embedded_baseline::BaselineMessagePassing::new(
            &model,
            &BTreeMap::new(),
            0.6,
            EmbeddedConfig::default(),
        );
        baseline.warm_start(&previous);
        let flat_report = flat.run();
        let baseline_report = baseline.run();
        assert_eq!(flat_report.posteriors, baseline_report.posteriors);
        assert_eq!(flat_report.rounds, baseline_report.rounds);
        assert_eq!(flat_report.history, baseline_report.history);
    }

    // The mid-run warm-start scenario (seeded variable left inactive on a network
    // at its exact fixpoint, exercising the reliable-delivery fast path) needs a
    // fixture that actually freezes; it lives in `tests/golden_posteriors.rs`
    // (`mid_run_warm_start_stays_bit_identical_on_a_frozen_network`), where the
    // synthetic workload generators are available.

    #[test]
    fn round_delta_matches_full_posterior_differencing() {
        // The incremental max-delta must equal the |before - after| L∞ the baseline
        // computes from two full posterior snapshots, round by round.
        let cat = example_catalog();
        let model = example_model(&cat);
        let config = EmbeddedConfig {
            send_probability: 0.7,
            seed: 21,
            ..Default::default()
        };
        let mut flat = EmbeddedMessagePassing::new(&model, &BTreeMap::new(), 0.5, config.clone());
        let mut baseline = crate::embedded_baseline::BaselineMessagePassing::new(
            &model,
            &BTreeMap::new(),
            0.5,
            config,
        );
        for round in 0..30 {
            let d_flat = flat.round();
            let d_base = baseline.round();
            assert_eq!(d_flat.to_bits(), d_base.to_bits(), "round {round}");
            assert_eq!(flat.posteriors(), baseline.posteriors(), "round {round}");
        }
    }

    #[test]
    fn history_and_message_accounting_are_consistent() {
        let cat = example_catalog();
        let model = example_model(&cat);
        let report = run_embedded(&model, &BTreeMap::new(), 0.7, EmbeddedConfig::default());
        assert_eq!(report.history.len(), report.rounds + 1);
        assert_eq!(report.messages_dropped, 0);
        let per_round =
            EmbeddedMessagePassing::new(&model, &BTreeMap::new(), 0.7, EmbeddedConfig::default())
                .messages_per_round();
        assert_eq!(
            report.messages_delivered,
            (per_round * report.rounds) as u64
        );
    }
}

//! Posterior mapping-quality tables.
//!
//! The output of an inference run, indexed the way the rest of the system consumes it:
//! `P(mapping m preserves attribute a)`. The table also implements the paper's `⊥`
//! rule — "the probability on the correctness of a mapping link drops to zero for a
//! specific attribute if the mapping does not provide any mapping for the attribute"
//! (Section 3.2.1) — and falls back from fine to coarse granularity when an attribute
//! was never exercised by any cycle.

use crate::local_graph::{MappingModel, VariableKey};
use pdms_schema::{AttributeId, Catalog, MappingId};
use std::collections::BTreeMap;

/// Posterior probabilities of correctness, per mapping and per attribute.
#[derive(Debug, Clone, Default)]
pub struct PosteriorTable {
    fine: BTreeMap<(MappingId, AttributeId), f64>,
    coarse: BTreeMap<MappingId, f64>,
    /// Probability returned when nothing at all is known about a mapping/attribute.
    default: f64,
}

impl PosteriorTable {
    /// Creates an empty table with the given default probability (0.5 expresses
    /// complete ignorance, the maximum-entropy choice of Section 4.4).
    pub fn new(default: f64) -> Self {
        Self {
            fine: BTreeMap::new(),
            coarse: BTreeMap::new(),
            default,
        }
    }

    /// Builds a table from a model and the posteriors of its variables (the vectors
    /// produced by the embedded scheme, loopy BP, or exact inference).
    ///
    /// Coarse entries are filled with the minimum over the fine entries of the same
    /// mapping — the conservative aggregation: a mapping is only as good as its worst
    /// attribute.
    pub fn from_model(model: &MappingModel, posteriors: &[f64], default: f64) -> Self {
        assert_eq!(
            model.variable_count(),
            posteriors.len(),
            "posterior/variable mismatch"
        );
        let mut table = Self::new(default);
        for (key, p) in model.variables.iter().zip(posteriors) {
            match key.attribute {
                Some(attr) => {
                    table.fine.insert((key.mapping, attr), *p);
                    let entry = table.coarse.entry(key.mapping).or_insert(f64::INFINITY);
                    *entry = entry.min(*p);
                }
                None => {
                    table.coarse.insert(key.mapping, *p);
                }
            }
        }
        // Normalise infinities left by the min-fold (cannot happen unless a mapping has
        // no fine entry, in which case the coarse entry was set directly).
        for value in table.coarse.values_mut() {
            if !value.is_finite() {
                *value = default;
            }
        }
        table
    }

    /// Sets the fine-granularity posterior of `(mapping, attribute)`.
    pub fn set(&mut self, mapping: MappingId, attribute: AttributeId, probability: f64) {
        self.fine.insert((mapping, attribute), probability);
        let entry = self.coarse.entry(mapping).or_insert(probability);
        *entry = entry.min(probability);
    }

    /// Sets the coarse-granularity posterior of a mapping.
    pub fn set_coarse(&mut self, mapping: MappingId, probability: f64) {
        self.coarse.insert(mapping, probability);
    }

    /// Removes every entry (fine and coarse) of a mapping, returning lookups for it
    /// to the default probability. Used by callers that maintain a merged table
    /// incrementally (e.g. the sharded session patching only changed shards).
    pub fn clear_mapping(&mut self, mapping: MappingId) {
        let keys: Vec<(MappingId, AttributeId)> = self
            .fine
            .range((mapping, AttributeId(0))..=(mapping, AttributeId(usize::MAX)))
            .map(|(k, _)| *k)
            .collect();
        for key in keys {
            self.fine.remove(&key);
        }
        self.coarse.remove(&mapping);
    }

    /// Posterior that `mapping` preserves `attribute`, applying the `⊥` rule against
    /// the catalog: a mapping with no correspondence for the attribute has probability
    /// zero of preserving it.
    pub fn probability(
        &self,
        catalog: &Catalog,
        mapping: MappingId,
        attribute: AttributeId,
    ) -> f64 {
        if catalog.mapping(mapping).apply(attribute).is_none() {
            return 0.0;
        }
        self.probability_ignoring_bottom(mapping, attribute)
    }

    /// Posterior lookup without consulting the catalog (no `⊥` rule): fine entry if
    /// present, else the mapping's coarse entry, else the default.
    pub fn probability_ignoring_bottom(&self, mapping: MappingId, attribute: AttributeId) -> f64 {
        if let Some(p) = self.fine.get(&(mapping, attribute)) {
            return *p;
        }
        self.coarse.get(&mapping).copied().unwrap_or(self.default)
    }

    /// Coarse posterior of a mapping (worst attribute seen, or the default).
    pub fn mapping_probability(&self, mapping: MappingId) -> f64 {
        self.coarse.get(&mapping).copied().unwrap_or(self.default)
    }

    /// All fine-granularity entries.
    pub fn fine_entries(&self) -> impl Iterator<Item = (MappingId, AttributeId, f64)> + '_ {
        self.fine.iter().map(|((m, a), p)| (*m, *a, *p))
    }

    /// All coarse-granularity entries.
    pub fn coarse_entries(&self) -> impl Iterator<Item = (MappingId, f64)> + '_ {
        self.coarse.iter().map(|(m, p)| (*m, *p))
    }

    /// Number of fine entries.
    pub fn len(&self) -> usize {
        self.fine.len()
    }

    /// True when no fine entry is present.
    pub fn is_empty(&self) -> bool {
        self.fine.is_empty()
    }

    /// The default probability returned for unknown mappings.
    pub fn default_probability(&self) -> f64 {
        self.default
    }

    /// Convenience used by prior updates: extracts the posterior of every model
    /// variable into the key→probability shape that [`crate::priors::PriorStore`] and
    /// [`MappingModel::global_factor_graph`] consume.
    pub fn as_variable_map(&self, model: &MappingModel) -> BTreeMap<VariableKey, f64> {
        let mut out = BTreeMap::new();
        for key in &model.variables {
            let p = match key.attribute {
                Some(attr) => self.probability_ignoring_bottom(key.mapping, attr),
                None => self.mapping_probability(key.mapping),
            };
            out.insert(*key, p);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cycle_analysis::{AnalysisConfig, CycleAnalysis};
    use crate::local_graph::Granularity;
    use pdms_schema::PeerId;

    fn two_peer_catalog() -> Catalog {
        let mut cat = Catalog::new();
        let p0 = cat.add_peer_with_schema("a", |s| {
            s.attributes(["x", "y"]);
        });
        let p1 = cat.add_peer_with_schema("b", |s| {
            s.attributes(["x", "y"]);
        });
        // Mapping 0 covers only attribute 0; attribute 1 is ⊥.
        cat.add_mapping(p0, p1, |m| m.correct(AttributeId(0), AttributeId(0)));
        cat.add_mapping(p1, p0, |m| {
            m.correct(AttributeId(0), AttributeId(0))
                .correct(AttributeId(1), AttributeId(1))
        });
        cat
    }

    #[test]
    fn bottom_rule_forces_zero() {
        let cat = two_peer_catalog();
        let table = PosteriorTable::new(0.5);
        assert_eq!(table.probability(&cat, MappingId(0), AttributeId(1)), 0.0);
        assert_eq!(table.probability(&cat, MappingId(0), AttributeId(0)), 0.5);
    }

    #[test]
    fn fine_entries_take_precedence_over_coarse() {
        let mut table = PosteriorTable::new(0.5);
        table.set_coarse(MappingId(3), 0.9);
        table.set(MappingId(3), AttributeId(1), 0.2);
        assert_eq!(
            table.probability_ignoring_bottom(MappingId(3), AttributeId(1)),
            0.2
        );
        assert_eq!(
            table.probability_ignoring_bottom(MappingId(3), AttributeId(7)),
            0.2
        );
    }

    #[test]
    fn coarse_is_minimum_of_fine() {
        let mut table = PosteriorTable::new(0.5);
        table.set(MappingId(0), AttributeId(0), 0.8);
        table.set(MappingId(0), AttributeId(1), 0.3);
        assert!((table.mapping_probability(MappingId(0)) - 0.3).abs() < 1e-12);
    }

    #[test]
    fn from_model_round_trips_posteriors() {
        let cat = {
            let mut cat = Catalog::new();
            let peers: Vec<PeerId> = (0..3)
                .map(|i| {
                    cat.add_peer_with_schema(format!("p{i}"), |s| {
                        s.attributes(["alpha"]);
                    })
                })
                .collect();
            for i in 0..3 {
                cat.add_mapping(peers[i], peers[(i + 1) % 3], |m| {
                    m.correct(AttributeId(0), AttributeId(0))
                });
            }
            cat
        };
        let analysis = CycleAnalysis::analyze(&cat, &AnalysisConfig::default());
        let model = MappingModel::build(&cat, &analysis, Granularity::Fine, 0.1);
        let posteriors: Vec<f64> = (0..model.variable_count())
            .map(|i| 0.6 + i as f64 * 0.1)
            .collect();
        let table = PosteriorTable::from_model(&model, &posteriors, 0.5);
        assert_eq!(table.len(), model.variable_count());
        for (i, key) in model.variables.iter().enumerate() {
            let attr = key.attribute.unwrap();
            assert!((table.probability(&cat, key.mapping, attr) - posteriors[i]).abs() < 1e-12);
        }
        let map = table.as_variable_map(&model);
        assert_eq!(map.len(), model.variable_count());
    }

    #[test]
    fn unknown_mappings_fall_back_to_default() {
        let table = PosteriorTable::new(0.42);
        assert_eq!(table.mapping_probability(MappingId(99)), 0.42);
        assert_eq!(
            table.probability_ignoring_bottom(MappingId(99), AttributeId(0)),
            0.42
        );
        assert!(table.is_empty());
        assert_eq!(table.default_probability(), 0.42);
    }
}

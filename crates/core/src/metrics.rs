//! Evaluation metrics: precision and recall of erroneous-mapping detection.
//!
//! Figure 12 reports the *precision* of the approach on the real-world schemas: the
//! fraction of mappings flagged as erroneous (posterior below θ) that are genuinely
//! erroneous according to a human judge. The paper also reports that at the
//! phase-transition threshold about half of the erroneous mappings have been found,
//! which is the *recall*. Ground truth comes from the catalog's mapping tables.

use crate::posterior::PosteriorTable;
use pdms_schema::{AttributeId, Catalog, MappingId};

/// Classification outcome of one `(mapping, attribute)` pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DetectionOutcome {
    /// Flagged erroneous and genuinely erroneous.
    TruePositive,
    /// Flagged erroneous but actually correct.
    FalsePositive,
    /// Not flagged and genuinely correct.
    TrueNegative,
    /// Not flagged although erroneous.
    FalseNegative,
}

/// Aggregated evaluation of a detection run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct EvaluationReport {
    /// Count of true positives.
    pub true_positives: usize,
    /// Count of false positives.
    pub false_positives: usize,
    /// Count of true negatives.
    pub true_negatives: usize,
    /// Count of false negatives.
    pub false_negatives: usize,
}

impl EvaluationReport {
    /// Precision: detected-and-really-erroneous over all detected-as-erroneous.
    /// Returns 1.0 when nothing was flagged (no wrong accusation was made).
    pub fn precision(&self) -> f64 {
        let flagged = self.true_positives + self.false_positives;
        if flagged == 0 {
            1.0
        } else {
            self.true_positives as f64 / flagged as f64
        }
    }

    /// Recall: detected erroneous over all genuinely erroneous. 1.0 when there is
    /// nothing to detect.
    pub fn recall(&self) -> f64 {
        let erroneous = self.true_positives + self.false_negatives;
        if erroneous == 0 {
            1.0
        } else {
            self.true_positives as f64 / erroneous as f64
        }
    }

    /// F1 score (harmonic mean of precision and recall).
    pub fn f1(&self) -> f64 {
        let p = self.precision();
        let r = self.recall();
        if p + r == 0.0 {
            0.0
        } else {
            2.0 * p * r / (p + r)
        }
    }

    /// Accuracy over all judged pairs.
    pub fn accuracy(&self) -> f64 {
        let total = self.total();
        if total == 0 {
            1.0
        } else {
            (self.true_positives + self.true_negatives) as f64 / total as f64
        }
    }

    /// Total number of judged pairs.
    pub fn total(&self) -> usize {
        self.true_positives + self.false_positives + self.true_negatives + self.false_negatives
    }

    /// Number of pairs flagged as erroneous.
    pub fn flagged(&self) -> usize {
        self.true_positives + self.false_positives
    }

    /// Records one outcome.
    pub fn record(&mut self, outcome: DetectionOutcome) {
        match outcome {
            DetectionOutcome::TruePositive => self.true_positives += 1,
            DetectionOutcome::FalsePositive => self.false_positives += 1,
            DetectionOutcome::TrueNegative => self.true_negatives += 1,
            DetectionOutcome::FalseNegative => self.false_negatives += 1,
        }
    }
}

/// Judges one pair: flagged when the posterior is strictly below `theta`; ground truth
/// from the catalog. Returns `None` when the mapping has no correspondence for the
/// attribute (there is nothing to judge — the aligner did not propose anything).
pub fn judge(
    catalog: &Catalog,
    posteriors: &PosteriorTable,
    mapping: MappingId,
    attribute: AttributeId,
    theta: f64,
) -> Option<DetectionOutcome> {
    let actually_correct = catalog.mapping(mapping).is_correct_for(attribute)?;
    let flagged = posteriors.probability_ignoring_bottom(mapping, attribute) < theta;
    Some(match (flagged, actually_correct) {
        (true, false) => DetectionOutcome::TruePositive,
        (true, true) => DetectionOutcome::FalsePositive,
        (false, true) => DetectionOutcome::TrueNegative,
        (false, false) => DetectionOutcome::FalseNegative,
    })
}

/// Evaluates erroneous-mapping detection over every attribute correspondence declared
/// in the catalog, at detection threshold `theta`.
pub fn precision_recall(
    catalog: &Catalog,
    posteriors: &PosteriorTable,
    theta: f64,
) -> EvaluationReport {
    let mut report = EvaluationReport::default();
    for mapping_id in catalog.mappings() {
        let mapping = catalog.mapping(mapping_id);
        for (attribute, _corr) in mapping.correspondences() {
            if let Some(outcome) = judge(catalog, posteriors, mapping_id, attribute, theta) {
                report.record(outcome);
            }
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    fn catalog_with_known_errors() -> Catalog {
        let mut cat = Catalog::new();
        let p0 = cat.add_peer_with_schema("a", |s| {
            s.attributes(["x", "y"]);
        });
        let p1 = cat.add_peer_with_schema("b", |s| {
            s.attributes(["x", "y"]);
        });
        // Mapping 0: x correct, y erroneous. Mapping 1: both correct.
        cat.add_mapping(p0, p1, |m| {
            m.correct(AttributeId(0), AttributeId(0)).erroneous(
                AttributeId(1),
                AttributeId(0),
                AttributeId(1),
            )
        });
        cat.add_mapping(p1, p0, |m| {
            m.correct(AttributeId(0), AttributeId(0))
                .correct(AttributeId(1), AttributeId(1))
        });
        cat
    }

    #[test]
    fn perfect_detector_has_perfect_precision_and_recall() {
        let cat = catalog_with_known_errors();
        let mut table = PosteriorTable::new(0.5);
        table.set(MappingId(0), AttributeId(0), 0.9);
        table.set(MappingId(0), AttributeId(1), 0.1);
        table.set(MappingId(1), AttributeId(0), 0.9);
        table.set(MappingId(1), AttributeId(1), 0.9);
        let report = precision_recall(&cat, &table, 0.5);
        assert_eq!(report.true_positives, 1);
        assert_eq!(report.false_positives, 0);
        assert_eq!(report.false_negatives, 0);
        assert_eq!(report.true_negatives, 3);
        assert_eq!(report.precision(), 1.0);
        assert_eq!(report.recall(), 1.0);
        assert_eq!(report.f1(), 1.0);
        assert_eq!(report.accuracy(), 1.0);
        assert_eq!(report.total(), 4);
    }

    #[test]
    fn over_eager_detector_loses_precision() {
        let cat = catalog_with_known_errors();
        let table = PosteriorTable::new(0.2); // everything looks suspicious
        let report = precision_recall(&cat, &table, 0.5);
        assert_eq!(report.flagged(), 4);
        assert!((report.precision() - 0.25).abs() < 1e-12);
        assert_eq!(report.recall(), 1.0);
    }

    #[test]
    fn blind_detector_loses_recall() {
        let cat = catalog_with_known_errors();
        let table = PosteriorTable::new(0.9); // everything looks fine
        let report = precision_recall(&cat, &table, 0.5);
        assert_eq!(report.flagged(), 0);
        assert_eq!(report.precision(), 1.0);
        assert_eq!(report.recall(), 0.0);
        assert_eq!(report.f1(), 0.0);
    }

    #[test]
    fn judge_skips_missing_correspondences() {
        let cat = catalog_with_known_errors();
        let table = PosteriorTable::new(0.5);
        // Attribute 5 does not exist in mapping 0's table.
        assert!(judge(&cat, &table, MappingId(0), AttributeId(5), 0.5).is_none());
    }

    #[test]
    fn empty_report_is_vacuously_perfect() {
        let r = EvaluationReport::default();
        assert_eq!(r.precision(), 1.0);
        assert_eq!(r.recall(), 1.0);
        assert_eq!(r.accuracy(), 1.0);
        assert_eq!(r.total(), 0);
    }
}

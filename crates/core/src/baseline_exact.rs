//! Centralized exact-inference baseline.
//!
//! The "global inference process" the paper compares against in Figure 9: gather the
//! whole factor graph in one place and compute exact marginals. It is not a PDMS
//! algorithm (it needs central coordination and its cost is exponential in the number
//! of mapping variables), but it is the gold standard the decentralized approximation
//! is measured against.

use crate::local_graph::{MappingModel, VariableKey};
use crate::posterior::PosteriorTable;
use pdms_factor::exact_marginals;
use std::collections::BTreeMap;

/// Upper bound on the number of variables the exact baseline will accept (the joint
/// enumeration is `2^n`).
pub const MAX_EXACT_MODEL_VARIABLES: usize = pdms_factor::exact::MAX_EXACT_VARIABLES;

/// Runs exact inference on the global factor graph of the model.
///
/// Returns the exact posterior per model variable. Panics (inside the factor crate)
/// when the model exceeds [`MAX_EXACT_MODEL_VARIABLES`] variables.
pub fn exact_posteriors(
    model: &MappingModel,
    priors: &BTreeMap<VariableKey, f64>,
    default_prior: f64,
) -> Vec<f64> {
    let graph = model.global_factor_graph(priors, default_prior);
    let marginals = exact_marginals(&graph);
    // The global factor graph adds variables in model order, so indices line up.
    marginals
}

/// Runs exact inference and wraps the result as a [`PosteriorTable`].
pub fn exact_posterior_table(
    model: &MappingModel,
    priors: &BTreeMap<VariableKey, f64>,
    default_prior: f64,
) -> PosteriorTable {
    let posteriors = exact_posteriors(model, priors, default_prior);
    PosteriorTable::from_model(model, &posteriors, default_prior)
}

/// Relative error of an approximate posterior vector against the exact one, per
/// variable: `|approx − exact| / exact` (with the convention that an exact value of 0
/// contributes the absolute error instead, to avoid division by zero).
pub fn relative_errors(exact: &[f64], approximate: &[f64]) -> Vec<f64> {
    assert_eq!(exact.len(), approximate.len(), "length mismatch");
    exact
        .iter()
        .zip(approximate)
        .map(|(e, a)| {
            if e.abs() < 1e-12 {
                (a - e).abs()
            } else {
                (a - e).abs() / e
            }
        })
        .collect()
}

/// Mean of the relative errors.
pub fn mean_relative_error(exact: &[f64], approximate: &[f64]) -> f64 {
    let errors = relative_errors(exact, approximate);
    if errors.is_empty() {
        0.0
    } else {
        errors.iter().sum::<f64>() / errors.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cycle_analysis::{AnalysisConfig, CycleAnalysis};
    use crate::embedded::{run_embedded, EmbeddedConfig};
    use crate::local_graph::Granularity;
    use pdms_schema::{AttributeId, Catalog, PeerId};

    fn ring_catalog(n: usize, faulty: Option<usize>) -> Catalog {
        let mut cat = Catalog::new();
        let peers: Vec<PeerId> = (0..n)
            .map(|i| {
                cat.add_peer_with_schema(format!("p{i}"), |s| {
                    s.attributes(["alpha", "beta"]);
                })
            })
            .collect();
        for i in 0..n {
            cat.add_mapping(peers[i], peers[(i + 1) % n], |m| {
                if Some(i) == faulty {
                    m.erroneous(AttributeId(0), AttributeId(1), AttributeId(0))
                        .correct(AttributeId(1), AttributeId(1))
                } else {
                    m.correct(AttributeId(0), AttributeId(0))
                        .correct(AttributeId(1), AttributeId(1))
                }
            });
        }
        cat
    }

    #[test]
    fn exact_posteriors_line_up_with_model_variables() {
        let cat = ring_catalog(4, None);
        let analysis = CycleAnalysis::analyze(&cat, &AnalysisConfig::default());
        let model = MappingModel::build(&cat, &analysis, Granularity::Fine, 0.1);
        let exact = exact_posteriors(&model, &BTreeMap::new(), 0.5);
        assert_eq!(exact.len(), model.variable_count());
        // Everything is correct and feedback positive: every posterior above 0.5.
        assert!(exact.iter().all(|p| *p > 0.5));
    }

    #[test]
    fn exact_table_applies_model_structure() {
        let cat = ring_catalog(3, Some(1));
        let analysis = CycleAnalysis::analyze(&cat, &AnalysisConfig::default());
        let model = MappingModel::build(&cat, &analysis, Granularity::Fine, 0.1);
        let table = exact_posterior_table(&model, &BTreeMap::new(), 0.5);
        assert!(!table.is_empty());
    }

    #[test]
    fn embedded_stays_within_a_few_percent_of_exact() {
        // This is the Figure 9 claim at the unit-test scale.
        let cat = ring_catalog(5, Some(2));
        let analysis = CycleAnalysis::analyze(&cat, &AnalysisConfig::default());
        let model = MappingModel::build(&cat, &analysis, Granularity::Fine, 0.1);
        let priors = BTreeMap::new();
        let exact = exact_posteriors(&model, &priors, 0.8);
        let embedded = run_embedded(&model, &priors, 0.8, EmbeddedConfig::default());
        let mean = mean_relative_error(&exact, &embedded.posteriors);
        assert!(mean < 0.06, "mean relative error {mean}");
    }

    #[test]
    fn relative_error_helpers() {
        let exact = vec![0.5, 0.0, 1.0];
        let approx = vec![0.55, 0.1, 0.9];
        let errors = relative_errors(&exact, &approx);
        assert!((errors[0] - 0.1).abs() < 1e-12);
        assert!((errors[1] - 0.1).abs() < 1e-12);
        assert!((errors[2] - 0.1).abs() < 1e-12);
        assert!((mean_relative_error(&exact, &approx) - 0.1).abs() < 1e-12);
        assert_eq!(mean_relative_error(&[], &[]), 0.0);
    }
}

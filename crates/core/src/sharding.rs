//! Component-sharded engine sessions with batched event ingestion.
//!
//! All structural evidence of the paper's model — directed mapping cycles
//! (Section 3.2.1) and pairs of edge-disjoint parallel paths — is a *connected*
//! subgraph of the mapping network, so no evidence path can ever cross a weakly
//! connected component boundary. Partitioning the catalog into its weak components
//! and running one independent [`EngineSession`] per component is therefore
//! **exact**, not an approximation: every factor of the global model lives entirely
//! inside one shard, per-shard inference sees exactly the factors the global model
//! would connect to its variables, and posteriors merge by (globally unique) mapping
//! id. `tests/sharded_session.rs` asserts bit-identical posteriors against the
//! single-session engine.
//!
//! A [`ShardedSession`] owns:
//!
//! * the **global catalog** and a live topology mirror (edge ids = mapping ids);
//! * an incrementally maintained weak-component partition
//!   ([`pdms_graph::IncrementalComponents`]): mapping additions union two
//!   components in near-constant time, removals re-check connectivity of the
//!   affected component only;
//! * one [`EngineSession`] per component, built over a **sub-catalog** whose peers
//!   and live mappings are inserted in ascending global-id order — which makes
//!   shard-local evidence enumeration order-isomorphic to the global enumeration
//!   restricted to the shard.
//!
//! [`ShardedSession::apply_batch`] is the batched ingestion path: events are
//! applied to the global catalog in order, **coalesced** (a mapping added and
//! removed inside one batch never has evidence searched for it), **grouped by
//! destination shard**, and dispatched — one incremental inference pass per touched
//! shard instead of one per event, in parallel over the
//! [`AnalysisConfig::shard_parallelism`] worker pool. Shards whose component merges
//! or splits are rebuilt from the final catalog; untouched shards are not visited
//! at all. See `docs/SHARDING.md` for the lifecycle, the exactness argument and a
//! worked event trace.

use crate::backend::InferenceBackend;
use crate::cycle_analysis::{build_topology, AnalysisConfig};
use crate::cycle_analysis::{EvidencePath, EvidenceSource};
use crate::delta::estimate_delta_for_catalog;
use crate::dynamics::{apply_event_traced, EventEffect, NetworkEvent};
use crate::local_graph::{Granularity, VariableKey};
use crate::metrics::{precision_recall, EvaluationReport};
use crate::posterior::PosteriorTable;
use crate::priors::PriorStore;
use crate::routing::{route_query, RoutingOutcome, RoutingPolicy};
use crate::session::{doomed_additions, EngineBuilder, EngineSession};
use pdms_graph::{
    effective_batch_size, effective_shard_parallelism, run_stealing, DiGraph, EdgeId,
    IncrementalComponents, MergeOutcome, NodeId, SplitOutcome,
};
use pdms_schema::{Catalog, MappingId, PeerId, Query};
use std::collections::{BTreeMap, BTreeSet};
use std::sync::{Arc, Mutex};

/// Everything needed to build (and re-build, after merges and splits) the
/// per-component [`EngineSession`]s.
struct ShardSeed {
    analysis: AnalysisConfig,
    granularity: Granularity,
    backend: Arc<dyn InferenceBackend>,
    /// The builder-provided prior store; shard builds remap its snapshot onto
    /// shard-local mapping ids.
    priors: PriorStore,
    /// The compensating-error probability Δ, pinned at
    /// [`ShardedSession::build`] time (the builder override, else the estimate
    /// over the initial global catalog). Sub-catalogs must not re-estimate Δ from
    /// their own schemas, or per-shard posteriors would diverge from the global
    /// model's.
    delta: f64,
}

/// One connected-component shard: the peers it covers and the incremental session
/// running on its sub-catalog.
///
/// Shard-local identifiers are dense: local peer `k` is the `k`-th smallest global
/// peer id of the component, and local mapping slots are allocated in ascending
/// global-mapping-id order at build time (then in arrival order for mappings added
/// later). The translation tables are exposed read-only.
#[derive(Debug, Clone)]
pub struct Shard {
    /// Global peer ids covered by this shard, ascending.
    peers: Vec<PeerId>,
    /// The incremental engine session over the shard's sub-catalog.
    session: EngineSession,
    /// Local mapping slot → global mapping id.
    to_global_mapping: Vec<MappingId>,
    /// Global mapping id → local mapping id (live mappings only).
    to_local_mapping: BTreeMap<MappingId, MappingId>,
}

impl Shard {
    /// Global peer ids covered by this shard, ascending.
    pub fn peers(&self) -> &[PeerId] {
        &self.peers
    }

    /// The shard's engine session (identifiers inside are shard-local).
    pub fn session(&self) -> &EngineSession {
        &self.session
    }

    /// Translates a shard-local mapping id to its global id.
    pub fn global_mapping(&self, local: MappingId) -> MappingId {
        self.to_global_mapping[local.0]
    }

    /// Translates a global mapping id to this shard's local id, if the mapping is a
    /// live member of the shard.
    pub fn local_mapping(&self, global: MappingId) -> Option<MappingId> {
        self.to_local_mapping.get(&global).copied()
    }

    /// Translates a shard-local peer id to its global id.
    pub fn global_peer(&self, local: PeerId) -> PeerId {
        self.peers[local.0]
    }

    /// Translates a global peer id to this shard's local id, if the peer belongs to
    /// the shard.
    pub fn local_peer(&self, global: PeerId) -> Option<PeerId> {
        self.peers.binary_search(&global).ok().map(PeerId)
    }
}

/// What one [`ShardedSession::apply_batch`] call did, accumulated over its chunks.
#[derive(Debug, Clone, Copy, Default)]
pub struct BatchReport {
    /// Batches the submitted slice was split into ([`AnalysisConfig::batch_size`]).
    pub batches: usize,
    /// Events that actually changed the catalog.
    pub events_applied: usize,
    /// Events that were no-ops.
    pub events_ignored: usize,
    /// Mappings added *and* removed within one batch: slots were allocated and
    /// tombstoned for id stability, but no evidence work was done for them.
    pub mappings_coalesced: usize,
    /// Component merges (a mapping arrived between two shards).
    pub merges: usize,
    /// Component splits (the last connecting mapping left).
    pub splits: usize,
    /// Shards that received an incremental apply (one inference pass each).
    pub shards_touched: usize,
    /// Shards rebuilt from the final catalog (merge, split, or a new component).
    pub shards_rebuilt: usize,
    /// Inference rounds summed over every dispatched shard.
    pub rounds: usize,
}

impl BatchReport {
    fn absorb(&mut self, other: BatchReport) {
        self.batches += other.batches;
        self.events_applied += other.events_applied;
        self.events_ignored += other.events_ignored;
        self.mappings_coalesced += other.mappings_coalesced;
        self.merges += other.merges;
        self.splits += other.splits;
        self.shards_touched += other.shards_touched;
        self.shards_rebuilt += other.shards_rebuilt;
        self.rounds += other.rounds;
    }
}

/// Cumulative statistics of a sharded session.
#[derive(Debug, Clone, Copy, Default)]
pub struct ShardedStats {
    /// Batches ingested over the session's lifetime.
    pub batches: usize,
    /// Events that changed the catalog.
    pub events_applied: usize,
    /// Coalesced add/remove pairs.
    pub mappings_coalesced: usize,
    /// Component merges observed.
    pub merges: usize,
    /// Component splits observed.
    pub splits: usize,
    /// Incremental shard applies dispatched.
    pub shard_applies: usize,
    /// Shard rebuilds dispatched.
    pub shard_rebuilds: usize,
}

/// One pending unit of shard work inside a batch dispatch.
enum ShardTask {
    /// Untouched shard: carried over as-is.
    Keep(Shard),
    /// Intact shard with queued (already shard-local) events: one incremental
    /// apply.
    Apply(Shard, Vec<NetworkEvent>),
    /// Component whose shard must be (re)built from the final global catalog.
    Build(Vec<PeerId>),
}

/// A component-sharded incremental inference session over an evolving catalog.
///
/// Built with [`crate::engine::Engine::builder`]`.build_sharded(catalog)`. Exact by
/// construction: evidence paths never cross weak-component boundaries, so
/// per-shard inference reproduces the single-session posteriors (bit-identically
/// under deterministic backend configurations — see `docs/SHARDING.md`).
///
/// ```
/// use pdms_core::{Engine, NetworkEvent};
/// use pdms_schema::{AttributeId, Catalog, MappingId};
///
/// // Two independent two-peer islands: two weakly connected components.
/// let mut catalog = Catalog::new();
/// let identity = |mut m: pdms_schema::MappingBuilder| {
///     for i in 0..3 {
///         m = m.correct(AttributeId(i), AttributeId(i));
///     }
///     m
/// };
/// for island in ["a", "b"] {
///     let x = catalog.add_peer_with_schema(format!("{island}0"), |s| {
///         s.attributes(["x", "y", "z"]);
///     });
///     let y = catalog.add_peer_with_schema(format!("{island}1"), |s| {
///         s.attributes(["x", "y", "z"]);
///     });
///     catalog.add_mapping(x, y, identity);
///     catalog.add_mapping(y, x, identity);
/// }
///
/// let mut session = Engine::builder().delta(0.1).build_sharded(catalog);
/// assert_eq!(session.shard_count(), 2);
///
/// // Batched ingestion: the corruption touches only the first island, so exactly
/// // one shard runs an inference pass — the other is never visited.
/// let report = session.apply_batch(&[NetworkEvent::Corrupt {
///     mapping: MappingId(0),
///     attribute: AttributeId(0),
///     wrong_target: AttributeId(1),
/// }]);
/// assert_eq!(report.shards_touched, 1);
/// assert_eq!(report.shards_rebuilt, 0);
/// assert!(session.posteriors().mapping_probability(MappingId(0)) < 0.5);
/// assert!(session.posteriors().mapping_probability(MappingId(2)) > 0.5);
/// ```
#[derive(Debug)]
pub struct ShardedSession {
    catalog: Catalog,
    /// Live mirror of the global mapping network (edge ids = mapping ids,
    /// tombstones aligned).
    topology: DiGraph,
    components: IncrementalComponents,
    /// Shards ordered by their smallest global peer id.
    shards: Vec<Shard>,
    /// Global peer id → index into `shards`.
    peer_shard: Vec<usize>,
    /// Global (live) mapping id → index into `shards`.
    mapping_shard: BTreeMap<MappingId, usize>,
    seed: ShardSeed,
    /// Posterior snapshot merged over all shards, keyed by global ids.
    merged: PosteriorTable,
    stats: ShardedStats,
}

impl std::fmt::Debug for ShardSeed {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardSeed")
            .field("granularity", &self.granularity)
            .field("delta", &self.delta)
            .field("backend", &self.backend.name())
            .finish_non_exhaustive()
    }
}

impl ShardedSession {
    /// Builds the session: partitions `catalog` into weak components and builds one
    /// engine session per component, dispatched in parallel.
    pub(crate) fn build(builder: EngineBuilder, catalog: Catalog) -> ShardedSession {
        let parts = builder.into_parts();
        let delta = parts
            .delta
            .unwrap_or_else(|| estimate_delta_for_catalog(&catalog));
        let seed = ShardSeed {
            analysis: parts.analysis,
            granularity: parts.granularity,
            backend: parts.backend,
            priors: parts.priors,
            delta,
        };
        let topology = build_topology(&catalog);
        let components = IncrementalComponents::from_graph(&topology);
        let partitions: Vec<Vec<PeerId>> = components
            .partitions()
            .into_iter()
            .map(|nodes| nodes.into_iter().map(|n| PeerId(n.0)).collect())
            .collect();
        let workers = effective_shard_parallelism(seed.analysis.shard_parallelism);
        let catalog_ref = &catalog;
        let seed_ref = &seed;
        let shards = run_stealing(workers, partitions.len(), |i| {
            build_shard(catalog_ref, &partitions[i], seed_ref)
        });
        let mut session = ShardedSession {
            catalog,
            topology,
            components,
            shards,
            peer_shard: Vec::new(),
            mapping_shard: BTreeMap::new(),
            seed,
            merged: PosteriorTable::new(0.5),
            stats: ShardedStats::default(),
        };
        session.reindex();
        session.remerge();
        session
    }

    /// The catalog in its current (post-batches) state, with global identifiers.
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// The live global topology mirror (edge ids = mapping ids).
    pub fn topology(&self) -> &DiGraph {
        &self.topology
    }

    /// Number of shards (= weakly connected components, including isolated peers).
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The shards, ordered by their smallest global peer id.
    pub fn shards(&self) -> &[Shard] {
        &self.shards
    }

    /// The shard covering a peer.
    pub fn shard_of(&self, peer: PeerId) -> &Shard {
        &self.shards[self.peer_shard[peer.0]]
    }

    /// The merged posterior snapshot, keyed by global mapping ids — what routing
    /// and evaluation run against. Identical to the table a single
    /// [`EngineSession`] over the whole catalog serves.
    pub fn posteriors(&self) -> &PosteriorTable {
        &self.merged
    }

    /// Δ in effect: pinned at build time (builder override, else the estimate over
    /// the initial catalog). Unlike [`EngineSession::delta`], the value does not
    /// track later schema growth — shard rebuilds must agree with the sessions
    /// built before them.
    pub fn delta(&self) -> f64 {
        self.seed.delta
    }

    /// Name of the inference backend every shard runs.
    pub fn backend_name(&self) -> &'static str {
        self.seed.backend.name()
    }

    /// Cumulative session statistics.
    pub fn stats(&self) -> &ShardedStats {
        &self.stats
    }

    /// Evidence paths summed over all shards (each path lives in exactly one).
    pub fn evidence_count(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.session.analysis().evidences.len())
            .sum()
    }

    /// The evidence paths of every shard, translated to global identifiers and
    /// re-numbered into the canonical global order: every cycle first (stably
    /// ordered by origin peer), then every parallel-path pair (stably ordered by
    /// source peer).
    ///
    /// On a freshly built (or rebuilt) session this is **exactly** the enumeration
    /// order — and therefore the evidence ids — of a single-session engine over the
    /// same catalog: the global enumerators emit per-origin blocks in ascending
    /// origin order, shard-local enumeration preserves each block verbatim, and the
    /// stable merge re-interleaves the blocks of different shards. After
    /// incremental churn, evidence a shard appended later sorts into its origin's
    /// block (the single session appends at its global tail instead), so the view
    /// stays deterministic but id-for-id equality is only guaranteed for freshly
    /// built states — compare churned sessions as sets.
    pub fn merged_evidences(&self) -> Vec<EvidencePath> {
        let mut cycles: Vec<(PeerId, EvidencePath)> = Vec::new();
        let mut paths: Vec<(PeerId, EvidencePath)> = Vec::new();
        for shard in &self.shards {
            for evidence in &shard.session.analysis().evidences {
                let mappings = evidence
                    .mappings
                    .iter()
                    .map(|m| shard.global_mapping(*m))
                    .collect();
                match evidence.source {
                    EvidenceSource::Cycle { origin } => {
                        let origin = shard.global_peer(origin);
                        cycles.push((
                            origin,
                            EvidencePath {
                                id: 0,
                                source: EvidenceSource::Cycle { origin },
                                mappings,
                                split: evidence.split,
                            },
                        ));
                    }
                    EvidenceSource::ParallelPaths {
                        source,
                        destination,
                    } => {
                        let source = shard.global_peer(source);
                        paths.push((
                            source,
                            EvidencePath {
                                id: 0,
                                source: EvidenceSource::ParallelPaths {
                                    source,
                                    destination: shard.global_peer(destination),
                                },
                                mappings,
                                split: evidence.split,
                            },
                        ));
                    }
                }
            }
        }
        cycles.sort_by_key(|(origin, _)| *origin);
        paths.sort_by_key(|(source, _)| *source);
        let mut out = Vec::with_capacity(cycles.len() + paths.len());
        for (_, mut evidence) in cycles.into_iter().chain(paths) {
            evidence.id = out.len();
            out.push(evidence);
        }
        out
    }

    /// Applies a batch of network events: coalesces add/remove pairs, groups the
    /// rest by destination shard, and triggers **one** analysis/inference pass per
    /// touched shard (instead of one per event), dispatching shards in parallel
    /// over [`AnalysisConfig::shard_parallelism`] workers. Components that merge or
    /// split are rebuilt from the final catalog; shards no event touches are not
    /// visited.
    ///
    /// Slices longer than the resolved [`AnalysisConfig::batch_size`] are split
    /// into consecutive batches; the returned report accumulates over them.
    ///
    /// ```
    /// use pdms_core::{Engine, NetworkEvent};
    /// use pdms_schema::{AttributeId, Catalog, MappingId, PeerId};
    ///
    /// let mut catalog = Catalog::new();
    /// for name in ["a", "b"] {
    ///     catalog.add_peer_with_schema(name, |s| { s.attributes(["x", "y"]); });
    /// }
    /// let mut session = Engine::builder().delta(0.1).build_sharded(catalog);
    /// assert_eq!(session.shard_count(), 2); // two isolated peers
    ///
    /// // One batch: connect the peers both ways (a component merge), and add +
    /// // remove a throwaway mapping, which coalesces to no evidence work at all.
    /// let link = |s: usize, t: usize| NetworkEvent::AddMapping {
    ///     source: PeerId(s),
    ///     target: PeerId(t),
    ///     correspondences: vec![
    ///         (AttributeId(0), AttributeId(0), Some(AttributeId(0))),
    ///         (AttributeId(1), AttributeId(1), Some(AttributeId(1))),
    ///     ],
    /// };
    /// let report = session.apply_batch(&[
    ///     link(0, 1),
    ///     link(1, 0),
    ///     link(0, 1),                                      // will get MappingId(2)
    ///     NetworkEvent::RemoveMapping { mapping: MappingId(2) },
    /// ]);
    /// assert_eq!(report.merges, 1);
    /// assert_eq!(report.mappings_coalesced, 1);
    /// assert_eq!(session.shard_count(), 1); // the islands merged into one shard
    /// assert!(session.posteriors().mapping_probability(MappingId(0)) > 0.5);
    /// ```
    pub fn apply_batch(&mut self, events: &[NetworkEvent]) -> BatchReport {
        let size = effective_batch_size(self.seed.analysis.batch_size);
        let mut report = BatchReport::default();
        if size == 0 || events.len() <= size {
            report.absorb(self.apply_chunk(events));
        } else {
            for chunk in events.chunks(size) {
                report.absorb(self.apply_chunk(chunk));
            }
        }
        report
    }

    /// Folds every shard's posteriors back into its priors (the Section 4.4
    /// update), shard by shard.
    pub fn update_priors(&mut self) {
        for shard in &mut self.shards {
            shard.session.update_priors();
        }
    }

    /// The prior currently in effect for a global `(mapping, attribute)` variable.
    pub fn prior(&self, key: &VariableKey) -> f64 {
        match self.mapping_shard.get(&key.mapping) {
            Some(&idx) => {
                let shard = &self.shards[idx];
                let local = VariableKey {
                    mapping: shard.to_local_mapping[&key.mapping],
                    attribute: key.attribute,
                };
                shard.session.priors().prior(&local)
            }
            None => self.seed.priors.default_prior(),
        }
    }

    /// Routes one query from `origin` against the merged posterior snapshot — the
    /// global catalog and global identifiers, exactly like
    /// [`EngineSession::route`].
    pub fn route(&self, origin: PeerId, query: &Query, policy: &RoutingPolicy) -> RoutingOutcome {
        route_query(&self.catalog, &self.merged, origin, query, policy)
    }

    /// Routes a whole workload against one merged posterior snapshot.
    pub fn route_all(
        &self,
        requests: &[(PeerId, Query)],
        policy: &RoutingPolicy,
    ) -> Vec<RoutingOutcome> {
        requests
            .iter()
            .map(|(origin, query)| route_query(&self.catalog, &self.merged, *origin, query, policy))
            .collect()
    }

    /// Evaluates erroneous-mapping detection at threshold θ against ground truth,
    /// using the merged posteriors.
    pub fn evaluate(&self, theta: f64) -> EvaluationReport {
        precision_recall(&self.catalog, &self.merged, theta)
    }

    /// Discards every shard and rebuilds the whole partition from the current
    /// catalog (the non-incremental path).
    pub fn rebuild_from_scratch(&mut self) {
        self.topology = build_topology(&self.catalog);
        self.components = IncrementalComponents::from_graph(&self.topology);
        let partitions: Vec<Vec<PeerId>> = self
            .components
            .partitions()
            .into_iter()
            .map(|nodes| nodes.into_iter().map(|n| PeerId(n.0)).collect())
            .collect();
        let workers = effective_shard_parallelism(self.seed.analysis.shard_parallelism);
        let catalog = &self.catalog;
        let seed = &self.seed;
        self.shards = run_stealing(workers, partitions.len(), |i| {
            build_shard(catalog, &partitions[i], seed)
        });
        self.stats.shard_rebuilds += self.shards.len();
        self.reindex();
        self.remerge();
    }

    /// One ingestion batch: sequential global application + shard routing, then
    /// parallel dispatch.
    fn apply_chunk(&mut self, events: &[NetworkEvent]) -> BatchReport {
        let mut report = BatchReport {
            batches: 1,
            ..BatchReport::default()
        };
        let doomed = doomed_additions(&self.catalog, events);
        // Shard-local event queues and structural damage, keyed by the shard's
        // *current* index. Queued events are translated eagerly; a shard that later
        // turns out broken simply drops its queue (the rebuild reads the final
        // catalog, which already contains every change).
        let mut queued: BTreeMap<usize, Vec<NetworkEvent>> = BTreeMap::new();
        let mut broken: BTreeSet<usize> = BTreeSet::new();
        for event in events {
            // `retired` is non-empty only for RemovePeer: the mappings its single
            // PeerRetired effect withdrew.
            let Some((effect, retired)) = apply_event_traced(&mut self.catalog, event) else {
                report.events_ignored += 1;
                continue;
            };
            report.events_applied += 1;
            match effect {
                EventEffect::PeerAdded(_) => {
                    let node = self.topology.add_node();
                    self.components.add_node();
                    // The new singleton component gets its shard in the dispatch
                    // phase; no existing shard is concerned.
                    self.peer_shard.push(usize::MAX);
                    debug_assert_eq!(node.0 + 1, self.catalog.peer_count());
                }
                EventEffect::MappingAdded(mapping) => {
                    let (source, target) = self.catalog.mapping_endpoints(mapping);
                    let edge = self.topology.add_edge(NodeId(source.0), NodeId(target.0));
                    debug_assert_eq!(edge.0, mapping.0, "mirror edge ids = mapping ids");
                    if doomed.contains(&mapping) {
                        // A later event of this batch removes the mapping again:
                        // tombstone the edge now so no in-batch discovery routes
                        // evidence through it, and skip all shard work for it.
                        self.topology.remove_edge(edge);
                        continue;
                    }
                    match self.components.merge(NodeId(source.0), NodeId(target.0)) {
                        MergeOutcome::AlreadyJoined => {
                            self.queue_add(mapping, source, event, &mut queued, &broken);
                        }
                        MergeOutcome::Merged { .. } => {
                            report.merges += 1;
                            for endpoint in [source, target] {
                                let idx = self.peer_shard[endpoint.0];
                                if idx != usize::MAX {
                                    broken.insert(idx);
                                }
                            }
                        }
                    }
                }
                EventEffect::MappingRemoved(mapping) => {
                    self.unqueue_removal(mapping, &doomed, &mut queued, &mut broken, &mut report);
                }
                EventEffect::PeerRetired(_) => {
                    for mapping in retired {
                        self.unqueue_removal(
                            mapping,
                            &doomed,
                            &mut queued,
                            &mut broken,
                            &mut report,
                        );
                    }
                }
                EventEffect::MappingChanged(mapping) => {
                    if let Some(&idx) = self.mapping_shard.get(&mapping) {
                        if !broken.contains(&idx) {
                            let local = self.shards[idx].to_local_mapping[&mapping];
                            queued
                                .entry(idx)
                                .or_default()
                                .push(retarget_mapping_event(event, local));
                        }
                    }
                }
            }
        }

        // Reconcile the final partition against the surviving shards and dispatch.
        let partitions: Vec<Vec<PeerId>> = self
            .components
            .partitions()
            .into_iter()
            .map(|nodes| nodes.into_iter().map(|n| PeerId(n.0)).collect())
            .collect();
        let old_shards = std::mem::take(&mut self.shards);
        let mut old_by_first: BTreeMap<PeerId, usize> = BTreeMap::new();
        for (i, shard) in old_shards.iter().enumerate() {
            old_by_first.insert(shard.peers[0], i);
        }
        let mut old_slots: Vec<Option<Shard>> = old_shards.into_iter().map(Some).collect();
        let tasks: Vec<ShardTask> = partitions
            .into_iter()
            .map(|peers| match old_by_first.get(&peers[0]) {
                Some(&oi)
                    if !broken.contains(&oi)
                        && old_slots[oi].as_ref().is_some_and(|s| s.peers == peers) =>
                {
                    let shard = old_slots[oi].take().expect("matched shard present");
                    match queued.remove(&oi) {
                        Some(events) => ShardTask::Apply(shard, events),
                        None => ShardTask::Keep(shard),
                    }
                }
                _ => ShardTask::Build(peers),
            })
            .collect();
        let workers = effective_shard_parallelism(self.seed.analysis.shard_parallelism);
        let slots: Vec<Mutex<Option<ShardTask>>> =
            tasks.into_iter().map(|t| Mutex::new(Some(t))).collect();
        let catalog = &self.catalog;
        let seed = &self.seed;
        // (shard, incremental rounds, was it an apply, was it a rebuild)
        let results: Vec<(Shard, usize, bool, bool)> = run_stealing(workers, slots.len(), |i| {
            let task = slots[i]
                .lock()
                .expect("shard task lock")
                .take()
                .expect("each task taken once");
            match task {
                ShardTask::Keep(shard) => (shard, 0, false, false),
                ShardTask::Apply(mut shard, events) => {
                    let apply = shard.session.apply(&events);
                    (shard, apply.rounds, true, false)
                }
                ShardTask::Build(peers) => {
                    let shard = build_shard(catalog, &peers, seed);
                    let rounds = shard.session.rounds();
                    (shard, rounds, false, true)
                }
            }
        });
        // Snapshot maintenance is proportional to the *changed* shards, not the
        // catalog: entries of every mapping a discarded or changed shard covered
        // are cleared, then re-filled from the changed shards' fresh tables.
        // Untouched shards keep their (disjoint-keyed) entries verbatim.
        let mut dirty_mappings: BTreeSet<MappingId> = BTreeSet::new();
        for discarded in old_slots.into_iter().flatten() {
            dirty_mappings.extend(discarded.to_global_mapping.iter().copied());
        }
        let old_shard_count = old_by_first.len();
        let mut changed: Vec<usize> = Vec::new();
        self.shards = Vec::with_capacity(results.len());
        for (shard, rounds, applied, rebuilt) in results {
            report.rounds += rounds;
            if applied {
                report.shards_touched += 1;
            }
            if rebuilt {
                report.shards_rebuilt += 1;
            }
            if applied || rebuilt {
                dirty_mappings.extend(shard.to_global_mapping.iter().copied());
                changed.push(self.shards.len());
            }
            self.shards.push(shard);
        }
        report.mappings_coalesced = doomed.len();
        // Shard indices only shift when the partition itself changed — every
        // partition change goes through a rebuild, so a rebuild-free batch keeps
        // the peer/mapping indices valid as incrementally maintained above.
        if report.shards_rebuilt > 0 || self.shards.len() != old_shard_count {
            self.reindex();
        }
        for mapping in &dirty_mappings {
            self.merged.clear_mapping(*mapping);
        }
        for &i in &changed {
            fill_from_shard(&mut self.merged, &self.shards[i]);
        }
        self.stats.batches += 1;
        self.stats.events_applied += report.events_applied;
        self.stats.mappings_coalesced += report.mappings_coalesced;
        self.stats.merges += report.merges;
        self.stats.splits += report.splits;
        self.stats.shard_applies += report.shards_touched;
        self.stats.shard_rebuilds += report.shards_rebuilt;
        report
    }

    /// Queues an intra-component mapping addition on its shard, registering the
    /// predicted local slot so later events of the batch can name the mapping.
    fn queue_add(
        &mut self,
        mapping: MappingId,
        source: PeerId,
        event: &NetworkEvent,
        queued: &mut BTreeMap<usize, Vec<NetworkEvent>>,
        broken: &BTreeSet<usize>,
    ) {
        let idx = self.peer_shard[source.0];
        if idx == usize::MAX || broken.contains(&idx) {
            // Component created in this batch (new peers) or a shard already due
            // for a rebuild: the rebuild phase reads the final catalog.
            return;
        }
        let NetworkEvent::AddMapping {
            source: _,
            target,
            correspondences,
        } = event
        else {
            unreachable!("MappingAdded comes from AddMapping events");
        };
        let shard = &mut self.shards[idx];
        let local_source = shard
            .local_peer(source)
            .expect("shard covers the mapping source");
        let local_target = shard
            .local_peer(*target)
            .expect("shard covers the mapping target");
        // Queued additions allocate shard-local slots in queue order, right after
        // the slots the sub-catalog already has.
        let pending = queued.entry(idx).or_default();
        let pending_adds = pending
            .iter()
            .filter(|e| matches!(e, NetworkEvent::AddMapping { .. }))
            .count();
        let local_id = MappingId(shard.session.catalog().mapping_slot_count() + pending_adds);
        shard.to_global_mapping.push(mapping);
        debug_assert_eq!(shard.to_global_mapping.len() - 1, local_id.0);
        shard.to_local_mapping.insert(mapping, local_id);
        self.mapping_shard.insert(mapping, idx);
        pending.push(NetworkEvent::AddMapping {
            source: local_source,
            target: local_target,
            correspondences: correspondences.clone(),
        });
    }

    /// Processes one (non-coalesced) mapping removal: topology + component
    /// maintenance, then either queues the shard-local removal or marks the shard
    /// broken when the component split.
    fn unqueue_removal(
        &mut self,
        mapping: MappingId,
        doomed: &BTreeSet<MappingId>,
        queued: &mut BTreeMap<usize, Vec<NetworkEvent>>,
        broken: &mut BTreeSet<usize>,
        report: &mut BatchReport,
    ) {
        if doomed.contains(&mapping) {
            // Added by this very batch: the mirror edge is already tombstoned and
            // no shard ever saw the mapping.
            return;
        }
        let (source, target) = self.catalog.mapping_endpoints(mapping);
        self.topology.remove_edge(EdgeId(mapping.0));
        let split = self
            .components
            .split(&self.topology, NodeId(source.0), NodeId(target.0));
        let idx = self.mapping_shard.remove(&mapping);
        match split {
            SplitOutcome::StillConnected => {
                if let Some(idx) = idx {
                    if !broken.contains(&idx) {
                        let shard = &mut self.shards[idx];
                        let local = shard
                            .to_local_mapping
                            .remove(&mapping)
                            .expect("shard tracks its live mappings");
                        queued
                            .entry(idx)
                            .or_default()
                            .push(NetworkEvent::RemoveMapping { mapping: local });
                    }
                }
            }
            SplitOutcome::Split { .. } => {
                report.splits += 1;
                if let Some(idx) = idx {
                    broken.insert(idx);
                }
            }
        }
    }

    /// Rebuilds the peer → shard and global-mapping → shard indices.
    fn reindex(&mut self) {
        self.peer_shard = vec![usize::MAX; self.catalog.peer_count()];
        self.mapping_shard.clear();
        for (i, shard) in self.shards.iter().enumerate() {
            for peer in &shard.peers {
                self.peer_shard[peer.0] = i;
            }
            for global in shard.to_local_mapping.keys() {
                self.mapping_shard.insert(*global, i);
            }
        }
    }

    /// Rebuilds the merged posterior snapshot from the shard tables (global keys;
    /// deterministic, since keys are disjoint across shards).
    fn remerge(&mut self) {
        let mut merged = PosteriorTable::new(self.seed.priors.default_prior());
        for shard in &self.shards {
            fill_from_shard(&mut merged, shard);
        }
        self.merged = merged;
    }
}

/// Copies one shard's posterior entries into a merged table under global mapping
/// ids. Order matters: coarse entries must land before fine ones, because
/// [`PosteriorTable::set`] min-folds each fine value into the coarse slot — a
/// no-op once the shard's own (already min-folded) coarse value is in place, but
/// corrupting if fine values arrived first against a stale or missing coarse
/// entry.
fn fill_from_shard(merged: &mut PosteriorTable, shard: &Shard) {
    let table = shard.session.posteriors();
    for (local, p) in table.coarse_entries() {
        merged.set_coarse(shard.global_mapping(local), p);
    }
    for (local, attribute, p) in table.fine_entries() {
        merged.set(shard.global_mapping(local), attribute, p);
    }
}

/// Builds one shard from the global catalog: the sub-catalog replicates the
/// component's peers (ascending global id) and live mappings (ascending global
/// mapping id), which makes shard-local enumeration order-isomorphic to the global
/// one restricted to the component.
fn build_shard(catalog: &Catalog, peers: &[PeerId], seed: &ShardSeed) -> Shard {
    let mut sub = Catalog::new();
    for &peer in peers {
        let names: Vec<String> = catalog
            .peer_schema(peer)
            .attributes()
            .map(|a| a.name.clone())
            .collect();
        sub.add_peer_with_schema(catalog.peer_name(peer).to_string(), |schema| {
            for name in names {
                schema.attribute(name);
            }
        });
    }
    let local_peer = |global: PeerId| {
        PeerId(
            peers
                .binary_search(&global)
                .expect("mapping endpoint belongs to the component"),
        )
    };
    let mut to_global_mapping = Vec::new();
    let mut to_local_mapping = BTreeMap::new();
    for mapping in catalog.mappings() {
        let (source, target) = catalog.mapping_endpoints(mapping);
        if peers.binary_search(&source).is_err() {
            continue;
        }
        let global = catalog.mapping(mapping);
        let local = sub.add_mapping(local_peer(source), local_peer(target), |mut builder| {
            for (attribute, correspondence) in global.correspondences() {
                builder = match correspondence.expected {
                    Some(expected) if expected == correspondence.target => {
                        builder.correct(attribute, correspondence.target)
                    }
                    Some(expected) => builder.erroneous(attribute, correspondence.target, expected),
                    None => builder.unjudged(attribute, correspondence.target),
                };
            }
            builder
        });
        debug_assert_eq!(local.0, to_global_mapping.len());
        to_global_mapping.push(mapping);
        to_local_mapping.insert(mapping, local);
    }
    // Remap the initial priors onto shard-local ids.
    let mut priors = PriorStore::with_default(seed.priors.default_prior());
    for (key, p) in seed.priors.snapshot() {
        if let Some(&local) = to_local_mapping.get(&key.mapping) {
            priors.set_initial(
                VariableKey {
                    mapping: local,
                    attribute: key.attribute,
                },
                p,
            );
        }
    }
    let session = EngineBuilder::new()
        .analysis(seed.analysis.clone())
        .granularity(seed.granularity)
        .delta(seed.delta)
        .backend_arc(seed.backend.clone())
        .priors(priors)
        .build(sub);
    Shard {
        peers: peers.to_vec(),
        session,
        to_global_mapping,
        to_local_mapping,
    }
}

/// Re-targets a correspondence-level event at a shard-local mapping id.
fn retarget_mapping_event(event: &NetworkEvent, local: MappingId) -> NetworkEvent {
    match event {
        NetworkEvent::Corrupt {
            attribute,
            wrong_target,
            ..
        } => NetworkEvent::Corrupt {
            mapping: local,
            attribute: *attribute,
            wrong_target: *wrong_target,
        },
        NetworkEvent::Repair { attribute, .. } => NetworkEvent::Repair {
            mapping: local,
            attribute: *attribute,
        },
        NetworkEvent::Drop { attribute, .. } => NetworkEvent::Drop {
            mapping: local,
            attribute: *attribute,
        },
        other => unreachable!("not a correspondence-level event: {other:?}"),
    }
}

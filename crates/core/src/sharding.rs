//! Component-sharded engine sessions with batched event ingestion.
//!
//! All structural evidence of the paper's model — directed mapping cycles
//! (Section 3.2.1) and pairs of edge-disjoint parallel paths — is a *connected*
//! subgraph of the mapping network, so no evidence path can ever cross a weakly
//! connected component boundary. Partitioning the catalog into its weak components
//! and running one independent [`EngineSession`] per component is therefore
//! **exact**, not an approximation: every factor of the global model lives entirely
//! inside one shard, per-shard inference sees exactly the factors the global model
//! would connect to its variables, and posteriors merge by (globally unique) mapping
//! id. `tests/sharded_session.rs` asserts bit-identical posteriors against the
//! single-session engine.
//!
//! A [`ShardedSession`] owns:
//!
//! * the **global catalog** and a live topology mirror (edge ids = mapping ids);
//! * an incrementally maintained weak-component partition
//!   ([`pdms_graph::IncrementalComponents`]): mapping additions union two
//!   components in near-constant time, removals re-check connectivity of the
//!   affected component only;
//! * one [`EngineSession`] per component, built over a **sub-catalog** whose peers
//!   and live mappings are inserted in ascending global-id order — which makes
//!   shard-local evidence enumeration order-isomorphic to the global enumeration
//!   restricted to the shard.
//!
//! [`ShardedSession::apply_batch`] is the batched ingestion path: events are
//! applied to the global catalog in order, **coalesced** (a mapping added and
//! removed inside one batch never has evidence searched for it), **grouped by
//! destination shard**, and dispatched — one incremental inference pass per touched
//! shard instead of one per event, in parallel over the
//! [`AnalysisConfig::shard_parallelism`] worker pool. Untouched shards are not
//! visited at all.
//!
//! Shards whose component **merges or splits** take the *warm splice path* instead
//! of a cold rebuild: the donor shards' cached [`crate::cycle_analysis::CycleAnalysis`]
//! state is remapped onto the new shard's local ids (every donor evidence path
//! survives a merge verbatim, and survives a split exactly when all of its mappings
//! stayed on the same side), only the evidence through the *bridging* mappings is
//! searched — the targeted per-edge DFS of [`pdms_graph::cycles_through_edge`] /
//! [`pdms_graph::parallel_paths_through_edge`], never a full re-enumeration — and
//! inference warm-starts from the donors' converged posteriors so only the new
//! evidence's neighborhood re-activates. An edge between two previously separate
//! peer islands is the dominant structural event in a growing PDMS; splicing makes
//! it cost the bridge, not the islands. `PDMS_SPLICE=0` (or
//! [`crate::session::EngineBuilder::splice`]`(false)`) falls back to cold rebuilds;
//! results are identical either way. See `docs/SHARDING.md` for the lifecycle, the
//! exactness argument and a worked event trace.

use crate::backend::InferenceBackend;
use crate::cycle_analysis::{build_topology, AnalysisConfig, CycleAnalysis};
use crate::cycle_analysis::{EvidencePath, EvidenceSource};
use crate::delta::estimate_delta_for_catalog;
use crate::dynamics::{apply_event_traced, EventEffect, NetworkEvent};
use crate::feedback::FeedbackObservation;
use crate::local_graph::{Granularity, VariableKey};
use crate::metrics::{precision_recall, EvaluationReport};
use crate::posterior::PosteriorTable;
use crate::priors::PriorStore;
use crate::routing::{route_query, RoutingOutcome, RoutingPolicy};
use crate::session::{doomed_additions, EngineBuilder, EngineSession, SplicedParts};
use pdms_graph::{
    effective_batch_size, effective_shard_parallelism, effective_splice, run_stealing, DiGraph,
    EdgeId, IncrementalComponents, MergeOutcome, NodeId, SplitOutcome,
};
use pdms_schema::{Catalog, MappingId, PeerId, Query};
use std::collections::{BTreeMap, BTreeSet};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Everything needed to build (and re-build, after merges and splits) the
/// per-component [`EngineSession`]s.
struct ShardSeed {
    analysis: AnalysisConfig,
    granularity: Granularity,
    backend: Arc<dyn InferenceBackend>,
    /// The builder-provided prior store; shard builds remap its snapshot onto
    /// shard-local mapping ids.
    priors: PriorStore,
    /// The compensating-error probability Δ, pinned at
    /// [`ShardedSession::build`] time (the builder override, else the estimate
    /// over the initial global catalog). Sub-catalogs must not re-estimate Δ from
    /// their own schemas, or per-shard posteriors would diverge from the global
    /// model's.
    delta: f64,
}

/// One connected-component shard: the peers it covers and the incremental session
/// running on its sub-catalog.
///
/// Shard-local identifiers are dense: local peer `k` is the `k`-th smallest global
/// peer id of the component, and local mapping slots are allocated in ascending
/// global-mapping-id order at build time (then in arrival order for mappings added
/// later). The translation tables are exposed read-only.
#[derive(Debug, Clone)]
pub struct Shard {
    /// Global peer ids covered by this shard, ascending.
    peers: Vec<PeerId>,
    /// The incremental engine session over the shard's sub-catalog.
    session: EngineSession,
    /// Local mapping slot → global mapping id.
    to_global_mapping: Vec<MappingId>,
    /// Global mapping id → local mapping id (live mappings only).
    to_local_mapping: BTreeMap<MappingId, MappingId>,
}

impl Shard {
    /// Global peer ids covered by this shard, ascending.
    pub fn peers(&self) -> &[PeerId] {
        &self.peers
    }

    /// The shard's engine session (identifiers inside are shard-local).
    pub fn session(&self) -> &EngineSession {
        &self.session
    }

    /// Translates a shard-local mapping id to its global id.
    pub fn global_mapping(&self, local: MappingId) -> MappingId {
        self.to_global_mapping[local.0]
    }

    /// Translates a global mapping id to this shard's local id, if the mapping is a
    /// live member of the shard.
    pub fn local_mapping(&self, global: MappingId) -> Option<MappingId> {
        self.to_local_mapping.get(&global).copied()
    }

    /// Translates a shard-local peer id to its global id.
    pub fn global_peer(&self, local: PeerId) -> PeerId {
        self.peers[local.0]
    }

    /// Translates a global peer id to this shard's local id, if the peer belongs to
    /// the shard.
    pub fn local_peer(&self, global: PeerId) -> Option<PeerId> {
        self.peers.binary_search(&global).ok().map(PeerId)
    }
}

/// What one [`ShardedSession::apply_batch`] call did, accumulated over its chunks.
#[derive(Debug, Clone, Copy, Default)]
pub struct BatchReport {
    /// Batches the submitted slice was split into ([`AnalysisConfig::batch_size`]).
    pub batches: usize,
    /// Events that actually changed the catalog.
    pub events_applied: usize,
    /// Events that were no-ops.
    pub events_ignored: usize,
    /// Mappings added *and* removed within one batch: slots were allocated and
    /// tombstoned for id stability, but no evidence work was done for them.
    pub mappings_coalesced: usize,
    /// Component merges (a mapping arrived between two shards).
    pub merges: usize,
    /// Component splits (the last connecting mapping left).
    pub splits: usize,
    /// Shards that received an incremental apply (one inference pass each).
    pub shards_touched: usize,
    /// Shards rebuilt cold from the final catalog (a fresh component with no donor
    /// state, or any merge/split while splicing is disabled).
    pub shards_rebuilt: usize,
    /// Shards assembled by the warm splice path (donor analyses remapped, bridge
    /// evidence searched, inference warm-started from the donors' posteriors).
    pub shards_spliced: usize,
    /// Evidence paths discovered through the bridging mappings during splices —
    /// the only enumeration work a splice performs.
    pub splice_evidence_added: usize,
    /// Inference rounds summed over every dispatched shard.
    pub rounds: usize,
    /// Wall time summed over every dispatched shard's apply/splice/rebuild work
    /// (serial-equivalent cost; with parallel dispatch the batch finishes sooner).
    pub shard_time: Duration,
    /// Wall time of the slowest single shard in the batch (the dispatch tail).
    pub slowest_shard: Duration,
}

impl BatchReport {
    fn absorb(&mut self, other: BatchReport) {
        self.batches += other.batches;
        self.events_applied += other.events_applied;
        self.events_ignored += other.events_ignored;
        self.mappings_coalesced += other.mappings_coalesced;
        self.merges += other.merges;
        self.splits += other.splits;
        self.shards_touched += other.shards_touched;
        self.shards_rebuilt += other.shards_rebuilt;
        self.shards_spliced += other.shards_spliced;
        self.splice_evidence_added += other.splice_evidence_added;
        self.rounds += other.rounds;
        self.shard_time += other.shard_time;
        self.slowest_shard = self.slowest_shard.max(other.slowest_shard);
    }
}

/// Cumulative statistics of a sharded session.
#[derive(Debug, Clone, Copy, Default)]
pub struct ShardedStats {
    /// Batches ingested over the session's lifetime.
    pub batches: usize,
    /// Events that changed the catalog.
    pub events_applied: usize,
    /// Coalesced add/remove pairs.
    pub mappings_coalesced: usize,
    /// Component merges observed.
    pub merges: usize,
    /// Component splits observed.
    pub splits: usize,
    /// Incremental shard applies dispatched.
    pub shard_applies: usize,
    /// Cold shard rebuilds dispatched.
    pub shard_rebuilds: usize,
    /// Warm shard splices dispatched (merges and splits served from donor state).
    pub shards_spliced: usize,
    /// Evidence paths discovered through bridging mappings across all splices.
    pub splice_evidence_added: usize,
}

/// One pending unit of shard work inside a batch dispatch.
enum ShardTask {
    /// Untouched shard: carried over as-is.
    Keep(Shard),
    /// Intact shard with queued (already shard-local) events: one incremental
    /// apply.
    Apply(Shard, Vec<NetworkEvent>),
    /// Component whose shard must be (re)built cold from the final global catalog
    /// (no donor state exists, or splicing is disabled).
    Build(Vec<PeerId>),
    /// Component assembled warm from donor shards: donor analyses and posteriors
    /// are remapped, only the listed bridging mappings are searched for evidence,
    /// and the listed edited mappings are re-observed.
    Splice {
        /// The component's peers, ascending global ids.
        peers: Vec<PeerId>,
        /// Indices (into the batch's surviving old-shard slots) of the donors,
        /// ordered by their smallest peer covered by the component.
        donors: Vec<usize>,
        /// Mappings added by this batch whose source lies in the component,
        /// ascending global ids (their evidence is the only enumeration work).
        new_mappings: Vec<MappingId>,
        /// Mappings whose correspondences this batch edited, restricted to the
        /// component (their evidence is re-observed in place).
        edited: Vec<MappingId>,
    },
}

/// How a dispatched shard task was served — the per-shard accounting behind
/// [`BatchReport`].
enum ShardWork {
    Kept,
    Applied,
    Rebuilt,
    Spliced {
        /// Evidence paths discovered through the bridging mappings.
        evidence_added: usize,
    },
}

/// One dispatched shard task's result.
struct ShardOutcome {
    shard: Shard,
    /// Inference rounds the task ran (0 for kept shards).
    rounds: usize,
    work: ShardWork,
    /// Wall time of the task on its worker.
    elapsed: Duration,
}

/// Per-batch scratch reused across [`ShardedSession::apply_batch`] calls: the
/// shard-local event queues and structural-damage flags are indexed by the
/// current shard index and cleared through explicit touch lists, replacing the
/// per-batch `BTreeMap`/`BTreeSet` grouping state (one tree-node allocation per
/// queued shard and broken flag) with flat reusable tables. Queues handed to an
/// `Apply` task are moved out (the worker needs ownership), so a dispatched
/// shard's event buffer is rebuilt next batch; everything else retains its
/// capacity.
#[derive(Debug, Default)]
struct BatchScratch {
    /// Queued shard-local events, indexed by shard.
    queued: Vec<Vec<NetworkEvent>>,
    /// Shards with a non-empty queue (drain list for cheap clearing).
    queued_touched: Vec<usize>,
    /// Structural-damage flag per shard (the shard's component merged or split).
    broken: Vec<bool>,
    /// Shards flagged broken (drain list for cheap clearing).
    broken_list: Vec<usize>,
}

impl BatchScratch {
    /// Sizes the per-shard tables for a batch over `shards` shards and clears any
    /// state a previous batch left behind (buffers keep their capacity).
    fn begin_batch(&mut self, shards: usize) {
        if self.queued.len() < shards {
            self.queued.resize_with(shards, Vec::new);
        }
        if self.broken.len() < shards {
            self.broken.resize(shards, false);
        }
        for idx in self.queued_touched.drain(..) {
            self.queued[idx].clear();
        }
        for idx in self.broken_list.drain(..) {
            self.broken[idx] = false;
        }
    }

    /// Queues one shard-local event.
    fn queue(&mut self, shard: usize, event: NetworkEvent) {
        if self.queued[shard].is_empty() {
            self.queued_touched.push(shard);
        }
        self.queued[shard].push(event);
    }

    /// Flags a shard as structurally damaged.
    fn mark_broken(&mut self, shard: usize) {
        if !self.broken[shard] {
            self.broken[shard] = true;
            self.broken_list.push(shard);
        }
    }
}

/// A component-sharded incremental inference session over an evolving catalog.
///
/// Built with [`crate::engine::Engine::builder`]`.build_sharded(catalog)`. Exact by
/// construction: evidence paths never cross weak-component boundaries, so
/// per-shard inference reproduces the single-session posteriors (bit-identically
/// under deterministic backend configurations — see `docs/SHARDING.md`).
///
/// ```
/// use pdms_core::{Engine, NetworkEvent};
/// use pdms_schema::{AttributeId, Catalog, MappingId};
///
/// // Two independent two-peer islands: two weakly connected components.
/// let mut catalog = Catalog::new();
/// let identity = |mut m: pdms_schema::MappingBuilder| {
///     for i in 0..3 {
///         m = m.correct(AttributeId(i), AttributeId(i));
///     }
///     m
/// };
/// for island in ["a", "b"] {
///     let x = catalog.add_peer_with_schema(format!("{island}0"), |s| {
///         s.attributes(["x", "y", "z"]);
///     });
///     let y = catalog.add_peer_with_schema(format!("{island}1"), |s| {
///         s.attributes(["x", "y", "z"]);
///     });
///     catalog.add_mapping(x, y, identity);
///     catalog.add_mapping(y, x, identity);
/// }
///
/// let mut session = Engine::builder().delta(0.1).build_sharded(catalog);
/// assert_eq!(session.shard_count(), 2);
///
/// // Batched ingestion: the corruption touches only the first island, so exactly
/// // one shard runs an inference pass — the other is never visited.
/// let report = session.apply_batch(&[NetworkEvent::Corrupt {
///     mapping: MappingId(0),
///     attribute: AttributeId(0),
///     wrong_target: AttributeId(1),
/// }]);
/// assert_eq!(report.shards_touched, 1);
/// assert_eq!(report.shards_rebuilt, 0);
/// assert!(session.posteriors().mapping_probability(MappingId(0)) < 0.5);
/// assert!(session.posteriors().mapping_probability(MappingId(2)) > 0.5);
/// ```
#[derive(Debug)]
pub struct ShardedSession {
    catalog: Catalog,
    /// Live mirror of the global mapping network (edge ids = mapping ids,
    /// tombstones aligned).
    topology: DiGraph,
    components: IncrementalComponents,
    /// Shards ordered by their smallest global peer id.
    shards: Vec<Shard>,
    /// Global peer id → index into `shards`.
    peer_shard: Vec<usize>,
    /// Global (live) mapping id → index into `shards`.
    mapping_shard: BTreeMap<MappingId, usize>,
    seed: ShardSeed,
    /// Posterior snapshot merged over all shards, keyed by global ids.
    merged: PosteriorTable,
    stats: ShardedStats,
    /// Reusable per-batch grouping state (see [`BatchScratch`]).
    scratch: BatchScratch,
}

impl std::fmt::Debug for ShardSeed {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardSeed")
            .field("granularity", &self.granularity)
            .field("delta", &self.delta)
            .field("backend", &self.backend.name())
            .finish_non_exhaustive()
    }
}

impl ShardedSession {
    /// Builds the session: partitions `catalog` into weak components and builds one
    /// engine session per component, dispatched in parallel.
    pub(crate) fn build(builder: EngineBuilder, catalog: Catalog) -> ShardedSession {
        let parts = builder.into_parts();
        let delta = parts
            .delta
            .unwrap_or_else(|| estimate_delta_for_catalog(&catalog));
        let seed = ShardSeed {
            analysis: parts.analysis,
            granularity: parts.granularity,
            backend: parts.backend,
            priors: parts.priors,
            delta,
        };
        let topology = build_topology(&catalog);
        let components = IncrementalComponents::from_graph(&topology);
        let partitions: Vec<Vec<PeerId>> = components
            .partitions()
            .into_iter()
            .map(|nodes| nodes.into_iter().map(|n| PeerId(n.0)).collect())
            .collect();
        let workers = effective_shard_parallelism(seed.analysis.shard_parallelism);
        let catalog_ref = &catalog;
        let seed_ref = &seed;
        let shards = run_stealing(workers, partitions.len(), |i| {
            build_shard(catalog_ref, &partitions[i], seed_ref)
        });
        let mut session = ShardedSession {
            catalog,
            topology,
            components,
            shards,
            peer_shard: Vec::new(),
            mapping_shard: BTreeMap::new(),
            seed,
            merged: PosteriorTable::new(0.5),
            stats: ShardedStats::default(),
            scratch: BatchScratch::default(),
        };
        session.reindex();
        session.remerge();
        session
    }

    /// The catalog in its current (post-batches) state, with global identifiers.
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// The live global topology mirror (edge ids = mapping ids).
    pub fn topology(&self) -> &DiGraph {
        &self.topology
    }

    /// Number of shards (= weakly connected components, including isolated peers).
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The shards, ordered by their smallest global peer id.
    pub fn shards(&self) -> &[Shard] {
        &self.shards
    }

    /// The shard covering a peer.
    pub fn shard_of(&self, peer: PeerId) -> &Shard {
        &self.shards[self.peer_shard[peer.0]]
    }

    /// The merged posterior snapshot, keyed by global mapping ids — what routing
    /// and evaluation run against. Identical to the table a single
    /// [`EngineSession`] over the whole catalog serves.
    pub fn posteriors(&self) -> &PosteriorTable {
        &self.merged
    }

    /// Δ in effect: pinned at build time (builder override, else the estimate over
    /// the initial catalog). Unlike [`EngineSession::delta`], the value does not
    /// track later schema growth — shard rebuilds must agree with the sessions
    /// built before them.
    pub fn delta(&self) -> f64 {
        self.seed.delta
    }

    /// Name of the inference backend every shard runs.
    pub fn backend_name(&self) -> &'static str {
        self.seed.backend.name()
    }

    /// Cumulative session statistics.
    pub fn stats(&self) -> &ShardedStats {
        &self.stats
    }

    /// Evidence paths summed over all shards (each path lives in exactly one).
    pub fn evidence_count(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.session.analysis().evidences.len())
            .sum()
    }

    /// The evidence paths of every shard, translated to global identifiers and
    /// re-numbered into the canonical global order: every cycle first (stably
    /// ordered by origin peer), then every parallel-path pair (stably ordered by
    /// source peer).
    ///
    /// On a freshly built (or rebuilt) session this is **exactly** the enumeration
    /// order — and therefore the evidence ids — of a single-session engine over the
    /// same catalog: the global enumerators emit per-origin blocks in ascending
    /// origin order, shard-local enumeration preserves each block verbatim, and the
    /// stable merge re-interleaves the blocks of different shards. After
    /// incremental churn, evidence a shard appended later sorts into its origin's
    /// block (the single session appends at its global tail instead), so the view
    /// stays deterministic but id-for-id equality is only guaranteed for freshly
    /// built states — compare churned sessions as sets.
    pub fn merged_evidences(&self) -> Vec<EvidencePath> {
        let mut cycles: Vec<(PeerId, EvidencePath)> = Vec::new();
        let mut paths: Vec<(PeerId, EvidencePath)> = Vec::new();
        for shard in &self.shards {
            for evidence in &shard.session.analysis().evidences {
                let mappings = evidence
                    .mappings
                    .iter()
                    .map(|m| shard.global_mapping(*m))
                    .collect();
                match evidence.source {
                    EvidenceSource::Cycle { origin } => {
                        let origin = shard.global_peer(origin);
                        cycles.push((
                            origin,
                            EvidencePath {
                                id: 0,
                                source: EvidenceSource::Cycle { origin },
                                mappings,
                                split: evidence.split,
                            },
                        ));
                    }
                    EvidenceSource::ParallelPaths {
                        source,
                        destination,
                    } => {
                        let source = shard.global_peer(source);
                        paths.push((
                            source,
                            EvidencePath {
                                id: 0,
                                source: EvidenceSource::ParallelPaths {
                                    source,
                                    destination: shard.global_peer(destination),
                                },
                                mappings,
                                split: evidence.split,
                            },
                        ));
                    }
                }
            }
        }
        cycles.sort_by_key(|(origin, _)| *origin);
        paths.sort_by_key(|(source, _)| *source);
        let mut out = Vec::with_capacity(cycles.len() + paths.len());
        for (_, mut evidence) in cycles.into_iter().chain(paths) {
            evidence.id = out.len();
            out.push(evidence);
        }
        out
    }

    /// Applies a batch of network events: coalesces add/remove pairs, groups the
    /// rest by destination shard, and triggers **one** analysis/inference pass per
    /// touched shard (instead of one per event), dispatching shards in parallel
    /// over [`AnalysisConfig::shard_parallelism`] workers. Components that merge or
    /// split are rebuilt from the final catalog; shards no event touches are not
    /// visited.
    ///
    /// Slices longer than the resolved [`AnalysisConfig::batch_size`] are split
    /// into consecutive batches; the returned report accumulates over them.
    ///
    /// ```
    /// use pdms_core::{Engine, NetworkEvent};
    /// use pdms_schema::{AttributeId, Catalog, MappingId, PeerId};
    ///
    /// let mut catalog = Catalog::new();
    /// for name in ["a", "b"] {
    ///     catalog.add_peer_with_schema(name, |s| { s.attributes(["x", "y"]); });
    /// }
    /// let mut session = Engine::builder().delta(0.1).build_sharded(catalog);
    /// assert_eq!(session.shard_count(), 2); // two isolated peers
    ///
    /// // One batch: connect the peers both ways (a component merge), and add +
    /// // remove a throwaway mapping, which coalesces to no evidence work at all.
    /// let link = |s: usize, t: usize| NetworkEvent::AddMapping {
    ///     source: PeerId(s),
    ///     target: PeerId(t),
    ///     correspondences: vec![
    ///         (AttributeId(0), AttributeId(0), Some(AttributeId(0))),
    ///         (AttributeId(1), AttributeId(1), Some(AttributeId(1))),
    ///     ],
    /// };
    /// let report = session.apply_batch(&[
    ///     link(0, 1),
    ///     link(1, 0),
    ///     link(0, 1),                                      // will get MappingId(2)
    ///     NetworkEvent::RemoveMapping { mapping: MappingId(2) },
    /// ]);
    /// assert_eq!(report.merges, 1);
    /// assert_eq!(report.mappings_coalesced, 1);
    /// assert_eq!(session.shard_count(), 1); // the islands merged into one shard
    /// assert!(session.posteriors().mapping_probability(MappingId(0)) > 0.5);
    /// ```
    pub fn apply_batch(&mut self, events: &[NetworkEvent]) -> BatchReport {
        let size = effective_batch_size(self.seed.analysis.batch_size);
        let mut report = BatchReport::default();
        if size == 0 || events.len() <= size {
            report.absorb(self.apply_chunk(events));
        } else {
            for chunk in events.chunks(size) {
                report.absorb(self.apply_chunk(chunk));
            }
        }
        report
    }

    /// Folds every shard's posteriors back into its priors (the Section 4.4
    /// update), shard by shard.
    pub fn update_priors(&mut self) {
        for shard in &mut self.shards {
            shard.session.update_priors();
        }
    }

    /// The prior currently in effect for a global `(mapping, attribute)` variable.
    pub fn prior(&self, key: &VariableKey) -> f64 {
        match self.mapping_shard.get(&key.mapping) {
            Some(&idx) => {
                let shard = &self.shards[idx];
                let local = VariableKey {
                    mapping: shard.to_local_mapping[&key.mapping],
                    attribute: key.attribute,
                };
                shard.session.priors().prior(&local)
            }
            None => self.seed.priors.default_prior(),
        }
    }

    /// Routes one query from `origin` against the merged posterior snapshot — the
    /// global catalog and global identifiers, exactly like
    /// [`EngineSession::route`].
    pub fn route(&self, origin: PeerId, query: &Query, policy: &RoutingPolicy) -> RoutingOutcome {
        route_query(&self.catalog, &self.merged, origin, query, policy)
    }

    /// Routes a whole workload against one merged posterior snapshot.
    pub fn route_all(
        &self,
        requests: &[(PeerId, Query)],
        policy: &RoutingPolicy,
    ) -> Vec<RoutingOutcome> {
        requests
            .iter()
            .map(|(origin, query)| route_query(&self.catalog, &self.merged, *origin, query, policy))
            .collect()
    }

    /// Evaluates erroneous-mapping detection at threshold θ against ground truth,
    /// using the merged posteriors.
    pub fn evaluate(&self, theta: f64) -> EvaluationReport {
        precision_recall(&self.catalog, &self.merged, theta)
    }

    /// Discards every shard and rebuilds the whole partition from the current
    /// catalog (the non-incremental path).
    pub fn rebuild_from_scratch(&mut self) {
        self.topology = build_topology(&self.catalog);
        self.components = IncrementalComponents::from_graph(&self.topology);
        let partitions: Vec<Vec<PeerId>> = self
            .components
            .partitions()
            .into_iter()
            .map(|nodes| nodes.into_iter().map(|n| PeerId(n.0)).collect())
            .collect();
        let workers = effective_shard_parallelism(self.seed.analysis.shard_parallelism);
        let catalog = &self.catalog;
        let seed = &self.seed;
        self.shards = run_stealing(workers, partitions.len(), |i| {
            build_shard(catalog, &partitions[i], seed)
        });
        self.stats.shard_rebuilds += self.shards.len();
        self.reindex();
        self.remerge();
    }

    /// One ingestion batch: sequential global application + shard routing, then
    /// parallel dispatch.
    fn apply_chunk(&mut self, events: &[NetworkEvent]) -> BatchReport {
        let mut report = BatchReport {
            batches: 1,
            ..BatchReport::default()
        };
        let doomed = doomed_additions(&self.catalog, events);
        // Shard-local event queues and structural damage live in the persistent
        // scratch, keyed by the shard's *current* index. Queued events are
        // translated eagerly; a shard that later turns out broken simply leaves
        // its queue behind (the splice or rebuild reads the final catalog, which
        // already contains every change).
        self.scratch.begin_batch(self.shards.len());
        // Structural delta of this batch, the input of the splice path: mappings
        // added (non-coalesced ones survive the batch by construction of `doomed`;
        // event order = ascending global-id order) and mappings whose
        // correspondences were edited.
        let mut added: Vec<MappingId> = Vec::new();
        let mut edited: BTreeSet<MappingId> = BTreeSet::new();
        for event in events {
            // `retired` is non-empty only for RemovePeer: the mappings its single
            // PeerRetired effect withdrew.
            let Some((effect, retired)) = apply_event_traced(&mut self.catalog, event) else {
                report.events_ignored += 1;
                continue;
            };
            report.events_applied += 1;
            match effect {
                EventEffect::PeerAdded(_) => {
                    let node = self.topology.add_node();
                    self.components.add_node();
                    // The new singleton component gets its shard in the dispatch
                    // phase; no existing shard is concerned.
                    self.peer_shard.push(usize::MAX);
                    debug_assert_eq!(node.0 + 1, self.catalog.peer_count());
                }
                EventEffect::MappingAdded(mapping) => {
                    let (source, target) = self.catalog.mapping_endpoints(mapping);
                    let edge = self.topology.add_edge(NodeId(source.0), NodeId(target.0));
                    debug_assert_eq!(edge.0, mapping.0, "mirror edge ids = mapping ids");
                    if doomed.contains(&mapping) {
                        // A later event of this batch removes the mapping again:
                        // tombstone the edge now so no in-batch discovery routes
                        // evidence through it, and skip all shard work for it.
                        self.topology.remove_edge(edge);
                        continue;
                    }
                    added.push(mapping);
                    match self.components.merge(NodeId(source.0), NodeId(target.0)) {
                        MergeOutcome::AlreadyJoined => {
                            self.queue_add(mapping, source, event);
                        }
                        MergeOutcome::Merged { .. } => {
                            report.merges += 1;
                            for endpoint in [source, target] {
                                let idx = self.peer_shard[endpoint.0];
                                if idx != usize::MAX {
                                    self.scratch.mark_broken(idx);
                                }
                            }
                        }
                    }
                }
                EventEffect::MappingRemoved(mapping) => {
                    self.unqueue_removal(mapping, &doomed, &mut edited, &mut report);
                }
                EventEffect::PeerRetired(_) => {
                    for mapping in retired {
                        self.unqueue_removal(mapping, &doomed, &mut edited, &mut report);
                    }
                }
                EventEffect::MappingChanged(mapping) => {
                    edited.insert(mapping);
                    if let Some(&idx) = self.mapping_shard.get(&mapping) {
                        if !self.scratch.broken[idx] {
                            let local = self.shards[idx].to_local_mapping[&mapping];
                            self.scratch
                                .queue(idx, retarget_mapping_event(event, local));
                        }
                    }
                }
            }
        }

        // Reconcile the final partition against the surviving shards and dispatch.
        let splice_enabled = effective_splice(self.seed.analysis.splice);
        let partitions: Vec<Vec<PeerId>> = self
            .components
            .partitions()
            .into_iter()
            .map(|nodes| nodes.into_iter().map(|n| PeerId(n.0)).collect())
            .collect();
        let old_shards = std::mem::take(&mut self.shards);
        let mut old_by_first: BTreeMap<PeerId, usize> = BTreeMap::new();
        for (i, shard) in old_shards.iter().enumerate() {
            old_by_first.insert(shard.peers[0], i);
        }
        let old_shard_count = old_shards.len();
        let mut old_slots: Vec<Option<Shard>> = old_shards.into_iter().map(Some).collect();
        let tasks: Vec<ShardTask> = partitions
            .into_iter()
            .map(|peers| match old_by_first.get(&peers[0]) {
                Some(&oi)
                    if !self.scratch.broken[oi]
                        && old_slots[oi].as_ref().is_some_and(|s| s.peers == peers) =>
                {
                    let shard = old_slots[oi].take().expect("matched shard present");
                    if self.scratch.queued[oi].is_empty() {
                        ShardTask::Keep(shard)
                    } else {
                        ShardTask::Apply(shard, std::mem::take(&mut self.scratch.queued[oi]))
                    }
                }
                _ => self.structural_task(peers, &old_slots, splice_enabled, &added, &edited),
            })
            .collect();
        let workers = effective_shard_parallelism(self.seed.analysis.shard_parallelism);
        let slots: Vec<Mutex<Option<ShardTask>>> =
            tasks.into_iter().map(|t| Mutex::new(Some(t))).collect();
        let catalog = &self.catalog;
        let seed = &self.seed;
        // Broken shards were never taken out of `old_slots`, so splice tasks can
        // read their donors through this shared view while dispatch runs.
        let donor_pool = &old_slots;
        let results: Vec<ShardOutcome> = run_stealing(workers, slots.len(), |i| {
            let task = slots[i]
                .lock()
                .expect("shard task lock")
                .take()
                .expect("each task taken once");
            let start = Instant::now();
            match task {
                ShardTask::Keep(shard) => ShardOutcome {
                    shard,
                    rounds: 0,
                    work: ShardWork::Kept,
                    elapsed: Duration::ZERO,
                },
                ShardTask::Apply(mut shard, events) => {
                    let apply = shard.session.apply(&events);
                    ShardOutcome {
                        shard,
                        rounds: apply.rounds,
                        work: ShardWork::Applied,
                        elapsed: start.elapsed(),
                    }
                }
                ShardTask::Build(peers) => {
                    let shard = build_shard(catalog, &peers, seed);
                    let rounds = shard.session.rounds();
                    ShardOutcome {
                        shard,
                        rounds,
                        work: ShardWork::Rebuilt,
                        elapsed: start.elapsed(),
                    }
                }
                ShardTask::Splice {
                    peers,
                    donors,
                    new_mappings,
                    edited,
                } => {
                    let donor_shards: Vec<&Shard> = donors
                        .iter()
                        .map(|&d| {
                            donor_pool[d]
                                .as_ref()
                                .expect("donor shards survive until dispatch")
                        })
                        .collect();
                    let (shard, evidence_added) =
                        splice_shard(catalog, &peers, &donor_shards, &new_mappings, &edited, seed);
                    let rounds = shard.session.rounds();
                    ShardOutcome {
                        shard,
                        rounds,
                        work: ShardWork::Spliced { evidence_added },
                        elapsed: start.elapsed(),
                    }
                }
            }
        });
        // Snapshot maintenance is proportional to the *changed* shards, not the
        // catalog: entries of every mapping a discarded or changed shard covered
        // are cleared, then re-filled from the changed shards' fresh tables.
        // Untouched shards keep their (disjoint-keyed) entries verbatim.
        let mut dirty_mappings: BTreeSet<MappingId> = BTreeSet::new();
        for discarded in old_slots.into_iter().flatten() {
            dirty_mappings.extend(discarded.to_global_mapping.iter().copied());
        }
        let mut changed: Vec<usize> = Vec::new();
        self.shards = Vec::with_capacity(results.len());
        for outcome in results {
            report.rounds += outcome.rounds;
            report.shard_time += outcome.elapsed;
            report.slowest_shard = report.slowest_shard.max(outcome.elapsed);
            let refresh = match outcome.work {
                ShardWork::Kept => false,
                ShardWork::Applied => {
                    report.shards_touched += 1;
                    true
                }
                ShardWork::Rebuilt => {
                    report.shards_rebuilt += 1;
                    true
                }
                ShardWork::Spliced { evidence_added } => {
                    report.shards_spliced += 1;
                    report.splice_evidence_added += evidence_added;
                    true
                }
            };
            if refresh {
                dirty_mappings.extend(outcome.shard.to_global_mapping.iter().copied());
                changed.push(self.shards.len());
            }
            self.shards.push(outcome.shard);
        }
        report.mappings_coalesced = doomed.len();
        // Shard indices only shift when the partition itself changed — every
        // partition change goes through a splice or rebuild, so a batch without
        // either keeps the peer/mapping indices valid as incrementally maintained
        // above.
        if report.shards_rebuilt > 0
            || report.shards_spliced > 0
            || self.shards.len() != old_shard_count
        {
            self.reindex();
        }
        for mapping in &dirty_mappings {
            self.merged.clear_mapping(*mapping);
        }
        for &i in &changed {
            fill_from_shard(&mut self.merged, &self.shards[i]);
        }
        self.stats.batches += 1;
        self.stats.events_applied += report.events_applied;
        self.stats.mappings_coalesced += report.mappings_coalesced;
        self.stats.merges += report.merges;
        self.stats.splits += report.splits;
        self.stats.shard_applies += report.shards_touched;
        self.stats.shard_rebuilds += report.shards_rebuilt;
        self.stats.shards_spliced += report.shards_spliced;
        self.stats.splice_evidence_added += report.splice_evidence_added;
        report
    }

    /// Builds the dispatch task for a component whose shard changed structurally
    /// this batch: the warm splice when donor state exists (and splicing is
    /// enabled), else a cold build.
    fn structural_task(
        &self,
        peers: Vec<PeerId>,
        old_slots: &[Option<Shard>],
        splice_enabled: bool,
        added: &[MappingId],
        edited: &BTreeSet<MappingId>,
    ) -> ShardTask {
        if !splice_enabled {
            return ShardTask::Build(peers);
        }
        // Donors: every surviving old shard covering one of the component's peers.
        // Scanning the peers ascending orders donors by their smallest covered
        // peer, which keeps the spliced evidence order deterministic. (Shards
        // matched as Keep/Apply can never appear here: their peer set equals a
        // different — disjoint — partition.)
        let mut donors: Vec<usize> = Vec::new();
        for peer in &peers {
            let idx = self.peer_shard[peer.0];
            if idx == usize::MAX
                || donors.contains(&idx)
                || old_slots.get(idx).is_none_or(|slot| slot.is_none())
            {
                continue;
            }
            donors.push(idx);
        }
        if donors.is_empty() {
            // A component made purely of this batch's new peers: nothing warm to
            // carry over, the cold build is the incremental path.
            return ShardTask::Build(peers);
        }
        let in_partition = |peer: PeerId| peers.binary_search(&peer).is_ok();
        let new_mappings: Vec<MappingId> = added
            .iter()
            .copied()
            .filter(|m| in_partition(self.catalog.mapping_endpoints(*m).0))
            .collect();
        let edited: Vec<MappingId> = edited
            .iter()
            .copied()
            .filter(|m| {
                !self.catalog.is_mapping_removed(*m)
                    && in_partition(self.catalog.mapping_endpoints(*m).0)
            })
            .collect();
        ShardTask::Splice {
            peers,
            donors,
            new_mappings,
            edited,
        }
    }

    /// Queues an intra-component mapping addition on its shard, registering the
    /// predicted local slot so later events of the batch can name the mapping.
    fn queue_add(&mut self, mapping: MappingId, source: PeerId, event: &NetworkEvent) {
        let idx = self.peer_shard[source.0];
        if idx == usize::MAX || self.scratch.broken[idx] {
            // Component created in this batch (new peers) or a shard already due
            // for a splice/rebuild: the dispatch phase reads the final catalog.
            return;
        }
        let NetworkEvent::AddMapping {
            source: _,
            target,
            correspondences,
        } = event
        else {
            unreachable!("MappingAdded comes from AddMapping events");
        };
        // Queued additions allocate shard-local slots in queue order, right after
        // the slots the sub-catalog already has.
        let pending_adds = self.scratch.queued[idx]
            .iter()
            .filter(|e| matches!(e, NetworkEvent::AddMapping { .. }))
            .count();
        let shard = &mut self.shards[idx];
        let local_source = shard
            .local_peer(source)
            .expect("shard covers the mapping source");
        let local_target = shard
            .local_peer(*target)
            .expect("shard covers the mapping target");
        let local_id = MappingId(shard.session.catalog().mapping_slot_count() + pending_adds);
        shard.to_global_mapping.push(mapping);
        debug_assert_eq!(shard.to_global_mapping.len() - 1, local_id.0);
        shard.to_local_mapping.insert(mapping, local_id);
        self.mapping_shard.insert(mapping, idx);
        self.scratch.queue(
            idx,
            NetworkEvent::AddMapping {
                source: local_source,
                target: local_target,
                correspondences: correspondences.clone(),
            },
        );
    }

    /// Processes one (non-coalesced) mapping removal: topology + component
    /// maintenance, then either queues the shard-local removal or marks the shard
    /// broken when the component split.
    fn unqueue_removal(
        &mut self,
        mapping: MappingId,
        doomed: &BTreeSet<MappingId>,
        edited: &mut BTreeSet<MappingId>,
        report: &mut BatchReport,
    ) {
        edited.remove(&mapping);
        if doomed.contains(&mapping) {
            // Added by this very batch: the mirror edge is already tombstoned and
            // no shard ever saw the mapping.
            return;
        }
        let (source, target) = self.catalog.mapping_endpoints(mapping);
        self.topology.remove_edge(EdgeId(mapping.0));
        let split = self
            .components
            .split(&self.topology, NodeId(source.0), NodeId(target.0));
        let idx = self.mapping_shard.remove(&mapping);
        match split {
            SplitOutcome::StillConnected => {
                if let Some(idx) = idx {
                    if !self.scratch.broken[idx] {
                        let local = self.shards[idx]
                            .to_local_mapping
                            .remove(&mapping)
                            .expect("shard tracks its live mappings");
                        self.scratch
                            .queue(idx, NetworkEvent::RemoveMapping { mapping: local });
                    }
                }
            }
            SplitOutcome::Split { .. } => {
                report.splits += 1;
                if let Some(idx) = idx {
                    self.scratch.mark_broken(idx);
                }
            }
        }
    }

    /// Rebuilds the peer → shard and global-mapping → shard indices.
    fn reindex(&mut self) {
        self.peer_shard = vec![usize::MAX; self.catalog.peer_count()];
        self.mapping_shard.clear();
        for (i, shard) in self.shards.iter().enumerate() {
            for peer in &shard.peers {
                self.peer_shard[peer.0] = i;
            }
            for global in shard.to_local_mapping.keys() {
                self.mapping_shard.insert(*global, i);
            }
        }
    }

    /// Rebuilds the merged posterior snapshot from the shard tables (global keys;
    /// deterministic, since keys are disjoint across shards).
    fn remerge(&mut self) {
        let mut merged = PosteriorTable::new(self.seed.priors.default_prior());
        for shard in &self.shards {
            fill_from_shard(&mut merged, shard);
        }
        self.merged = merged;
    }
}

/// Copies one shard's posterior entries into a merged table under global mapping
/// ids. Order matters: coarse entries must land before fine ones, because
/// [`PosteriorTable::set`] min-folds each fine value into the coarse slot — a
/// no-op once the shard's own (already min-folded) coarse value is in place, but
/// corrupting if fine values arrived first against a stale or missing coarse
/// entry.
fn fill_from_shard(merged: &mut PosteriorTable, shard: &Shard) {
    let table = shard.session.posteriors();
    for (local, p) in table.coarse_entries() {
        merged.set_coarse(shard.global_mapping(local), p);
    }
    for (local, attribute, p) in table.fine_entries() {
        merged.set(shard.global_mapping(local), attribute, p);
    }
}

/// Replicates a component's peers into a fresh sub-catalog: shard-local peer `k`
/// is the `k`-th smallest global peer id of the component.
fn build_sub_peers(catalog: &Catalog, peers: &[PeerId]) -> Catalog {
    let mut sub = Catalog::new();
    for &peer in peers {
        let names: Vec<String> = catalog
            .peer_schema(peer)
            .attributes()
            .map(|a| a.name.clone())
            .collect();
        sub.add_peer_with_schema(catalog.peer_name(peer).to_string(), |schema| {
            for name in names {
                schema.attribute(name);
            }
        });
    }
    sub
}

/// Copies one live global mapping into a shard sub-catalog, translating its
/// endpoints to shard-local peer ids. Returns the allocated shard-local mapping
/// id (always the next slot).
fn copy_mapping_into(
    sub: &mut Catalog,
    catalog: &Catalog,
    peers: &[PeerId],
    mapping: MappingId,
) -> MappingId {
    let local_peer = |global: PeerId| {
        PeerId(
            peers
                .binary_search(&global)
                .expect("mapping endpoint belongs to the component"),
        )
    };
    let (source, target) = catalog.mapping_endpoints(mapping);
    let global = catalog.mapping(mapping);
    sub.add_mapping(local_peer(source), local_peer(target), |mut builder| {
        for (attribute, correspondence) in global.correspondences() {
            builder = match correspondence.expected {
                Some(expected) if expected == correspondence.target => {
                    builder.correct(attribute, correspondence.target)
                }
                Some(expected) => builder.erroneous(attribute, correspondence.target, expected),
                None => builder.unjudged(attribute, correspondence.target),
            };
        }
        builder
    })
}

/// Remaps the builder-provided prior store onto shard-local mapping ids.
fn remap_priors(seed: &ShardSeed, to_local_mapping: &BTreeMap<MappingId, MappingId>) -> PriorStore {
    let mut priors = PriorStore::with_default(seed.priors.default_prior());
    for (key, p) in seed.priors.snapshot() {
        if let Some(&local) = to_local_mapping.get(&key.mapping) {
            priors.set_initial(
                VariableKey {
                    mapping: local,
                    attribute: key.attribute,
                },
                p,
            );
        }
    }
    priors
}

/// Builds one shard cold from the global catalog: the sub-catalog replicates the
/// component's peers (ascending global id) and live mappings (ascending global
/// mapping id), which makes shard-local enumeration order-isomorphic to the global
/// one restricted to the component.
fn build_shard(catalog: &Catalog, peers: &[PeerId], seed: &ShardSeed) -> Shard {
    let mut sub = build_sub_peers(catalog, peers);
    let mut to_global_mapping = Vec::new();
    let mut to_local_mapping = BTreeMap::new();
    for mapping in catalog.mappings() {
        let (source, _) = catalog.mapping_endpoints(mapping);
        if peers.binary_search(&source).is_err() {
            continue;
        }
        let local = copy_mapping_into(&mut sub, catalog, peers, mapping);
        debug_assert_eq!(local.0, to_global_mapping.len());
        to_global_mapping.push(mapping);
        to_local_mapping.insert(mapping, local);
    }
    let priors = remap_priors(seed, &to_local_mapping);
    let session = EngineBuilder::new()
        .analysis(seed.analysis.clone())
        .granularity(seed.granularity)
        .delta(seed.delta)
        .backend_arc(seed.backend.clone())
        .priors(priors)
        .build(sub);
    Shard {
        peers: peers.to_vec(),
        session,
        to_global_mapping,
        to_local_mapping,
    }
}

/// Assembles one component's shard **warm** from donor shards.
///
/// The merged sub-catalog is built exactly like a cold shard's (peers and live
/// mappings ascending by global id), but the expensive pipeline never runs:
///
/// 1. the donors' cached evidence analyses are remapped onto the merged local ids
///    ([`splice_donor_analysis`] — a merge keeps every donor path, a split keeps
///    exactly the surviving side's, removals drop only the paths through the dead
///    mapping);
/// 2. the mappings this batch added are appended **one at a time** against the
///    growing topology mirror and searched with the targeted per-edge DFS — the
///    same sequential semantics as per-event application, so evidence through
///    several new edges is discovered exactly once, and the only enumeration paid
///    is the bridge's neighborhood;
/// 3. evidence through edited mappings is re-observed in place;
/// 4. inference warm-starts from the donors' converged posteriors — only
///    variables on bridging or edited mappings restart from the unit message,
///    mirroring [`EngineSession::apply`]'s warm-start rule — so the message
///    passing re-activates only around the new evidence.
///
/// Returns the shard and the number of evidence paths the bridge searches found.
fn splice_shard(
    catalog: &Catalog,
    peers: &[PeerId],
    donors: &[&Shard],
    new_mappings: &[MappingId],
    edited: &[MappingId],
    seed: &ShardSeed,
) -> (Shard, usize) {
    let new_set: BTreeSet<MappingId> = new_mappings.iter().copied().collect();
    let mut sub = build_sub_peers(catalog, peers);
    let mut to_global_mapping = Vec::new();
    let mut to_local_mapping = BTreeMap::new();
    // Pre-existing live mappings first, ascending global id. The batch's new
    // mappings hold the highest global ids of all live mappings, so appending
    // them afterwards (also ascending) reproduces the exact slot assignment a
    // cold build would produce.
    for mapping in catalog.mappings() {
        let (source, _) = catalog.mapping_endpoints(mapping);
        if peers.binary_search(&source).is_err() || new_set.contains(&mapping) {
            continue;
        }
        let local = copy_mapping_into(&mut sub, catalog, peers, mapping);
        debug_assert_eq!(local.0, to_global_mapping.len());
        to_global_mapping.push(mapping);
        to_local_mapping.insert(mapping, local);
    }
    let mut topology = build_topology(&sub);
    let mut analysis = CycleAnalysis::default();
    for donor in donors {
        splice_donor_analysis(&mut analysis, donor, peers, &to_local_mapping);
    }
    let mut evidence_added = 0usize;
    let mut new_locals: Vec<MappingId> = Vec::with_capacity(new_mappings.len());
    for &global in new_mappings {
        let local = copy_mapping_into(&mut sub, catalog, peers, global);
        let (source, target) = sub.mapping_endpoints(local);
        let edge = topology.add_edge(NodeId(source.0), NodeId(target.0));
        debug_assert_eq!(edge.0, local.0, "mirror edge ids = mapping ids");
        debug_assert_eq!(local.0, to_global_mapping.len());
        to_global_mapping.push(global);
        to_local_mapping.insert(global, local);
        let delta = analysis.add_mapping_incremental_in(&sub, &topology, local, &seed.analysis);
        evidence_added += delta.evidences_added;
        new_locals.push(local);
    }
    let edited_locals: Vec<MappingId> = edited
        .iter()
        .filter_map(|m| to_local_mapping.get(m).copied())
        .collect();
    if !edited_locals.is_empty() {
        analysis.reobserve_mappings(&sub, &edited_locals);
    }
    // Warm state: every surviving donor variable that is not on a bridging or
    // edited mapping carries its converged posterior over.
    let restart: BTreeSet<MappingId> = new_locals
        .iter()
        .chain(edited_locals.iter())
        .copied()
        .collect();
    let mut warm: BTreeMap<VariableKey, f64> = BTreeMap::new();
    for donor in donors {
        for (key, p) in donor.session.variable_posteriors() {
            let global = donor.to_global_mapping[key.mapping.0];
            let Some(&local) = to_local_mapping.get(&global) else {
                continue; // removed, or stranded on the other side of a split
            };
            if restart.contains(&local) {
                continue;
            }
            warm.insert(
                VariableKey {
                    mapping: local,
                    attribute: key.attribute,
                },
                *p,
            );
        }
    }
    let priors = remap_priors(seed, &to_local_mapping);
    let session = EngineSession::from_spliced_parts(
        seed.analysis.clone(),
        seed.granularity,
        seed.delta,
        seed.backend.clone(),
        priors,
        SplicedParts {
            catalog: sub,
            topology,
            analysis,
            warm,
        },
    );
    (
        Shard {
            peers: peers.to_vec(),
            session,
            to_global_mapping,
            to_local_mapping,
        },
        evidence_added,
    )
}

/// Appends one donor's surviving evidence paths (and their observations) to a
/// spliced analysis, remapped onto the merged shard's local identifiers.
///
/// An evidence path survives iff every one of its mappings is still live and
/// inside the new component: a merge keeps every donor path verbatim, a split
/// keeps exactly the paths whose mappings all stayed on this side (evidence is a
/// connected subgraph, so it can never straddle the cut), and paths through a
/// removed mapping are dropped — the same invalidation
/// [`CycleAnalysis::remove_mapping_incremental`] performs, expressed as a filter.
fn splice_donor_analysis(
    analysis: &mut CycleAnalysis,
    donor: &Shard,
    peers: &[PeerId],
    to_local_mapping: &BTreeMap<MappingId, MappingId>,
) {
    let donor_analysis = donor.session.analysis();
    let remap_mapping = |donor_local: MappingId| -> Option<MappingId> {
        to_local_mapping
            .get(&donor.to_global_mapping[donor_local.0])
            .copied()
    };
    let remap_peer = |donor_local: PeerId| -> PeerId {
        PeerId(
            peers
                .binary_search(&donor.peers[donor_local.0])
                .expect("peers of surviving evidence lie in the component"),
        )
    };
    // Donor observations grouped per evidence: incremental donor churn appends
    // re-observations out of evidence order, and the splice re-normalises to the
    // grouped-by-evidence shape a cold analysis produces.
    let mut obs_of: Vec<Vec<&FeedbackObservation>> =
        vec![Vec::new(); donor_analysis.evidences.len()];
    for observation in &donor_analysis.observations {
        obs_of[observation.evidence].push(observation);
    }
    for evidence in &donor_analysis.evidences {
        let Some(mappings) = evidence
            .mappings
            .iter()
            .map(|m| remap_mapping(*m))
            .collect::<Option<Vec<MappingId>>>()
        else {
            continue;
        };
        let id = analysis.evidences.len();
        let source = match evidence.source {
            EvidenceSource::Cycle { origin } => EvidenceSource::Cycle {
                origin: remap_peer(origin),
            },
            EvidenceSource::ParallelPaths {
                source,
                destination,
            } => EvidenceSource::ParallelPaths {
                source: remap_peer(source),
                destination: remap_peer(destination),
            },
        };
        analysis.evidences.push(EvidencePath {
            id,
            source,
            mappings,
            split: evidence.split,
        });
        for observation in &obs_of[evidence.id] {
            analysis.observations.push(FeedbackObservation {
                evidence: id,
                origin_attribute: observation.origin_attribute,
                feedback: observation.feedback,
                steps: observation
                    .steps
                    .iter()
                    .map(|(m, a)| {
                        (
                            remap_mapping(*m).expect("observation steps stay within the evidence"),
                            *a,
                        )
                    })
                    .collect(),
                dropped_by: observation
                    .dropped_by
                    .map(|m| remap_mapping(m).expect("dropping mapping stays within the evidence")),
            });
        }
    }
}

/// Re-targets a correspondence-level event at a shard-local mapping id.
fn retarget_mapping_event(event: &NetworkEvent, local: MappingId) -> NetworkEvent {
    match event {
        NetworkEvent::Corrupt {
            attribute,
            wrong_target,
            ..
        } => NetworkEvent::Corrupt {
            mapping: local,
            attribute: *attribute,
            wrong_target: *wrong_target,
        },
        NetworkEvent::Repair { attribute, .. } => NetworkEvent::Repair {
            mapping: local,
            attribute: *attribute,
        },
        NetworkEvent::Drop { attribute, .. } => NetworkEvent::Drop {
            mapping: local,
            attribute: *attribute,
        },
        other => unreachable!("not a correspondence-level event: {other:?}"),
    }
}

//! The batch engine façade: analysis, model construction, inference, prior updates,
//! routing and evaluation in one call.
//!
//! [`Engine`] is the one-shot entry point — it recomputes everything from scratch on
//! every [`Engine::run`]. For evolving networks and query-heavy workloads prefer the
//! incremental [`crate::session::EngineSession`], constructed with
//! [`Engine::builder`]; the batch engine remains for single-shot experiments and as
//! the reference the incremental path is validated against. Both drive inference
//! exclusively through the [`crate::backend::InferenceBackend`] trait.
//!
//! ```
//! use pdms_core::engine::{Engine, EngineConfig};
//! use pdms_schema::{AttributeId, Catalog};
//!
//! // Two peers, one correct and one faulty mapping between them and back.
//! let mut catalog = Catalog::new();
//! let a = catalog.add_peer_with_schema("a", |s| { s.attributes(["x", "y", "z"]); });
//! let b = catalog.add_peer_with_schema("b", |s| { s.attributes(["x", "y", "z"]); });
//! catalog.add_mapping(a, b, |m| m.correct(AttributeId(0), AttributeId(0)));
//! catalog.add_mapping(b, a, |m| m.erroneous(AttributeId(0), AttributeId(1), AttributeId(0)));
//!
//! let mut engine = Engine::new(catalog, EngineConfig::default());
//! let report = engine.run();
//! // The cycle a -> b -> a returns attribute y instead of x: negative feedback, both
//! // mappings become suspicious (no other evidence distinguishes them).
//! assert!(report.posteriors.mapping_probability(pdms_schema::MappingId(0)) < 0.5);
//! ```

use crate::backend::{backend_for_method, InferenceBackend, InferenceTask};
use crate::cycle_analysis::{AnalysisConfig, CycleAnalysis};
use crate::delta::estimate_delta_for_catalog;
use crate::embedded::EmbeddedConfig;
use crate::local_graph::{Granularity, MappingModel};
use crate::metrics::{precision_recall, EvaluationReport};
use crate::posterior::PosteriorTable;
use crate::priors::PriorStore;
use crate::routing::{route_query, RoutingOutcome, RoutingPolicy};
use crate::session::EngineBuilder;
use pdms_schema::{Catalog, PeerId, Query};
use std::sync::Arc;

/// Which built-in inference backend the engine uses.
///
/// Deprecated shim: new code should pass an [`InferenceBackend`] implementation to
/// [`EngineBuilder::backend`] (or [`EngineConfig::backend`]) instead — the enum only
/// names the three built-ins and cannot express custom backends. It is kept so
/// existing `EngineConfig { method, .. }` call sites continue to compile.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum InferenceMethod {
    /// Decentralized embedded message passing (the paper's approach).
    #[default]
    Embedded,
    /// Centralized exact inference (baseline; exponential in the model size).
    Exact,
    /// The cycle-voting heuristic of the paper's earlier work (baseline).
    Voting,
}

/// Engine configuration.
#[derive(Debug, Clone, Default)]
pub struct EngineConfig {
    /// Cycle / parallel-path discovery bounds.
    pub analysis: AnalysisConfig,
    /// Variable granularity.
    pub granularity: Granularity,
    /// Compensating-error probability; `None` estimates it from the catalog's schema
    /// sizes (Section 4.5's `1/(k−1)` rule).
    pub delta: Option<f64>,
    /// Deprecated backend selector, used only when [`EngineConfig::backend`] is
    /// `None`. Prefer setting `backend`.
    pub method: InferenceMethod,
    /// Embedded message-passing parameters (consumed by the default
    /// [`crate::backend::EmbeddedBackend`]; ignored when `backend` is set).
    pub embedded: EmbeddedConfig,
    /// The inference backend. `None` falls back to the built-in named by `method`.
    pub backend: Option<Arc<dyn InferenceBackend>>,
}

impl EngineConfig {
    /// The backend this configuration selects: the explicit trait object if set,
    /// otherwise the built-in named by the deprecated `method` field.
    pub fn resolve_backend(&self) -> Arc<dyn InferenceBackend> {
        self.backend
            .clone()
            .unwrap_or_else(|| backend_for_method(self.method, &self.embedded))
    }
}

/// What one engine run produces.
#[derive(Debug, Clone)]
pub struct EngineReport {
    /// The discovered evidence and feedback.
    pub analysis: CycleAnalysis,
    /// The probabilistic model that was built.
    pub model: MappingModel,
    /// Posterior mapping-quality table.
    pub posteriors: PosteriorTable,
    /// Raw posterior per model variable.
    pub variable_posteriors: Vec<f64>,
    /// Iterations/rounds used (0 for the non-iterative backends).
    pub rounds: usize,
    /// Whether the iterative backend converged.
    pub converged: bool,
    /// Δ actually used.
    pub delta: f64,
}

/// The engine.
#[derive(Debug, Clone)]
pub struct Engine {
    catalog: Catalog,
    config: EngineConfig,
    priors: PriorStore,
}

impl Engine {
    /// Creates an engine over a catalog with maximum-entropy priors.
    ///
    /// Deprecated-ish: this remains the batch entry point, but evolving networks and
    /// query-heavy workloads should use [`Engine::builder`] to obtain an incremental
    /// [`crate::session::EngineSession`] instead of re-running the full pipeline.
    pub fn new(catalog: Catalog, config: EngineConfig) -> Self {
        Self {
            catalog,
            config,
            priors: PriorStore::uninformed(),
        }
    }

    /// Starts a builder for an incremental [`crate::session::EngineSession`]:
    ///
    /// ```
    /// use pdms_core::engine::Engine;
    /// use pdms_core::backend::ExactBackend;
    /// use pdms_core::local_graph::Granularity;
    /// use pdms_schema::{AttributeId, Catalog};
    ///
    /// let mut catalog = Catalog::new();
    /// let a = catalog.add_peer_with_schema("a", |s| { s.attributes(["x", "y", "z"]); });
    /// let b = catalog.add_peer_with_schema("b", |s| { s.attributes(["x", "y", "z"]); });
    /// catalog.add_mapping(a, b, |m| m.correct(AttributeId(0), AttributeId(0)));
    /// catalog.add_mapping(b, a, |m| m.correct(AttributeId(0), AttributeId(0)));
    ///
    /// let session = Engine::builder()
    ///     .granularity(Granularity::Fine)
    ///     .backend(ExactBackend)
    ///     .delta(0.1)
    ///     .build(catalog);
    /// assert!(session.posteriors().mapping_probability(pdms_schema::MappingId(0)) > 0.5);
    /// ```
    pub fn builder() -> EngineBuilder {
        EngineBuilder::new()
    }

    /// Creates an engine with a caller-provided prior store (e.g. default prior 0.7
    /// when the mappings come from an aligner of known quality).
    pub fn with_priors(catalog: Catalog, config: EngineConfig, priors: PriorStore) -> Self {
        Self {
            catalog,
            config,
            priors,
        }
    }

    /// The catalog the engine operates on.
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// The current prior store.
    pub fn priors(&self) -> &PriorStore {
        &self.priors
    }

    /// Mutable access to the prior store (e.g. to pin expert-validated mappings to 1.0).
    pub fn priors_mut(&mut self) -> &mut PriorStore {
        &mut self.priors
    }

    /// Δ used by the engine: the configured value or the schema-size estimate.
    pub fn delta(&self) -> f64 {
        self.config
            .delta
            .unwrap_or_else(|| estimate_delta_for_catalog(&self.catalog))
    }

    /// Runs cycle / parallel-path discovery only.
    pub fn analyze(&self) -> CycleAnalysis {
        CycleAnalysis::analyze(&self.catalog, &self.config.analysis)
    }

    /// Runs the full pipeline: analysis → model → inference (through the configured
    /// [`InferenceBackend`]) → posterior table.
    pub fn run(&mut self) -> EngineReport {
        let delta = self.delta();
        let analysis = self.analyze();
        let model = MappingModel::build(&self.catalog, &analysis, self.config.granularity, delta);
        let prior_map = self.priors.snapshot();
        let default_prior = self.priors.default_prior();
        let backend = self.config.resolve_backend();
        let outcome = backend.infer(&InferenceTask {
            model: &model,
            analysis: &analysis,
            priors: &prior_map,
            default_prior,
            warm_start: None,
        });
        let posteriors = PosteriorTable::from_model(&model, &outcome.posteriors, default_prior);
        EngineReport {
            analysis,
            model,
            posteriors,
            variable_posteriors: outcome.posteriors,
            rounds: outcome.rounds,
            converged: outcome.converged,
            delta,
        }
    }

    /// Runs the pipeline and folds the resulting posteriors back into the priors
    /// (Section 4.4), so the next run starts from the accumulated evidence.
    pub fn run_and_update_priors(&mut self) -> EngineReport {
        let report = self.run();
        let as_map = report.posteriors.as_variable_map(&report.model);
        self.priors.update_all(&as_map);
        report
    }

    /// Routes a query from `origin` using the posteriors of `report`.
    pub fn route(
        &self,
        report: &EngineReport,
        origin: PeerId,
        query: &Query,
        policy: &RoutingPolicy,
    ) -> RoutingOutcome {
        route_query(&self.catalog, &report.posteriors, origin, query, policy)
    }

    /// Evaluates erroneous-mapping detection at threshold θ against ground truth.
    pub fn evaluate(&self, report: &EngineReport, theta: f64) -> EvaluationReport {
        precision_recall(&self.catalog, &report.posteriors, theta)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdms_schema::{AttributeId, MappingId, Predicate};

    fn intro_catalog() -> Catalog {
        let mut cat = Catalog::new();
        let peers: Vec<PeerId> = (0..4)
            .map(|i| {
                cat.add_peer_with_schema(format!("p{}", i + 1), |s| {
                    // Eleven attributes, as in the worked example, so Δ ≈ 0.1.
                    s.attributes([
                        "Creator",
                        "Item",
                        "CreatedOn",
                        "Title",
                        "Subject",
                        "Medium",
                        "Height",
                        "Width",
                        "Location",
                        "Owner",
                        "Licence",
                    ]);
                })
            })
            .collect();
        let correct = |m: pdms_schema::MappingBuilder| {
            let mut m = m;
            for a in 0..11 {
                m = m.correct(AttributeId(a), AttributeId(a));
            }
            m
        };
        cat.add_mapping(peers[0], peers[1], correct); // m12
        cat.add_mapping(peers[1], peers[2], correct); // m23
        cat.add_mapping(peers[2], peers[3], correct); // m34
        cat.add_mapping(peers[3], peers[0], correct); // m41
        cat.add_mapping(peers[1], peers[3], |m| {
            let mut m = m.erroneous(AttributeId(0), AttributeId(2), AttributeId(0));
            for a in 1..11 {
                m = m.correct(AttributeId(a), AttributeId(a));
            }
            m
        }); // m24
        cat
    }

    #[test]
    fn delta_is_estimated_from_schema_sizes() {
        let engine = Engine::new(intro_catalog(), EngineConfig::default());
        assert!((engine.delta() - 0.1).abs() < 1e-12);
        let engine = Engine::new(
            intro_catalog(),
            EngineConfig {
                delta: Some(0.01),
                ..Default::default()
            },
        );
        assert_eq!(engine.delta(), 0.01);
    }

    #[test]
    fn full_pipeline_detects_the_faulty_mapping_and_routes_around_it() {
        let mut engine = Engine::new(intro_catalog(), EngineConfig::default());
        let report = engine.run();
        assert!(report.converged);
        assert!(report.rounds > 0);
        // m24 flagged for Creator, others fine.
        let p_m24 = report
            .posteriors
            .probability(engine.catalog(), MappingId(4), AttributeId(0));
        assert!(p_m24 < 0.5, "m24 Creator posterior {p_m24}");
        for m in 0..4 {
            let p = report
                .posteriors
                .probability(engine.catalog(), MappingId(m), AttributeId(0));
            assert!(p > 0.5, "mapping {m} posterior {p}");
        }
        // Routing the introductory query from p2 avoids m24 and reaches every peer.
        let query = Query::new()
            .project(AttributeId(0))
            .select(AttributeId(1), Predicate::Contains("river".into()));
        let outcome = engine.route(&report, PeerId(1), &query, &RoutingPolicy::uniform(0.5));
        assert_eq!(outcome.reached.len(), 3);
        assert!(outcome.tainted.is_empty());
        assert!(!outcome.forwarded_mappings().contains(&MappingId(4)));
        // Evaluation: precision 1.0 at θ = 0.5 (only the truly faulty pair is flagged).
        let eval = engine.evaluate(&report, 0.5);
        assert_eq!(eval.true_positives, 1);
        assert_eq!(eval.false_positives, 0);
        assert_eq!(eval.precision(), 1.0);
    }

    /// A three-attribute variant of the intro network, small enough for the exact
    /// backend (the fine-granularity model stays under the 24-variable enumeration
    /// limit).
    fn intro_catalog_small() -> Catalog {
        let mut cat = Catalog::new();
        let peers: Vec<PeerId> = (0..4)
            .map(|i| {
                cat.add_peer_with_schema(format!("p{}", i + 1), |s| {
                    s.attributes(["Creator", "Item", "CreatedOn"]);
                })
            })
            .collect();
        let correct = |m: pdms_schema::MappingBuilder| {
            m.correct(AttributeId(0), AttributeId(0))
                .correct(AttributeId(1), AttributeId(1))
                .correct(AttributeId(2), AttributeId(2))
        };
        cat.add_mapping(peers[0], peers[1], correct);
        cat.add_mapping(peers[1], peers[2], correct);
        cat.add_mapping(peers[2], peers[3], correct);
        cat.add_mapping(peers[3], peers[0], correct);
        cat.add_mapping(peers[1], peers[3], |m| {
            m.erroneous(AttributeId(0), AttributeId(2), AttributeId(0))
                .correct(AttributeId(1), AttributeId(1))
                .correct(AttributeId(2), AttributeId(2))
        });
        cat
    }

    #[test]
    fn exact_and_embedded_backends_agree_on_classification() {
        // Δ is pinned to the paper's 0.1: the three-attribute schemas would otherwise
        // estimate Δ = 0.5, which makes all the evidence too weak to classify.
        let mut embedded = Engine::new(
            intro_catalog_small(),
            EngineConfig {
                delta: Some(0.1),
                ..Default::default()
            },
        );
        let mut exact = Engine::new(
            intro_catalog_small(),
            EngineConfig {
                method: InferenceMethod::Exact,
                delta: Some(0.1),
                ..Default::default()
            },
        );
        let re = embedded.run();
        let rx = exact.run();
        for m in 0..5 {
            let pe = re.posteriors.mapping_probability(MappingId(m));
            let px = rx.posteriors.mapping_probability(MappingId(m));
            assert_eq!(pe < 0.5, px < 0.5, "mapping {m}: embedded {pe} exact {px}");
        }
    }

    #[test]
    fn voting_backend_over_penalises() {
        let mut voting = Engine::new(
            intro_catalog(),
            EngineConfig {
                method: InferenceMethod::Voting,
                ..Default::default()
            },
        );
        let report = voting.run();
        // The voting heuristic cannot exonerate correct mappings that share a negative
        // cycle with the faulty one: their score is dragged down to the break-even 0.5,
        // so a slightly cautious threshold (0.55) wrongly flags them too — exactly the
        // weakness Section 6 describes — while the probabilistic engine keeps them
        // above 0.5 (see `full_pipeline_detects_the_faulty_mapping_and_routes_around_it`).
        let eval = voting.evaluate(&report, 0.55);
        assert!(eval.flagged() > 1, "flagged {}", eval.flagged());
        assert!(eval.precision() < 1.0);
    }

    #[test]
    fn prior_update_accumulates_between_runs() {
        let mut engine = Engine::new(intro_catalog(), EngineConfig::default());
        let first = engine.run_and_update_priors();
        let m24_key = crate::local_graph::VariableKey {
            mapping: MappingId(4),
            attribute: Some(AttributeId(0)),
        };
        let prior_after = engine.priors().prior(&m24_key);
        assert!(prior_after < 0.5, "prior after update {prior_after}");
        // A second run starting from the updated priors pushes the posterior further.
        let second = engine.run();
        let p1 = first
            .posteriors
            .probability_ignoring_bottom(MappingId(4), AttributeId(0));
        let p2 = second
            .posteriors
            .probability_ignoring_bottom(MappingId(4), AttributeId(0));
        assert!(
            p2 <= p1 + 1e-9,
            "second run {p2} should not exceed first run {p1}"
        );
    }

    #[test]
    fn analyze_exposes_feedback_counts() {
        let engine = Engine::new(intro_catalog(), EngineConfig::default());
        let analysis = engine.analyze();
        let (pos, neg, _neutral) = analysis.feedback_counts();
        assert!(pos > 0);
        assert!(neg > 0);
    }
}

//! Core contribution of the paper: probabilistic message passing for assessing the
//! quality of schema mappings in Peer Data Management Systems.
//!
//! Given a catalog of peers, schemas and (possibly faulty) mappings, the engine in this
//! crate
//!
//! 1. enumerates mapping **cycles** and **parallel paths** up to a TTL bound
//!    ([`cycle_analysis`]),
//! 2. computes per-attribute **feedback** (positive / negative / neutral) by pushing the
//!    attribute through the transitive closure of the mappings involved ([`feedback`]),
//! 3. builds, for each peer, the **local factor graph** of Section 4.1 covering its
//!    outgoing mappings ([`local_graph`]),
//! 4. runs the **embedded message-passing** equations of Section 4.3 — either as a
//!    centralized reference computation or decentralized over the simulator with a
//!    periodic or lazy (piggybacked) schedule ([`embedded`], [`schedules`]),
//! 5. updates **prior beliefs** with the EM-style running average of Section 4.4
//!    ([`priors`]),
//! 6. exposes posterior mapping-quality estimates and uses them for **query routing**
//!    with per-attribute thresholds θ ([`posterior`], [`routing`]),
//! 7. and evaluates the result against ground truth ([`metrics`]), including the
//!    centralized-exact and cycle-voting **baselines** ([`baseline_exact`],
//!    [`baseline_voting`]).
//!
//! On top of that pipeline the crate also provides the paper's operational extensions:
//! the adaptive probe-TTL expansion of Section 5.1.2 ([`ttl_expansion`]), the
//! communication-overhead accounting of Section 4.3.1 ([`overhead`]), and the evolving-
//! network machinery behind the Section 4.4 prior updates and the Section 7
//! maintenance-versus-relevance discussion ([`dynamics`]).
//!
//! The [`engine::Engine`] type ties the steps together behind one façade; the
//! `pdms-workloads` crate produces catalogs to feed it and `pdms-bench` regenerates
//! every figure of the paper's evaluation section on top of it.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod baseline_exact;
pub mod baseline_voting;
pub mod cycle_analysis;
pub mod delta;
pub mod dynamics;
pub mod embedded;
pub mod engine;
pub mod feedback;
pub mod local_graph;
pub mod metrics;
pub mod overhead;
pub mod posterior;
pub mod priors;
pub mod routing;
pub mod schedules;
pub mod ttl_expansion;

pub use baseline_exact::{exact_posterior_table, exact_posteriors, mean_relative_error, relative_errors};
pub use baseline_voting::VotingBaseline;
pub use cycle_analysis::{AnalysisConfig, CycleAnalysis, EvidencePath, EvidenceSource};
pub use delta::{estimate_delta, estimate_delta_for_sizes, DEFAULT_DELTA};
pub use dynamics::{DynamicPdms, DynamicsConfig, EpochReport, NetworkEvent};
pub use embedded::{run_embedded, EmbeddedConfig, EmbeddedMessagePassing, EmbeddedReport};
pub use engine::{Engine, EngineConfig, EngineReport, InferenceMethod};
pub use feedback::{Feedback, FeedbackObservation};
pub use local_graph::{Granularity, MappingModel, ModelEvidence, VariableKey};
pub use metrics::{precision_recall, DetectionOutcome, EvaluationReport};
pub use overhead::{communication_overhead, OverheadReport, PeerOverhead};
pub use posterior::PosteriorTable;
pub use priors::PriorStore;
pub use routing::{route_query, RoutingDecision, RoutingOutcome, RoutingPolicy};
pub use schedules::{DecentralizedConfig, DecentralizedRun, PeerInferenceLogic, ScheduleKind};
pub use ttl_expansion::{expand_ttl, expand_ttl_with_priors, TtlExpansionConfig, TtlExpansionReport, TtlExpansionStep};

//! Core contribution of the paper: probabilistic message passing for assessing the
//! quality of schema mappings in Peer Data Management Systems.
//!
//! Given a catalog of peers, schemas and (possibly faulty) mappings, this crate
//!
//! 1. enumerates mapping **cycles** and **parallel paths** up to a TTL bound
//!    ([`cycle_analysis`]), and maintains them **incrementally** as the network
//!    evolves — additions search only the paths through the new edge, removals drop
//!    only the paths through the dead edge;
//! 2. computes per-attribute **feedback** (positive / negative / neutral) by pushing
//!    the attribute through the transitive closure of the mappings involved
//!    ([`feedback`]);
//! 3. builds, for each peer, the **local factor graph** of Section 4.1 covering its
//!    outgoing mappings ([`local_graph`]);
//! 4. estimates posterior mapping quality through a pluggable
//!    [`backend::InferenceBackend`]: the paper's **embedded message passing**
//!    ([`backend::EmbeddedBackend`], [`embedded`], with decentralized schedules in
//!    [`schedules`]), **centralized exact inference** ([`backend::ExactBackend`]),
//!    or the earlier **cycle-voting heuristic** ([`backend::VotingBackend`]) — and
//!    any caller-provided implementation of the trait;
//! 5. updates **prior beliefs** with the EM-style running average of Section 4.4
//!    ([`priors`]);
//! 6. exposes posterior tables and uses them for **query routing** with
//!    per-attribute thresholds θ ([`posterior`], [`routing`]);
//! 7. and evaluates the result against ground truth ([`metrics`]).
//!
//! The primary entry point is the incremental **engine session** ([`session`]):
//!
//! ```
//! use pdms_core::{Engine, Granularity, NetworkEvent};
//! use pdms_schema::{AttributeId, Catalog};
//!
//! let mut catalog = Catalog::new();
//! let a = catalog.add_peer_with_schema("a", |s| { s.attributes(["x", "y", "z"]); });
//! let b = catalog.add_peer_with_schema("b", |s| { s.attributes(["x", "y", "z"]); });
//! let identity = |mut m: pdms_schema::MappingBuilder| {
//!     for i in 0..3 {
//!         m = m.correct(AttributeId(i), AttributeId(i));
//!     }
//!     m
//! };
//! catalog.add_mapping(a, b, identity);
//! catalog.add_mapping(b, a, identity);
//!
//! let mut session = Engine::builder()
//!     .granularity(Granularity::Fine)
//!     .delta(0.1)
//!     .build(catalog);
//! // The network evolves; only the affected evidence is recomputed and the
//! // message passing restarts warm.
//! session.apply(&[NetworkEvent::Corrupt {
//!     mapping: pdms_schema::MappingId(0),
//!     attribute: AttributeId(0),
//!     wrong_target: AttributeId(1),
//! }]);
//! assert!(session.posteriors().mapping_probability(pdms_schema::MappingId(0)) < 0.5);
//! ```
//!
//! The batch [`engine::Engine`] façade remains for one-shot experiments (and as the
//! reference the incremental path is validated against); [`dynamics::DynamicPdms`]
//! layers epoch-based evaluation on top. The crate also provides the paper's
//! operational extensions: adaptive probe-TTL expansion ([`ttl_expansion`]),
//! communication-overhead accounting ([`overhead`]), and the evolving-network
//! machinery ([`dynamics`]). `pdms-workloads` produces catalogs to feed it and
//! `pdms-bench` regenerates every figure of the paper's evaluation section on top.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod backend;
pub mod baseline_exact;
pub mod baseline_voting;
pub mod cycle_analysis;
pub mod delta;
pub mod dynamics;
pub mod embedded;
pub mod embedded_baseline;
pub mod engine;
pub mod feedback;
pub mod local_graph;
pub mod metrics;
pub mod overhead;
pub mod posterior;
pub mod priors;
pub mod routing;
pub mod schedules;
pub mod session;
pub mod sharding;
pub mod ttl_expansion;

pub use backend::{
    backend_for_method, EmbeddedBackend, ExactBackend, InferenceBackend, InferenceOutcome,
    InferenceTask, VotingBackend,
};
pub use baseline_exact::{
    exact_posterior_table, exact_posteriors, mean_relative_error, relative_errors,
};
pub use baseline_voting::VotingBaseline;
pub use cycle_analysis::{
    AnalysisConfig, AnalysisDelta, CycleAnalysis, EvidencePath, EvidenceSource,
};
pub use delta::{estimate_delta, estimate_delta_for_sizes, DEFAULT_DELTA};
pub use dynamics::{
    apply_event, apply_event_traced, incident_live_mappings, DynamicPdms, DynamicsConfig,
    EpochReport, EventEffect, NetworkEvent,
};
pub use embedded::{run_embedded, EmbeddedConfig, EmbeddedMessagePassing, EmbeddedReport};
pub use embedded_baseline::{run_embedded_baseline, BaselineMessagePassing};
pub use engine::{Engine, EngineConfig, EngineReport, InferenceMethod};
pub use feedback::{Feedback, FeedbackObservation};
pub use local_graph::{Granularity, MappingModel, ModelEvidence, VariableKey};
pub use metrics::{precision_recall, DetectionOutcome, EvaluationReport};
pub use overhead::{communication_overhead, OverheadReport, PeerOverhead};
pub use posterior::PosteriorTable;
pub use priors::PriorStore;
pub use routing::{route_query, RoutingDecision, RoutingOutcome, RoutingPolicy};
pub use schedules::{DecentralizedConfig, DecentralizedRun, PeerInferenceLogic, ScheduleKind};
pub use session::{ApplyReport, EngineBuilder, EngineSession, SessionStats};
pub use sharding::{BatchReport, Shard, ShardedSession, ShardedStats};
pub use ttl_expansion::{
    expand_ttl, expand_ttl_with_priors, TtlExpansionConfig, TtlExpansionReport, TtlExpansionStep,
};

//! Pluggable inference backends behind one object-safe trait.
//!
//! The engine used to hard-code its three inference strategies in a `match`; every new
//! strategy (a sharded solver, an async remote service, an experiment-specific
//! approximation) meant editing the engine itself. [`InferenceBackend`] inverts that:
//! the engine and the incremental session only know the trait, and the three built-in
//! strategies — [`EmbeddedBackend`] (the paper's decentralized message passing),
//! [`ExactBackend`] (the centralized gold standard), [`VotingBackend`] (the earlier
//! cycle-voting heuristic) — are ordinary implementations that callers can swap,
//! wrap, or replace via `Arc<dyn InferenceBackend>`.
//!
//! A backend consumes an [`InferenceTask`] (model, analysis, priors, and an optional
//! warm start carried over from a previous run) and produces an [`InferenceOutcome`]
//! (per-variable posteriors plus convergence bookkeeping). Backends are `Send + Sync`
//! so sessions can be shared across threads and future backends can fan work out.

use crate::baseline_exact::exact_posteriors;
use crate::baseline_voting::VotingBaseline;
use crate::cycle_analysis::CycleAnalysis;
use crate::embedded::{EmbeddedConfig, EmbeddedMessagePassing};
use crate::local_graph::{MappingModel, VariableKey};
use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;

/// Everything a backend needs to estimate mapping-quality posteriors.
#[derive(Debug)]
pub struct InferenceTask<'a> {
    /// The probabilistic model (variables + feedback factors).
    pub model: &'a MappingModel,
    /// The structural analysis the model was built from (used by evidence-level
    /// backends such as the voting heuristic).
    pub analysis: &'a CycleAnalysis,
    /// Explicit per-variable priors; missing entries use `default_prior`.
    pub priors: &'a BTreeMap<VariableKey, f64>,
    /// Prior for variables without an explicit entry.
    pub default_prior: f64,
    /// Posteriors of a previous run on a largely unchanged model, if any. Iterative
    /// backends may use them to warm-start their messages; one-shot backends ignore
    /// them. Warm starts never change a fixpoint, only how fast it is reached.
    pub warm_start: Option<&'a BTreeMap<VariableKey, f64>>,
}

/// What one inference run produced.
#[derive(Debug, Clone)]
pub struct InferenceOutcome {
    /// Posterior `P(correct)` per model variable, in model variable order.
    pub posteriors: Vec<f64>,
    /// Iterations/rounds used (0 for non-iterative backends).
    pub rounds: usize,
    /// Whether the backend converged (always `true` for one-shot backends).
    pub converged: bool,
}

/// An inference strategy over the mapping-quality model.
///
/// Implementations must be `Send + Sync`: sessions hold them behind
/// `Arc<dyn InferenceBackend>` and may be driven from multiple threads.
pub trait InferenceBackend: fmt::Debug + Send + Sync {
    /// Short human-readable backend name (used in reports and logs).
    fn name(&self) -> &'static str;

    /// Runs inference over the task's model.
    fn infer(&self, task: &InferenceTask<'_>) -> InferenceOutcome;
}

/// The paper's decentralized embedded message passing (Section 4.3).
#[derive(Debug, Clone, Default)]
pub struct EmbeddedBackend {
    /// Message-passing parameters (rounds, tolerance, loss model).
    pub config: EmbeddedConfig,
}

impl EmbeddedBackend {
    /// Backend with explicit message-passing parameters.
    pub fn new(config: EmbeddedConfig) -> Self {
        Self { config }
    }
}

impl InferenceBackend for EmbeddedBackend {
    fn name(&self) -> &'static str {
        "embedded"
    }

    fn infer(&self, task: &InferenceTask<'_>) -> InferenceOutcome {
        let mut machine = EmbeddedMessagePassing::new(
            task.model,
            task.priors,
            task.default_prior,
            self.config.clone(),
        );
        if let Some(previous) = task.warm_start {
            machine.warm_start(previous);
        }
        let report = machine.run();
        InferenceOutcome {
            posteriors: report.posteriors,
            rounds: report.rounds,
            converged: report.converged,
        }
    }
}

/// Centralized exact inference (the Figure 9 baseline; exponential in model size).
#[derive(Debug, Clone, Copy, Default)]
pub struct ExactBackend;

impl InferenceBackend for ExactBackend {
    fn name(&self) -> &'static str {
        "exact"
    }

    fn infer(&self, task: &InferenceTask<'_>) -> InferenceOutcome {
        let posteriors = exact_posteriors(task.model, task.priors, task.default_prior);
        InferenceOutcome {
            posteriors,
            rounds: 0,
            converged: true,
        }
    }
}

/// The cycle-voting heuristic of the paper's earlier work (the Section 6 baseline).
#[derive(Debug, Clone, Copy, Default)]
pub struct VotingBackend;

impl InferenceBackend for VotingBackend {
    fn name(&self) -> &'static str {
        "voting"
    }

    fn infer(&self, task: &InferenceTask<'_>) -> InferenceOutcome {
        let baseline = VotingBaseline::from_analysis(task.analysis);
        let posteriors = task
            .model
            .variables
            .iter()
            .map(|key| match key.attribute {
                Some(attr) => baseline.score(key.mapping, attr),
                // Coarse mode: the worst per-attribute score of the mapping's own
                // votes; a mapping without any vote keeps the default prior.
                None => baseline
                    .mapping_score(key.mapping)
                    .unwrap_or(task.default_prior),
            })
            .collect();
        InferenceOutcome {
            posteriors,
            rounds: 0,
            converged: true,
        }
    }
}

/// The built-in backend named by a [`crate::engine::InferenceMethod`] — the bridge
/// that keeps the deprecated enum-based configuration working on top of the trait.
pub fn backend_for_method(
    method: crate::engine::InferenceMethod,
    embedded: &EmbeddedConfig,
) -> Arc<dyn InferenceBackend> {
    use crate::engine::InferenceMethod;
    match method {
        InferenceMethod::Embedded => Arc::new(EmbeddedBackend::new(embedded.clone())),
        InferenceMethod::Exact => Arc::new(ExactBackend),
        InferenceMethod::Voting => Arc::new(VotingBackend),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cycle_analysis::AnalysisConfig;
    use crate::local_graph::Granularity;
    use pdms_schema::{AttributeId, Catalog, PeerId};

    fn faulty_ring() -> Catalog {
        let mut cat = Catalog::new();
        let peers: Vec<PeerId> = (0..3)
            .map(|i| {
                cat.add_peer_with_schema(format!("p{i}"), |s| {
                    s.attributes(["alpha", "beta"]);
                })
            })
            .collect();
        for i in 0..3 {
            let from = peers[i];
            let to = peers[(i + 1) % 3];
            cat.add_mapping(from, to, |m| {
                if i == 1 {
                    m.erroneous(AttributeId(0), AttributeId(1), AttributeId(0))
                        .correct(AttributeId(1), AttributeId(1))
                } else {
                    m.correct(AttributeId(0), AttributeId(0))
                        .correct(AttributeId(1), AttributeId(1))
                }
            });
        }
        cat
    }

    fn task_parts(granularity: Granularity) -> (CycleAnalysis, MappingModel) {
        let cat = faulty_ring();
        let analysis = CycleAnalysis::analyze(&cat, &AnalysisConfig::default());
        let model = MappingModel::build(&cat, &analysis, granularity, 0.1);
        (analysis, model)
    }

    #[test]
    fn all_backends_produce_one_posterior_per_variable() {
        let (analysis, model) = task_parts(Granularity::Fine);
        let priors = BTreeMap::new();
        let task = InferenceTask {
            model: &model,
            analysis: &analysis,
            priors: &priors,
            default_prior: 0.5,
            warm_start: None,
        };
        let backends: Vec<Arc<dyn InferenceBackend>> = vec![
            Arc::new(EmbeddedBackend::default()),
            Arc::new(ExactBackend),
            Arc::new(VotingBackend),
        ];
        for backend in backends {
            let outcome = backend.infer(&task);
            assert_eq!(
                outcome.posteriors.len(),
                model.variable_count(),
                "{}",
                backend.name()
            );
            assert!(outcome.converged, "{}", backend.name());
            for p in &outcome.posteriors {
                assert!((0.0..=1.0).contains(p), "{}: posterior {p}", backend.name());
            }
        }
    }

    #[test]
    fn backends_are_object_safe_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>(_: &T) {}
        let backends: Vec<Arc<dyn InferenceBackend>> = vec![
            Arc::new(EmbeddedBackend::default()),
            Arc::new(ExactBackend),
            Arc::new(VotingBackend),
        ];
        for backend in &backends {
            assert_send_sync(backend);
        }
    }

    #[test]
    fn warm_start_preserves_the_embedded_fixpoint_and_speeds_convergence() {
        let (analysis, model) = task_parts(Granularity::Fine);
        let priors = BTreeMap::new();
        let backend = EmbeddedBackend::default();
        let cold = backend.infer(&InferenceTask {
            model: &model,
            analysis: &analysis,
            priors: &priors,
            default_prior: 0.5,
            warm_start: None,
        });
        // Warm-start from the converged posteriors: same fixpoint, fewer rounds.
        let mut previous = BTreeMap::new();
        for (i, key) in model.variables.iter().enumerate() {
            previous.insert(*key, cold.posteriors[i]);
        }
        let warm = backend.infer(&InferenceTask {
            model: &model,
            analysis: &analysis,
            priors: &priors,
            default_prior: 0.5,
            warm_start: Some(&previous),
        });
        assert!(warm.converged);
        // On a toy model that cold-converges in ~3 rounds the seeded messages may
        // need one settle round; the real speedup (fractions of the cold rounds)
        // shows on the churn workloads — see benches/incremental_vs_full.rs.
        assert!(
            warm.rounds <= cold.rounds + 1,
            "warm {} vs cold {}",
            warm.rounds,
            cold.rounds
        );
        for (a, b) in cold.posteriors.iter().zip(&warm.posteriors) {
            assert!((a - b).abs() < 1e-3, "cold {a} vs warm {b}");
        }
    }

    #[test]
    fn voting_backend_coarse_mode_uses_worst_attribute_score() {
        let (analysis, model) = task_parts(Granularity::Coarse);
        let priors = BTreeMap::new();
        let task = InferenceTask {
            model: &model,
            analysis: &analysis,
            priors: &priors,
            default_prior: 0.5,
            warm_start: None,
        };
        let outcome = VotingBackend.infer(&task);
        let baseline = VotingBaseline::from_analysis(&analysis);
        for (i, key) in model.variables.iter().enumerate() {
            assert_eq!(key.attribute, None);
            let expected = baseline.mapping_score(key.mapping).unwrap_or(0.5);
            assert_eq!(outcome.posteriors[i], expected, "mapping {}", key.mapping);
        }
        // The faulty mapping's only vote is negative, so its coarse score is 0.
        let faulty = model
            .variables
            .iter()
            .position(|k| k.mapping == pdms_schema::MappingId(1))
            .expect("faulty mapping has a variable");
        assert_eq!(outcome.posteriors[faulty], 0.0);
    }
}

//! The pre-arena, nested-`Vec` implementation of the embedded message-passing
//! scheme, preserved verbatim as a golden reference.
//!
//! [`crate::embedded::EmbeddedMessagePassing`] reworked the round loop onto flat,
//! CSR-indexed arenas; the change-driven caching contract demands that the rework is
//! *bit-identical* — same posteriors, same convergence round, same loss-model RNG
//! stream. This module keeps the original pointer-chasing implementation around so
//! that contract stays checkable forever:
//!
//! * the golden-posterior equivalence tests (`tests/golden_posteriors.rs` and the
//!   proptest schedules in `crate::embedded`) run both engines side by side and
//!   assert exact equality;
//! * the `round_throughput` bench and the `BENCH_round_throughput.json` emitter use
//!   it as the "before" of the before/after comparison.
//!
//! It is **not** part of the serving path — never use it outside tests and benches.

use crate::embedded::{EmbeddedConfig, EmbeddedReport};
use crate::local_graph::{MappingModel, VariableKey};
use pdms_factor::feedback_factor::{feedback_message, FeedbackSign};
use pdms_factor::Belief;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeMap;

/// The original nested-`Vec` state machine (see the module docs of
/// [`crate::embedded`] for the algorithm itself).
#[derive(Debug, Clone)]
pub struct BaselineMessagePassing<'m> {
    model: &'m MappingModel,
    priors: Vec<Belief>,
    /// `incoming[e][k][j]`: the message about variable `e.variables[j]` as currently
    /// known by the owner of `e.variables[k]` (unit before anything arrives).
    incoming: Vec<Vec<Vec<Belief>>>,
    /// `factor_to_var[e][k]`: the locally computed message from the replica of factor
    /// `e` to its variable at position `k`.
    factor_to_var: Vec<Vec<Belief>>,
    /// `evidences_of_var[v]`: every `(evidence, position)` where variable `v` appears.
    evidences_of_var: Vec<Vec<(usize, usize)>>,
    /// `stale_factor[e][k]`: an input of the factor replica changed, so
    /// `factor_to_var[e][k]` must be recomputed next round.
    stale_factor: Vec<Vec<bool>>,
    /// `var_active[v]`: some factor→variable message into `v` changed last phase.
    var_active: Vec<bool>,
    /// `last_remote[e][j]`: cached remote message `µ_{vars[j]→e}` from the previous
    /// round.
    last_remote: Vec<Vec<Belief>>,
    config: EmbeddedConfig,
    rng: StdRng,
    messages_delivered: u64,
    messages_dropped: u64,
}

impl<'m> BaselineMessagePassing<'m> {
    /// Creates the state machine with per-variable priors (mirrors
    /// [`crate::embedded::EmbeddedMessagePassing::new`]).
    pub fn new(
        model: &'m MappingModel,
        priors: &BTreeMap<VariableKey, f64>,
        default_prior: f64,
        config: EmbeddedConfig,
    ) -> Self {
        let prior_beliefs = model
            .variables
            .iter()
            .map(|key| Belief::from_probability(priors.get(key).copied().unwrap_or(default_prior)))
            .collect();
        let incoming: Vec<Vec<Vec<Belief>>> = model
            .evidences
            .iter()
            .map(|e| vec![vec![Belief::unit(); e.variables.len()]; e.variables.len()])
            .collect();
        let factor_to_var: Vec<Vec<Belief>> = model
            .evidences
            .iter()
            .map(|e| vec![Belief::unit(); e.variables.len()])
            .collect();
        let mut evidences_of_var = vec![Vec::new(); model.variable_count()];
        for (e_idx, evidence) in model.evidences.iter().enumerate() {
            for (position, &variable) in evidence.variables.iter().enumerate() {
                evidences_of_var[variable].push((e_idx, position));
            }
        }
        let stale_factor = model
            .evidences
            .iter()
            .map(|e| vec![true; e.variables.len()])
            .collect();
        let last_remote = model
            .evidences
            .iter()
            .map(|e| vec![Belief::unit(); e.variables.len()])
            .collect();
        let var_active = vec![true; model.variable_count()];
        let rng = StdRng::seed_from_u64(config.seed);
        Self {
            model,
            priors: prior_beliefs,
            incoming,
            factor_to_var,
            evidences_of_var,
            stale_factor,
            var_active,
            last_remote,
            config,
            rng,
            messages_delivered: 0,
            messages_dropped: 0,
        }
    }

    /// Seeds the message state from the posteriors of a previous run (mirrors
    /// [`crate::embedded::EmbeddedMessagePassing::warm_start`]).
    pub fn warm_start(&mut self, previous: &BTreeMap<VariableKey, f64>) {
        for (e_idx, evidence) in self.model.evidences.iter().enumerate() {
            for (j, &var_j) in evidence.variables.iter().enumerate() {
                let Some(&p) = previous.get(&self.model.variables[var_j]) else {
                    continue;
                };
                let message = Belief::from_probability(p.clamp(0.0, 1.0)).normalized();
                for k in 0..evidence.variables.len() {
                    self.incoming[e_idx][k][j] = message;
                    self.stale_factor[e_idx][k] = true;
                }
            }
        }
    }

    /// Posterior `P(correct)` of one model variable, from the owner's perspective.
    pub fn posterior(&self, variable: usize) -> f64 {
        let mut belief = self.priors[variable];
        for &(e, pos) in &self.evidences_of_var[variable] {
            belief *= self.factor_to_var[e][pos];
        }
        belief.probability_correct()
    }

    /// Posteriors of all variables.
    pub fn posteriors(&self) -> Vec<f64> {
        (0..self.model.variable_count())
            .map(|v| self.posterior(v))
            .collect()
    }

    /// The remote message `µ_{p→fa_e}(variable)`.
    fn remote_message(&self, variable: usize, excluding_evidence: usize) -> Belief {
        let mut belief = self.priors[variable];
        for &(e, pos) in &self.evidences_of_var[variable] {
            if e == excluding_evidence {
                continue;
            }
            belief *= self.factor_to_var[e][pos];
        }
        belief.normalized()
    }

    /// Runs one round of the periodic schedule. Returns the largest posterior change.
    pub fn round(&mut self) -> f64 {
        let before = self.posteriors();
        // Phase 1: every owner recomputes the local factor→variable messages of its
        // replicas whose received inputs changed.
        let mut var_activated = vec![false; self.model.variable_count()];
        for (e_idx, evidence) in self.model.evidences.iter().enumerate() {
            let sign = FeedbackSign::from_positive(evidence.positive);
            for k in 0..evidence.variables.len() {
                if !self.stale_factor[e_idx][k] {
                    continue;
                }
                self.stale_factor[e_idx][k] = false;
                let mut inputs = self.incoming[e_idx][k].clone();
                inputs[k] = Belief::unit(); // ignored by message computation
                let message = feedback_message(sign, evidence.delta, k, &inputs).normalized();
                if message != self.factor_to_var[e_idx][k] {
                    self.factor_to_var[e_idx][k] = message;
                    var_activated[evidence.variables[k]] = true;
                }
            }
        }
        for (variable, activated) in var_activated.into_iter().enumerate() {
            if activated {
                self.var_active[variable] = true;
            }
        }
        // Phase 2: every owner sends its remote messages; each individual message may
        // be lost, in which case the recipient keeps the stale value.
        for (e_idx, evidence) in self.model.evidences.iter().enumerate() {
            for (j, &var_j) in evidence.variables.iter().enumerate() {
                let message = if self.var_active[var_j] {
                    let message = self.remote_message(var_j, e_idx);
                    self.last_remote[e_idx][j] = message;
                    message
                } else {
                    self.last_remote[e_idx][j]
                };
                for k in 0..evidence.variables.len() {
                    if k == j {
                        self.incoming[e_idx][k][j] = message;
                        continue;
                    }
                    let delivered = self.config.send_probability >= 1.0
                        || self
                            .rng
                            .gen_bool(self.config.send_probability.clamp(0.0, 1.0));
                    if delivered {
                        if self.incoming[e_idx][k][j] != message {
                            self.incoming[e_idx][k][j] = message;
                            self.stale_factor[e_idx][k] = true;
                        }
                        self.messages_delivered += 1;
                    } else {
                        self.messages_dropped += 1;
                    }
                }
            }
        }
        for active in &mut self.var_active {
            *active = false;
        }
        let after = self.posteriors();
        before
            .iter()
            .zip(&after)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f64::max)
    }

    /// Runs rounds until convergence or the cap, returning the report.
    pub fn run(&mut self) -> EmbeddedReport {
        let mut history = Vec::new();
        if self.config.record_history {
            history.push(self.posteriors());
        }
        let mut converged = false;
        let mut rounds = 0;
        for _ in 0..self.config.max_rounds {
            let delta = self.round();
            rounds += 1;
            if self.config.record_history {
                history.push(self.posteriors());
            }
            if delta < self.config.tolerance {
                converged = true;
                break;
            }
        }
        EmbeddedReport {
            posteriors: self.posteriors(),
            rounds,
            converged,
            history,
            messages_delivered: self.messages_delivered,
            messages_dropped: self.messages_dropped,
        }
    }
}

/// Convenience: build the baseline state machine, run it, return the report.
pub fn run_embedded_baseline(
    model: &MappingModel,
    priors: &BTreeMap<VariableKey, f64>,
    default_prior: f64,
    config: EmbeddedConfig,
) -> EmbeddedReport {
    BaselineMessagePassing::new(model, priors, default_prior, config).run()
}

//! Cycle-voting baseline ("Chatty Web"-style heuristics, references [2, 3] of the paper).
//!
//! The paper's own earlier approach analysed cycles without a probabilistic model:
//! every cycle casts a vote on all of its mappings — positive feedback is a good vote,
//! negative feedback a bad vote — and a mapping is disqualified when its bad-vote share
//! crosses a threshold. Because the votes ignore the interdependencies between cycles,
//! a single faulty mapping drags down every correct mapping that happens to share a
//! cycle with it; Section 6 points out that on the introductory example this heuristic
//! disqualifies all three left-hand mappings while only one of them is wrong. This
//! module implements that heuristic so the improvement of the factor-graph approach can
//! be quantified.

use crate::cycle_analysis::CycleAnalysis;
use crate::feedback::Feedback;
use crate::posterior::PosteriorTable;
use pdms_schema::{AttributeId, MappingId};
use std::collections::BTreeMap;

/// Vote tallies for one `(mapping, attribute)` pair.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct VoteTally {
    /// Number of cycles/parallel paths with positive feedback containing the mapping.
    pub positive: usize,
    /// Number with negative feedback.
    pub negative: usize,
}

impl VoteTally {
    /// Fraction of good votes; 0.5 when there is no vote at all (ignorance).
    pub fn score(&self) -> f64 {
        let total = self.positive + self.negative;
        if total == 0 {
            0.5
        } else {
            self.positive as f64 / total as f64
        }
    }
}

/// The cycle-voting baseline.
#[derive(Debug, Clone, Default)]
pub struct VotingBaseline {
    tallies: BTreeMap<(MappingId, AttributeId), VoteTally>,
}

impl VotingBaseline {
    /// Tallies votes from an analysis: every informative observation votes on every
    /// `(mapping, attribute-it-was-given)` pair along its path.
    pub fn from_analysis(analysis: &CycleAnalysis) -> Self {
        let mut tallies: BTreeMap<(MappingId, AttributeId), VoteTally> = BTreeMap::new();
        for obs in analysis.informative_observations() {
            for (mapping, attribute) in &obs.steps {
                let tally = tallies.entry((*mapping, *attribute)).or_default();
                match obs.feedback {
                    Feedback::Positive => tally.positive += 1,
                    Feedback::Negative => tally.negative += 1,
                    Feedback::Neutral => {}
                }
            }
        }
        Self { tallies }
    }

    /// The tally of one `(mapping, attribute)` pair.
    pub fn tally(&self, mapping: MappingId, attribute: AttributeId) -> VoteTally {
        self.tallies
            .get(&(mapping, attribute))
            .copied()
            .unwrap_or_default()
    }

    /// Score (good-vote fraction) of one pair.
    pub fn score(&self, mapping: MappingId, attribute: AttributeId) -> f64 {
        self.tally(mapping, attribute).score()
    }

    /// Worst (minimum) per-attribute score among the attributes of `mapping` that
    /// received at least one vote, or `None` when nothing voted on the mapping — the
    /// conservative coarse-granularity aggregate (a mapping is only as good as its
    /// worst attribute).
    pub fn mapping_score(&self, mapping: MappingId) -> Option<f64> {
        self.tallies
            .range((mapping, AttributeId(0))..=(mapping, AttributeId(usize::MAX)))
            .map(|(_, tally)| tally.score())
            .fold(None, |worst, score| {
                Some(worst.map_or(score, |w: f64| w.min(score)))
            })
    }

    /// Pairs whose score falls strictly below `threshold` — the mappings the heuristic
    /// disqualifies.
    pub fn disqualified(&self, threshold: f64) -> Vec<(MappingId, AttributeId)> {
        self.tallies
            .iter()
            .filter(|(_, t)| t.score() < threshold)
            .map(|((m, a), _)| (*m, *a))
            .collect()
    }

    /// Renders the scores as a [`PosteriorTable`] so the voting baseline can be plugged
    /// into the same routing and evaluation code as the probabilistic approach.
    pub fn as_posterior_table(&self, default: f64) -> PosteriorTable {
        let mut table = PosteriorTable::new(default);
        for ((mapping, attribute), tally) in &self.tallies {
            table.set(*mapping, *attribute, tally.score());
        }
        table
    }

    /// Number of `(mapping, attribute)` pairs with at least one vote.
    pub fn len(&self) -> usize {
        self.tallies.len()
    }

    /// True when no vote has been tallied.
    pub fn is_empty(&self) -> bool {
        self.tallies.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cycle_analysis::AnalysisConfig;
    use crate::embedded::{run_embedded, EmbeddedConfig};
    use crate::local_graph::{Granularity, MappingModel, VariableKey};
    use pdms_schema::{Catalog, PeerId};

    /// The introductory example: the faulty m24 shares cycles with correct mappings.
    fn intro_catalog() -> Catalog {
        let mut cat = Catalog::new();
        let peers: Vec<PeerId> = (0..4)
            .map(|i| {
                cat.add_peer_with_schema(format!("p{}", i + 1), |s| {
                    s.attributes(["Creator", "Item", "CreatedOn"]);
                })
            })
            .collect();
        let correct = |m: pdms_schema::MappingBuilder| {
            m.correct(AttributeId(0), AttributeId(0))
                .correct(AttributeId(1), AttributeId(1))
                .correct(AttributeId(2), AttributeId(2))
        };
        cat.add_mapping(peers[0], peers[1], correct);
        cat.add_mapping(peers[1], peers[2], correct);
        cat.add_mapping(peers[2], peers[3], correct);
        cat.add_mapping(peers[3], peers[0], correct);
        cat.add_mapping(peers[1], peers[3], |m| {
            m.erroneous(AttributeId(0), AttributeId(2), AttributeId(0))
                .correct(AttributeId(1), AttributeId(1))
                .correct(AttributeId(2), AttributeId(2))
        });
        cat
    }

    #[test]
    fn votes_are_tallied_per_mapping_and_attribute() {
        let cat = intro_catalog();
        let analysis = CycleAnalysis::analyze(&cat, &AnalysisConfig::default());
        let baseline = VotingBaseline::from_analysis(&analysis);
        assert!(!baseline.is_empty());
        // m24 on Creator only appears in negative evidence.
        let tally = baseline.tally(MappingId(4), AttributeId(0));
        assert_eq!(tally.positive, 0);
        assert!(tally.negative >= 1);
        assert_eq!(tally.score(), 0.0);
    }

    #[test]
    fn voting_disqualifies_correct_mappings_that_share_cycles_with_the_faulty_one() {
        // The Section 6 comparison: the heuristic punishes every mapping appearing in a
        // negative cycle, so some correct mappings fall below 0.5 too, whereas the
        // factor-graph approach isolates m24.
        let cat = intro_catalog();
        let analysis = CycleAnalysis::analyze(&cat, &AnalysisConfig::default());
        let baseline = VotingBaseline::from_analysis(&analysis);
        // The faulty pair is nailed to a score of zero…
        assert!(baseline
            .disqualified(0.5)
            .contains(&(MappingId(4), AttributeId(0))));
        // …but the correct mapping m12, which shares the negative cycle f2 with m24 on
        // Creator, is stuck at the break-even score 0.5: the vote count cannot
        // exonerate it, so any cautious threshold (here 0.55) wrongly disqualifies it
        // as well.
        assert_eq!(baseline.score(MappingId(0), AttributeId(0)), 0.5);
        let disqualified = baseline.disqualified(0.55);
        let wrongly_disqualified = disqualified
            .iter()
            .filter(|(m, a)| cat.mapping(*m).is_correct_for(*a).unwrap_or(true))
            .count();
        assert!(
            wrongly_disqualified > 0,
            "the voting heuristic should over-penalise correct mappings on this example"
        );

        // The probabilistic approach, in contrast, keeps every correct Creator mapping
        // above 0.5.
        let model = MappingModel::build(&cat, &analysis, Granularity::Fine, 0.1);
        let report = run_embedded(&model, &BTreeMap::new(), 0.5, EmbeddedConfig::default());
        let creator_correct_ok = model.variables.iter().enumerate().all(|(i, key)| {
            if key.attribute != Some(AttributeId(0)) || key.mapping == MappingId(4) {
                true
            } else {
                report.posterior(i) > 0.5
            }
        });
        assert!(creator_correct_ok);
        let m24 = model
            .variable_index(&VariableKey {
                mapping: MappingId(4),
                attribute: Some(AttributeId(0)),
            })
            .unwrap();
        assert!(report.posterior(m24) < 0.5);
    }

    #[test]
    fn score_defaults_to_half_without_votes() {
        let baseline = VotingBaseline::default();
        assert_eq!(baseline.score(MappingId(9), AttributeId(9)), 0.5);
        assert!(baseline.disqualified(0.5).is_empty());
    }

    #[test]
    fn mapping_score_is_the_minimum_over_voted_attributes() {
        let cat = intro_catalog();
        let analysis = CycleAnalysis::analyze(&cat, &AnalysisConfig::default());
        let baseline = VotingBaseline::from_analysis(&analysis);
        // m24 has a 0.0 score on Creator, positive votes elsewhere: min is 0.0.
        assert_eq!(baseline.mapping_score(MappingId(4)), Some(0.0));
        // m12's worst voted attribute is the break-even Creator tally.
        assert_eq!(baseline.mapping_score(MappingId(0)), Some(0.5));
        // A mapping nothing voted on has no score at all.
        assert_eq!(baseline.mapping_score(MappingId(17)), None);
        // The minimum never exceeds any individual attribute score.
        for (mapping, attribute) in baseline.tallies.keys() {
            let aggregate = baseline.mapping_score(*mapping).unwrap();
            assert!(aggregate <= baseline.score(*mapping, *attribute) + 1e-12);
        }
    }

    #[test]
    fn posterior_table_view_reflects_scores() {
        let cat = intro_catalog();
        let analysis = CycleAnalysis::analyze(&cat, &AnalysisConfig::default());
        let baseline = VotingBaseline::from_analysis(&analysis);
        let table = baseline.as_posterior_table(0.5);
        assert_eq!(
            table.probability_ignoring_bottom(MappingId(4), AttributeId(0)),
            baseline.score(MappingId(4), AttributeId(0))
        );
    }
}

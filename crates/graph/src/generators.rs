//! Random topology generators for synthetic PDMS networks.
//!
//! Section 3.2.1 of the paper observes that real semantic overlay networks are not
//! random: they show exponential degree distributions and unusually high clustering
//! coefficients (0.54 for the SRS biological schema network), i.e. scale-free-like
//! topologies with many short cycles. The evaluation therefore needs generators that
//! can produce (a) simple rings and example graphs for controlled experiments and
//! (b) clustered / scale-free networks for the large-scale simulations mentioned in
//! Section 7.

use crate::adjacency::{DiGraph, NodeId};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// Family of topologies the generator can produce.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TopologyKind {
    /// A single directed ring `p0 → p1 → … → p0`.
    Ring,
    /// Every ordered pair of distinct peers is connected independently with
    /// probability `p` (Erdős–Rényi G(n, p)).
    ErdosRenyi,
    /// Preferential attachment: each new peer connects to `m` existing peers chosen
    /// proportionally to their current degree (Barabási–Albert), producing scale-free
    /// degree distributions.
    ScaleFree,
    /// A ring lattice where each peer is connected to its `k` nearest clockwise
    /// neighbours, with each edge rewired with probability `p` (Watts–Strogatz-like),
    /// producing the high clustering coefficients observed in real schema networks.
    ClusteredSmallWorld,
    /// `islands` disjoint Erdős–Rényi sub-networks of `peers` nodes each, with no
    /// edge between islands — the multi-component shape of a federation of
    /// independent PDMS communities. Exercises component-sharded engines: every
    /// island is one weakly connected component (and one shard).
    Islands,
}

/// Configuration for [`generate`].
#[derive(Debug, Clone)]
pub struct GeneratorConfig {
    /// Which family of topology to generate.
    pub kind: TopologyKind,
    /// Number of peers.
    pub peers: usize,
    /// Edge probability (Erdős–Rényi) or rewiring probability (small-world). Ignored
    /// by the other families.
    pub probability: f64,
    /// Edges attached per new node (scale-free) or nearest neighbours (small-world).
    pub attachment: usize,
    /// Preferential-attachment exponent α for [`TopologyKind::ScaleFree`]: a new
    /// peer attaches to an existing peer with probability ∝ degree^α. `1.0` is the
    /// classic Barabási–Albert model; `α > 1` (super-linear attachment) concentrates
    /// edges on ever fewer hubs, producing the extreme hub-heavy topologies the
    /// work-stealing enumeration benchmarks use. Ignored by the other families.
    pub hub_exponent: f64,
    /// Number of disjoint islands for [`TopologyKind::Islands`] (`peers` nodes
    /// each). Ignored by the other families.
    pub islands: usize,
    /// RNG seed so every experiment is reproducible.
    pub seed: u64,
}

impl Default for GeneratorConfig {
    fn default() -> Self {
        Self {
            kind: TopologyKind::Ring,
            peers: 8,
            probability: 0.2,
            attachment: 2,
            hub_exponent: 1.0,
            islands: 1,
            seed: 42,
        }
    }
}

impl GeneratorConfig {
    /// Convenience constructor for a directed ring of `peers` nodes.
    pub fn ring(peers: usize) -> Self {
        Self {
            kind: TopologyKind::Ring,
            peers,
            ..Self::default()
        }
    }

    /// Convenience constructor for an Erdős–Rényi graph.
    pub fn erdos_renyi(peers: usize, probability: f64, seed: u64) -> Self {
        Self {
            kind: TopologyKind::ErdosRenyi,
            peers,
            probability,
            seed,
            ..Self::default()
        }
    }

    /// Convenience constructor for a Barabási–Albert scale-free graph.
    pub fn scale_free(peers: usize, attachment: usize, seed: u64) -> Self {
        Self {
            kind: TopologyKind::ScaleFree,
            peers,
            attachment,
            seed,
            ..Self::default()
        }
    }

    /// Convenience constructor for a hub-accentuated scale-free graph: preferential
    /// attachment with super-linear exponent `hub_exponent` (> 1 concentrates the
    /// degree distribution on a handful of hub peers — the realistic worst case for
    /// per-origin enumeration balance).
    pub fn scale_free_skewed(
        peers: usize,
        attachment: usize,
        hub_exponent: f64,
        seed: u64,
    ) -> Self {
        Self {
            kind: TopologyKind::ScaleFree,
            peers,
            attachment,
            hub_exponent,
            seed,
            ..Self::default()
        }
    }

    /// Convenience constructor for a multi-component topology: `islands` disjoint
    /// Erdős–Rényi islands of `peers` nodes each (edge probability `probability`).
    /// Every island ends up a separate weakly connected component, so a
    /// component-sharded engine runs one shard per island.
    pub fn islands(islands: usize, peers: usize, probability: f64, seed: u64) -> Self {
        Self {
            kind: TopologyKind::Islands,
            peers,
            probability,
            islands,
            seed,
            ..Self::default()
        }
    }

    /// Convenience constructor for a clustered small-world graph.
    pub fn small_world(peers: usize, neighbours: usize, rewire: f64, seed: u64) -> Self {
        Self {
            kind: TopologyKind::ClusteredSmallWorld,
            peers,
            attachment: neighbours,
            probability: rewire,
            seed,
            ..Self::default()
        }
    }

    /// Generates the topology described by this configuration.
    pub fn generate(&self) -> DiGraph {
        generate(self)
    }
}

/// Generates a mapping-network topology according to `config`.
pub fn generate(config: &GeneratorConfig) -> DiGraph {
    let mut rng = StdRng::seed_from_u64(config.seed);
    match config.kind {
        TopologyKind::Ring => ring(config.peers),
        TopologyKind::ErdosRenyi => erdos_renyi(config.peers, config.probability, &mut rng),
        TopologyKind::ScaleFree => scale_free(
            config.peers,
            config.attachment.max(1),
            config.hub_exponent,
            &mut rng,
        ),
        TopologyKind::ClusteredSmallWorld => small_world(
            config.peers,
            config.attachment.max(1),
            config.probability,
            &mut rng,
        ),
        TopologyKind::Islands => islands(
            config.islands.max(1),
            config.peers,
            config.probability,
            config.seed,
        ),
    }
}

/// `islands` disjoint Erdős–Rényi islands of `peers` nodes each. Island `i` occupies
/// the node-id range `[i * peers, (i + 1) * peers)`; its edges are drawn from an RNG
/// derived from `(seed, i)`, so the contents of island `i` do not depend on how many
/// islands follow it.
fn islands(islands: usize, peers: usize, probability: f64, seed: u64) -> DiGraph {
    let mut g = DiGraph::with_nodes(islands * peers);
    for island in 0..islands {
        let mut rng =
            StdRng::seed_from_u64(seed ^ (island as u64).wrapping_mul(0x9e3779b97f4a7c15));
        let base = island * peers;
        for i in 0..peers {
            for j in 0..peers {
                if i != j && rng.gen_bool(probability.clamp(0.0, 1.0)) {
                    g.add_edge(NodeId(base + i), NodeId(base + j));
                }
            }
        }
    }
    g
}

/// Directed ring of `n` peers.
pub fn ring(n: usize) -> DiGraph {
    let mut g = DiGraph::with_nodes(n);
    if n < 2 {
        return g;
    }
    for i in 0..n {
        g.add_edge(NodeId(i), NodeId((i + 1) % n));
    }
    g
}

fn erdos_renyi(n: usize, p: f64, rng: &mut StdRng) -> DiGraph {
    let mut g = DiGraph::with_nodes(n);
    for i in 0..n {
        for j in 0..n {
            if i != j && rng.gen_bool(p.clamp(0.0, 1.0)) {
                g.add_edge(NodeId(i), NodeId(j));
            }
        }
    }
    g
}

fn scale_free(n: usize, m: usize, alpha: f64, rng: &mut StdRng) -> DiGraph {
    let mut g = DiGraph::with_nodes(n);
    if n == 0 {
        return g;
    }
    // Repeated-node list for preferential attachment: a node appears once per incident
    // edge endpoint, so sampling uniformly from the list is degree-proportional. For
    // the classic α = 1 model the list *is* the distribution; for α ≠ 1 an explicit
    // `max(degree, 1)^α` weight per *existing* node (the `max(…, 1)` floor keeps
    // isolated bootstrap nodes reachable) is maintained incrementally alongside its
    // running sum, so each draw costs one scan and no allocation.
    let mut endpoints: Vec<usize> = Vec::new();
    let mut degrees: Vec<f64> = vec![0.0; n];
    let mut weights: Vec<f64> = vec![0.0; n];
    let mut weight_total = 0.0f64;
    let classic = (alpha - 1.0).abs() < 1e-12;
    let weight_of = |degree: f64| degree.max(1.0).powf(alpha);
    let seed_nodes = m.min(n.saturating_sub(1)).max(1);
    // Fully connect the first few nodes (in one direction) to bootstrap.
    for i in 0..seed_nodes.min(n) {
        for j in 0..i {
            g.add_edge(NodeId(i), NodeId(j));
            endpoints.push(i);
            endpoints.push(j);
            degrees[i] += 1.0;
            degrees[j] += 1.0;
        }
    }
    if endpoints.is_empty() && n > 1 {
        g.add_edge(NodeId(0), NodeId(1));
        endpoints.push(0);
        endpoints.push(1);
        degrees[0] += 1.0;
        degrees[1] += 1.0;
    }
    if !classic {
        // Seed nodes are the candidate pool for the first attachment round.
        for j in 0..seed_nodes.min(n) {
            weights[j] = weight_of(degrees[j]);
            weight_total += weights[j];
        }
    }
    for i in seed_nodes..n {
        let mut targets: Vec<usize> = Vec::new();
        let mut guard = 0;
        while targets.len() < m.min(i) && guard < 100 * m {
            guard += 1;
            let candidate = if classic {
                *endpoints.choose(rng).expect("non-empty endpoint list")
            } else {
                weighted_draw(&weights[..i], weight_total, rng)
            };
            if candidate != i && !targets.contains(&candidate) {
                targets.push(candidate);
            }
        }
        for t in targets {
            // Orient the mapping randomly: real mapping networks contain mappings in
            // both directions.
            if rng.gen_bool(0.5) {
                g.add_edge(NodeId(i), NodeId(t));
            } else {
                g.add_edge(NodeId(t), NodeId(i));
            }
            endpoints.push(i);
            endpoints.push(t);
            degrees[i] += 1.0;
            degrees[t] += 1.0;
            if !classic {
                let updated = weight_of(degrees[t]);
                weight_total += updated - weights[t];
                weights[t] = updated;
            }
        }
        if !classic {
            // Node i joins the candidate pool for the next attachment round.
            weights[i] = weight_of(degrees[i]);
            weight_total += weights[i];
        }
    }
    g
}

/// Samples an index of `weights` with probability ∝ its weight, given the
/// precomputed sum of the slice — one linear scan, no allocation.
fn weighted_draw(weights: &[f64], total: f64, rng: &mut StdRng) -> usize {
    debug_assert!(!weights.is_empty());
    debug_assert!(
        (weights.iter().sum::<f64>() - total).abs() <= 1e-6 * total.max(1.0),
        "weight total out of sync with the weights"
    );
    let mut draw = rng.gen_range(0.0..total.max(f64::MIN_POSITIVE));
    for (index, w) in weights.iter().enumerate() {
        if draw < *w {
            return index;
        }
        draw -= w;
    }
    weights.len() - 1
}

fn small_world(n: usize, k: usize, rewire: f64, rng: &mut StdRng) -> DiGraph {
    let mut g = DiGraph::with_nodes(n);
    if n < 2 {
        return g;
    }
    let k = k.min(n - 1);
    for i in 0..n {
        for offset in 1..=k {
            let mut j = (i + offset) % n;
            if rng.gen_bool(rewire.clamp(0.0, 1.0)) {
                // Rewire to a uniformly random other node, avoiding self-loops and
                // duplicate edges where possible.
                let mut guard = 0;
                loop {
                    let candidate = rng.gen_range(0..n);
                    guard += 1;
                    if candidate != i
                        && (g.find_edge(NodeId(i), NodeId(candidate)).is_none() || guard > 20)
                    {
                        j = candidate;
                        break;
                    }
                }
            }
            if i != j && g.find_edge(NodeId(i), NodeId(j)).is_none() {
                g.add_edge(NodeId(i), NodeId(j));
            }
        }
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::clustering_coefficient;

    #[test]
    fn islands_are_disjoint_components_and_independent_of_island_count() {
        let config = GeneratorConfig::islands(4, 8, 0.25, 9);
        let g = config.generate();
        assert_eq!(g.node_count(), 32);
        let components = crate::traversal::connected_components(&g);
        // No edge crosses an island boundary.
        for edge in g.edges() {
            assert_eq!(edge.source.0 / 8, edge.target.0 / 8);
        }
        // Dense-enough islands come out as exactly one component each.
        assert_eq!(components.len(), 4);
        // Island contents do not depend on how many islands follow: the first two
        // islands of a 2-island graph equal those of the 4-island graph.
        let smaller = GeneratorConfig::islands(2, 8, 0.25, 9).generate();
        let prefix: Vec<_> = g.edges().filter(|e| e.source.0 < 16).collect();
        let all_smaller: Vec<_> = smaller.edges().collect();
        assert_eq!(prefix, all_smaller);
        // Determinism under the seed.
        let again = GeneratorConfig::islands(4, 8, 0.25, 9).generate();
        assert_eq!(
            g.edges().collect::<Vec<_>>(),
            again.edges().collect::<Vec<_>>()
        );
    }

    #[test]
    fn ring_has_n_edges_and_one_cycle() {
        let g = ring(7);
        assert_eq!(g.node_count(), 7);
        assert_eq!(g.edge_count(), 7);
        let cycles = crate::cycles::enumerate_cycles(&g, 7);
        assert_eq!(cycles.len(), 1);
    }

    #[test]
    fn tiny_rings_are_degenerate() {
        assert_eq!(ring(0).edge_count(), 0);
        assert_eq!(ring(1).edge_count(), 0);
        assert_eq!(ring(2).edge_count(), 2);
    }

    #[test]
    fn erdos_renyi_is_reproducible() {
        let a = GeneratorConfig::erdos_renyi(20, 0.15, 7).generate();
        let b = GeneratorConfig::erdos_renyi(20, 0.15, 7).generate();
        assert_eq!(a.edge_count(), b.edge_count());
        let ea: Vec<_> = a.edges().map(|e| (e.source, e.target)).collect();
        let eb: Vec<_> = b.edges().map(|e| (e.source, e.target)).collect();
        assert_eq!(ea, eb);
    }

    #[test]
    fn erdos_renyi_density_tracks_probability() {
        let g = GeneratorConfig::erdos_renyi(50, 0.1, 3).generate();
        let possible = 50.0 * 49.0;
        let density = g.edge_count() as f64 / possible;
        assert!(density > 0.05 && density < 0.15, "density {density}");
    }

    #[test]
    fn scale_free_produces_hubs() {
        let g = GeneratorConfig::scale_free(200, 2, 11).generate();
        assert!(g.edge_count() >= 200);
        let max_degree = g.nodes().map(|n| g.degree(n)).max().unwrap();
        let mean_degree = g.nodes().map(|n| g.degree(n)).sum::<usize>() as f64 / 200.0;
        assert!(
            max_degree as f64 > 3.0 * mean_degree,
            "expected hub nodes: max {max_degree}, mean {mean_degree}"
        );
    }

    #[test]
    fn scale_free_is_seed_deterministic() {
        for exponent in [1.0, 1.5] {
            let a = GeneratorConfig::scale_free_skewed(120, 2, exponent, 77).generate();
            let b = GeneratorConfig::scale_free_skewed(120, 2, exponent, 77).generate();
            let ea: Vec<_> = a.edges().map(|e| (e.source, e.target)).collect();
            let eb: Vec<_> = b.edges().map(|e| (e.source, e.target)).collect();
            assert_eq!(ea, eb, "exponent {exponent}");
            let c = GeneratorConfig::scale_free_skewed(120, 2, exponent, 78).generate();
            let ec: Vec<_> = c.edges().map(|e| (e.source, e.target)).collect();
            assert_ne!(ea, ec, "different seeds must differ (exponent {exponent})");
        }
    }

    #[test]
    fn scale_free_degree_distribution_is_heavy_tailed() {
        let g = GeneratorConfig::scale_free(300, 2, 13).generate();
        let mut degrees: Vec<usize> = g.nodes().map(|n| g.degree(n)).collect();
        degrees.sort_unstable_by(|a, b| b.cmp(a));
        let total: usize = degrees.iter().sum();
        // Attachment preserved: every non-seed node brought ~m edges.
        assert!(g.edge_count() >= 298 * 2 / 2);
        // Heavy tail: the top 10% of peers hold well over their uniform share (10%)
        // of the degree mass, and the median degree sits near the attachment floor.
        let top_decile: usize = degrees.iter().take(30).sum();
        assert!(
            top_decile as f64 > 0.25 * total as f64,
            "top decile holds {top_decile} of {total}"
        );
        let median = degrees[degrees.len() / 2];
        assert!(median <= 4, "median degree {median}");
    }

    #[test]
    fn super_linear_attachment_is_more_hub_concentrated() {
        let classic = GeneratorConfig::scale_free_skewed(200, 2, 1.0, 11).generate();
        let skewed = GeneratorConfig::scale_free_skewed(200, 2, 1.8, 11).generate();
        let max_share = |g: &DiGraph| {
            let total: usize = g.nodes().map(|n| g.degree(n)).sum();
            let max = g.nodes().map(|n| g.degree(n)).max().unwrap();
            max as f64 / total as f64
        };
        let classic_share = max_share(&classic);
        let skewed_share = max_share(&skewed);
        assert!(
            skewed_share > classic_share,
            "super-linear attachment should concentrate degree mass: \
             alpha=1.8 share {skewed_share:.3} vs alpha=1 share {classic_share:.3}"
        );
        // And the skew is substantial: the biggest hub touches a large slice of all
        // edge endpoints.
        assert!(skewed_share > 0.1, "hub share {skewed_share:.3}");
    }

    #[test]
    fn small_world_with_no_rewiring_is_highly_clustered() {
        let g = GeneratorConfig::small_world(40, 4, 0.0, 5).generate();
        let cc = clustering_coefficient(&g);
        assert!(cc > 0.4, "clustering coefficient {cc}");
    }

    #[test]
    fn generators_do_not_create_self_loops() {
        for cfg in [
            GeneratorConfig::erdos_renyi(30, 0.2, 1),
            GeneratorConfig::scale_free(30, 2, 2),
            GeneratorConfig::small_world(30, 3, 0.3, 3),
        ] {
            let g = cfg.generate();
            assert!(g.edges().all(|e| e.source != e.target), "{:?}", cfg.kind);
        }
    }

    #[test]
    fn small_world_rewiring_changes_structure() {
        let regular = GeneratorConfig::small_world(60, 3, 0.0, 9).generate();
        let rewired = GeneratorConfig::small_world(60, 3, 0.8, 9).generate();
        let cc_regular = clustering_coefficient(&regular);
        let cc_rewired = clustering_coefficient(&rewired);
        assert!(cc_rewired < cc_regular, "{cc_rewired} !< {cc_regular}");
    }
}

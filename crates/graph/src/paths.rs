//! Enumeration of parallel mapping paths in directed PDMS networks.
//!
//! In a directed mapping network two edge-disjoint directed paths that share the same
//! source and destination peer ("parallel paths", Section 3.3) play the role that
//! undirected cycles play in the undirected case: the destination peer receives the
//! same query through both paths and can compare the two translations, producing
//! positive, negative or neutral feedback on the union of the mappings involved.

use crate::adjacency::{DiGraph, EdgeId, NodeId};
use crate::parallelism::{effective_parallelism, run_stealing, timed, StealConfig, SubtaskCost};
use std::collections::{BTreeMap, HashSet};

/// A pair of edge-disjoint directed paths with common endpoints.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ParallelPaths {
    /// Common source peer.
    pub source: NodeId,
    /// Common destination peer.
    pub destination: NodeId,
    /// First path, as an ordered list of edges.
    pub left: Vec<EdgeId>,
    /// Second path, as an ordered list of edges.
    pub right: Vec<EdgeId>,
}

impl ParallelPaths {
    /// Total number of mappings involved (both paths).
    pub fn mapping_count(&self) -> usize {
        self.left.len() + self.right.len()
    }

    /// All edges of both paths.
    pub fn all_edges(&self) -> impl Iterator<Item = EdgeId> + '_ {
        self.left.iter().chain(self.right.iter()).copied()
    }

    /// True if either path uses the given edge.
    pub fn contains_edge(&self, edge: EdgeId) -> bool {
        self.left.contains(&edge) || self.right.contains(&edge)
    }

    fn canonical_key(&self) -> (NodeId, NodeId, Vec<EdgeId>, Vec<EdgeId>) {
        let mut a = self.left.clone();
        let mut b = self.right.clone();
        if b < a {
            std::mem::swap(&mut a, &mut b);
        }
        (self.source, self.destination, a, b)
    }
}

/// Enumerates all simple directed paths from `source` of length `1..=max_len`.
///
/// Returns `(destination, edge path)` tuples. Paths do not revisit nodes.
pub fn simple_paths_from(
    graph: &DiGraph,
    source: NodeId,
    max_len: usize,
) -> Vec<(NodeId, Vec<EdgeId>)> {
    simple_paths_from_hops(graph, source, 0..usize::MAX, max_len)
}

/// [`simple_paths_from`] restricted to paths whose *first* edge has an index in
/// `hop_range` within `source`'s outgoing-edge order — the stealable unit of the
/// parallel-path enumeration. Concatenating the results of an origin's hop ranges
/// in range order reproduces [`simple_paths_from`] exactly, because the first-hop
/// loop is the outermost level of the DFS.
fn simple_paths_from_hops(
    graph: &DiGraph,
    source: NodeId,
    hop_range: std::ops::Range<usize>,
    max_len: usize,
) -> Vec<(NodeId, Vec<EdgeId>)> {
    let mut out = Vec::new();
    if !graph.contains_node(source) || max_len == 0 {
        return out;
    }
    let mut on_path = vec![false; graph.node_count()];
    on_path[source.0] = true;
    let mut path = Vec::new();
    for (hop, e) in graph.outgoing(source).enumerate() {
        if hop < hop_range.start || hop >= hop_range.end {
            continue;
        }
        if on_path[e.target.0] {
            continue; // self-loop back to the source
        }
        path.push(e.id);
        out.push((e.target, path.clone()));
        on_path[e.target.0] = true;
        paths_rec(
            graph,
            e.target,
            max_len - 1,
            &mut path,
            &mut on_path,
            &mut out,
        );
        on_path[e.target.0] = false;
        path.pop();
    }
    out
}

fn paths_rec(
    graph: &DiGraph,
    current: NodeId,
    remaining: usize,
    path: &mut Vec<EdgeId>,
    on_path: &mut [bool],
    out: &mut Vec<(NodeId, Vec<EdgeId>)>,
) {
    if remaining == 0 {
        return;
    }
    for e in graph.outgoing(current) {
        if on_path[e.target.0] || path.contains(&e.id) {
            continue;
        }
        path.push(e.id);
        out.push((e.target, path.clone()));
        on_path[e.target.0] = true;
        paths_rec(graph, e.target, remaining - 1, path, on_path, out);
        on_path[e.target.0] = false;
        path.pop();
    }
}

/// Enumerates pairs of edge-disjoint parallel paths between every (source, destination)
/// pair, with each individual path of length at most `max_len`.
///
/// Pairs are deduplicated (the pair `{A, B}` equals `{B, A}`). Two paths that share an
/// edge are not reported: feedback over them would not be independent evidence for the
/// shared mapping. Paths of length 1 (a direct mapping) are allowed — comparing a direct
/// mapping with a two-hop route is exactly the `f3⇒ : m21 ∥ m24→m41` case of Figure 5.
pub fn enumerate_parallel_paths(graph: &DiGraph, max_len: usize) -> Vec<ParallelPaths> {
    collect_parallel_paths(graph, graph.nodes(), max_len, None)
}

/// [`enumerate_parallel_paths`] fanned out over work-stealing subtasks with
/// `std::thread::scope` workers (default steal configuration; see
/// [`enumerate_parallel_paths_scheduled`] for explicit knobs).
///
/// `parallelism` follows [`effective_parallelism`] semantics (`0` = auto, `1` =
/// serial). The output — contents *and* order — is identical at every worker
/// count, keeping downstream evidence ids stable.
pub fn enumerate_parallel_paths_parallel(
    graph: &DiGraph,
    max_len: usize,
    parallelism: usize,
) -> Vec<ParallelPaths> {
    enumerate_parallel_paths_scheduled(graph, max_len, parallelism, &StealConfig::default())
}

/// One stealable unit of a parallel-path enumeration.
///
/// A light source is enumerated *and* paired inside one task ([`PathTask::Whole`]),
/// so its simple-path list lives and dies on the worker that ran it — exactly the
/// memory profile of the pre-split per-source fan-out. Only split (hub) sources
/// buffer their first-hop slices across the phase barrier, because pairing needs
/// every path of the source at once (the serial enumeration has the same
/// per-source requirement).
enum PathTask {
    /// Enumerate and pair one whole source in a single task.
    Whole(NodeId),
    /// Enumerate one first-hop slice of a split (hub) source.
    Slice(NodeId, std::ops::Range<usize>),
}

impl PathTask {
    fn source(&self) -> NodeId {
        match self {
            PathTask::Whole(source) => *source,
            PathTask::Slice(source, _) => *source,
        }
    }
}

/// What one [`PathTask`] produced.
enum PathTaskResult {
    /// A whole source's finished pairs.
    Pairs(Vec<ParallelPaths>),
    /// One slice's simple paths, to be paired after the barrier.
    Paths(Vec<(NodeId, Vec<EdgeId>)>),
}

/// The work-stealing task list of one parallel-path enumeration, in
/// source-then-subtask order.
fn path_tasks(graph: &DiGraph, workers: usize, steal: &StealConfig) -> Vec<PathTask> {
    let steal = steal.pinned();
    let mut tasks = Vec::with_capacity(graph.node_count());
    for source in graph.nodes() {
        let ranges = steal.subtask_ranges(graph.out_degree(source), workers);
        if ranges.len() <= 1 {
            tasks.push(PathTask::Whole(source));
        } else {
            for range in ranges {
                tasks.push(PathTask::Slice(source, range));
            }
        }
    }
    tasks
}

/// [`enumerate_parallel_paths`] under an explicit work-stealing schedule.
///
/// The exponential part of the work — enumerating every simple path from a source —
/// is cut at hub sources into first-hop slices that idle workers steal from a
/// shared injector; light sources are enumerated and paired inside one stolen task
/// (phase 1). Only the split hub sources cross the barrier into phase 2, where
/// their slices — reassembled in first-hop order, the serial `simple_paths_from`
/// order — are paired one destination group at a time. Grouping, pairing,
/// filtering and deduplication are byte-for-byte the serial enumeration at every
/// `(parallelism, steal)` setting.
pub fn enumerate_parallel_paths_scheduled(
    graph: &DiGraph,
    max_len: usize,
    parallelism: usize,
    steal: &StealConfig,
) -> Vec<ParallelPaths> {
    let node_count = graph.node_count();
    let workers = effective_parallelism(parallelism).min(node_count.max(1));
    if workers <= 1 {
        return enumerate_parallel_paths(graph, max_len);
    }
    // Phase 1: light sources produce pairs directly; hub slices produce paths.
    let tasks = path_tasks(graph, workers, steal);
    let results = run_stealing(workers, tasks.len(), |i| match &tasks[i] {
        PathTask::Whole(source) => {
            PathTaskResult::Pairs(pairs_from_source(graph, *source, max_len, None))
        }
        PathTask::Slice(source, range) => PathTaskResult::Paths(simple_paths_from_hops(
            graph,
            *source,
            range.clone(),
            max_len,
        )),
    });
    // Regroup per source in task order; buffer paths only for the split sources.
    let mut per_source_pairs: Vec<Vec<ParallelPaths>> = vec![Vec::new(); node_count];
    let mut split_paths: Vec<Vec<(NodeId, Vec<EdgeId>)>> = vec![Vec::new(); node_count];
    let mut is_split = vec![false; node_count];
    let mut split_sources: Vec<NodeId> = Vec::new();
    for (task, result) in tasks.iter().zip(results) {
        match result {
            PathTaskResult::Pairs(pairs) => per_source_pairs[task.source().0] = pairs,
            PathTaskResult::Paths(paths) => {
                let source = task.source();
                if !is_split[source.0] {
                    is_split[source.0] = true;
                    split_sources.push(source);
                }
                split_paths[source.0].extend(paths);
            }
        }
    }
    // Phase 2: steal the pairing of the split (hub) sources, one destination
    // group at a time — the finest grain that preserves the serial output order —
    // so not even a hub's pairing can pin a single worker.
    let split_groups: Vec<(NodeId, DestGroups<'_>)> = split_sources
        .iter()
        .map(|source| {
            (
                *source,
                group_paths_by_dest(*source, &split_paths[source.0]),
            )
        })
        .collect();
    let pairing_tasks: Vec<(usize, NodeId, &[&Vec<EdgeId>])> = split_groups
        .iter()
        .enumerate()
        .flat_map(|(slot, (_, by_dest))| {
            by_dest
                .iter()
                .map(move |(dest, group)| (slot, *dest, group.as_slice()))
        })
        .collect();
    let pairing_tasks = &pairing_tasks;
    let group_pairs = run_stealing(workers, pairing_tasks.len(), |i| {
        let (slot, dest, group) = pairing_tasks[i];
        pair_dest_group(split_groups[slot].0, dest, group, None)
    });
    // Concatenate each split source's destination groups in (source, dest) order —
    // byte-for-byte the serial `pair_paths` output.
    for ((slot, _, _), pairs) in pairing_tasks.iter().zip(group_pairs) {
        per_source_pairs[split_groups[*slot].0 .0].extend(pairs);
    }
    dedup_merge(per_source_pairs)
}

/// Measures the serial cost of every work-stealing subtask of a parallel-path
/// enumeration, as it would be decomposed for `workers` workers.
///
/// Returns the two scheduling pools **separately**, mirroring the two
/// `run_stealing` barriers of [`enumerate_parallel_paths_scheduled`]: first the
/// phase-1 tasks (whole light sources — enumeration *and* pairing fused — plus the
/// hub sources' first-hop slices), then the phase-2 pairing of the split sources.
/// A schedule replay must respect that barrier — phase 2 cannot start before
/// phase 1 completes — so the pools must not be pooled together. Subtasks run one
/// at a time on the calling thread, so the costs are clean inputs for replaying
/// schedules — see [`crate::cycles::cycle_subtask_costs`].
pub fn parallel_path_subtask_costs(
    graph: &DiGraph,
    max_len: usize,
    workers: usize,
    steal: &StealConfig,
) -> (Vec<SubtaskCost>, Vec<SubtaskCost>) {
    let tasks = path_tasks(graph, workers, steal);
    let mut phase1_costs = Vec::with_capacity(tasks.len());
    let mut pairing_costs = Vec::new();
    let mut split_paths: Vec<Vec<(NodeId, Vec<EdgeId>)>> = vec![Vec::new(); graph.node_count()];
    let mut is_split = vec![false; graph.node_count()];
    let mut split_sources: Vec<NodeId> = Vec::new();
    let mut per_source_subtasks = vec![0usize; graph.node_count()];
    for task in tasks {
        let source = task.source();
        let cost = match task {
            PathTask::Whole(source) => {
                let (pairs, cost) = timed(|| pairs_from_source(graph, source, max_len, None));
                std::hint::black_box(pairs.len());
                cost
            }
            PathTask::Slice(source, range) => {
                let (chunk, cost) = timed(|| simple_paths_from_hops(graph, source, range, max_len));
                if !is_split[source.0] {
                    is_split[source.0] = true;
                    split_sources.push(source);
                }
                split_paths[source.0].extend(chunk);
                cost
            }
        };
        phase1_costs.push(SubtaskCost {
            origin: source.0,
            subtask: per_source_subtasks[source.0],
            cost,
        });
        per_source_subtasks[source.0] += 1;
    }
    for source in split_sources {
        // Mirror phase 2's grain: one pairing subtask per destination group.
        for (subtask, (dest, group)) in group_paths_by_dest(source, &split_paths[source.0])
            .into_iter()
            .enumerate()
        {
            let (pairs, cost) = timed(|| pair_dest_group(source, dest, &group, None));
            std::hint::black_box(pairs.len());
            pairing_costs.push(SubtaskCost {
                origin: source.0,
                subtask,
                cost,
            });
        }
    }
    (phase1_costs, pairing_costs)
}

/// Merges per-source candidate groups in order, deduplicating by canonical key —
/// the single definition of the merge rule shared by the serial collection and the
/// parallel fan-out (both must dedup identically or evidence ids drift).
fn dedup_merge(groups: impl IntoIterator<Item = Vec<ParallelPaths>>) -> Vec<ParallelPaths> {
    let mut found = Vec::new();
    let mut seen: HashSet<(NodeId, NodeId, Vec<EdgeId>, Vec<EdgeId>)> = HashSet::new();
    for group in groups {
        for pp in group {
            if seen.insert(pp.canonical_key()) {
                found.push(pp);
            }
        }
    }
    found
}

/// All edge-disjoint pairs rooted at one source, in deterministic (destination,
/// discovery) order — the per-worker unit of the enumeration. Destinations are
/// grouped in a `BTreeMap` so the order never depends on hash seeding: evidence ids
/// derived from this enumeration must be reproducible across runs and worker counts.
fn pairs_from_source(
    graph: &DiGraph,
    source: NodeId,
    max_len: usize,
    required_edge: Option<EdgeId>,
) -> Vec<ParallelPaths> {
    pair_paths(
        source,
        &simple_paths_from(graph, source, max_len),
        required_edge,
    )
}

/// Pairs an already-enumerated list of simple paths from `source` into
/// edge-disjoint parallel-path pairs — the second half of [`pairs_from_source`],
/// shared with the work-stealing phase 2 so both schedule exactly the serial
/// grouping, pairing and filtering rules over the same path order.
fn pair_paths(
    source: NodeId,
    paths: &[(NodeId, Vec<EdgeId>)],
    required_edge: Option<EdgeId>,
) -> Vec<ParallelPaths> {
    let mut out = Vec::new();
    for (dest, group) in group_paths_by_dest(source, paths) {
        out.extend(pair_dest_group(source, dest, &group, required_edge));
    }
    out
}

/// A source's simple paths grouped by destination, in destination order.
type DestGroups<'a> = BTreeMap<NodeId, Vec<&'a Vec<EdgeId>>>;

/// Groups a source's simple paths by destination, in destination order — a
/// `BTreeMap` so the order never depends on hash seeding. Paths looping back to
/// the source are cycles, handled elsewhere.
fn group_paths_by_dest<'a>(source: NodeId, paths: &'a [(NodeId, Vec<EdgeId>)]) -> DestGroups<'a> {
    let mut by_dest: BTreeMap<NodeId, Vec<&Vec<EdgeId>>> = BTreeMap::new();
    for (dest, path) in paths {
        if *dest == source {
            continue; // that's a cycle, handled elsewhere
        }
        by_dest.entry(*dest).or_default().push(path);
    }
    by_dest
}

/// Pairs one destination group: every `i < j` pair of edge-disjoint paths (in
/// discovery order), optionally filtered to pairs using `required_edge`. One
/// destination group is the finest unit the pairing can be split at without
/// changing the serial output order — the work-stealing phase 2 schedules hub
/// pairing at exactly this grain.
fn pair_dest_group(
    source: NodeId,
    dest: NodeId,
    group: &[&Vec<EdgeId>],
    required_edge: Option<EdgeId>,
) -> Vec<ParallelPaths> {
    let mut out = Vec::new();
    for i in 0..group.len() {
        for j in (i + 1)..group.len() {
            let a = group[i];
            let b = group[j];
            if let Some(edge) = required_edge {
                if !a.contains(&edge) && !b.contains(&edge) {
                    continue;
                }
            }
            if a.iter().any(|e| b.contains(e)) {
                continue; // must be edge-disjoint
            }
            out.push(ParallelPaths {
                source,
                destination: dest,
                left: a.clone(),
                right: b.clone(),
            });
        }
    }
    out
}

/// The shared pairing core of [`enumerate_parallel_paths`] and
/// [`parallel_paths_through_edge`]: both entry points must group, pair, filter and
/// deduplicate identically — the incremental/batch equivalence of the evidence
/// analysis depends on it — so the rules live in exactly one place
/// ([`pairs_from_source`] + [`dedup_merge`]).
fn collect_parallel_paths(
    graph: &DiGraph,
    sources: impl Iterator<Item = NodeId>,
    max_len: usize,
    required_edge: Option<EdgeId>,
) -> Vec<ParallelPaths> {
    dedup_merge(sources.map(|source| pairs_from_source(graph, source, max_len, required_edge)))
}

/// Enumerates the parallel-path pairs in which at least one branch uses `edge`.
///
/// This is the parallel-path counterpart of
/// [`crate::cycles::cycles_through_edge`]: when a mapping is added to the network,
/// the evidence it creates is exactly the pairs through its edge, so incremental
/// maintenance only searches from the sources that can reach the edge at all
/// (bounded reverse reachability) instead of from every node. Pairs not using
/// `edge` are filtered out; deduplication matches [`enumerate_parallel_paths`].
pub fn parallel_paths_through_edge(
    graph: &DiGraph,
    edge: EdgeId,
    max_len: usize,
) -> Vec<ParallelPaths> {
    let Some(edge_ref) = graph.edge(edge) else {
        return Vec::new();
    };
    if max_len == 0 {
        return Vec::new();
    }
    // Sources that can reach the edge's source within max_len - 1 hops (the edge
    // itself consumes one hop of the branch that uses it).
    let mut frontier = vec![edge_ref.source];
    let mut reachable = vec![false; graph.node_count()];
    reachable[edge_ref.source.0] = true;
    for _ in 0..max_len.saturating_sub(1) {
        let mut next = Vec::new();
        for &node in &frontier {
            for e in graph.incoming(node) {
                if !reachable[e.source.0] {
                    reachable[e.source.0] = true;
                    next.push(e.source);
                }
            }
        }
        frontier = next;
    }
    collect_parallel_paths(
        graph,
        graph.nodes().filter(|n| reachable[n.0]),
        max_len,
        Some(edge),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn paper_figure5() -> (DiGraph, Vec<EdgeId>) {
        let mut g = DiGraph::with_nodes(4);
        let p = |i: usize| NodeId(i);
        let m12 = g.add_edge(p(0), p(1));
        let m21 = g.add_edge(p(1), p(0));
        let m23 = g.add_edge(p(1), p(2));
        let m34 = g.add_edge(p(2), p(3));
        let m41 = g.add_edge(p(3), p(0));
        let m24 = g.add_edge(p(1), p(3));
        (g, vec![m12, m21, m23, m34, m41, m24])
    }

    #[test]
    fn simple_paths_respect_length_bound() {
        let (g, _) = paper_figure5();
        let paths = simple_paths_from(&g, NodeId(0), 2);
        assert!(paths.iter().all(|(_, p)| p.len() <= 2));
        assert!(!paths.is_empty());
    }

    #[test]
    fn diamond_has_one_parallel_path_pair() {
        let mut g = DiGraph::with_nodes(4);
        g.add_edge(NodeId(0), NodeId(1));
        g.add_edge(NodeId(1), NodeId(3));
        g.add_edge(NodeId(0), NodeId(2));
        g.add_edge(NodeId(2), NodeId(3));
        let pps = enumerate_parallel_paths(&g, 3);
        assert_eq!(pps.len(), 1);
        assert_eq!(pps[0].source, NodeId(0));
        assert_eq!(pps[0].destination, NodeId(3));
        assert_eq!(pps[0].mapping_count(), 4);
    }

    #[test]
    fn paper_figure5_has_three_parallel_path_pairs() {
        // The paper lists f3: m21 || m24->m41, f4: m24 || m23->m34 and
        // f5: m21 || m23->m34->m41.
        let (g, m) = paper_figure5();
        let pps = enumerate_parallel_paths(&g, 3);
        assert_eq!(pps.len(), 3, "got {pps:?}");
        let has = |edges: &[EdgeId]| {
            pps.iter().any(|pp| {
                let mut all: Vec<EdgeId> = pp.all_edges().collect();
                all.sort_unstable();
                let mut want = edges.to_vec();
                want.sort_unstable();
                all == want
            })
        };
        assert!(has(&[m[1], m[5], m[4]]), "f3: m21 || m24->m41");
        assert!(has(&[m[5], m[2], m[3]]), "f4: m24 || m23->m34");
        assert!(has(&[m[1], m[2], m[3], m[4]]), "f5: m21 || m23->m34->m41");
    }

    #[test]
    fn shared_edge_paths_are_not_parallel() {
        // 0->1->3 and 0->1->2->3 share edge 0->1, so no pair with source 0 is reported.
        // The edge-disjoint pair 1->3 || 1->2->3 (source 1) is legitimate and reported.
        let mut g = DiGraph::with_nodes(4);
        g.add_edge(NodeId(0), NodeId(1));
        g.add_edge(NodeId(1), NodeId(3));
        g.add_edge(NodeId(1), NodeId(2));
        g.add_edge(NodeId(2), NodeId(3));
        let pps = enumerate_parallel_paths(&g, 3);
        assert!(pps.iter().all(|pp| pp.source != NodeId(0)), "got {pps:?}");
        assert_eq!(pps.len(), 1);
        assert_eq!(pps[0].source, NodeId(1));
        assert_eq!(pps[0].destination, NodeId(3));
    }

    #[test]
    fn two_direct_parallel_mappings_are_reported() {
        let mut g = DiGraph::with_nodes(2);
        g.add_edge(NodeId(0), NodeId(1));
        g.add_edge(NodeId(0), NodeId(1));
        let pps = enumerate_parallel_paths(&g, 2);
        assert_eq!(pps.len(), 1);
        assert_eq!(pps[0].mapping_count(), 2);
    }

    #[test]
    fn parallel_paths_through_edge_match_filtered_enumeration() {
        let (g, m) = paper_figure5();
        for &edge in &m {
            for max_len in 1..=4 {
                let mut targeted: Vec<_> = parallel_paths_through_edge(&g, edge, max_len)
                    .iter()
                    .map(ParallelPaths::canonical_key)
                    .collect();
                let mut filtered: Vec<_> = enumerate_parallel_paths(&g, max_len)
                    .iter()
                    .filter(|pp| pp.contains_edge(edge))
                    .map(ParallelPaths::canonical_key)
                    .collect();
                targeted.sort();
                filtered.sort();
                assert_eq!(targeted, filtered, "edge {edge} max_len {max_len}");
            }
        }
    }

    #[test]
    fn parallel_paths_through_removed_edge_are_empty() {
        let (mut g, m) = paper_figure5();
        g.remove_edge(m[5]);
        assert!(parallel_paths_through_edge(&g, m[5], 3).is_empty());
    }

    #[test]
    fn parallel_fanout_is_identical_to_serial_at_every_worker_count() {
        let (g, _) = paper_figure5();
        for max_len in 1..=4 {
            let serial = enumerate_parallel_paths(&g, max_len);
            for workers in [1, 2, 3, 4, 16] {
                assert_eq!(
                    enumerate_parallel_paths_parallel(&g, max_len, workers),
                    serial,
                    "max_len {max_len}, {workers} workers"
                );
            }
        }
    }

    #[test]
    fn work_stealing_schedule_is_identical_to_serial_for_every_steal_config() {
        // Hub-heavy: node 0 fans out to everyone, several return routes exist.
        let mut g = DiGraph::with_nodes(7);
        for i in 1..7 {
            g.add_edge(NodeId(0), NodeId(i));
        }
        for i in 1..6 {
            g.add_edge(NodeId(i), NodeId(i + 1));
        }
        g.add_edge(NodeId(6), NodeId(1));
        for max_len in [2, 3, 4] {
            let serial = enumerate_parallel_paths(&g, max_len);
            for workers in [2, 4, 16] {
                for (threshold, granularity) in [(1, 1), (2, 2), (4, 3), (100, 1)] {
                    let steal = StealConfig {
                        heavy_origin_threshold: threshold,
                        steal_granularity: granularity,
                    };
                    assert_eq!(
                        enumerate_parallel_paths_scheduled(&g, max_len, workers, &steal),
                        serial,
                        "max_len {max_len}, {workers} workers, steal {steal:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn path_subtask_costs_split_enumeration_and_pairing_pools() {
        let mut g = DiGraph::with_nodes(5);
        for i in 1..5 {
            g.add_edge(NodeId(0), NodeId(i));
            g.add_edge(NodeId(i), NodeId(0));
        }
        let steal = StealConfig {
            heavy_origin_threshold: 2,
            steal_granularity: 1,
        };
        let (phase1, pairing) = parallel_path_subtask_costs(&g, 3, 4, &steal);
        // Source 0 (out-degree 4 >= threshold 2): 4 enumeration slices.
        assert_eq!(phase1.iter().filter(|c| c.origin == 0).count(), 4);
        // Sources 1..4 (out-degree 1): one fused enumerate-and-pair task each.
        for source in 1..5 {
            assert_eq!(phase1.iter().filter(|c| c.origin == source).count(), 1);
        }
        // Only the split source crosses the barrier into the pairing pool — one
        // subtask per destination group (source 0 reaches 4 destinations).
        assert_eq!(pairing.len(), 4);
        assert!(pairing.iter().all(|c| c.origin == 0));
    }

    #[test]
    fn no_parallel_paths_in_a_plain_ring() {
        let mut g = DiGraph::with_nodes(4);
        for i in 0..4 {
            g.add_edge(NodeId(i), NodeId((i + 1) % 4));
        }
        assert!(enumerate_parallel_paths(&g, 4).is_empty());
    }
}

//! Enumeration of parallel mapping paths in directed PDMS networks.
//!
//! In a directed mapping network two edge-disjoint directed paths that share the same
//! source and destination peer ("parallel paths", Section 3.3) play the role that
//! undirected cycles play in the undirected case: the destination peer receives the
//! same query through both paths and can compare the two translations, producing
//! positive, negative or neutral feedback on the union of the mappings involved.

use crate::adjacency::{DiGraph, EdgeId, NodeId};
use crate::parallelism::effective_parallelism;
use std::collections::{BTreeMap, HashSet};

/// A pair of edge-disjoint directed paths with common endpoints.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ParallelPaths {
    /// Common source peer.
    pub source: NodeId,
    /// Common destination peer.
    pub destination: NodeId,
    /// First path, as an ordered list of edges.
    pub left: Vec<EdgeId>,
    /// Second path, as an ordered list of edges.
    pub right: Vec<EdgeId>,
}

impl ParallelPaths {
    /// Total number of mappings involved (both paths).
    pub fn mapping_count(&self) -> usize {
        self.left.len() + self.right.len()
    }

    /// All edges of both paths.
    pub fn all_edges(&self) -> impl Iterator<Item = EdgeId> + '_ {
        self.left.iter().chain(self.right.iter()).copied()
    }

    /// True if either path uses the given edge.
    pub fn contains_edge(&self, edge: EdgeId) -> bool {
        self.left.contains(&edge) || self.right.contains(&edge)
    }

    fn canonical_key(&self) -> (NodeId, NodeId, Vec<EdgeId>, Vec<EdgeId>) {
        let mut a = self.left.clone();
        let mut b = self.right.clone();
        if b < a {
            std::mem::swap(&mut a, &mut b);
        }
        (self.source, self.destination, a, b)
    }
}

/// Enumerates all simple directed paths from `source` of length `1..=max_len`.
///
/// Returns `(destination, edge path)` tuples. Paths do not revisit nodes.
pub fn simple_paths_from(
    graph: &DiGraph,
    source: NodeId,
    max_len: usize,
) -> Vec<(NodeId, Vec<EdgeId>)> {
    let mut out = Vec::new();
    if !graph.contains_node(source) || max_len == 0 {
        return out;
    }
    let mut on_path = vec![false; graph.node_count()];
    on_path[source.0] = true;
    let mut path = Vec::new();
    paths_rec(graph, source, max_len, &mut path, &mut on_path, &mut out);
    out
}

fn paths_rec(
    graph: &DiGraph,
    current: NodeId,
    remaining: usize,
    path: &mut Vec<EdgeId>,
    on_path: &mut [bool],
    out: &mut Vec<(NodeId, Vec<EdgeId>)>,
) {
    if remaining == 0 {
        return;
    }
    for e in graph.outgoing(current) {
        if on_path[e.target.0] || path.contains(&e.id) {
            continue;
        }
        path.push(e.id);
        out.push((e.target, path.clone()));
        on_path[e.target.0] = true;
        paths_rec(graph, e.target, remaining - 1, path, on_path, out);
        on_path[e.target.0] = false;
        path.pop();
    }
}

/// Enumerates pairs of edge-disjoint parallel paths between every (source, destination)
/// pair, with each individual path of length at most `max_len`.
///
/// Pairs are deduplicated (the pair `{A, B}` equals `{B, A}`). Two paths that share an
/// edge are not reported: feedback over them would not be independent evidence for the
/// shared mapping. Paths of length 1 (a direct mapping) are allowed — comparing a direct
/// mapping with a two-hop route is exactly the `f3⇒ : m21 ∥ m24→m41` case of Figure 5.
pub fn enumerate_parallel_paths(graph: &DiGraph, max_len: usize) -> Vec<ParallelPaths> {
    collect_parallel_paths(graph, graph.nodes(), max_len, None)
}

/// [`enumerate_parallel_paths`] fanned out across source nodes with
/// `std::thread::scope` workers.
///
/// `parallelism` follows [`effective_parallelism`] semantics (`0` = auto, `1` =
/// serial). Each worker pairs paths from a disjoint stride of sources; the
/// coordinator merges the per-source results in ascending source order and applies
/// the shared deduplication, so the output — contents *and* order — is identical at
/// every worker count, keeping downstream evidence ids stable.
pub fn enumerate_parallel_paths_parallel(
    graph: &DiGraph,
    max_len: usize,
    parallelism: usize,
) -> Vec<ParallelPaths> {
    let node_count = graph.node_count();
    let workers = effective_parallelism(parallelism).min(node_count.max(1));
    if workers <= 1 {
        return enumerate_parallel_paths(graph, max_len);
    }
    let mut per_source: Vec<Vec<ParallelPaths>> = vec![Vec::new(); node_count];
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|worker| {
                scope.spawn(move || {
                    let mut out = Vec::new();
                    let mut source = worker;
                    while source < node_count {
                        out.push((
                            source,
                            pairs_from_source(graph, NodeId(source), max_len, None),
                        ));
                        source += workers;
                    }
                    out
                })
            })
            .collect();
        for handle in handles {
            for (source, pairs) in handle.join().expect("parallel-path worker panicked") {
                per_source[source] = pairs;
            }
        }
    });
    dedup_merge(per_source)
}

/// Merges per-source candidate groups in order, deduplicating by canonical key —
/// the single definition of the merge rule shared by the serial collection and the
/// parallel fan-out (both must dedup identically or evidence ids drift).
fn dedup_merge(groups: impl IntoIterator<Item = Vec<ParallelPaths>>) -> Vec<ParallelPaths> {
    let mut found = Vec::new();
    let mut seen: HashSet<(NodeId, NodeId, Vec<EdgeId>, Vec<EdgeId>)> = HashSet::new();
    for group in groups {
        for pp in group {
            if seen.insert(pp.canonical_key()) {
                found.push(pp);
            }
        }
    }
    found
}

/// All edge-disjoint pairs rooted at one source, in deterministic (destination,
/// discovery) order — the per-worker unit of the enumeration. Destinations are
/// grouped in a `BTreeMap` so the order never depends on hash seeding: evidence ids
/// derived from this enumeration must be reproducible across runs and worker counts.
fn pairs_from_source(
    graph: &DiGraph,
    source: NodeId,
    max_len: usize,
    required_edge: Option<EdgeId>,
) -> Vec<ParallelPaths> {
    let paths = simple_paths_from(graph, source, max_len);
    // Group by destination.
    let mut by_dest: BTreeMap<NodeId, Vec<&Vec<EdgeId>>> = BTreeMap::new();
    for (dest, path) in &paths {
        if *dest == source {
            continue; // that's a cycle, handled elsewhere
        }
        by_dest.entry(*dest).or_default().push(path);
    }
    let mut out = Vec::new();
    for (dest, group) in by_dest {
        for i in 0..group.len() {
            for j in (i + 1)..group.len() {
                let a = group[i];
                let b = group[j];
                if let Some(edge) = required_edge {
                    if !a.contains(&edge) && !b.contains(&edge) {
                        continue;
                    }
                }
                if a.iter().any(|e| b.contains(e)) {
                    continue; // must be edge-disjoint
                }
                out.push(ParallelPaths {
                    source,
                    destination: dest,
                    left: a.clone(),
                    right: b.clone(),
                });
            }
        }
    }
    out
}

/// The shared pairing core of [`enumerate_parallel_paths`] and
/// [`parallel_paths_through_edge`]: both entry points must group, pair, filter and
/// deduplicate identically — the incremental/batch equivalence of the evidence
/// analysis depends on it — so the rules live in exactly one place
/// ([`pairs_from_source`] + [`dedup_merge`]).
fn collect_parallel_paths(
    graph: &DiGraph,
    sources: impl Iterator<Item = NodeId>,
    max_len: usize,
    required_edge: Option<EdgeId>,
) -> Vec<ParallelPaths> {
    dedup_merge(sources.map(|source| pairs_from_source(graph, source, max_len, required_edge)))
}

/// Enumerates the parallel-path pairs in which at least one branch uses `edge`.
///
/// This is the parallel-path counterpart of
/// [`crate::cycles::cycles_through_edge`]: when a mapping is added to the network,
/// the evidence it creates is exactly the pairs through its edge, so incremental
/// maintenance only searches from the sources that can reach the edge at all
/// (bounded reverse reachability) instead of from every node. Pairs not using
/// `edge` are filtered out; deduplication matches [`enumerate_parallel_paths`].
pub fn parallel_paths_through_edge(
    graph: &DiGraph,
    edge: EdgeId,
    max_len: usize,
) -> Vec<ParallelPaths> {
    let Some(edge_ref) = graph.edge(edge) else {
        return Vec::new();
    };
    if max_len == 0 {
        return Vec::new();
    }
    // Sources that can reach the edge's source within max_len - 1 hops (the edge
    // itself consumes one hop of the branch that uses it).
    let mut frontier = vec![edge_ref.source];
    let mut reachable = vec![false; graph.node_count()];
    reachable[edge_ref.source.0] = true;
    for _ in 0..max_len.saturating_sub(1) {
        let mut next = Vec::new();
        for &node in &frontier {
            for e in graph.incoming(node) {
                if !reachable[e.source.0] {
                    reachable[e.source.0] = true;
                    next.push(e.source);
                }
            }
        }
        frontier = next;
    }
    collect_parallel_paths(
        graph,
        graph.nodes().filter(|n| reachable[n.0]),
        max_len,
        Some(edge),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn paper_figure5() -> (DiGraph, Vec<EdgeId>) {
        let mut g = DiGraph::with_nodes(4);
        let p = |i: usize| NodeId(i);
        let m12 = g.add_edge(p(0), p(1));
        let m21 = g.add_edge(p(1), p(0));
        let m23 = g.add_edge(p(1), p(2));
        let m34 = g.add_edge(p(2), p(3));
        let m41 = g.add_edge(p(3), p(0));
        let m24 = g.add_edge(p(1), p(3));
        (g, vec![m12, m21, m23, m34, m41, m24])
    }

    #[test]
    fn simple_paths_respect_length_bound() {
        let (g, _) = paper_figure5();
        let paths = simple_paths_from(&g, NodeId(0), 2);
        assert!(paths.iter().all(|(_, p)| p.len() <= 2));
        assert!(!paths.is_empty());
    }

    #[test]
    fn diamond_has_one_parallel_path_pair() {
        let mut g = DiGraph::with_nodes(4);
        g.add_edge(NodeId(0), NodeId(1));
        g.add_edge(NodeId(1), NodeId(3));
        g.add_edge(NodeId(0), NodeId(2));
        g.add_edge(NodeId(2), NodeId(3));
        let pps = enumerate_parallel_paths(&g, 3);
        assert_eq!(pps.len(), 1);
        assert_eq!(pps[0].source, NodeId(0));
        assert_eq!(pps[0].destination, NodeId(3));
        assert_eq!(pps[0].mapping_count(), 4);
    }

    #[test]
    fn paper_figure5_has_three_parallel_path_pairs() {
        // The paper lists f3: m21 || m24->m41, f4: m24 || m23->m34 and
        // f5: m21 || m23->m34->m41.
        let (g, m) = paper_figure5();
        let pps = enumerate_parallel_paths(&g, 3);
        assert_eq!(pps.len(), 3, "got {pps:?}");
        let has = |edges: &[EdgeId]| {
            pps.iter().any(|pp| {
                let mut all: Vec<EdgeId> = pp.all_edges().collect();
                all.sort_unstable();
                let mut want = edges.to_vec();
                want.sort_unstable();
                all == want
            })
        };
        assert!(has(&[m[1], m[5], m[4]]), "f3: m21 || m24->m41");
        assert!(has(&[m[5], m[2], m[3]]), "f4: m24 || m23->m34");
        assert!(has(&[m[1], m[2], m[3], m[4]]), "f5: m21 || m23->m34->m41");
    }

    #[test]
    fn shared_edge_paths_are_not_parallel() {
        // 0->1->3 and 0->1->2->3 share edge 0->1, so no pair with source 0 is reported.
        // The edge-disjoint pair 1->3 || 1->2->3 (source 1) is legitimate and reported.
        let mut g = DiGraph::with_nodes(4);
        g.add_edge(NodeId(0), NodeId(1));
        g.add_edge(NodeId(1), NodeId(3));
        g.add_edge(NodeId(1), NodeId(2));
        g.add_edge(NodeId(2), NodeId(3));
        let pps = enumerate_parallel_paths(&g, 3);
        assert!(pps.iter().all(|pp| pp.source != NodeId(0)), "got {pps:?}");
        assert_eq!(pps.len(), 1);
        assert_eq!(pps[0].source, NodeId(1));
        assert_eq!(pps[0].destination, NodeId(3));
    }

    #[test]
    fn two_direct_parallel_mappings_are_reported() {
        let mut g = DiGraph::with_nodes(2);
        g.add_edge(NodeId(0), NodeId(1));
        g.add_edge(NodeId(0), NodeId(1));
        let pps = enumerate_parallel_paths(&g, 2);
        assert_eq!(pps.len(), 1);
        assert_eq!(pps[0].mapping_count(), 2);
    }

    #[test]
    fn parallel_paths_through_edge_match_filtered_enumeration() {
        let (g, m) = paper_figure5();
        for &edge in &m {
            for max_len in 1..=4 {
                let mut targeted: Vec<_> = parallel_paths_through_edge(&g, edge, max_len)
                    .iter()
                    .map(ParallelPaths::canonical_key)
                    .collect();
                let mut filtered: Vec<_> = enumerate_parallel_paths(&g, max_len)
                    .iter()
                    .filter(|pp| pp.contains_edge(edge))
                    .map(ParallelPaths::canonical_key)
                    .collect();
                targeted.sort();
                filtered.sort();
                assert_eq!(targeted, filtered, "edge {edge} max_len {max_len}");
            }
        }
    }

    #[test]
    fn parallel_paths_through_removed_edge_are_empty() {
        let (mut g, m) = paper_figure5();
        g.remove_edge(m[5]);
        assert!(parallel_paths_through_edge(&g, m[5], 3).is_empty());
    }

    #[test]
    fn parallel_fanout_is_identical_to_serial_at_every_worker_count() {
        let (g, _) = paper_figure5();
        for max_len in 1..=4 {
            let serial = enumerate_parallel_paths(&g, max_len);
            for workers in [1, 2, 3, 4, 16] {
                assert_eq!(
                    enumerate_parallel_paths_parallel(&g, max_len, workers),
                    serial,
                    "max_len {max_len}, {workers} workers"
                );
            }
        }
    }

    #[test]
    fn no_parallel_paths_in_a_plain_ring() {
        let mut g = DiGraph::with_nodes(4);
        for i in 0..4 {
            g.add_edge(NodeId(i), NodeId((i + 1) % 4));
        }
        assert!(enumerate_parallel_paths(&g, 4).is_empty());
    }
}

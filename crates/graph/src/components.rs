//! Strongly connected components and the condensation of the mapping network.
//!
//! Cycle feedback (Section 3.2.1) can only ever involve mappings whose endpoints lie in
//! the same strongly connected component: a mapping whose target cannot reach back to
//! its source participates in no directed cycle and therefore receives no cycle
//! evidence at all (it may still receive parallel-path evidence). Computing the SCC
//! decomposition up front lets the analysis and the workload generators reason about
//! how much of a topology is "assessable" before running any probe.

use crate::adjacency::{DiGraph, NodeId};

/// The strongly-connected-component decomposition of a directed graph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Condensation {
    /// For every node, the index of its component.
    pub component_of: Vec<usize>,
    /// The members of each component, in discovery order.
    pub components: Vec<Vec<NodeId>>,
}

impl Condensation {
    /// Number of strongly connected components.
    pub fn count(&self) -> usize {
        self.components.len()
    }

    /// True when the whole graph is one strongly connected component (every mapping can
    /// in principle receive cycle feedback).
    pub fn is_strongly_connected(&self) -> bool {
        self.components.len() <= 1
    }

    /// Component index of a node.
    pub fn component(&self, node: NodeId) -> usize {
        self.component_of[node.0]
    }

    /// True when both nodes belong to the same strongly connected component.
    pub fn same_component(&self, a: NodeId, b: NodeId) -> bool {
        self.component_of[a.0] == self.component_of[b.0]
    }

    /// Size of the largest component.
    pub fn largest_component_size(&self) -> usize {
        self.components.iter().map(Vec::len).max().unwrap_or(0)
    }

    /// Number of nodes that sit in a non-trivial component (size ≥ 2), i.e. nodes whose
    /// outgoing mappings can belong to at least one directed cycle.
    pub fn nodes_in_cycles(&self) -> usize {
        self.components
            .iter()
            .filter(|c| c.len() >= 2)
            .map(Vec::len)
            .sum()
    }
}

/// Computes the strongly connected components with Tarjan's algorithm (iterative
/// formulation, so deep graphs do not overflow the call stack).
pub fn strongly_connected_components(graph: &DiGraph) -> Condensation {
    let n = graph.node_count();
    const UNVISITED: usize = usize::MAX;
    let mut index_of = vec![UNVISITED; n];
    let mut lowlink = vec![0usize; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<usize> = Vec::new();
    let mut component_of = vec![UNVISITED; n];
    let mut components: Vec<Vec<NodeId>> = Vec::new();
    let mut next_index = 0usize;

    // Explicit DFS frame: (node, iterator position over its successors).
    for root in 0..n {
        if index_of[root] != UNVISITED {
            continue;
        }
        let mut call_stack: Vec<(usize, usize)> = vec![(root, 0)];
        while let Some(&mut (v, ref mut child_pos)) = call_stack.last_mut() {
            if *child_pos == 0 {
                index_of[v] = next_index;
                lowlink[v] = next_index;
                next_index += 1;
                stack.push(v);
                on_stack[v] = true;
            }
            let successors = graph.successors(NodeId(v));
            if *child_pos < successors.len() {
                let w = successors[*child_pos].0;
                *child_pos += 1;
                if index_of[w] == UNVISITED {
                    call_stack.push((w, 0));
                } else if on_stack[w] {
                    lowlink[v] = lowlink[v].min(index_of[w]);
                }
                continue;
            }
            // All successors processed: close the frame.
            call_stack.pop();
            if let Some(&(parent, _)) = call_stack.last() {
                lowlink[parent] = lowlink[parent].min(lowlink[v]);
            }
            if lowlink[v] == index_of[v] {
                let mut component = Vec::new();
                loop {
                    let w = stack.pop().expect("Tarjan stack underflow");
                    on_stack[w] = false;
                    component_of[w] = components.len();
                    component.push(NodeId(w));
                    if w == v {
                        break;
                    }
                }
                component.reverse();
                components.push(component);
            }
        }
    }

    Condensation {
        component_of,
        components,
    }
}

/// Edges of the condensation DAG: one `(from component, to component)` pair per live
/// edge crossing two different components, deduplicated.
pub fn condensation_edges(graph: &DiGraph, condensation: &Condensation) -> Vec<(usize, usize)> {
    let mut edges: Vec<(usize, usize)> = graph
        .edges()
        .map(|e| {
            (
                condensation.component(e.source),
                condensation.component(e.target),
            )
        })
        .filter(|(a, b)| a != b)
        .collect();
    edges.sort_unstable();
    edges.dedup();
    edges
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ring(n: usize) -> DiGraph {
        let mut g = DiGraph::with_nodes(n);
        for i in 0..n {
            g.add_edge(NodeId(i), NodeId((i + 1) % n));
        }
        g
    }

    #[test]
    fn a_ring_is_one_component() {
        let c = strongly_connected_components(&ring(5));
        assert_eq!(c.count(), 1);
        assert!(c.is_strongly_connected());
        assert_eq!(c.largest_component_size(), 5);
        assert_eq!(c.nodes_in_cycles(), 5);
    }

    #[test]
    fn a_chain_is_all_singletons() {
        let mut g = DiGraph::with_nodes(4);
        for i in 0..3 {
            g.add_edge(NodeId(i), NodeId(i + 1));
        }
        let c = strongly_connected_components(&g);
        assert_eq!(c.count(), 4);
        assert!(!c.is_strongly_connected());
        assert_eq!(c.nodes_in_cycles(), 0);
        for i in 0..3 {
            assert!(!c.same_component(NodeId(i), NodeId(i + 1)));
        }
    }

    #[test]
    fn two_rings_joined_by_one_edge_give_two_components() {
        // Ring 0-1-2 and ring 3-4-5, plus a bridge 2 -> 3.
        let mut g = DiGraph::with_nodes(6);
        for i in 0..3 {
            g.add_edge(NodeId(i), NodeId((i + 1) % 3));
            g.add_edge(NodeId(3 + i), NodeId(3 + (i + 1) % 3));
        }
        g.add_edge(NodeId(2), NodeId(3));
        let c = strongly_connected_components(&g);
        assert_eq!(c.count(), 2);
        assert!(c.same_component(NodeId(0), NodeId(2)));
        assert!(c.same_component(NodeId(3), NodeId(5)));
        assert!(!c.same_component(NodeId(0), NodeId(3)));
        // The condensation has exactly the bridge edge.
        let edges = condensation_edges(&g, &c);
        assert_eq!(edges.len(), 1);
        let (from, to) = edges[0];
        assert_eq!(from, c.component(NodeId(2)));
        assert_eq!(to, c.component(NodeId(3)));
    }

    #[test]
    fn removed_edges_are_ignored() {
        let mut g = ring(4);
        let broken = g.find_edge(NodeId(1), NodeId(2)).unwrap();
        g.remove_edge(broken);
        let c = strongly_connected_components(&g);
        assert_eq!(c.count(), 4, "breaking the ring splits every node apart");
    }

    #[test]
    fn empty_graph_has_no_components() {
        let g = DiGraph::new();
        let c = strongly_connected_components(&g);
        assert_eq!(c.count(), 0);
        assert_eq!(c.largest_component_size(), 0);
        assert!(c.is_strongly_connected(), "vacuously true");
    }

    #[test]
    fn component_members_cover_every_node_exactly_once() {
        let mut g = ring(5);
        g.add_edge(NodeId(0), NodeId(3));
        g.add_node(); // isolated node
        let c = strongly_connected_components(&g);
        let mut seen = vec![false; g.node_count()];
        for comp in &c.components {
            for node in comp {
                assert!(!seen[node.0], "node {node} in two components");
                seen[node.0] = true;
            }
        }
        assert!(seen.into_iter().all(|s| s));
    }

    #[test]
    fn condensation_is_acyclic() {
        // Random-ish small graph: check the condensation never has a back edge by
        // verifying that same_component holds for every 2-cycle of components.
        let mut g = DiGraph::with_nodes(6);
        let edges = [(0, 1), (1, 2), (2, 0), (2, 3), (3, 4), (4, 3), (4, 5)];
        for (a, b) in edges {
            g.add_edge(NodeId(a), NodeId(b));
        }
        let c = strongly_connected_components(&g);
        let dag = condensation_edges(&g, &c);
        for &(a, b) in &dag {
            assert!(
                !dag.contains(&(b, a)),
                "condensation must not contain a 2-cycle ({a}, {b})"
            );
        }
    }
}

//! Connected components of the mapping network: strong (Tarjan), weak (incremental).
//!
//! Cycle feedback (Section 3.2.1) can only ever involve mappings whose endpoints lie in
//! the same strongly connected component: a mapping whose target cannot reach back to
//! its source participates in no directed cycle and therefore receives no cycle
//! evidence at all (it may still receive parallel-path evidence). Computing the SCC
//! decomposition up front lets the analysis and the workload generators reason about
//! how much of a topology is "assessable" before running any probe.
//!
//! *Weakly* connected components (edge direction ignored) bound **all** structural
//! evidence at once: a directed cycle and both branches of a parallel-path pair are
//! connected subgraphs, so neither can cross a weak-component boundary. A
//! component-partitioned engine is therefore *exact*, not an approximation — the
//! premise of `pdms_core`'s sharded sessions. [`IncrementalComponents`] maintains the
//! weak-component partition as edges come and go: additions union two components in
//! near-constant time, removals re-check connectivity of only the affected component.

use crate::adjacency::{DiGraph, NodeId};
use std::collections::VecDeque;

/// The strongly-connected-component decomposition of a directed graph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Condensation {
    /// For every node, the index of its component.
    pub component_of: Vec<usize>,
    /// The members of each component, in discovery order.
    pub components: Vec<Vec<NodeId>>,
}

impl Condensation {
    /// Number of strongly connected components.
    pub fn count(&self) -> usize {
        self.components.len()
    }

    /// True when the whole graph is one strongly connected component (every mapping can
    /// in principle receive cycle feedback).
    pub fn is_strongly_connected(&self) -> bool {
        self.components.len() <= 1
    }

    /// Component index of a node.
    pub fn component(&self, node: NodeId) -> usize {
        self.component_of[node.0]
    }

    /// True when both nodes belong to the same strongly connected component.
    pub fn same_component(&self, a: NodeId, b: NodeId) -> bool {
        self.component_of[a.0] == self.component_of[b.0]
    }

    /// Size of the largest component.
    pub fn largest_component_size(&self) -> usize {
        self.components.iter().map(Vec::len).max().unwrap_or(0)
    }

    /// Number of nodes that sit in a non-trivial component (size ≥ 2), i.e. nodes whose
    /// outgoing mappings can belong to at least one directed cycle.
    pub fn nodes_in_cycles(&self) -> usize {
        self.components
            .iter()
            .filter(|c| c.len() >= 2)
            .map(Vec::len)
            .sum()
    }
}

/// Computes the strongly connected components with Tarjan's algorithm (iterative
/// formulation, so deep graphs do not overflow the call stack).
pub fn strongly_connected_components(graph: &DiGraph) -> Condensation {
    let n = graph.node_count();
    const UNVISITED: usize = usize::MAX;
    let mut index_of = vec![UNVISITED; n];
    let mut lowlink = vec![0usize; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<usize> = Vec::new();
    let mut component_of = vec![UNVISITED; n];
    let mut components: Vec<Vec<NodeId>> = Vec::new();
    let mut next_index = 0usize;

    // Explicit DFS frame: (node, iterator position over its successors).
    for root in 0..n {
        if index_of[root] != UNVISITED {
            continue;
        }
        let mut call_stack: Vec<(usize, usize)> = vec![(root, 0)];
        while let Some(&mut (v, ref mut child_pos)) = call_stack.last_mut() {
            if *child_pos == 0 {
                index_of[v] = next_index;
                lowlink[v] = next_index;
                next_index += 1;
                stack.push(v);
                on_stack[v] = true;
            }
            let successors = graph.successors(NodeId(v));
            if *child_pos < successors.len() {
                let w = successors[*child_pos].0;
                *child_pos += 1;
                if index_of[w] == UNVISITED {
                    call_stack.push((w, 0));
                } else if on_stack[w] {
                    lowlink[v] = lowlink[v].min(index_of[w]);
                }
                continue;
            }
            // All successors processed: close the frame.
            call_stack.pop();
            if let Some(&(parent, _)) = call_stack.last() {
                lowlink[parent] = lowlink[parent].min(lowlink[v]);
            }
            if lowlink[v] == index_of[v] {
                let mut component = Vec::new();
                loop {
                    let w = stack.pop().expect("Tarjan stack underflow");
                    on_stack[w] = false;
                    component_of[w] = components.len();
                    component.push(NodeId(w));
                    if w == v {
                        break;
                    }
                }
                component.reverse();
                components.push(component);
            }
        }
    }

    Condensation {
        component_of,
        components,
    }
}

/// Edges of the condensation DAG: one `(from component, to component)` pair per live
/// edge crossing two different components, deduplicated.
pub fn condensation_edges(graph: &DiGraph, condensation: &Condensation) -> Vec<(usize, usize)> {
    let mut edges: Vec<(usize, usize)> = graph
        .edges()
        .map(|e| {
            (
                condensation.component(e.source),
                condensation.component(e.target),
            )
        })
        .filter(|(a, b)| a != b)
        .collect();
    edges.sort_unstable();
    edges.dedup();
    edges
}

/// What one [`IncrementalComponents::merge`] call did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MergeOutcome {
    /// Both endpoints were already in the same component; nothing changed.
    AlreadyJoined,
    /// Two components were united: `absorbed` no longer exists, its nodes now answer
    /// with `into`.
    Merged {
        /// Component id that survives the union.
        into: usize,
        /// Component id that was dissolved into `into`.
        absorbed: usize,
    },
}

/// What one [`IncrementalComponents::split`] call did.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SplitOutcome {
    /// The endpoints are still connected (a redundant edge was removed); the
    /// partition is unchanged.
    StillConnected,
    /// The component broke in two: the nodes still reachable from the removed
    /// edge's source were re-rooted on one id, the rest on another.
    Split {
        /// The component id now holding the source-side nodes.
        kept: usize,
        /// The component id now holding the target-side nodes.
        created: usize,
        /// The nodes that moved to `created`, sorted ascending.
        moved: Vec<NodeId>,
    },
}

/// Incrementally maintained *weakly* connected components of an evolving graph.
///
/// A union-find (disjoint-set forest with union by size and path compression)
/// answers `component_of` in near-constant amortised time and absorbs edge
/// *additions* via [`IncrementalComponents::merge`]. Union-find cannot un-merge, so
/// edge *removals* go through [`IncrementalComponents::split`], which re-checks
/// connectivity with a breadth-first search confined to the affected component and
/// re-labels the smaller-by-discovery side only when the component genuinely broke.
///
/// Component ids are arbitrary but stable between structural changes: a node's id
/// only changes when its component merges or splits. Use
/// [`IncrementalComponents::partitions`] for a deterministic, id-independent view
/// (components ordered by smallest member, members ascending) — the order
/// `pdms_core`'s sharded sessions shard by.
///
/// ```
/// use pdms_graph::{DiGraph, IncrementalComponents, MergeOutcome, NodeId, SplitOutcome};
///
/// let mut graph = DiGraph::with_nodes(4);
/// let mut components = IncrementalComponents::from_graph(&graph);
/// assert_eq!(components.count(), 4);
///
/// // Adding an edge unions the two endpoint components.
/// let ab = graph.add_edge(NodeId(0), NodeId(1));
/// assert!(matches!(components.merge(NodeId(0), NodeId(1)), MergeOutcome::Merged { .. }));
/// assert_eq!(components.count(), 3);
/// assert!(components.same_component(NodeId(0), NodeId(1)));
///
/// // Removing the only connecting edge splits them again.
/// graph.remove_edge(ab);
/// let outcome = components.split(&graph, NodeId(0), NodeId(1));
/// assert!(matches!(outcome, SplitOutcome::Split { .. }));
/// assert!(!components.same_component(NodeId(0), NodeId(1)));
/// ```
#[derive(Debug, Clone, Default)]
pub struct IncrementalComponents {
    /// Union-find parent per node; a root's parent is itself.
    parent: Vec<usize>,
    /// Component size per root (garbage for non-roots).
    size: Vec<usize>,
    /// Scratch for the split BFS: per-node visit stamps. A node is visited by the
    /// current search iff its stamp equals `visit_epoch`, so the buffer never
    /// needs clearing — bumping the epoch invalidates every stamp at once.
    visit_mark: Vec<u64>,
    /// Stamp of the most recent BFS (0 = no search has run yet).
    visit_epoch: u64,
    /// Scratch: BFS frontier, reused across [`IncrementalComponents::split`]
    /// calls so the churn hot loop allocates nothing once warmed up.
    queue: VecDeque<usize>,
    /// Scratch: the nodes the most recent BFS reached, in discovery order.
    reached: Vec<usize>,
}

impl IncrementalComponents {
    /// A partition of `n` isolated nodes (every node its own component).
    pub fn new(n: usize) -> Self {
        Self {
            parent: (0..n).collect(),
            size: vec![1; n],
            visit_mark: vec![0; n],
            visit_epoch: 0,
            queue: VecDeque::new(),
            reached: Vec::new(),
        }
    }

    /// The weak-component partition of an existing graph (tombstoned edges ignored).
    pub fn from_graph(graph: &DiGraph) -> Self {
        let mut components = Self::new(graph.node_count());
        for edge in graph.edges() {
            components.merge(edge.source, edge.target);
        }
        components
    }

    /// Number of nodes tracked.
    pub fn node_count(&self) -> usize {
        self.parent.len()
    }

    /// Number of components.
    pub fn count(&self) -> usize {
        (0..self.parent.len())
            .filter(|&n| self.find(n) == n)
            .count()
    }

    /// Registers a new isolated node (mirroring [`DiGraph::add_node`]) and returns
    /// its singleton component id.
    pub fn add_node(&mut self) -> usize {
        let id = self.parent.len();
        self.parent.push(id);
        self.size.push(1);
        self.visit_mark.push(0);
        id
    }

    /// The component id of a node. Stable until the node's component merges or
    /// splits.
    pub fn component_of(&self, node: NodeId) -> usize {
        self.find(node.0)
    }

    /// True when both nodes currently share a component.
    pub fn same_component(&self, a: NodeId, b: NodeId) -> bool {
        self.find(a.0) == self.find(b.0)
    }

    /// Number of nodes in the component of `node`.
    pub fn component_size(&self, node: NodeId) -> usize {
        self.size[self.find(node.0)]
    }

    /// Records an edge addition between `a` and `b`, unioning their components.
    pub fn merge(&mut self, a: NodeId, b: NodeId) -> MergeOutcome {
        let ra = self.find_compress(a.0);
        let rb = self.find_compress(b.0);
        if ra == rb {
            return MergeOutcome::AlreadyJoined;
        }
        // Union by size: the larger component's root survives, so bulk loads stay
        // near-linear.
        let (into, absorbed) = if self.size[ra] >= self.size[rb] {
            (ra, rb)
        } else {
            (rb, ra)
        };
        self.parent[absorbed] = into;
        self.size[into] += self.size[absorbed];
        MergeOutcome::Merged { into, absorbed }
    }

    /// Records an edge removal between `a` and `b`. Call **after** the edge has been
    /// removed from `graph`; the search must not see it.
    ///
    /// Re-checks whether `b` is still reachable from `a` through the remaining
    /// (undirected) edges of their component. When it is not, the nodes reachable
    /// from `a` are re-rooted at `a` and everything else in the component at `b` —
    /// both halves get fresh component ids. The cost is bounded by the affected
    /// component (two BFS passes over it) — every other component is untouched and
    /// no whole-graph scan or allocation is performed.
    pub fn split(&mut self, graph: &DiGraph, a: NodeId, b: NodeId) -> SplitOutcome {
        debug_assert_eq!(
            self.find(a.0),
            self.find(b.0),
            "split endpoints share a component"
        );
        // BFS from `a` over the component's remaining edges, into the persistent
        // stamp/queue scratch (no per-call allocation once the buffers are warm).
        self.bfs_into_scratch(graph, a);
        if self.visit_mark[b.0] == self.visit_epoch {
            return SplitOutcome::StillConnected;
        }
        // The component broke. Every old member is reachable from `a` or from `b`
        // (its old path to `a` either avoids the removed edge or can be truncated
        // at the first crossing), so one more BFS from `b` yields the other half —
        // no scan over unrelated components' nodes is needed.
        let side_a_len = self.reached.len();
        for i in 0..side_a_len {
            let n = self.reached[i];
            self.parent[n] = a.0;
        }
        self.size[a.0] = side_a_len;
        self.bfs_into_scratch(graph, b);
        self.reached.sort_unstable();
        let mut moved: Vec<NodeId> = Vec::with_capacity(self.reached.len());
        for i in 0..self.reached.len() {
            let n = self.reached[i];
            self.parent[n] = b.0;
            moved.push(NodeId(n));
        }
        self.size[b.0] = self.reached.len();
        SplitOutcome::Split {
            kept: a.0,
            created: b.0,
            moved,
        }
    }

    /// Undirected BFS from `start` into the reusable scratch buffers: stamps every
    /// reached node with a fresh `visit_epoch` and collects it into `reached`.
    fn bfs_into_scratch(&mut self, graph: &DiGraph, start: NodeId) {
        if self.visit_mark.len() < self.parent.len() {
            self.visit_mark.resize(self.parent.len(), 0);
        }
        self.visit_epoch += 1;
        let epoch = self.visit_epoch;
        self.reached.clear();
        self.queue.clear();
        self.visit_mark[start.0] = epoch;
        self.reached.push(start.0);
        self.queue.push_back(start.0);
        while let Some(node) = self.queue.pop_front() {
            // Outgoing and incoming edges walked directly: the visit stamps already
            // deduplicate, so the allocating, sorting `neighbors_undirected` view
            // is unnecessary here.
            let neighbors = graph
                .outgoing(NodeId(node))
                .map(|e| e.target)
                .chain(graph.incoming(NodeId(node)).map(|e| e.source));
            for nb in neighbors {
                if self.visit_mark[nb.0] != epoch {
                    self.visit_mark[nb.0] = epoch;
                    self.reached.push(nb.0);
                    self.queue.push_back(nb.0);
                }
            }
        }
    }

    /// The full partition in deterministic order: components sorted by their
    /// smallest member, members ascending. Component *ids* (the `usize` keys of
    /// [`IncrementalComponents::component_of`]) do not appear — this is the
    /// id-agnostic view used to compare against [`crate::connected_components`].
    pub fn partitions(&self) -> Vec<Vec<NodeId>> {
        let mut by_root: std::collections::BTreeMap<usize, Vec<NodeId>> =
            std::collections::BTreeMap::new();
        for n in 0..self.parent.len() {
            by_root.entry(self.find(n)).or_default().push(NodeId(n));
        }
        let mut out: Vec<Vec<NodeId>> = by_root.into_values().collect();
        // Members are pushed in ascending node order already; order components by
        // their smallest member.
        out.sort_by_key(|members| members[0]);
        out
    }

    /// Root lookup without mutation (no path compression).
    fn find(&self, mut node: usize) -> usize {
        while self.parent[node] != node {
            node = self.parent[node];
        }
        node
    }

    /// Root lookup with full path compression.
    fn find_compress(&mut self, node: usize) -> usize {
        let root = self.find(node);
        let mut cursor = node;
        while self.parent[cursor] != root {
            let next = self.parent[cursor];
            self.parent[cursor] = root;
            cursor = next;
        }
        root
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ring(n: usize) -> DiGraph {
        let mut g = DiGraph::with_nodes(n);
        for i in 0..n {
            g.add_edge(NodeId(i), NodeId((i + 1) % n));
        }
        g
    }

    #[test]
    fn a_ring_is_one_component() {
        let c = strongly_connected_components(&ring(5));
        assert_eq!(c.count(), 1);
        assert!(c.is_strongly_connected());
        assert_eq!(c.largest_component_size(), 5);
        assert_eq!(c.nodes_in_cycles(), 5);
    }

    #[test]
    fn a_chain_is_all_singletons() {
        let mut g = DiGraph::with_nodes(4);
        for i in 0..3 {
            g.add_edge(NodeId(i), NodeId(i + 1));
        }
        let c = strongly_connected_components(&g);
        assert_eq!(c.count(), 4);
        assert!(!c.is_strongly_connected());
        assert_eq!(c.nodes_in_cycles(), 0);
        for i in 0..3 {
            assert!(!c.same_component(NodeId(i), NodeId(i + 1)));
        }
    }

    #[test]
    fn two_rings_joined_by_one_edge_give_two_components() {
        // Ring 0-1-2 and ring 3-4-5, plus a bridge 2 -> 3.
        let mut g = DiGraph::with_nodes(6);
        for i in 0..3 {
            g.add_edge(NodeId(i), NodeId((i + 1) % 3));
            g.add_edge(NodeId(3 + i), NodeId(3 + (i + 1) % 3));
        }
        g.add_edge(NodeId(2), NodeId(3));
        let c = strongly_connected_components(&g);
        assert_eq!(c.count(), 2);
        assert!(c.same_component(NodeId(0), NodeId(2)));
        assert!(c.same_component(NodeId(3), NodeId(5)));
        assert!(!c.same_component(NodeId(0), NodeId(3)));
        // The condensation has exactly the bridge edge.
        let edges = condensation_edges(&g, &c);
        assert_eq!(edges.len(), 1);
        let (from, to) = edges[0];
        assert_eq!(from, c.component(NodeId(2)));
        assert_eq!(to, c.component(NodeId(3)));
    }

    #[test]
    fn removed_edges_are_ignored() {
        let mut g = ring(4);
        let broken = g.find_edge(NodeId(1), NodeId(2)).unwrap();
        g.remove_edge(broken);
        let c = strongly_connected_components(&g);
        assert_eq!(c.count(), 4, "breaking the ring splits every node apart");
    }

    #[test]
    fn empty_graph_has_no_components() {
        let g = DiGraph::new();
        let c = strongly_connected_components(&g);
        assert_eq!(c.count(), 0);
        assert_eq!(c.largest_component_size(), 0);
        assert!(c.is_strongly_connected(), "vacuously true");
    }

    #[test]
    fn component_members_cover_every_node_exactly_once() {
        let mut g = ring(5);
        g.add_edge(NodeId(0), NodeId(3));
        g.add_node(); // isolated node
        let c = strongly_connected_components(&g);
        let mut seen = vec![false; g.node_count()];
        for comp in &c.components {
            for node in comp {
                assert!(!seen[node.0], "node {node} in two components");
                seen[node.0] = true;
            }
        }
        assert!(seen.into_iter().all(|s| s));
    }

    #[test]
    fn incremental_components_track_a_growing_graph() {
        let mut g = DiGraph::with_nodes(6);
        let mut inc = IncrementalComponents::from_graph(&g);
        assert_eq!(inc.count(), 6);
        assert_eq!(inc.partitions().len(), 6);

        for (a, b) in [(0, 1), (2, 3), (4, 5)] {
            g.add_edge(NodeId(a), NodeId(b));
            assert!(matches!(
                inc.merge(NodeId(a), NodeId(b)),
                MergeOutcome::Merged { .. }
            ));
        }
        assert_eq!(inc.count(), 3);
        assert_eq!(inc.component_size(NodeId(0)), 2);
        // A redundant edge inside a component merges nothing.
        g.add_edge(NodeId(1), NodeId(0));
        assert_eq!(inc.merge(NodeId(1), NodeId(0)), MergeOutcome::AlreadyJoined);
        assert_eq!(inc.count(), 3);
        // The incremental partition matches the from-scratch BFS decomposition.
        assert_eq!(inc.partitions(), crate::traversal::connected_components(&g));
    }

    #[test]
    fn incremental_split_detects_bridges_and_ignores_redundant_edges() {
        // Triangle 0-1-2 bridged to pair 3-4.
        let mut g = DiGraph::with_nodes(5);
        for (a, b) in [(0, 1), (1, 2), (2, 0), (3, 4)] {
            g.add_edge(NodeId(a), NodeId(b));
        }
        let bridge = g.add_edge(NodeId(2), NodeId(3));
        let mut inc = IncrementalComponents::from_graph(&g);
        assert_eq!(inc.count(), 1);

        // Removing a triangle edge keeps everything connected.
        let redundant = g.find_edge(NodeId(0), NodeId(1)).unwrap();
        g.remove_edge(redundant);
        assert_eq!(
            inc.split(&g, NodeId(0), NodeId(1)),
            SplitOutcome::StillConnected
        );
        assert_eq!(inc.count(), 1);

        // Removing the bridge splits {0,1,2} from {3,4}.
        g.remove_edge(bridge);
        match inc.split(&g, NodeId(2), NodeId(3)) {
            SplitOutcome::Split { moved, .. } => {
                assert_eq!(moved, vec![NodeId(3), NodeId(4)]);
            }
            other => panic!("expected a split, got {other:?}"),
        }
        assert_eq!(inc.count(), 2);
        assert!(inc.same_component(NodeId(0), NodeId(2)));
        assert!(inc.same_component(NodeId(3), NodeId(4)));
        assert!(!inc.same_component(NodeId(2), NodeId(3)));
        assert_eq!(inc.partitions(), crate::traversal::connected_components(&g));
    }

    #[test]
    fn incremental_add_node_creates_singletons() {
        let g = DiGraph::with_nodes(2);
        let mut inc = IncrementalComponents::from_graph(&g);
        let id = inc.add_node();
        assert_eq!(inc.node_count(), 3);
        assert_eq!(inc.component_of(NodeId(2)), id);
        assert_eq!(inc.component_size(NodeId(2)), 1);
    }

    #[test]
    fn incremental_partition_matches_bfs_under_random_churn() {
        // Deterministic pseudo-random add/remove schedule; after every structural
        // change the incremental partition must equal the from-scratch one.
        let n = 24;
        let mut g = DiGraph::with_nodes(n);
        let mut inc = IncrementalComponents::from_graph(&g);
        let mut live: Vec<crate::adjacency::EdgeId> = Vec::new();
        let mut state = 0x9e3779b97f4a7c15u64;
        let mut next = |bound: usize| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as usize) % bound
        };
        for step in 0..200 {
            let remove = !live.is_empty() && step % 3 == 2;
            if remove {
                let pick = next(live.len());
                let edge = live.swap_remove(pick);
                let endpoints = g.edge(edge).unwrap();
                g.remove_edge(edge);
                inc.split(&g, endpoints.source, endpoints.target);
            } else {
                let a = NodeId(next(n));
                let b = NodeId(next(n));
                live.push(g.add_edge(a, b));
                inc.merge(a, b);
            }
            assert_eq!(
                inc.partitions(),
                crate::traversal::connected_components(&g),
                "diverged at step {step}"
            );
        }
    }

    #[test]
    fn condensation_is_acyclic() {
        // Random-ish small graph: check the condensation never has a back edge by
        // verifying that same_component holds for every 2-cycle of components.
        let mut g = DiGraph::with_nodes(6);
        let edges = [(0, 1), (1, 2), (2, 0), (2, 3), (3, 4), (4, 3), (4, 5)];
        for (a, b) in edges {
            g.add_edge(NodeId(a), NodeId(b));
        }
        let c = strongly_connected_components(&g);
        let dag = condensation_edges(&g, &c);
        for &(a, b) in &dag {
            assert!(
                !dag.contains(&(b, a)),
                "condensation must not contain a 2-cycle ({a}, {b})"
            );
        }
    }
}

//! Bounded enumeration of simple mapping cycles.
//!
//! Cycles of mappings are the primary source of feedback in the paper: forwarding a
//! query around a cycle and comparing the result with the original query reveals
//! whether the composed mappings preserve attribute semantics (Section 3.2.1).
//!
//! Cycle enumeration is bounded by a maximum length because (a) probe messages carry a
//! TTL and (b) long cycles contribute almost no evidence (Section 5.1.2, Figure 10),
//! so there is no value in paying the exponential cost of finding them all.

use crate::adjacency::{DiGraph, EdgeId, NodeId};
use crate::parallelism::{effective_parallelism, run_stealing, timed, StealConfig, SubtaskCost};

/// Whether a cycle was found following edge directions or ignoring them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CycleKind {
    /// All edges traversed source→target.
    Directed,
    /// Edges traversed in either direction (undirected mapping network, Section 3.2).
    Undirected,
}

/// A simple cycle in the mapping graph.
///
/// `nodes[i]` is connected to `nodes[(i+1) % len]` by `edges[i]`. For undirected cycles
/// the edge may be traversed against its stored direction.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Cycle {
    /// Peers along the cycle, starting at the smallest node id on the cycle.
    pub nodes: Vec<NodeId>,
    /// Mapping edges along the cycle, aligned with `nodes`.
    pub edges: Vec<EdgeId>,
    /// Directed or undirected traversal.
    pub kind: CycleKind,
}

impl Cycle {
    /// Number of mappings in the cycle.
    pub fn len(&self) -> usize {
        self.edges.len()
    }

    /// True when the cycle contains no edges (never produced by the enumerators).
    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }

    /// True if the cycle uses the given edge.
    pub fn contains_edge(&self, edge: EdgeId) -> bool {
        self.edges.contains(&edge)
    }

    /// True if the cycle passes through the given node.
    pub fn contains_node(&self, node: NodeId) -> bool {
        self.nodes.contains(&node)
    }

    /// Canonical form used for deduplication: the edge set, sorted.
    fn canonical_edges(&self) -> Vec<EdgeId> {
        let mut e = self.edges.clone();
        e.sort_unstable();
        e
    }

    /// Rotates the cycle so it starts at its smallest node id. Direction is preserved.
    fn normalize(&mut self) {
        if self.nodes.is_empty() {
            return;
        }
        let (start, _) = self
            .nodes
            .iter()
            .enumerate()
            .min_by_key(|(_, n)| **n)
            .expect("non-empty");
        self.nodes.rotate_left(start);
        self.edges.rotate_left(start);
    }
}

/// Enumerates all simple directed cycles of length `2..=max_len`.
///
/// Each cycle is reported exactly once regardless of which node it was discovered from;
/// duplicates that differ only by rotation are merged. Self-loops (length 1) are
/// ignored: a mapping from a schema to itself provides no cross-peer evidence.
pub fn enumerate_cycles(graph: &DiGraph, max_len: usize) -> Vec<Cycle> {
    enumerate_impl(
        graph,
        max_len,
        CycleKind::Directed,
        1,
        &StealConfig::default(),
    )
}

/// Enumerates all simple undirected cycles of length `3..=max_len`.
///
/// In the undirected reading of the mapping network two antiparallel edges between the
/// same pair of peers do not constitute a meaningful cycle, and a cycle of length 2
/// using the same edge twice is impossible, so the minimum reported length is 3.
/// Length-2 cycles made of two *distinct* parallel or antiparallel edges are reported,
/// as they do represent two independent mappings that can be compared.
pub fn enumerate_undirected_cycles(graph: &DiGraph, max_len: usize) -> Vec<Cycle> {
    enumerate_impl(
        graph,
        max_len,
        CycleKind::Undirected,
        1,
        &StealConfig::default(),
    )
}

/// [`enumerate_cycles`] fanned out over work-stealing subtasks with
/// `std::thread::scope` workers (default steal configuration; see
/// [`enumerate_cycles_scheduled`] for explicit knobs).
///
/// `parallelism` follows [`effective_parallelism`] semantics (`0` = auto, `1` =
/// serial). The result — contents *and* order — is identical at every worker count.
pub fn enumerate_cycles_parallel(
    graph: &DiGraph,
    max_len: usize,
    parallelism: usize,
) -> Vec<Cycle> {
    enumerate_impl(
        graph,
        max_len,
        CycleKind::Directed,
        parallelism,
        &StealConfig::default(),
    )
}

/// [`enumerate_undirected_cycles`] with the same work-stealing fan-out as
/// [`enumerate_cycles_parallel`].
pub fn enumerate_undirected_cycles_parallel(
    graph: &DiGraph,
    max_len: usize,
    parallelism: usize,
) -> Vec<Cycle> {
    enumerate_impl(
        graph,
        max_len,
        CycleKind::Undirected,
        parallelism,
        &StealConfig::default(),
    )
}

/// [`enumerate_cycles`] under an explicit work-stealing schedule.
///
/// Origins whose first-hop degree reaches the heavy-origin threshold are split into
/// `steal_granularity`-sized first-hop slices; all subtasks go through one shared
/// injector that idle workers steal from, so a hub peer no longer pins a single
/// worker while the rest drain their light origins and idle. Results are merged in
/// deterministic origin-then-subtask order and deduplicated exactly like the serial
/// enumeration, so contents *and* order — and therefore downstream evidence ids —
/// are bit-identical at every `(parallelism, steal)` setting.
pub fn enumerate_cycles_scheduled(
    graph: &DiGraph,
    max_len: usize,
    parallelism: usize,
    steal: &StealConfig,
) -> Vec<Cycle> {
    enumerate_impl(graph, max_len, CycleKind::Directed, parallelism, steal)
}

/// [`enumerate_undirected_cycles`] under an explicit work-stealing schedule (see
/// [`enumerate_cycles_scheduled`]).
pub fn enumerate_undirected_cycles_scheduled(
    graph: &DiGraph,
    max_len: usize,
    parallelism: usize,
    steal: &StealConfig,
) -> Vec<Cycle> {
    enumerate_impl(graph, max_len, CycleKind::Undirected, parallelism, steal)
}

/// The first hops a cycle search from `origin` iterates, in the exact order the
/// serial DFS visits them (outgoing, then — undirected only — incoming). Subtask
/// ranges index into this list, which is what makes slice-wise concatenation
/// reproduce the serial discovery order.
fn first_hops(graph: &DiGraph, origin: NodeId, kind: CycleKind) -> Vec<(EdgeId, NodeId)> {
    match kind {
        CycleKind::Directed => graph.outgoing(origin).map(|e| (e.id, e.target)).collect(),
        CycleKind::Undirected => graph
            .outgoing(origin)
            .map(|e| (e.id, e.target))
            .chain(graph.incoming(origin).map(|e| (e.id, e.source)))
            .collect(),
    }
}

/// Raw cycle candidates discovered from `origin` through the first hops in
/// `hop_range` (indices into [`first_hops`]), in DFS discovery order, *without*
/// any deduplication — the stealable unit of the enumeration. Concatenating the
/// candidates of an origin's subtask ranges in range order reproduces the full
/// origin search byte for byte, because the first-hop loop is the outermost level
/// of the DFS.
fn search_from_origin_hops(
    graph: &DiGraph,
    origin: NodeId,
    hop_range: std::ops::Range<usize>,
    max_len: usize,
    kind: CycleKind,
) -> Vec<Cycle> {
    let mut found = Vec::new();
    if max_len == 0 {
        return found;
    }
    let hops = first_hops(graph, origin, kind);
    let mut node_path = vec![origin];
    let mut edge_path = Vec::new();
    let mut on_path = vec![false; graph.node_count()];
    on_path[origin.0] = true;
    for &(edge, next) in &hops[hop_range.start.min(hops.len())..hop_range.end.min(hops.len())] {
        if next == origin {
            // Self-loop (the only way a first hop returns to the origin): skip, as
            // the serial search does.
            continue;
        }
        node_path.push(next);
        edge_path.push(edge);
        on_path[next.0] = true;
        search(
            graph,
            origin,
            next,
            max_len - 1,
            kind,
            &mut node_path,
            &mut edge_path,
            &mut on_path,
            &mut found,
        );
        on_path[next.0] = false;
        edge_path.pop();
        node_path.pop();
    }
    found
}

/// Simple cycles through `origin` (as the rotation start), in DFS discovery order,
/// deduplicated *within* the origin (an undirected cycle is otherwise discovered
/// once per traversal direction) but not across origins. Origin-local dedup keeps
/// the buffered candidate lists proportional to the origin's unique cycles;
/// first-discovery order is preserved, so the cross-origin merge still reproduces
/// the serial enumeration exactly.
fn search_from_origin(
    graph: &DiGraph,
    origin: NodeId,
    max_len: usize,
    kind: CycleKind,
) -> Vec<Cycle> {
    let hop_count = match kind {
        CycleKind::Directed => graph.out_degree(origin),
        CycleKind::Undirected => graph.degree(origin),
    };
    dedup_within_origin(search_from_origin_hops(
        graph,
        origin,
        0..hop_count,
        max_len,
        kind,
    ))
}

/// The origin-local half of the deduplication (see [`search_from_origin`]).
fn dedup_within_origin(mut found: Vec<Cycle>) -> Vec<Cycle> {
    let mut local_seen: std::collections::HashSet<Vec<EdgeId>> =
        std::collections::HashSet::with_capacity(found.len());
    found.retain(|cycle| local_seen.insert(cycle.canonical_edges()));
    found
}

/// Merges one origin's candidate list into the running result, deduplicating by
/// canonical edge set — the single definition of the merge rule; applying it origin
/// by origin in ascending order is byte-for-byte the serial enumeration.
fn merge_into(
    candidates: Vec<Cycle>,
    seen: &mut std::collections::HashSet<Vec<EdgeId>>,
    found: &mut Vec<Cycle>,
) {
    for cycle in candidates {
        let key = cycle.canonical_edges();
        if seen.insert(key) {
            found.push(cycle);
        }
    }
}

/// The work-stealing task list of one enumeration: `(origin, first-hop range)`
/// pairs in origin-then-subtask order — the deterministic merge order.
fn cycle_tasks(
    graph: &DiGraph,
    kind: CycleKind,
    workers: usize,
    steal: &StealConfig,
) -> Vec<(NodeId, std::ops::Range<usize>)> {
    let steal = steal.pinned();
    let mut tasks = Vec::with_capacity(graph.node_count());
    for origin in graph.nodes() {
        let hop_count = match kind {
            CycleKind::Directed => graph.out_degree(origin),
            CycleKind::Undirected => graph.degree(origin),
        };
        for range in steal.subtask_ranges(hop_count, workers) {
            tasks.push((origin, range));
        }
    }
    tasks
}

fn enumerate_impl(
    graph: &DiGraph,
    max_len: usize,
    kind: CycleKind,
    parallelism: usize,
    steal: &StealConfig,
) -> Vec<Cycle> {
    if max_len < 2 {
        return Vec::new();
    }
    let node_count = graph.node_count();
    let workers = effective_parallelism(parallelism).min(node_count.max(1));
    let mut found: Vec<Cycle> = Vec::new();
    let mut seen: std::collections::HashSet<Vec<EdgeId>> = std::collections::HashSet::new();
    if workers <= 1 {
        // Stream origin by origin: only one origin's candidates are buffered at a
        // time, matching the pre-refactor single-pass memory profile.
        for origin in graph.nodes() {
            merge_into(
                search_from_origin(graph, origin, max_len, kind),
                &mut seen,
                &mut found,
            );
        }
        return found;
    }
    // Split heavy origins into first-hop subtasks and let idle workers steal them.
    let tasks = cycle_tasks(graph, kind, workers, steal);
    let results = run_stealing(workers, tasks.len(), |i| {
        let (origin, ref range) = tasks[i];
        search_from_origin_hops(graph, origin, range.clone(), max_len, kind)
    });
    // Merge in origin-then-subtask order: concatenating one origin's subtask
    // results in range order reproduces the serial per-origin discovery order, so
    // applying the same origin-local dedup followed by the same cross-origin merge
    // yields byte-for-byte the serial enumeration.
    let mut results = results.into_iter();
    let mut index = 0;
    while index < tasks.len() {
        let origin = tasks[index].0;
        let mut candidates = Vec::new();
        while index < tasks.len() && tasks[index].0 == origin {
            candidates.extend(results.next().expect("one result per task"));
            index += 1;
        }
        merge_into(dedup_within_origin(candidates), &mut seen, &mut found);
    }
    found
}

/// Measures the serial cost of every work-stealing subtask of a directed-cycle
/// enumeration, as it would be decomposed for `workers` workers.
///
/// Subtasks run one at a time on the calling thread, so each [`SubtaskCost`] is an
/// uncontended per-subtask CPU cost. The tail-latency bench replays these costs
/// under the static per-origin split and the work-stealing schedule to quantify how
/// much a hub origin's tail shrinks — a measurement that stays meaningful on
/// single-core hosts, where wall-clock speedups cannot show.
pub fn cycle_subtask_costs(
    graph: &DiGraph,
    max_len: usize,
    workers: usize,
    steal: &StealConfig,
) -> Vec<SubtaskCost> {
    let tasks = cycle_tasks(graph, CycleKind::Directed, workers, steal);
    let mut costs = Vec::with_capacity(tasks.len());
    let mut subtask = 0;
    let mut previous_origin = None;
    for (origin, range) in tasks {
        if previous_origin != Some(origin) {
            subtask = 0;
            previous_origin = Some(origin);
        }
        let (candidates, cost) =
            timed(|| search_from_origin_hops(graph, origin, range, max_len, CycleKind::Directed));
        std::hint::black_box(candidates.len());
        costs.push(SubtaskCost {
            origin: origin.0,
            subtask,
            cost,
        });
        subtask += 1;
    }
    costs
}

#[allow(clippy::too_many_arguments)]
fn search(
    graph: &DiGraph,
    origin: NodeId,
    current: NodeId,
    remaining: usize,
    kind: CycleKind,
    node_path: &mut Vec<NodeId>,
    edge_path: &mut Vec<EdgeId>,
    on_path: &mut [bool],
    found: &mut Vec<Cycle>,
) {
    if remaining == 0 {
        return;
    }
    let hops: Vec<(EdgeId, NodeId)> = match kind {
        CycleKind::Directed => graph.outgoing(current).map(|e| (e.id, e.target)).collect(),
        CycleKind::Undirected => graph
            .outgoing(current)
            .map(|e| (e.id, e.target))
            .chain(graph.incoming(current).map(|e| (e.id, e.source)))
            .collect(),
    };
    for (edge, next) in hops {
        if edge_path.contains(&edge) {
            continue;
        }
        if next == current {
            // Self-loop: skip.
            continue;
        }
        if next == origin {
            // A cycle closes. Only report from the smallest node to avoid duplicates,
            // and require length >= 2.
            if edge_path.is_empty() {
                // single-edge "cycle" impossible here since next != current
            }
            let mut cycle = Cycle {
                nodes: node_path.clone(),
                edges: {
                    let mut e = edge_path.clone();
                    e.push(edge);
                    e
                },
                kind,
            };
            if cycle.len() >= 2 {
                // For undirected cycles require length >= 3 unless the two edges are distinct
                // parallel/antiparallel edges (they always are distinct by the contains check),
                // which we do allow. Deduplication (the same cycle reachable from
                // several origins, or traversed in both directions) happens in
                // `merge_deduplicated`, keeping per-origin searches independent.
                cycle.normalize();
                found.push(cycle);
            }
            continue;
        }
        if on_path[next.0] {
            continue;
        }
        node_path.push(next);
        edge_path.push(edge);
        on_path[next.0] = true;
        search(
            graph,
            origin,
            next,
            remaining - 1,
            kind,
            node_path,
            edge_path,
            on_path,
            found,
        );
        on_path[next.0] = false;
        edge_path.pop();
        node_path.pop();
    }
}

/// Cycles passing through a specific edge.
///
/// The directed case is a *targeted* search — a simple cycle through `e = (u, v)` is
/// exactly a simple directed path `v ⇝ u` of length `≤ max_len − 1` closed by `e` — so
/// its cost is bounded by the paths near the edge rather than by the whole graph. This
/// is the workhorse of incremental evidence maintenance: adding one mapping only pays
/// for the cycles that mapping creates. The undirected case falls back to filtering the
/// full enumeration.
pub fn cycles_through_edge(
    graph: &DiGraph,
    edge: EdgeId,
    max_len: usize,
    directed: bool,
) -> Vec<Cycle> {
    if !directed {
        return enumerate_undirected_cycles(graph, max_len)
            .into_iter()
            .filter(|c| c.contains_edge(edge))
            .collect();
    }
    let Some(edge_ref) = graph.edge(edge) else {
        return Vec::new();
    };
    if max_len < 2 || edge_ref.source == edge_ref.target {
        return Vec::new();
    }
    let mut found = Vec::new();
    let mut node_path = vec![edge_ref.target];
    let mut edge_path = Vec::new();
    let mut on_path = vec![false; graph.node_count()];
    on_path[edge_ref.target.0] = true;
    close_paths(
        graph,
        edge_ref.source,
        edge_ref.target,
        edge,
        max_len - 1,
        &mut node_path,
        &mut edge_path,
        &mut on_path,
        &mut found,
    );
    found
}

/// Extends a simple path from `current` towards `goal`; every arrival at `goal` closes
/// one cycle through `closing_edge`.
#[allow(clippy::too_many_arguments)]
fn close_paths(
    graph: &DiGraph,
    goal: NodeId,
    current: NodeId,
    closing_edge: EdgeId,
    remaining: usize,
    node_path: &mut Vec<NodeId>,
    edge_path: &mut Vec<EdgeId>,
    on_path: &mut [bool],
    found: &mut Vec<Cycle>,
) {
    if remaining == 0 {
        return;
    }
    for e in graph.outgoing(current) {
        if e.id == closing_edge || edge_path.contains(&e.id) || e.target == current {
            continue;
        }
        if e.target == goal {
            // The path closes the cycle: [closing_edge, path edges..., e] starting at
            // the closing edge's target.
            let mut cycle = Cycle {
                nodes: node_path.clone(),
                edges: {
                    let mut edges = edge_path.clone();
                    edges.push(e.id);
                    edges.push(closing_edge);
                    edges
                },
                kind: CycleKind::Directed,
            };
            cycle.nodes.push(goal);
            cycle.normalize();
            found.push(cycle);
            continue;
        }
        if on_path[e.target.0] {
            continue;
        }
        node_path.push(e.target);
        edge_path.push(e.id);
        on_path[e.target.0] = true;
        close_paths(
            graph,
            goal,
            e.target,
            closing_edge,
            remaining - 1,
            node_path,
            edge_path,
            on_path,
            found,
        );
        on_path[e.target.0] = false;
        edge_path.pop();
        node_path.pop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn paper_directed_example() -> (DiGraph, Vec<EdgeId>) {
        // Figure 5: p1..p4 with m12, m21, m23, m34, m41, m24.
        let mut g = DiGraph::with_nodes(4);
        let p = |i: usize| NodeId(i);
        let m12 = g.add_edge(p(0), p(1));
        let m21 = g.add_edge(p(1), p(0));
        let m23 = g.add_edge(p(1), p(2));
        let m34 = g.add_edge(p(2), p(3));
        let m41 = g.add_edge(p(3), p(0));
        let m24 = g.add_edge(p(1), p(3));
        (g, vec![m12, m21, m23, m34, m41, m24])
    }

    #[test]
    fn directed_ring_has_one_cycle() {
        let mut g = DiGraph::with_nodes(5);
        for i in 0..5 {
            g.add_edge(NodeId(i), NodeId((i + 1) % 5));
        }
        let cycles = enumerate_cycles(&g, 5);
        assert_eq!(cycles.len(), 1);
        assert_eq!(cycles[0].len(), 5);
        assert_eq!(cycles[0].kind, CycleKind::Directed);
    }

    #[test]
    fn max_len_excludes_long_cycles() {
        let mut g = DiGraph::with_nodes(5);
        for i in 0..5 {
            g.add_edge(NodeId(i), NodeId((i + 1) % 5));
        }
        assert!(enumerate_cycles(&g, 4).is_empty());
    }

    #[test]
    fn paper_figure5_has_two_directed_cycles() {
        // The paper lists f1: m12->m23->m34->m41 and f2: m12->m24->m41 as the directed
        // cycles (plus the 2-cycle m12-m21 which the paper does not use as feedback but
        // which is still a structural cycle).
        let (g, m) = paper_directed_example();
        let cycles = enumerate_cycles(&g, 4);
        let lens: Vec<usize> = {
            let mut l: Vec<usize> = cycles.iter().map(Cycle::len).collect();
            l.sort_unstable();
            l
        };
        assert_eq!(lens, vec![2, 3, 4]);
        assert!(cycles.iter().any(|c| c.len() == 4
            && c.contains_edge(m[0])
            && c.contains_edge(m[2])
            && c.contains_edge(m[3])
            && c.contains_edge(m[4])));
        assert!(cycles.iter().any(|c| c.len() == 3
            && c.contains_edge(m[0])
            && c.contains_edge(m[5])
            && c.contains_edge(m[4])));
    }

    #[test]
    fn paper_figure4_undirected_has_three_cycles() {
        // Figure 4: undirected mappings m12, m23, m34, m41, m24 -> cycles f1 (len 4),
        // f2 (m12, m24, m41) and f3 (m23, m34, m24).
        let mut g = DiGraph::with_nodes(4);
        let p = |i: usize| NodeId(i);
        let m12 = g.add_edge(p(0), p(1));
        let m23 = g.add_edge(p(1), p(2));
        let m34 = g.add_edge(p(2), p(3));
        let m41 = g.add_edge(p(3), p(0));
        let m24 = g.add_edge(p(1), p(3));
        let cycles = enumerate_undirected_cycles(&g, 4);
        assert_eq!(cycles.len(), 3);
        let mut lens: Vec<usize> = cycles.iter().map(Cycle::len).collect();
        lens.sort_unstable();
        assert_eq!(lens, vec![3, 3, 4]);
        assert!(cycles.iter().any(|c| c.len() == 3
            && c.contains_edge(m12)
            && c.contains_edge(m24)
            && c.contains_edge(m41)));
        assert!(cycles.iter().any(|c| c.len() == 3
            && c.contains_edge(m23)
            && c.contains_edge(m34)
            && c.contains_edge(m24)));
        assert!(cycles.iter().any(|c| c.len() == 4
            && c.contains_edge(m12)
            && c.contains_edge(m23)
            && c.contains_edge(m34)
            && c.contains_edge(m41)));
    }

    #[test]
    fn cycles_are_not_duplicated_by_rotation() {
        let mut g = DiGraph::with_nodes(3);
        g.add_edge(NodeId(0), NodeId(1));
        g.add_edge(NodeId(1), NodeId(2));
        g.add_edge(NodeId(2), NodeId(0));
        let cycles = enumerate_cycles(&g, 10);
        assert_eq!(cycles.len(), 1);
        assert_eq!(cycles[0].nodes[0], NodeId(0));
    }

    #[test]
    fn two_antiparallel_edges_form_a_directed_two_cycle() {
        let mut g = DiGraph::with_nodes(2);
        g.add_edge(NodeId(0), NodeId(1));
        g.add_edge(NodeId(1), NodeId(0));
        let cycles = enumerate_cycles(&g, 5);
        assert_eq!(cycles.len(), 1);
        assert_eq!(cycles[0].len(), 2);
    }

    #[test]
    fn cycles_through_edge_filters_correctly() {
        let (g, m) = paper_directed_example();
        let through_m24 = cycles_through_edge(&g, m[5], 4, true);
        assert_eq!(through_m24.len(), 1);
        assert_eq!(through_m24[0].len(), 3);
    }

    #[test]
    fn targeted_search_matches_filtered_enumeration_on_every_edge() {
        let (g, m) = paper_directed_example();
        for &edge in &m {
            for max_len in 2..=5 {
                let mut targeted: Vec<Vec<EdgeId>> = cycles_through_edge(&g, edge, max_len, true)
                    .iter()
                    .map(Cycle::canonical_edges)
                    .collect();
                let mut filtered: Vec<Vec<EdgeId>> = enumerate_cycles(&g, max_len)
                    .into_iter()
                    .filter(|c| c.contains_edge(edge))
                    .map(|c| c.canonical_edges())
                    .collect();
                targeted.sort();
                filtered.sort();
                assert_eq!(targeted, filtered, "edge {edge} max_len {max_len}");
            }
        }
    }

    #[test]
    fn targeted_search_normalizes_like_the_enumerator() {
        let (g, m) = paper_directed_example();
        let targeted = cycles_through_edge(&g, m[5], 4, true);
        let from_enumeration: Vec<Cycle> = enumerate_cycles(&g, 4)
            .into_iter()
            .filter(|c| c.contains_edge(m[5]))
            .collect();
        assert_eq!(targeted, from_enumeration);
    }

    #[test]
    fn targeted_search_on_removed_edge_is_empty() {
        let (mut g, m) = paper_directed_example();
        g.remove_edge(m[5]);
        assert!(cycles_through_edge(&g, m[5], 5, true).is_empty());
    }

    #[test]
    fn removed_edges_do_not_appear_in_cycles() {
        let (mut g, m) = paper_directed_example();
        g.remove_edge(m[0]); // remove m12
        let cycles = enumerate_cycles(&g, 4);
        assert!(cycles.iter().all(|c| !c.contains_edge(m[0])));
        // Only the 2-cycle disappears along with the two cycles using m12: remaining is none
        // since every listed cycle used m12 except none. Actually f3-like path is not a directed cycle.
        assert!(cycles.is_empty());
    }

    #[test]
    fn self_loops_are_ignored() {
        let mut g = DiGraph::with_nodes(1);
        g.add_edge(NodeId(0), NodeId(0));
        assert!(enumerate_cycles(&g, 5).is_empty());
    }

    #[test]
    fn parallel_enumeration_is_identical_to_serial_at_every_worker_count() {
        let (g, _) = paper_directed_example();
        for max_len in 2..=6 {
            let serial = enumerate_cycles(&g, max_len);
            let serial_undirected = enumerate_undirected_cycles(&g, max_len);
            for workers in [1, 2, 3, 4, 16] {
                assert_eq!(
                    enumerate_cycles_parallel(&g, max_len, workers),
                    serial,
                    "directed, max_len {max_len}, {workers} workers"
                );
                assert_eq!(
                    enumerate_undirected_cycles_parallel(&g, max_len, workers),
                    serial_undirected,
                    "undirected, max_len {max_len}, {workers} workers"
                );
            }
        }
    }

    #[test]
    fn work_stealing_schedule_is_identical_to_serial_for_every_steal_config() {
        // A hub-and-ring graph: node 0 is a high-degree hub whose search gets split
        // into first-hop subtasks at aggressive steal settings.
        let mut g = DiGraph::with_nodes(8);
        for i in 0..8 {
            g.add_edge(NodeId(i), NodeId((i + 1) % 8));
        }
        for i in 1..8 {
            g.add_edge(NodeId(0), NodeId(i));
            g.add_edge(NodeId(i), NodeId(0));
        }
        for max_len in [3, 5] {
            let serial = enumerate_cycles(&g, max_len);
            let serial_undirected = enumerate_undirected_cycles(&g, max_len);
            for workers in [2, 3, 8] {
                for (threshold, granularity) in [(1, 1), (2, 3), (4, 2), (100, 1)] {
                    let steal = StealConfig {
                        heavy_origin_threshold: threshold,
                        steal_granularity: granularity,
                    };
                    assert_eq!(
                        enumerate_cycles_scheduled(&g, max_len, workers, &steal),
                        serial,
                        "directed, max_len {max_len}, {workers} workers, steal {steal:?}"
                    );
                    assert_eq!(
                        enumerate_undirected_cycles_scheduled(&g, max_len, workers, &steal),
                        serial_undirected,
                        "undirected, max_len {max_len}, {workers} workers, steal {steal:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn subtask_costs_cover_every_origin_and_split_the_hub() {
        let mut g = DiGraph::with_nodes(6);
        for i in 1..6 {
            g.add_edge(NodeId(0), NodeId(i));
            g.add_edge(NodeId(i), NodeId((i % 5) + 1));
        }
        let steal = StealConfig {
            heavy_origin_threshold: 3,
            steal_granularity: 1,
        };
        let costs = cycle_subtask_costs(&g, 5, 4, &steal);
        // Origin 0 has out-degree 5 >= threshold 3, so it contributes 5 subtasks.
        let hub_subtasks = costs.iter().filter(|c| c.origin == 0).count();
        assert_eq!(hub_subtasks, 5);
        // Every origin appears, and subtask indices are dense per origin.
        for origin in 0..6 {
            let per_origin: Vec<_> = costs.iter().filter(|c| c.origin == origin).collect();
            assert!(!per_origin.is_empty(), "origin {origin} missing");
            for (i, entry) in per_origin.iter().enumerate() {
                assert_eq!(entry.subtask, i);
            }
        }
    }

    #[test]
    fn parallel_enumeration_handles_more_workers_than_nodes() {
        let mut g = DiGraph::with_nodes(3);
        g.add_edge(NodeId(0), NodeId(1));
        g.add_edge(NodeId(1), NodeId(2));
        g.add_edge(NodeId(2), NodeId(0));
        let cycles = enumerate_cycles_parallel(&g, 10, 64);
        assert_eq!(cycles.len(), 1);
        assert_eq!(cycles, enumerate_cycles(&g, 10));
    }
}

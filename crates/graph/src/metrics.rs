//! Topology metrics: degree distribution, clustering coefficient, cycle statistics.
//!
//! These metrics let workloads check that generated networks resemble the semantic
//! overlay networks the paper describes (exponential degree distribution, clustering
//! coefficient around 0.5 for the SRS network).

use crate::adjacency::{DiGraph, NodeId};
use crate::cycles::enumerate_undirected_cycles;

/// Aggregate structural metrics of a mapping network.
#[derive(Debug, Clone, PartialEq)]
pub struct GraphMetrics {
    /// Number of peers.
    pub nodes: usize,
    /// Number of mappings.
    pub edges: usize,
    /// Mean total degree.
    pub mean_degree: f64,
    /// Maximum total degree.
    pub max_degree: usize,
    /// Global clustering coefficient (undirected, averaged over nodes).
    pub clustering_coefficient: f64,
    /// Number of undirected cycles of length at most the bound used to compute it.
    pub bounded_cycle_count: usize,
}

/// Computes the local clustering coefficient of each node (undirected) and averages it.
///
/// The local coefficient of a node with fewer than two neighbours is defined as zero,
/// matching the convention used in the measurement the paper cites.
pub fn clustering_coefficient(graph: &DiGraph) -> f64 {
    let n = graph.node_count();
    if n == 0 {
        return 0.0;
    }
    let mut total = 0.0;
    for node in graph.nodes() {
        total += local_clustering(graph, node);
    }
    total / n as f64
}

/// Local clustering coefficient of one node: fraction of neighbour pairs that are
/// themselves connected (in either direction).
pub fn local_clustering(graph: &DiGraph, node: NodeId) -> f64 {
    let neighbours = graph.neighbors_undirected(node);
    let k = neighbours.len();
    if k < 2 {
        return 0.0;
    }
    let mut links = 0usize;
    for i in 0..k {
        for j in (i + 1)..k {
            let a = neighbours[i];
            let b = neighbours[j];
            if graph.find_edge(a, b).is_some() || graph.find_edge(b, a).is_some() {
                links += 1;
            }
        }
    }
    2.0 * links as f64 / (k * (k - 1)) as f64
}

/// Histogram of total degrees: `result[d]` is the number of nodes with degree `d`.
pub fn degree_distribution(graph: &DiGraph) -> Vec<usize> {
    let mut hist = Vec::new();
    for node in graph.nodes() {
        let d = graph.degree(node);
        if d >= hist.len() {
            hist.resize(d + 1, 0);
        }
        hist[d] += 1;
    }
    hist
}

/// Computes the full metric bundle, counting undirected cycles up to `cycle_bound`.
pub fn compute_metrics(graph: &DiGraph, cycle_bound: usize) -> GraphMetrics {
    let nodes = graph.node_count();
    let edges = graph.edge_count();
    let degrees: Vec<usize> = graph.nodes().map(|n| graph.degree(n)).collect();
    let mean_degree = if nodes == 0 {
        0.0
    } else {
        degrees.iter().sum::<usize>() as f64 / nodes as f64
    };
    let max_degree = degrees.iter().copied().max().unwrap_or(0);
    GraphMetrics {
        nodes,
        edges,
        mean_degree,
        max_degree,
        clustering_coefficient: clustering_coefficient(graph),
        bounded_cycle_count: enumerate_undirected_cycles(graph, cycle_bound).len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn triangle_has_clustering_one() {
        let mut g = DiGraph::with_nodes(3);
        g.add_edge(NodeId(0), NodeId(1));
        g.add_edge(NodeId(1), NodeId(2));
        g.add_edge(NodeId(2), NodeId(0));
        assert!((clustering_coefficient(&g) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn path_has_clustering_zero() {
        let mut g = DiGraph::with_nodes(3);
        g.add_edge(NodeId(0), NodeId(1));
        g.add_edge(NodeId(1), NodeId(2));
        assert_eq!(clustering_coefficient(&g), 0.0);
    }

    #[test]
    fn degree_distribution_counts_every_node() {
        let mut g = DiGraph::with_nodes(4);
        g.add_edge(NodeId(0), NodeId(1));
        g.add_edge(NodeId(0), NodeId(2));
        g.add_edge(NodeId(0), NodeId(3));
        let hist = degree_distribution(&g);
        assert_eq!(hist.iter().sum::<usize>(), 4);
        assert_eq!(hist[1], 3);
        assert_eq!(hist[3], 1);
    }

    #[test]
    fn empty_graph_metrics_are_zero() {
        let g = DiGraph::new();
        let m = compute_metrics(&g, 4);
        assert_eq!(m.nodes, 0);
        assert_eq!(m.edges, 0);
        assert_eq!(m.mean_degree, 0.0);
        assert_eq!(m.clustering_coefficient, 0.0);
    }

    #[test]
    fn metrics_bundle_is_consistent() {
        let mut g = DiGraph::with_nodes(4);
        g.add_edge(NodeId(0), NodeId(1));
        g.add_edge(NodeId(1), NodeId(2));
        g.add_edge(NodeId(2), NodeId(3));
        g.add_edge(NodeId(3), NodeId(0));
        let m = compute_metrics(&g, 4);
        assert_eq!(m.nodes, 4);
        assert_eq!(m.edges, 4);
        assert!((m.mean_degree - 2.0).abs() < 1e-12);
        assert_eq!(m.max_degree, 2);
        assert_eq!(m.bounded_cycle_count, 1);
    }

    #[test]
    fn local_clustering_of_isolated_node_is_zero() {
        let g = DiGraph::with_nodes(1);
        assert_eq!(local_clustering(&g, NodeId(0)), 0.0);
    }
}

//! Directed multigraph with stable node and edge identifiers.
//!
//! The structure is an adjacency-list multigraph: parallel edges between the same pair
//! of nodes are allowed (two independent mappings can exist between the same two peers)
//! and edges are never re-indexed once inserted, so `EdgeId`s remain valid handles for
//! the lifetime of the graph. Removal is supported through tombstones; iteration skips
//! removed entries.

use std::fmt;

/// Identifier of a node (a peer in the PDMS interpretation).
///
/// Node ids are dense indices assigned in insertion order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub usize);

/// Identifier of a directed edge (a schema mapping in the PDMS interpretation).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EdgeId(pub usize);

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Display for EdgeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

/// A lightweight view of one edge: its id and endpoints.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EdgeRef {
    /// Stable identifier of the edge.
    pub id: EdgeId,
    /// Source node.
    pub source: NodeId,
    /// Target node.
    pub target: NodeId,
}

#[derive(Debug, Clone)]
struct EdgeSlot {
    source: NodeId,
    target: NodeId,
    alive: bool,
}

/// Directed multigraph with adjacency lists in both directions.
///
/// The graph stores no payloads; callers keep side tables indexed by [`NodeId`] /
/// [`EdgeId`]. This keeps the structure reusable for mapping networks, factor graphs
/// and simulator topologies alike.
#[derive(Debug, Clone, Default)]
pub struct DiGraph {
    edges: Vec<EdgeSlot>,
    outgoing: Vec<Vec<EdgeId>>,
    incoming: Vec<Vec<EdgeId>>,
    live_edges: usize,
}

impl DiGraph {
    /// Creates an empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a graph with `n` isolated nodes.
    pub fn with_nodes(n: usize) -> Self {
        let mut g = Self::new();
        for _ in 0..n {
            g.add_node();
        }
        g
    }

    /// Adds a node and returns its identifier.
    pub fn add_node(&mut self) -> NodeId {
        let id = NodeId(self.outgoing.len());
        self.outgoing.push(Vec::new());
        self.incoming.push(Vec::new());
        id
    }

    /// Number of nodes ever added (removed nodes are not supported; peers leaving the
    /// network are modelled by removing their incident edges).
    pub fn node_count(&self) -> usize {
        self.outgoing.len()
    }

    /// Number of live (non-removed) edges.
    pub fn edge_count(&self) -> usize {
        self.live_edges
    }

    /// Returns `true` if `node` is a valid identifier for this graph.
    pub fn contains_node(&self, node: NodeId) -> bool {
        node.0 < self.outgoing.len()
    }

    /// Adds a directed edge from `source` to `target` and returns its identifier.
    ///
    /// # Panics
    /// Panics if either endpoint is not a node of this graph.
    pub fn add_edge(&mut self, source: NodeId, target: NodeId) -> EdgeId {
        assert!(self.contains_node(source), "unknown source node {source}");
        assert!(self.contains_node(target), "unknown target node {target}");
        let id = EdgeId(self.edges.len());
        self.edges.push(EdgeSlot {
            source,
            target,
            alive: true,
        });
        self.outgoing[source.0].push(id);
        self.incoming[target.0].push(id);
        self.live_edges += 1;
        id
    }

    /// Number of edge id slots ever allocated, including tombstoned (removed)
    /// edges. Mirrors of external id spaces (a catalog's mapping slots) compare
    /// against this to assert id alignment regardless of which edges are live.
    pub fn edge_slot_count(&self) -> usize {
        self.edges.len()
    }

    /// Removes an edge. Removing an already-removed edge is a no-op.
    pub fn remove_edge(&mut self, edge: EdgeId) {
        if let Some(slot) = self.edges.get_mut(edge.0) {
            if slot.alive {
                slot.alive = false;
                self.live_edges -= 1;
            }
        }
    }

    /// Returns the endpoints of a live edge, or `None` if the edge was removed or never
    /// existed.
    pub fn edge(&self, edge: EdgeId) -> Option<EdgeRef> {
        self.edges.get(edge.0).and_then(|slot| {
            slot.alive.then_some(EdgeRef {
                id: edge,
                source: slot.source,
                target: slot.target,
            })
        })
    }

    /// Iterates over all live edges in insertion order.
    pub fn edges(&self) -> impl Iterator<Item = EdgeRef> + '_ {
        self.edges.iter().enumerate().filter_map(|(i, slot)| {
            slot.alive.then_some(EdgeRef {
                id: EdgeId(i),
                source: slot.source,
                target: slot.target,
            })
        })
    }

    /// Iterates over all node identifiers.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> {
        (0..self.node_count()).map(NodeId)
    }

    /// Live outgoing edges of `node`.
    pub fn outgoing(&self, node: NodeId) -> impl Iterator<Item = EdgeRef> + '_ {
        self.outgoing
            .get(node.0)
            .into_iter()
            .flatten()
            .filter_map(|&e| self.edge(e))
    }

    /// Live incoming edges of `node`.
    pub fn incoming(&self, node: NodeId) -> impl Iterator<Item = EdgeRef> + '_ {
        self.incoming
            .get(node.0)
            .into_iter()
            .flatten()
            .filter_map(|&e| self.edge(e))
    }

    /// Live edges incident to `node`, in either direction. Useful when the mapping
    /// network is treated as undirected (Section 3.2 of the paper).
    pub fn incident(&self, node: NodeId) -> impl Iterator<Item = EdgeRef> + '_ {
        self.outgoing(node).chain(self.incoming(node))
    }

    /// Out-degree of `node` counting live edges only.
    pub fn out_degree(&self, node: NodeId) -> usize {
        self.outgoing(node).count()
    }

    /// In-degree of `node` counting live edges only.
    pub fn in_degree(&self, node: NodeId) -> usize {
        self.incoming(node).count()
    }

    /// Total degree (in + out) of `node`.
    pub fn degree(&self, node: NodeId) -> usize {
        self.out_degree(node) + self.in_degree(node)
    }

    /// Successor nodes reachable over one live outgoing edge (deduplicated).
    pub fn successors(&self, node: NodeId) -> Vec<NodeId> {
        let mut out: Vec<NodeId> = self.outgoing(node).map(|e| e.target).collect();
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Predecessor nodes over live incoming edges (deduplicated).
    pub fn predecessors(&self, node: NodeId) -> Vec<NodeId> {
        let mut out: Vec<NodeId> = self.incoming(node).map(|e| e.source).collect();
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Undirected neighbours: nodes connected to `node` by a live edge in either
    /// direction (deduplicated, excludes `node` itself unless there is a self-loop).
    pub fn neighbors_undirected(&self, node: NodeId) -> Vec<NodeId> {
        let mut out: Vec<NodeId> = self
            .outgoing(node)
            .map(|e| e.target)
            .chain(self.incoming(node).map(|e| e.source))
            .collect();
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Returns any live edge from `source` to `target`, if one exists.
    pub fn find_edge(&self, source: NodeId, target: NodeId) -> Option<EdgeId> {
        self.outgoing(source)
            .find(|e| e.target == target)
            .map(|e| e.id)
    }

    /// Returns all live edges from `source` to `target` (parallel mappings).
    pub fn find_edges(&self, source: NodeId, target: NodeId) -> Vec<EdgeId> {
        self.outgoing(source)
            .filter(|e| e.target == target)
            .map(|e| e.id)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> (DiGraph, Vec<NodeId>) {
        // 0 -> 1 -> 3, 0 -> 2 -> 3
        let mut g = DiGraph::with_nodes(4);
        let n: Vec<NodeId> = g.nodes().collect();
        g.add_edge(n[0], n[1]);
        g.add_edge(n[1], n[3]);
        g.add_edge(n[0], n[2]);
        g.add_edge(n[2], n[3]);
        (g, n)
    }

    #[test]
    fn add_nodes_and_edges() {
        let (g, n) = diamond();
        assert_eq!(g.node_count(), 4);
        assert_eq!(g.edge_count(), 4);
        assert_eq!(g.out_degree(n[0]), 2);
        assert_eq!(g.in_degree(n[3]), 2);
        assert_eq!(g.degree(n[1]), 2);
    }

    #[test]
    fn edge_lookup_returns_endpoints() {
        let mut g = DiGraph::with_nodes(2);
        let e = g.add_edge(NodeId(0), NodeId(1));
        let r = g.edge(e).expect("edge must exist");
        assert_eq!(r.source, NodeId(0));
        assert_eq!(r.target, NodeId(1));
    }

    #[test]
    fn removal_is_tombstoned() {
        let (mut g, n) = diamond();
        let e = g.find_edge(n[0], n[1]).unwrap();
        g.remove_edge(e);
        assert_eq!(g.edge_count(), 3);
        assert!(g.edge(e).is_none());
        assert!(g.find_edge(n[0], n[1]).is_none());
        // Double removal is a no-op.
        g.remove_edge(e);
        assert_eq!(g.edge_count(), 3);
    }

    #[test]
    fn parallel_edges_are_allowed() {
        let mut g = DiGraph::with_nodes(2);
        let a = g.add_edge(NodeId(0), NodeId(1));
        let b = g.add_edge(NodeId(0), NodeId(1));
        assert_ne!(a, b);
        assert_eq!(g.find_edges(NodeId(0), NodeId(1)).len(), 2);
    }

    #[test]
    fn successors_and_predecessors_deduplicate() {
        let mut g = DiGraph::with_nodes(3);
        g.add_edge(NodeId(0), NodeId(1));
        g.add_edge(NodeId(0), NodeId(1));
        g.add_edge(NodeId(0), NodeId(2));
        assert_eq!(g.successors(NodeId(0)), vec![NodeId(1), NodeId(2)]);
        assert_eq!(g.predecessors(NodeId(1)), vec![NodeId(0)]);
    }

    #[test]
    fn undirected_neighbours_merge_both_directions() {
        let mut g = DiGraph::with_nodes(3);
        g.add_edge(NodeId(0), NodeId(1));
        g.add_edge(NodeId(2), NodeId(0));
        assert_eq!(
            g.neighbors_undirected(NodeId(0)),
            vec![NodeId(1), NodeId(2)]
        );
    }

    #[test]
    #[should_panic(expected = "unknown source node")]
    fn adding_edge_with_unknown_node_panics() {
        let mut g = DiGraph::with_nodes(1);
        g.add_edge(NodeId(5), NodeId(0));
    }

    #[test]
    fn incident_covers_in_and_out_edges() {
        let (g, n) = diamond();
        assert_eq!(g.incident(n[1]).count(), 2);
        assert_eq!(g.incident(n[0]).count(), 2);
        assert_eq!(g.incident(n[3]).count(), 2);
    }
}

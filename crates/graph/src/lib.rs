//! Graph substrate for Peer Data Management Systems.
//!
//! A PDMS is, structurally, a graph: peers are nodes and pairwise schema mappings are
//! (directed or undirected) edges. The probabilistic message-passing technique of
//! Cudré-Mauroux et al. (ICDE 2006) consumes two structural features of that graph:
//!
//! * **mapping cycles** — simple cycles `p0 → p1 → … → p0`, whose transitive closure of
//!   mapping operations yields feedback on the constituent mappings, and
//! * **parallel paths** (directed case) — pairs of edge-disjoint directed paths sharing
//!   the same source and destination peer.
//!
//! This crate provides the graph data structures, bounded enumeration of both features
//! (serial, or parallel under a work-stealing schedule that splits hub origins into
//! stealable first-hop subtasks — see [`parallelism`]), TTL-bounded flooding used by
//! probe messages, topology metrics (clustering coefficient, degree distribution) and
//! the random generators used by the evaluation (rings, Erdős–Rényi, Barabási–Albert
//! scale-free — optionally with super-linear preferential attachment for extra-skewed
//! hub-heavy networks — and clustered small-world graphs).
//!
//! The crate is deliberately free of any PDMS-specific notion: nodes and edges carry
//! opaque indices so the same structures back the mapping network, the factor graph
//! layout, and the simulator topology.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adjacency;
pub mod components;
pub mod cycles;
pub mod generators;
pub mod loops;
pub mod metrics;
pub mod parallelism;
pub mod paths;
pub mod traversal;

pub use adjacency::{DiGraph, EdgeId, EdgeRef, NodeId};
pub use components::{
    condensation_edges, strongly_connected_components, Condensation, IncrementalComponents,
    MergeOutcome, SplitOutcome,
};
pub use cycles::{
    cycle_subtask_costs, cycles_through_edge, enumerate_cycles, enumerate_cycles_parallel,
    enumerate_cycles_scheduled, enumerate_undirected_cycles, enumerate_undirected_cycles_parallel,
    enumerate_undirected_cycles_scheduled, Cycle, CycleKind,
};
pub use generators::{GeneratorConfig, TopologyKind};
pub use loops::{
    degree_stats, distance_stats, hop_distances, loop_census, DegreeStats, DistanceStats,
    LoopCensus,
};
pub use metrics::{clustering_coefficient, degree_distribution, GraphMetrics};
pub use parallelism::{
    effective_batch_size, effective_parallelism, effective_shard_parallelism, effective_splice,
    run_stealing, StealConfig, SubtaskCost, BATCH_SIZE_ENV, DEFAULT_HEAVY_ORIGIN_THRESHOLD,
    DEFAULT_STEAL_GRANULARITY, HEAVY_ORIGIN_THRESHOLD_ENV, PARALLELISM_ENV, SHARD_PARALLELISM_ENV,
    SPLICE_ENV, STEAL_GRANULARITY_ENV,
};
pub use paths::{
    enumerate_parallel_paths, enumerate_parallel_paths_parallel,
    enumerate_parallel_paths_scheduled, parallel_path_subtask_costs, parallel_paths_through_edge,
    ParallelPaths,
};
pub use traversal::{bfs_order, connected_components, flood, FloodRecord};

//! Loop census, degree statistics, and distance metrics of mapping networks.
//!
//! Section 3.2.1 of the paper argues that semantic overlay networks are highly
//! clustered and scale-free, and (citing Bianconi & Marsili) that the number of loops
//! of a given size grows rapidly with the size considered, while Section 5.1.2 argues
//! that only short loops (5–10 mappings) carry useful evidence. The statistics in this
//! module quantify both claims on concrete topologies: how many cycles of each length a
//! network contains, how its degrees are distributed, and how far apart peers are.

use crate::adjacency::{DiGraph, NodeId};
use crate::cycles::{enumerate_cycles, enumerate_undirected_cycles};
use std::collections::VecDeque;

/// Histogram of cycle counts by cycle length.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LoopCensus {
    /// `counts[l]` is the number of simple cycles of length `l` (index 0 and 1 unused
    /// for directed graphs; length-2 cycles are a pair of opposite mappings).
    pub counts: Vec<usize>,
}

impl LoopCensus {
    /// Number of cycles of a given length.
    pub fn of_length(&self, len: usize) -> usize {
        self.counts.get(len).copied().unwrap_or(0)
    }

    /// Total number of cycles counted.
    pub fn total(&self) -> usize {
        self.counts.iter().sum()
    }

    /// Length of the shortest cycle found (the girth restricted to the census bound),
    /// or `None` when the graph is acyclic within the bound.
    pub fn girth(&self) -> Option<usize> {
        self.counts.iter().position(|&c| c > 0)
    }

    /// Ratio `counts[l+1] / counts[l]` for the largest `l` where both are non-zero: a
    /// rough measure of how fast the loop count grows with loop size (the scale-free
    /// claim of Section 3.2.1 predicts values well above 1 for dense networks).
    pub fn growth_ratio(&self) -> Option<f64> {
        let mut best = None;
        for l in 0..self.counts.len().saturating_sub(1) {
            if self.counts[l] > 0 && self.counts[l + 1] > 0 {
                best = Some(self.counts[l + 1] as f64 / self.counts[l] as f64);
            }
        }
        best
    }
}

/// Counts simple cycles of every length up to `max_len`.
///
/// `directed` selects directed cycles (mapping cycles in a directed PDMS) or undirected
/// cycles (Section 3.2's undirected reading).
pub fn loop_census(graph: &DiGraph, max_len: usize, directed: bool) -> LoopCensus {
    let cycles = if directed {
        enumerate_cycles(graph, max_len)
    } else {
        enumerate_undirected_cycles(graph, max_len)
    };
    let mut counts = vec![0usize; max_len + 1];
    for cycle in cycles {
        let len = cycle.len();
        if len <= max_len {
            counts[len] += 1;
        }
    }
    LoopCensus { counts }
}

/// Degree statistics of a graph (total degree, i.e. in + out).
#[derive(Debug, Clone, PartialEq)]
pub struct DegreeStats {
    /// `histogram[d]` is the number of nodes of total degree `d`.
    pub histogram: Vec<usize>,
    /// Mean total degree.
    pub mean: f64,
    /// Maximum total degree.
    pub max: usize,
    /// Fraction of nodes whose degree is at least twice the mean ("hubs", the signature
    /// of scale-free topologies).
    pub hub_fraction: f64,
}

/// Computes the degree histogram and summary statistics.
pub fn degree_stats(graph: &DiGraph) -> DegreeStats {
    let n = graph.node_count();
    if n == 0 {
        return DegreeStats {
            histogram: Vec::new(),
            mean: 0.0,
            max: 0,
            hub_fraction: 0.0,
        };
    }
    let degrees: Vec<usize> = graph.nodes().map(|v| graph.degree(v)).collect();
    let max = degrees.iter().copied().max().unwrap_or(0);
    let mut histogram = vec![0usize; max + 1];
    for &d in &degrees {
        histogram[d] += 1;
    }
    let mean = degrees.iter().sum::<usize>() as f64 / n as f64;
    let hubs = degrees
        .iter()
        .filter(|&&d| (d as f64) >= 2.0 * mean && d > 0)
        .count();
    DegreeStats {
        histogram,
        mean,
        max,
        hub_fraction: hubs as f64 / n as f64,
    }
}

/// Shortest-path distances (in hops) from `origin` to every node, following edges in
/// their direction when `directed` is true and in both directions otherwise.
/// Unreachable nodes get `None`.
pub fn hop_distances(graph: &DiGraph, origin: NodeId, directed: bool) -> Vec<Option<usize>> {
    let n = graph.node_count();
    let mut dist = vec![None; n];
    if origin.0 >= n {
        return dist;
    }
    dist[origin.0] = Some(0);
    let mut queue = VecDeque::new();
    queue.push_back(origin);
    while let Some(v) = queue.pop_front() {
        let d = dist[v.0].expect("queued nodes have a distance");
        let next: Vec<NodeId> = if directed {
            graph.successors(v)
        } else {
            graph.neighbors_undirected(v)
        };
        for w in next {
            if dist[w.0].is_none() {
                dist[w.0] = Some(d + 1);
                queue.push_back(w);
            }
        }
    }
    dist
}

/// Distance summary of a graph: diameter and mean shortest-path length over the
/// reachable pairs (ignoring unreachable pairs and self-distances).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DistanceStats {
    /// Longest shortest path over reachable ordered pairs.
    pub diameter: usize,
    /// Mean shortest-path length over reachable ordered pairs.
    pub mean_path_length: f64,
    /// Number of ordered pairs `(u, v)`, `u ≠ v`, with a path from `u` to `v`.
    pub reachable_pairs: usize,
}

/// Computes [`DistanceStats`] by running a BFS from every node. `O(n·(n+m))` — intended
/// for the evaluation-sized topologies, not for web-scale graphs.
pub fn distance_stats(graph: &DiGraph, directed: bool) -> DistanceStats {
    let mut diameter = 0usize;
    let mut total = 0usize;
    let mut pairs = 0usize;
    for origin in graph.nodes() {
        for (i, d) in hop_distances(graph, origin, directed)
            .into_iter()
            .enumerate()
        {
            if i == origin.0 {
                continue;
            }
            if let Some(d) = d {
                diameter = diameter.max(d);
                total += d;
                pairs += 1;
            }
        }
    }
    DistanceStats {
        diameter,
        mean_path_length: if pairs == 0 {
            0.0
        } else {
            total as f64 / pairs as f64
        },
        reachable_pairs: pairs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ring(n: usize) -> DiGraph {
        let mut g = DiGraph::with_nodes(n);
        for i in 0..n {
            g.add_edge(NodeId(i), NodeId((i + 1) % n));
        }
        g
    }

    #[test]
    fn ring_census_finds_exactly_one_cycle() {
        let census = loop_census(&ring(6), 8, true);
        assert_eq!(census.total(), 1);
        assert_eq!(census.of_length(6), 1);
        assert_eq!(census.girth(), Some(6));
        assert!(census.growth_ratio().is_none());
    }

    #[test]
    fn census_respects_the_length_bound() {
        let census = loop_census(&ring(6), 5, true);
        assert_eq!(census.total(), 0);
        assert_eq!(census.girth(), None);
    }

    #[test]
    fn complete_directed_triangle_set_has_growing_loop_counts() {
        // Complete directed graph on 4 nodes: many 2-cycles, 3-cycles and 4-cycles.
        let mut g = DiGraph::with_nodes(4);
        for a in 0..4 {
            for b in 0..4 {
                if a != b {
                    g.add_edge(NodeId(a), NodeId(b));
                }
            }
        }
        let census = loop_census(&g, 4, true);
        assert_eq!(census.of_length(2), 6);
        assert_eq!(census.of_length(3), 8);
        assert_eq!(census.of_length(4), 6);
        assert_eq!(census.girth(), Some(2));
        assert!(census.growth_ratio().is_some());
    }

    #[test]
    fn degree_stats_on_a_star() {
        // Star: node 0 points to 1..=4.
        let mut g = DiGraph::with_nodes(5);
        for i in 1..5 {
            g.add_edge(NodeId(0), NodeId(i));
        }
        let stats = degree_stats(&g);
        assert_eq!(stats.max, 4);
        assert!((stats.mean - 8.0 / 5.0).abs() < 1e-12);
        assert_eq!(stats.histogram[1], 4);
        assert_eq!(stats.histogram[4], 1);
        // Only the hub has degree ≥ 2 × mean.
        assert!((stats.hub_fraction - 0.2).abs() < 1e-12);
    }

    #[test]
    fn degree_stats_on_empty_graph() {
        let stats = degree_stats(&DiGraph::new());
        assert_eq!(stats.max, 0);
        assert_eq!(stats.mean, 0.0);
        assert!(stats.histogram.is_empty());
    }

    #[test]
    fn hop_distances_follow_direction() {
        let mut g = DiGraph::with_nodes(3);
        g.add_edge(NodeId(0), NodeId(1));
        g.add_edge(NodeId(1), NodeId(2));
        let directed = hop_distances(&g, NodeId(2), true);
        assert_eq!(directed, vec![None, None, Some(0)]);
        let undirected = hop_distances(&g, NodeId(2), false);
        assert_eq!(undirected, vec![Some(2), Some(1), Some(0)]);
    }

    #[test]
    fn distance_stats_on_a_directed_ring() {
        let stats = distance_stats(&ring(4), true);
        assert_eq!(stats.diameter, 3);
        assert_eq!(stats.reachable_pairs, 12);
        // Distances from any node: 1, 2, 3 → mean 2.
        assert!((stats.mean_path_length - 2.0).abs() < 1e-12);
    }

    #[test]
    fn distance_stats_ignore_unreachable_pairs() {
        let mut g = DiGraph::with_nodes(3);
        g.add_edge(NodeId(0), NodeId(1));
        let stats = distance_stats(&g, true);
        assert_eq!(stats.reachable_pairs, 1);
        assert_eq!(stats.diameter, 1);
    }
}

//! Worker-count resolution and the work-stealing scheduler behind the parallel
//! enumerators.
//!
//! Evidence enumeration (cycles, parallel paths) is embarrassingly parallel *per
//! origin* — but origins are wildly unequal in realistic PDMS topologies. Scale-free
//! mapping networks (the kind Section 3.2.1 of the paper observes in practice)
//! concentrate most of the DFS work on a handful of hub peers, so a static
//! per-origin partition leaves one worker grinding through the hub while the rest
//! sit idle: the per-worker *tail* dominates wall-clock time.
//!
//! This module therefore provides two things:
//!
//! 1. **Worker-count resolution** ([`effective_parallelism`]): one place where the
//!    `0 = auto` / `PDMS_PARALLELISM` / explicit-count semantics live, so every
//!    layer — the enumerators, the analysis configuration in `pdms-core`, the engine
//!    builder — agrees.
//! 2. **A work-stealing scheduler** ([`run_stealing`]): enumeration work is cut into
//!    *subtasks* (a whole light origin, or one first-hop slice of a heavy origin —
//!    see [`StealConfig`]), all subtasks are pushed through one shared injector, and
//!    idle workers steal the next subtask the moment they finish their current one.
//!    No worker can be left holding a hub origin while others idle, because the hub
//!    was split before scheduling started.
//!
//! Scheduling never changes results: subtasks are indexed, results are reassembled
//! in deterministic origin-then-subtask order, and the enumerators apply the exact
//! deduplication the serial pass applies — so evidence ids are bit-identical at
//! every worker count, steal granularity, and heavy-origin threshold. The proptest
//! suite in `tests/properties.rs` and the unit tests of [`crate::cycles`] /
//! [`crate::paths`] assert this.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::{Duration, Instant};

/// Environment variable overriding the "auto" worker count.
pub const PARALLELISM_ENV: &str = "PDMS_PARALLELISM";

/// Environment variable overriding the "auto" steal granularity
/// ([`StealConfig::steal_granularity`]).
pub const STEAL_GRANULARITY_ENV: &str = "PDMS_STEAL_GRANULARITY";

/// Environment variable overriding the "auto" heavy-origin threshold
/// ([`StealConfig::heavy_origin_threshold`]).
pub const HEAVY_ORIGIN_THRESHOLD_ENV: &str = "PDMS_HEAVY_ORIGIN_THRESHOLD";

/// Environment variable overriding the "auto" worker count for dispatching
/// component shards (`pdms_core`'s sharded sessions) — distinct from
/// [`PARALLELISM_ENV`], which fans out *within* one enumeration.
pub const SHARD_PARALLELISM_ENV: &str = "PDMS_SHARD_PARALLELISM";

/// Environment variable overriding the "auto" ingestion batch size of
/// `pdms_core`'s sharded sessions (`0` / unset = process each submitted event
/// slice as one batch).
pub const BATCH_SIZE_ENV: &str = "PDMS_BATCH_SIZE";

/// Environment variable toggling the warm shard-splice path of `pdms_core`'s
/// sharded sessions: set to `0`, `false`, `off` or `no` to force cold shard
/// rebuilds on component merges and splits (the pre-splice fallback). Results
/// are identical either way — the knob exists so both paths stay exercised and
/// comparable.
pub const SPLICE_ENV: &str = "PDMS_SPLICE";

/// Resolves the shard-splice knob: an explicit setting wins, else
/// [`SPLICE_ENV`] (`0` / `false` / `off` / `no` disable), else enabled.
pub fn effective_splice(requested: Option<bool>) -> bool {
    if let Some(explicit) = requested {
        return explicit;
    }
    match std::env::var(SPLICE_ENV) {
        Ok(value) => !matches!(
            value.trim().to_ascii_lowercase().as_str(),
            "0" | "false" | "off" | "no"
        ),
        Err(_) => true,
    }
}

/// Resolves the shard-dispatch parallelism knob (`0` = auto) to a concrete worker
/// count (>= 1): an explicit request wins, else [`SHARD_PARALLELISM_ENV`], else
/// [`std::thread::available_parallelism`]. Scheduling only — shard dispatch order
/// never affects results.
pub fn effective_shard_parallelism(requested: usize) -> usize {
    resolve_workers(requested, SHARD_PARALLELISM_ENV)
}

/// Resolves the ingestion batch-size knob (`0` = auto): an explicit request wins,
/// else [`BATCH_SIZE_ENV`], else `0` (meaning "one batch per submitted slice").
pub fn effective_batch_size(requested: usize) -> usize {
    if requested >= 1 {
        return requested;
    }
    env_positive(BATCH_SIZE_ENV).unwrap_or(0)
}

/// Default heavy-origin threshold when neither the configuration nor the
/// environment pins one: origins with at least this many first-hop edges are split.
pub const DEFAULT_HEAVY_ORIGIN_THRESHOLD: usize = 4;

/// Default steal granularity when neither the configuration nor the environment
/// pins one: each stolen subtask of a heavy origin covers this many first-hop edges.
pub const DEFAULT_STEAL_GRANULARITY: usize = 1;

/// Resolves a parallelism knob (`0` = auto) to a concrete worker count (>= 1).
///
/// * `requested >= 1`: exactly that many workers (`1` = fully serial, no threads
///   spawned — the mode CI pins with `PDMS_PARALLELISM=1`);
/// * `requested == 0` ("auto"): the `PDMS_PARALLELISM` environment variable if set
///   to a positive integer, otherwise [`std::thread::available_parallelism`].
pub fn effective_parallelism(requested: usize) -> usize {
    resolve_workers(requested, PARALLELISM_ENV)
}

/// The shared `0 = auto` worker-count resolution: explicit request, else the
/// given environment variable, else [`std::thread::available_parallelism`].
fn resolve_workers(requested: usize, env: &str) -> usize {
    if requested >= 1 {
        return requested;
    }
    if let Some(n) = env_positive(env) {
        return n;
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Reads a positive integer from the environment, if present and parsable.
fn env_positive(name: &str) -> Option<usize> {
    let value = std::env::var(name).ok()?;
    match value.trim().parse::<usize>() {
        Ok(n) if n >= 1 => Some(n),
        _ => None,
    }
}

/// How enumeration work is cut into stealable subtasks.
///
/// Both knobs follow the same `0 = auto` convention as the parallelism knob: `0`
/// consults the corresponding `PDMS_*` environment variable and falls back to the
/// built-in default. The knobs only affect *scheduling*, never results — the merge
/// is performed in deterministic origin-then-subtask order at every setting.
///
/// ```
/// use pdms_graph::StealConfig;
///
/// // The defaults resolve to usable positive values.
/// let (threshold, granularity) = StealConfig::default().resolved();
/// assert!(threshold >= 1 && granularity >= 1);
///
/// // Explicit settings win over environment and defaults.
/// let pinned = StealConfig { heavy_origin_threshold: 8, steal_granularity: 2 };
/// assert_eq!(pinned.resolved(), (8, 2));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StealConfig {
    /// First-hop degree at which an origin counts as *heavy* and is split into
    /// per-first-hop subtasks instead of being scheduled whole. `0` = auto
    /// (`PDMS_HEAVY_ORIGIN_THRESHOLD`, else [`DEFAULT_HEAVY_ORIGIN_THRESHOLD`]).
    pub heavy_origin_threshold: usize,
    /// Number of first-hop edges each stolen subtask of a heavy origin covers.
    /// Smaller values flatten the tail harder at the cost of more scheduling
    /// overhead. `0` = auto (`PDMS_STEAL_GRANULARITY`, else
    /// [`DEFAULT_STEAL_GRANULARITY`]).
    pub steal_granularity: usize,
}

impl StealConfig {
    /// Resolves both knobs to concrete positive values
    /// (`(heavy_origin_threshold, steal_granularity)`).
    pub fn resolved(&self) -> (usize, usize) {
        let threshold = if self.heavy_origin_threshold >= 1 {
            self.heavy_origin_threshold
        } else {
            env_positive(HEAVY_ORIGIN_THRESHOLD_ENV).unwrap_or(DEFAULT_HEAVY_ORIGIN_THRESHOLD)
        };
        let granularity = if self.steal_granularity >= 1 {
            self.steal_granularity
        } else {
            env_positive(STEAL_GRANULARITY_ENV).unwrap_or(DEFAULT_STEAL_GRANULARITY)
        };
        (threshold, granularity)
    }

    /// A copy of this configuration with both knobs pinned to their resolved
    /// values. Task-list builders call this once per enumeration so the `0 = auto`
    /// environment lookups do not repeat per origin.
    pub fn pinned(&self) -> StealConfig {
        let (heavy_origin_threshold, steal_granularity) = self.resolved();
        StealConfig {
            heavy_origin_threshold,
            steal_granularity,
        }
    }

    /// Splits `hop_count` first-hop edges of one origin into subtask ranges.
    ///
    /// Light origins (fewer than the heavy threshold, or a single worker) stay one
    /// subtask; heavy origins are cut into `steal_granularity`-sized slices. An
    /// origin with no first hops still yields one (empty) subtask so every origin
    /// has a deterministic slot in the merge order.
    pub fn subtask_ranges(&self, hop_count: usize, workers: usize) -> Vec<std::ops::Range<usize>> {
        let (threshold, granularity) = self.resolved();
        if workers <= 1 || hop_count < threshold {
            let whole: std::ops::Range<usize> = 0..hop_count;
            return vec![whole];
        }
        let mut ranges = Vec::with_capacity(hop_count.div_ceil(granularity));
        let mut start = 0;
        while start < hop_count {
            let end = (start + granularity).min(hop_count);
            ranges.push(start..end);
            start = end;
        }
        ranges
    }
}

/// Runs `task_count` independent subtasks across `workers` threads through a shared
/// injector, returning the results in task order.
///
/// The injector is a single atomic cursor over the task indices: a worker "steals"
/// the next unclaimed index the moment it finishes its current subtask, so load
/// balances dynamically no matter how skewed the per-task costs are. With
/// `workers <= 1` (or fewer than two tasks) everything runs inline on the calling
/// thread — no threads are spawned, matching the serial enumeration exactly.
///
/// The output is indexed by task, not by worker, so the caller's merge order — and
/// therefore every downstream evidence id — is independent of which worker ran
/// what:
///
/// ```
/// use pdms_graph::parallelism::run_stealing;
///
/// let squares = run_stealing(4, 10, |i| i * i);
/// assert_eq!(squares, vec![0, 1, 4, 9, 16, 25, 36, 49, 64, 81]);
/// // Same result serially: scheduling never changes contents or order.
/// assert_eq!(run_stealing(1, 10, |i| i * i), squares);
/// ```
pub fn run_stealing<T, F>(workers: usize, task_count: usize, run: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    if workers <= 1 || task_count <= 1 {
        return (0..task_count).map(run).collect();
    }
    let run = &run;
    let injector = AtomicUsize::new(0);
    let injector = &injector;
    let workers = workers.min(task_count);
    let mut slots: Vec<Option<T>> = std::iter::repeat_with(|| None).take(task_count).collect();
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(move || {
                    let mut out = Vec::new();
                    loop {
                        let task = injector.fetch_add(1, Ordering::Relaxed);
                        if task >= task_count {
                            break;
                        }
                        out.push((task, run(task)));
                    }
                    out
                })
            })
            .collect();
        for handle in handles {
            for (task, result) in handle.join().expect("work-stealing worker panicked") {
                slots[task] = Some(result);
            }
        }
    });
    slots
        .into_iter()
        .map(|slot| slot.expect("every task index was claimed exactly once"))
        .collect()
}

/// The measured cost of one enumeration subtask, as reported by the costed
/// enumerators ([`crate::cycles::cycle_subtask_costs`],
/// [`crate::paths::parallel_path_subtask_costs`]).
///
/// Costs are measured serially (one subtask at a time on the calling thread), so
/// they are clean per-subtask CPU costs a scheduling model can replay — the
/// tail-latency bench uses them to compare the static per-origin split against the
/// work-stealing schedule without needing a multi-core host.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SubtaskCost {
    /// Origin (cycle start / path source) node index the subtask belongs to.
    pub origin: usize,
    /// Subtask index within the origin (first-hop slice, or a pairing stage).
    pub subtask: usize,
    /// Measured serial execution time.
    pub cost: Duration,
}

/// Times one closure, returning its result and wall-clock duration.
pub(crate) fn timed<T>(f: impl FnOnce() -> T) -> (T, Duration) {
    let start = Instant::now();
    let result = f();
    (result, start.elapsed())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn explicit_request_wins() {
        assert_eq!(effective_parallelism(1), 1);
        assert_eq!(effective_parallelism(7), 7);
    }

    #[test]
    fn auto_is_at_least_one() {
        // Whatever the environment says, auto resolves to a usable worker count.
        assert!(effective_parallelism(0) >= 1);
    }

    #[test]
    fn steal_config_resolves_to_positive_values() {
        let (threshold, granularity) = StealConfig::default().resolved();
        assert!(threshold >= 1);
        assert!(granularity >= 1);
        let pinned = StealConfig {
            heavy_origin_threshold: 9,
            steal_granularity: 3,
        };
        assert_eq!(pinned.resolved(), (9, 3));
    }

    #[test]
    fn light_origins_are_one_subtask() {
        let config = StealConfig {
            heavy_origin_threshold: 5,
            steal_granularity: 1,
        };
        assert_eq!(config.subtask_ranges(3, 8), vec![0..3]);
        // A single worker never splits, whatever the degree.
        assert_eq!(config.subtask_ranges(100, 1), vec![0..100]);
        // Zero first hops still occupy one (empty) slot in the merge order.
        assert_eq!(config.subtask_ranges(0, 8), vec![0..0]);
    }

    #[test]
    fn heavy_origins_split_into_granularity_sized_slices() {
        let config = StealConfig {
            heavy_origin_threshold: 4,
            steal_granularity: 2,
        };
        assert_eq!(config.subtask_ranges(5, 4), vec![0..2, 2..4, 4..5]);
        let fine = StealConfig {
            heavy_origin_threshold: 4,
            steal_granularity: 1,
        };
        assert_eq!(fine.subtask_ranges(4, 2), vec![0..1, 1..2, 2..3, 3..4]);
    }

    #[test]
    fn run_stealing_preserves_task_order() {
        for workers in [1, 2, 3, 8] {
            let out = run_stealing(workers, 37, |i| i * 2);
            assert_eq!(
                out,
                (0..37).map(|i| i * 2).collect::<Vec<_>>(),
                "{workers} workers"
            );
        }
    }

    #[test]
    fn run_stealing_handles_empty_and_single_task_lists() {
        assert_eq!(run_stealing(4, 0, |i| i), Vec::<usize>::new());
        assert_eq!(run_stealing(4, 1, |i| i + 10), vec![10]);
    }

    #[test]
    fn run_stealing_with_skewed_costs_still_matches() {
        // One "hub" task dwarfs the rest; contents and order must be unaffected.
        let expensive = |i: usize| {
            let rounds = if i == 0 { 2000 } else { 10 };
            (0..rounds).fold(i as u64, |acc, x| acc.wrapping_mul(31).wrapping_add(x))
        };
        let serial: Vec<u64> = (0..16).map(expensive).collect();
        assert_eq!(run_stealing(4, 16, expensive), serial);
    }
}

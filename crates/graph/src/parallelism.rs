//! Worker-count resolution for the parallel enumerators.
//!
//! Evidence enumeration (cycles, parallel paths) fans out across origin nodes with
//! `std::thread::scope` workers. How many workers to use is resolved in one place so
//! every layer — [`crate::enumerate_cycles_parallel`], the analysis configuration in
//! `pdms-core`, the engine builder — agrees on the semantics:
//!
//! * `requested >= 1`: exactly that many workers (`1` = fully serial, no threads
//!   spawned — the mode CI pins with `PDMS_PARALLELISM=1`);
//! * `requested == 0` ("auto"): the `PDMS_PARALLELISM` environment variable if set
//!   to a positive integer, otherwise [`std::thread::available_parallelism`].
//!
//! Parallelism never changes results: workers enumerate disjoint origin sets and the
//! merge is performed in deterministic origin order, so evidence ids are identical
//! at every worker count.

/// Environment variable overriding the "auto" worker count.
pub const PARALLELISM_ENV: &str = "PDMS_PARALLELISM";

/// Resolves a parallelism knob (`0` = auto) to a concrete worker count (>= 1).
pub fn effective_parallelism(requested: usize) -> usize {
    if requested >= 1 {
        return requested;
    }
    if let Ok(value) = std::env::var(PARALLELISM_ENV) {
        if let Ok(n) = value.trim().parse::<usize>() {
            if n >= 1 {
                return n;
            }
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn explicit_request_wins() {
        assert_eq!(effective_parallelism(1), 1);
        assert_eq!(effective_parallelism(7), 7);
    }

    #[test]
    fn auto_is_at_least_one() {
        // Whatever the environment says, auto resolves to a usable worker count.
        assert!(effective_parallelism(0) >= 1);
    }
}

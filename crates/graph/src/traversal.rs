//! Breadth-first traversal, connected components, and TTL-bounded flooding.
//!
//! Flooding mirrors how peers discover cycles in the PDMS: a probe message with a
//! Time-To-Live is sent over every outgoing mapping; each receiving peer decrements the
//! TTL and forwards the probe further, recording the path taken. A probe whose path
//! returns to the originator witnesses a mapping cycle (Section 3.2.1 of the paper).

use crate::adjacency::{DiGraph, EdgeId, NodeId};
use std::collections::VecDeque;

/// One probe propagation record produced by [`flood`]: the node reached and the edge
/// path used to reach it from the origin.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FloodRecord {
    /// Node reached by the probe.
    pub node: NodeId,
    /// Edges traversed from the origin, in order.
    pub path: Vec<EdgeId>,
}

impl FloodRecord {
    /// Number of hops taken by the probe.
    pub fn hops(&self) -> usize {
        self.path.len()
    }
}

/// Breadth-first order of nodes reachable from `start` following edge direction.
pub fn bfs_order(graph: &DiGraph, start: NodeId) -> Vec<NodeId> {
    let mut visited = vec![false; graph.node_count()];
    let mut order = Vec::new();
    let mut queue = VecDeque::new();
    if !graph.contains_node(start) {
        return order;
    }
    visited[start.0] = true;
    queue.push_back(start);
    while let Some(n) = queue.pop_front() {
        order.push(n);
        for succ in graph.successors(n) {
            if !visited[succ.0] {
                visited[succ.0] = true;
                queue.push_back(succ);
            }
        }
    }
    order
}

/// Weakly connected components of the graph (edge direction ignored).
///
/// Returns one vector of node ids per component, each sorted ascending; components are
/// ordered by their smallest node id.
pub fn connected_components(graph: &DiGraph) -> Vec<Vec<NodeId>> {
    let n = graph.node_count();
    let mut component = vec![usize::MAX; n];
    let mut next = 0usize;
    for start in 0..n {
        if component[start] != usize::MAX {
            continue;
        }
        let mut queue = VecDeque::new();
        component[start] = next;
        queue.push_back(NodeId(start));
        while let Some(node) = queue.pop_front() {
            for nb in graph.neighbors_undirected(node) {
                if component[nb.0] == usize::MAX {
                    component[nb.0] = next;
                    queue.push_back(nb);
                }
            }
        }
        next += 1;
    }
    let mut out = vec![Vec::new(); next];
    for (i, &c) in component.iter().enumerate() {
        out[c].push(NodeId(i));
    }
    out
}

/// TTL-bounded flooding of probe messages from `origin`.
///
/// Every simple edge path (no repeated edge, no repeated intermediate node except that
/// the path may close back on the origin) of length `1..=ttl` starting at `origin` is
/// enumerated, following edge direction when `directed` is `true` and both directions
/// otherwise. The records for paths that return to the origin are exactly the mapping
/// cycles through `origin` of length at most `ttl`.
///
/// The number of records is exponential in `ttl` for dense graphs; the paper argues
/// (Section 5.1.2) that small TTLs (5–10) are sufficient in practice because long
/// cycles carry almost no evidence.
pub fn flood(graph: &DiGraph, origin: NodeId, ttl: usize, directed: bool) -> Vec<FloodRecord> {
    let mut records = Vec::new();
    if !graph.contains_node(origin) || ttl == 0 {
        return records;
    }
    let mut path: Vec<EdgeId> = Vec::new();
    let mut on_path = vec![false; graph.node_count()];
    on_path[origin.0] = true;
    flood_rec(
        graph,
        origin,
        origin,
        ttl,
        directed,
        &mut path,
        &mut on_path,
        &mut records,
    );
    records
}

#[allow(clippy::too_many_arguments)]
fn flood_rec(
    graph: &DiGraph,
    origin: NodeId,
    current: NodeId,
    ttl: usize,
    directed: bool,
    path: &mut Vec<EdgeId>,
    on_path: &mut [bool],
    records: &mut Vec<FloodRecord>,
) {
    if ttl == 0 {
        return;
    }
    let hops: Vec<(EdgeId, NodeId)> = if directed {
        graph.outgoing(current).map(|e| (e.id, e.target)).collect()
    } else {
        graph
            .outgoing(current)
            .map(|e| (e.id, e.target))
            .chain(graph.incoming(current).map(|e| (e.id, e.source)))
            .collect()
    };
    for (edge, next) in hops {
        if path.contains(&edge) {
            continue;
        }
        // A probe never revisits an intermediate node, but is allowed to come back to
        // the origin, which is how cycles are witnessed.
        if next != origin && on_path[next.0] {
            continue;
        }
        path.push(edge);
        records.push(FloodRecord {
            node: next,
            path: path.clone(),
        });
        if next != origin {
            on_path[next.0] = true;
            flood_rec(
                graph,
                origin,
                next,
                ttl - 1,
                directed,
                path,
                on_path,
                records,
            );
            on_path[next.0] = false;
        }
        path.pop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ring(n: usize) -> DiGraph {
        let mut g = DiGraph::with_nodes(n);
        for i in 0..n {
            g.add_edge(NodeId(i), NodeId((i + 1) % n));
        }
        g
    }

    #[test]
    fn bfs_visits_all_reachable_nodes_once() {
        let g = ring(5);
        let order = bfs_order(&g, NodeId(0));
        assert_eq!(order.len(), 5);
        let mut sorted = order.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 5);
        assert_eq!(order[0], NodeId(0));
    }

    #[test]
    fn bfs_on_unknown_start_is_empty() {
        let g = ring(3);
        assert!(bfs_order(&g, NodeId(17)).is_empty());
    }

    #[test]
    fn components_split_disconnected_graphs() {
        let mut g = DiGraph::with_nodes(5);
        g.add_edge(NodeId(0), NodeId(1));
        g.add_edge(NodeId(2), NodeId(3));
        let comps = connected_components(&g);
        assert_eq!(comps.len(), 3);
        assert_eq!(comps[0], vec![NodeId(0), NodeId(1)]);
        assert_eq!(comps[1], vec![NodeId(2), NodeId(3)]);
        assert_eq!(comps[2], vec![NodeId(4)]);
    }

    #[test]
    fn components_ignore_direction() {
        let mut g = DiGraph::with_nodes(3);
        g.add_edge(NodeId(1), NodeId(0));
        g.add_edge(NodeId(1), NodeId(2));
        assert_eq!(connected_components(&g).len(), 1);
    }

    #[test]
    fn flood_finds_ring_cycle_exactly_once() {
        let g = ring(4);
        let records = flood(&g, NodeId(0), 4, true);
        let cycles: Vec<&FloodRecord> = records.iter().filter(|r| r.node == NodeId(0)).collect();
        assert_eq!(cycles.len(), 1);
        assert_eq!(cycles[0].hops(), 4);
    }

    #[test]
    fn flood_respects_ttl() {
        let g = ring(6);
        let records = flood(&g, NodeId(0), 3, true);
        assert!(records.iter().all(|r| r.hops() <= 3));
        assert!(records.iter().all(|r| r.node != NodeId(0)));
    }

    #[test]
    fn undirected_flood_traverses_reverse_edges() {
        // 0 -> 1, 2 -> 1: undirected probe from 0 can reach 2.
        let mut g = DiGraph::with_nodes(3);
        g.add_edge(NodeId(0), NodeId(1));
        g.add_edge(NodeId(2), NodeId(1));
        let records = flood(&g, NodeId(0), 3, false);
        assert!(records.iter().any(|r| r.node == NodeId(2)));
        let directed = flood(&g, NodeId(0), 3, true);
        assert!(!directed.iter().any(|r| r.node == NodeId(2)));
    }

    #[test]
    fn flood_zero_ttl_is_empty() {
        let g = ring(3);
        assert!(flood(&g, NodeId(0), 0, true).is_empty());
    }
}

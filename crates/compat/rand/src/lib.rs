//! Offline, dependency-free subset of the `rand` crate API.
//!
//! The build environment has no access to crates.io, so this workspace vendors the
//! small slice of `rand` it actually uses: a seedable deterministic generator
//! ([`rngs::StdRng`]), the [`Rng`] extension methods `gen_bool` / `gen_range` / `gen`,
//! and the [`seq::SliceRandom`] helpers `choose` / `shuffle`. The generator is a
//! [SplitMix64](https://prng.di.unimi.it/splitmix64.c)-seeded xoshiro256++, which has
//! excellent statistical quality for simulation workloads; it does **not** reproduce
//! the bit streams of the upstream `rand` crate, only its API and its determinism
//! guarantee (same seed ⇒ same sequence).

#![forbid(unsafe_code)]

/// Low-level generator interface: a source of uniform 64-bit words.
pub trait RngCore {
    /// Next uniform 64-bit word.
    fn next_u64(&mut self) -> u64;

    /// Next uniform 32-bit word.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Types that can be sampled uniformly from a range by [`Rng::gen_range`].
pub trait SampleUniform: Copy {
    /// Uniform sample from `[low, high)`. `high > low` is the caller's obligation.
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                let span = (high as u128).wrapping_sub(low as u128);
                debug_assert!(span > 0, "gen_range called with an empty range");
                // Multiply-shift bounded sampling; the bias over a u64 word is
                // negligible for simulation purposes (< 2^-64 · span).
                let word = rng.next_u64() as u128;
                low.wrapping_add(((word * span) >> 64) as $t)
            }
        }
    )*};
}

impl_sample_uniform_int!(usize, u64, u32, u16, u8, isize, i64, i32);

impl SampleUniform for f64 {
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        low + unit * (high - low)
    }
}

impl SampleUniform for f32 {
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
        f64::sample_half_open(rng, low as f64, high as f64) as f32
    }
}

/// Ranges accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one uniform sample from the range.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_half_open(rng, self.start, self.end)
    }
}

macro_rules! impl_sample_range_inclusive_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (low, high) = (*self.start(), *self.end());
                debug_assert!(low <= high, "gen_range called with an empty range");
                let span = (high as u128).wrapping_sub(low as u128).wrapping_add(1);
                let word = rng.next_u64() as u128;
                low.wrapping_add(((word * span) >> 64) as $t)
            }
        }
    )*};
}

impl_sample_range_inclusive_int!(usize, u64, u32, u16, u8, isize, i64, i32);

impl SampleRange<f64> for core::ops::RangeInclusive<f64> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        // The closed upper bound is unreachable in practice; treat as half-open.
        f64::sample_half_open(rng, *self.start(), *self.end())
    }
}

/// Values [`Rng::gen`] can produce without further parameters.
pub trait Standard {
    /// Draws one value.
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for bool {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for u64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for usize {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

/// High-level sampling methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Bernoulli draw with success probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool {
        if p >= 1.0 {
            return true;
        }
        if p <= 0.0 {
            return false;
        }
        f64::draw(self) < p
    }

    /// Uniform draw from a range (`low..high` or `low..=high`).
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample(self)
    }

    /// Draws a value of an inferred type (`bool`, `f64`, `u32`, `u64`, `usize`).
    fn gen<T: Standard>(&mut self) -> T {
        T::draw(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Constructing generators from seeds, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;

    /// Builds a generator from OS entropy. The shim has no OS entropy source; it
    /// derives a seed from the current time, which is enough for the non-test uses
    /// (none in this workspace) and keeps the API surface compatible.
    fn from_entropy() -> Self {
        let nanos = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0x9e3779b97f4a7c15);
        Self::seed_from_u64(nanos)
    }
}

/// Named generator types, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic seedable generator (xoshiro256++ under the hood).
    ///
    /// Only the API of `rand::rngs::StdRng` is reproduced, not its exact stream.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: [u64; 4],
    }

    impl StdRng {
        fn splitmix(seed: &mut u64) -> u64 {
            *seed = seed.wrapping_add(0x9e3779b97f4a7c15);
            let mut z = *seed;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut s = seed;
            let state = [
                Self::splitmix(&mut s),
                Self::splitmix(&mut s),
                Self::splitmix(&mut s),
                Self::splitmix(&mut s),
            ];
            Self { state }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // Canonical xoshiro256++ step (Blackman & Vigna).
            let [mut s0, mut s1, mut s2, mut s3] = self.state;
            let result = s0.wrapping_add(s3).rotate_left(23).wrapping_add(s0);
            let t = s1 << 17;
            s2 ^= s0;
            s3 ^= s1;
            s1 ^= s2;
            s0 ^= s3;
            s2 ^= t;
            s3 = s3.rotate_left(45);
            self.state = [s0, s1, s2, s3];
            result
        }
    }
}

/// Slice sampling helpers, mirroring `rand::seq`.
pub mod seq {
    use super::{Rng, RngCore};

    /// Extension methods for slices, mirroring `rand::seq::SliceRandom`.
    pub trait SliceRandom {
        /// Element type of the slice.
        type Item;

        /// Uniformly chosen element, or `None` on an empty slice.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                self.swap(i, rng.gen_range(0..=i));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(
                a.gen_range(0..1_000_000usize),
                b.gen_range(0..1_000_000usize)
            );
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..64)
            .filter(|_| a.gen_bool(0.5) == b.gen_bool(0.5))
            .count();
        assert!(same < 64);
    }

    #[test]
    fn gen_bool_matches_probability_roughly() {
        let mut rng = StdRng::seed_from_u64(7);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2_700..3_300).contains(&hits), "hits {hits}");
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..1_000 {
            let x = rng.gen_range(5..10usize);
            assert!((5..10).contains(&x));
            let y = rng.gen_range(5..=10usize);
            assert!((5..=10).contains(&y));
            let f = rng.gen_range(-1.0..1.0f64);
            assert!((-1.0..1.0).contains(&f));
        }
    }

    #[test]
    fn shuffle_and_choose_work() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert!(v.choose(&mut rng).is_some());
        let empty: [usize; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }
}

//! Offline, dependency-free subset of the `proptest` property-testing API.
//!
//! The build environment has no access to crates.io, so this workspace vendors the
//! slice of proptest its test suites use: the [`Strategy`] trait with `prop_map` /
//! `prop_flat_map`, range and tuple strategies, [`collection::vec`] /
//! [`collection::btree_set`], [`bool::ANY`], simple regex-pattern string strategies,
//! and the [`proptest!`] / [`prop_assert!`] / [`prop_assert_eq!`] / [`prop_assume!`]
//! macros. Cases are generated from a deterministic per-test seed; there is no
//! shrinking — a failing case panics with the ordinary assertion message, which is
//! reproducible because the generator is seeded from the test name.

#![forbid(unsafe_code)]

/// Deterministic generator handed to strategies (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a generator from a seed.
    pub fn seed_from_u64(seed: u64) -> Self {
        Self {
            state: seed ^ 0x9e3779b97f4a7c15,
        }
    }

    /// Derives a deterministic seed from a test name (FNV-1a).
    pub fn seed_for_test(name: &str) -> u64 {
        let mut hash: u64 = 0xcbf29ce484222325;
        for byte in name.bytes() {
            hash ^= byte as u64;
            hash = hash.wrapping_mul(0x100000001b3);
        }
        hash
    }

    /// Next uniform 64-bit word.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    /// Uniform `usize` in `[low, high]` (inclusive).
    pub fn usize_inclusive(&mut self, low: usize, high: usize) -> usize {
        debug_assert!(low <= high);
        let span = (high - low) as u128 + 1;
        low + ((self.next_u64() as u128 * span) >> 64) as usize
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Run configuration, mirroring `proptest::test_runner::Config`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Configuration running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

/// A generator of test values, mirroring `proptest::strategy::Strategy`.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through a function.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Generates a value, then generates from the strategy it selects.
    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }
}

/// Output of [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Output of [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
    type Value = T::Value;

    fn generate(&self, rng: &mut TestRng) -> T::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// A strategy that always yields a clone of one value, mirroring `proptest::strategy::Just`.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                self.start.wrapping_add(((rng.next_u64() as u128 * span) >> 64) as $t)
            }
        }

        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (low, high) = (*self.start(), *self.end());
                assert!(low <= high, "empty range strategy");
                let span = (high as u128).wrapping_sub(low as u128).wrapping_add(1);
                low.wrapping_add(((rng.next_u64() as u128 * span) >> 64) as $t)
            }
        }
    )*};
}

impl_int_range_strategy!(usize, u64, u32, u16, u8, i64, i32);

impl Strategy for core::ops::Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for core::ops::RangeInclusive<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        self.start() + rng.unit_f64() * (self.end() - self.start())
    }
}

/// String strategies from regex-like patterns, supporting the subset used in this
/// workspace: literals, character classes `[a-zA-Z0-9_]`, and the quantifiers `{n}`,
/// `{m,n}`, `?`, `*`, `+` (the unbounded ones capped at 8 repetitions).
impl Strategy for &str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        generate_from_pattern(self, rng)
    }
}

fn generate_from_pattern(pattern: &str, rng: &mut TestRng) -> String {
    let chars: Vec<char> = pattern.chars().collect();
    let mut out = String::new();
    let mut i = 0;
    while i < chars.len() {
        // Parse one atom: a character class or a literal character.
        let alphabet: Vec<char> = match chars[i] {
            '[' => {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == ']')
                    .expect("unclosed character class in pattern")
                    + i;
                let class = &chars[i + 1..close];
                i = close + 1;
                expand_class(class)
            }
            '\\' => {
                i += 1;
                let c = chars.get(i).copied().expect("dangling escape in pattern");
                i += 1;
                vec![c]
            }
            c => {
                i += 1;
                vec![c]
            }
        };
        // Parse an optional quantifier.
        let (min, max) = match chars.get(i) {
            Some('{') => {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == '}')
                    .expect("unclosed quantifier in pattern")
                    + i;
                let body: String = chars[i + 1..close].iter().collect();
                i = close + 1;
                match body.split_once(',') {
                    Some((m, n)) => (
                        m.trim().parse().expect("bad quantifier"),
                        n.trim().parse().expect("bad quantifier"),
                    ),
                    None => {
                        let n: usize = body.trim().parse().expect("bad quantifier");
                        (n, n)
                    }
                }
            }
            Some('?') => {
                i += 1;
                (0, 1)
            }
            Some('*') => {
                i += 1;
                (0, 8)
            }
            Some('+') => {
                i += 1;
                (1, 8)
            }
            _ => (1, 1),
        };
        let count = rng.usize_inclusive(min, max);
        for _ in 0..count {
            out.push(alphabet[rng.usize_inclusive(0, alphabet.len() - 1)]);
        }
    }
    out
}

fn expand_class(class: &[char]) -> Vec<char> {
    let mut out = Vec::new();
    let mut i = 0;
    while i < class.len() {
        if i + 2 < class.len() && class[i + 1] == '-' {
            let (low, high) = (class[i] as u32, class[i + 2] as u32);
            for c in low..=high {
                if let Some(c) = char::from_u32(c) {
                    out.push(c);
                }
            }
            i += 3;
        } else {
            out.push(class[i]);
            i += 1;
        }
    }
    assert!(!out.is_empty(), "empty character class in pattern");
    out
}

macro_rules! impl_tuple_strategy {
    ($(($($name:ident / $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A/0)
    (A/0, B/1)
    (A/0, B/1, C/2)
    (A/0, B/1, C/2, D/3)
    (A/0, B/1, C/2, D/3, E/4)
    (A/0, B/1, C/2, D/3, E/4, F/5)
}

/// Size specifications accepted by the collection strategies.
pub trait SizeBounds {
    /// Inclusive `(min, max)` length.
    fn bounds(&self) -> (usize, usize);
}

impl SizeBounds for usize {
    fn bounds(&self) -> (usize, usize) {
        (*self, *self)
    }
}

impl SizeBounds for core::ops::Range<usize> {
    fn bounds(&self) -> (usize, usize) {
        assert!(self.start < self.end, "empty size range");
        (self.start, self.end - 1)
    }
}

impl SizeBounds for core::ops::RangeInclusive<usize> {
    fn bounds(&self) -> (usize, usize) {
        (*self.start(), *self.end())
    }
}

/// Collection strategies, mirroring `proptest::collection`.
pub mod collection {
    use super::{SizeBounds, Strategy, TestRng};
    use std::collections::BTreeSet;

    /// Strategy for `Vec<T>` with a length drawn from `size`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        min: usize,
        max: usize,
    }

    /// Vector of values from `element` with length in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl SizeBounds) -> VecStrategy<S> {
        let (min, max) = size.bounds();
        VecStrategy { element, min, max }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.usize_inclusive(self.min, self.max);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Strategy for `BTreeSet<T>` with a cardinality drawn from `size`.
    #[derive(Debug, Clone)]
    pub struct BTreeSetStrategy<S> {
        element: S,
        min: usize,
        max: usize,
    }

    /// Set of values from `element` with cardinality in `size` (best effort when the
    /// element domain is smaller than the requested cardinality).
    pub fn btree_set<S: Strategy>(element: S, size: impl SizeBounds) -> BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        let (min, max) = size.bounds();
        BTreeSetStrategy { element, min, max }
    }

    impl<S: Strategy> Strategy for BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
            let target = rng.usize_inclusive(self.min, self.max);
            let mut out = BTreeSet::new();
            let mut attempts = 0;
            while out.len() < target && attempts < 64 * (target + 1) {
                out.insert(self.element.generate(rng));
                attempts += 1;
            }
            out
        }
    }
}

/// Boolean strategies, mirroring `proptest::bool`.
pub mod bool {
    use super::{Strategy, TestRng};

    /// Strategy generating `true` / `false` uniformly.
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    /// The uniform boolean strategy.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;

        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

/// Namespace alias used by `prop::collection::vec` style paths.
pub mod prop {
    pub use crate::bool;
    pub use crate::collection;
}

/// The glob import used by property-test files, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::{
        prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Just,
        ProptestConfig, Strategy,
    };
}

/// Asserts a condition inside a property (no shrinking: plain `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Skips the current case when an assumption does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::core::result::Result::Ok(());
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::core::result::Result::Ok(());
        }
    };
}

/// Declares property tests, mirroring `proptest::proptest!`.
///
/// Each declared function runs `cases` times (from the optional
/// `#![proptest_config(...)]` header) with inputs drawn from the given strategies.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_config ($config) $($rest)*);
    };
    (@with_config ($config:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strategy:expr),* $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            use $crate::Strategy as _;
            let config: $crate::ProptestConfig = $config;
            let seed = $crate::TestRng::seed_for_test(concat!(module_path!(), "::", stringify!($name)));
            for case in 0..config.cases as u64 {
                let mut rng = $crate::TestRng::seed_from_u64(seed ^ (case.wrapping_mul(0x2545f4914f6cdd1d)));
                $(let $arg = ($strategy).generate(&mut rng);)*
                // The body may `return Ok(())` early (as upstream proptest allows), so
                // it runs inside a Result-returning closure with an implicit final Ok.
                #[allow(unused_mut)]
                let mut one_case = move || -> ::core::result::Result<(), ::std::string::String> {
                    $body
                    ::core::result::Result::Ok(())
                };
                if let ::core::result::Result::Err(message) = one_case() {
                    panic!("proptest case failed: {message}");
                }
            }
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(@with_config ($crate::ProptestConfig::default()) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::TestRng;

    #[test]
    fn ranges_generate_in_bounds() {
        let mut rng = TestRng::seed_from_u64(1);
        for _ in 0..100 {
            let x = (3usize..9).generate(&mut rng);
            assert!((3..9).contains(&x));
            let y = (0.25f64..0.75).generate(&mut rng);
            assert!((0.25..0.75).contains(&y));
        }
    }

    #[test]
    fn pattern_strategy_matches_shape() {
        let mut rng = TestRng::seed_from_u64(2);
        for _ in 0..50 {
            let s = "[A-Za-z][A-Za-z0-9_]{0,12}".generate(&mut rng);
            assert!(!s.is_empty() && s.len() <= 13, "{s:?}");
            let first = s.chars().next().unwrap();
            assert!(first.is_ascii_alphabetic(), "{s:?}");
        }
    }

    #[test]
    fn collections_respect_sizes() {
        let mut rng = TestRng::seed_from_u64(3);
        let v = prop::collection::vec(0usize..5, 2..6).generate(&mut rng);
        assert!((2..6).contains(&v.len()));
        let s = prop::collection::btree_set(0usize..100, 3..=3).generate(&mut rng);
        assert_eq!(s.len(), 3);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn macro_generates_and_runs(x in 1usize..10, flag in prop::bool::ANY) {
            prop_assume!(x != 5);
            prop_assert!((1..10).contains(&x));
            prop_assert_eq!(flag as usize, usize::from(flag));
        }
    }
}

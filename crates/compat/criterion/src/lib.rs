//! Offline, dependency-free subset of the `criterion` benchmark API.
//!
//! The build environment has no access to crates.io, so this workspace vendors the
//! slice of criterion its benches use: `Criterion`, `benchmark_group`, `bench_function`,
//! `bench_with_input`, `BenchmarkId`, `black_box`, and the `criterion_group!` /
//! `criterion_main!` macros. Measurement is a simple calibrated loop around
//! `std::time::Instant` — adequate for the relative comparisons the benches make
//! (incremental vs. full recompute, schedule ablations), without criterion's
//! statistical machinery, plotting, or baseline storage.
//!
//! Benches still declare `harness = false` and run with `cargo bench`; each reports
//! `median` and `mean` per iteration on stdout.

#![forbid(unsafe_code)]

use std::fmt;
use std::time::{Duration, Instant};

/// Prevents the optimiser from deleting a computed value.
///
/// Uses the `read_volatile` trick from `core::hint::black_box`'s stable fallback era;
/// on modern rustc `std::hint::black_box` exists, and this simply forwards to it.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Identifier of one benchmark within a group, mirroring `criterion::BenchmarkId`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// A `function_name/parameter` id.
    pub fn new(function_name: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        Self {
            name: format!("{function_name}/{parameter}"),
        }
    }

    /// An id that is just the parameter value.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        Self {
            name: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.name)
    }
}

impl From<&str> for BenchmarkId {
    fn from(value: &str) -> Self {
        Self {
            name: value.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(value: String) -> Self {
        Self { name: value }
    }
}

/// Timing loop handle passed to bench closures, mirroring `criterion::Bencher`.
pub struct Bencher {
    samples: Vec<Duration>,
    iters_per_sample: u64,
    sample_count: usize,
}

impl Bencher {
    fn new(sample_count: usize) -> Self {
        Self {
            samples: Vec::new(),
            iters_per_sample: 1,
            sample_count,
        }
    }

    /// Runs `routine` repeatedly and records per-iteration timings.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Calibrate: aim for samples of at least ~2ms so Instant overhead vanishes.
        let start = Instant::now();
        black_box(routine());
        let once = start.elapsed().max(Duration::from_nanos(1));
        let target = Duration::from_millis(2);
        self.iters_per_sample = (target.as_nanos() / once.as_nanos()).clamp(1, 1_000_000) as u64;

        self.samples.clear();
        for _ in 0..self.sample_count {
            let start = Instant::now();
            for _ in 0..self.iters_per_sample {
                black_box(routine());
            }
            self.samples.push(start.elapsed());
        }
    }

    fn report(&self, name: &str) {
        if self.samples.is_empty() {
            println!("{name:<50} (no samples)");
            return;
        }
        let mut per_iter: Vec<f64> = self
            .samples
            .iter()
            .map(|d| d.as_secs_f64() / self.iters_per_sample as f64)
            .collect();
        per_iter.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        let median = per_iter[per_iter.len() / 2];
        let mean = per_iter.iter().sum::<f64>() / per_iter.len() as f64;
        println!(
            "{name:<50} median {:>12}  mean {:>12}  ({} samples x {} iters)",
            format_duration(median),
            format_duration(mean),
            per_iter.len(),
            self.iters_per_sample,
        );
    }
}

fn format_duration(seconds: f64) -> String {
    if seconds >= 1.0 {
        format!("{seconds:.3} s")
    } else if seconds >= 1e-3 {
        format!("{:.3} ms", seconds * 1e3)
    } else if seconds >= 1e-6 {
        format!("{:.3} µs", seconds * 1e6)
    } else {
        format!("{:.1} ns", seconds * 1e9)
    }
}

/// A named group of related benchmarks, mirroring `criterion::BenchmarkGroup`.
pub struct BenchmarkGroup<'c> {
    name: String,
    sample_count: usize,
    _criterion: &'c mut (),
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_count = n.max(2);
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut bencher = Bencher::new(self.sample_count);
        f(&mut bencher);
        bencher.report(&format!("{}/{}", self.name, id));
        self
    }

    /// Runs one parameterised benchmark in the group.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        let mut bencher = Bencher::new(self.sample_count);
        f(&mut bencher, input);
        bencher.report(&format!("{}/{}", self.name, id));
        self
    }

    /// Ends the group (report flushing is immediate in the shim, so this is a no-op).
    pub fn finish(&mut self) {}
}

/// Benchmark harness entry point, mirroring `criterion::Criterion`.
#[derive(Default)]
pub struct Criterion {
    unit: (),
}

impl Criterion {
    /// Runs one stand-alone benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher::new(10);
        f(&mut bencher);
        bencher.report(name);
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_count: 10,
            _criterion: &mut self.unit,
        }
    }
}

/// Declares a benchmark group function list, mirroring `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench `main`, mirroring `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_reports_samples() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group.sample_size(3);
        let mut ran = 0u64;
        group.bench_function("count", |b| {
            b.iter(|| {
                ran += 1;
                black_box(ran)
            })
        });
        group.finish();
        assert!(ran > 0);
    }

    #[test]
    fn benchmark_ids_format() {
        assert_eq!(BenchmarkId::new("f", 3).to_string(), "f/3");
        assert_eq!(BenchmarkId::from_parameter("x").to_string(), "x");
    }
}

//! Per-peer runtime state and the peer-logic extension point.
//!
//! The simulator is agnostic about what peers *do*: the inference behaviour of the
//! paper (probing, building local factor graphs, answering belief messages) is plugged
//! in by `pdms-core` through the [`PeerLogic`] trait. The [`PeerState`] struct holds
//! the bookkeeping every peer needs regardless of logic: its identifier, the messages
//! delivered this round, and an outbox of messages to send.

use crate::message::{Envelope, Payload};
use pdms_schema::PeerId;

/// Messages a peer wants to send at the end of a round.
#[derive(Debug, Default, Clone)]
pub struct Outbox {
    messages: Vec<(PeerId, Payload)>,
}

impl Outbox {
    /// Queues a message for `to`.
    pub fn send(&mut self, to: PeerId, payload: Payload) {
        self.messages.push((to, payload));
    }

    /// Number of queued messages.
    pub fn len(&self) -> usize {
        self.messages.len()
    }

    /// True when nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.messages.is_empty()
    }

    /// Drains the queued messages.
    pub fn drain(&mut self) -> Vec<(PeerId, Payload)> {
        std::mem::take(&mut self.messages)
    }
}

/// Behaviour of a peer, invoked once per simulated round.
///
/// `inbox` contains every message delivered to the peer this round; messages to be
/// sent are pushed into `outbox` and handed to the transport by the simulator.
pub trait PeerLogic {
    /// Processes one round.
    fn on_round(&mut self, peer: PeerId, round: u64, inbox: &[Envelope], outbox: &mut Outbox);
}

/// Blanket implementation so closures can serve as peer logic in tests and examples.
impl<F> PeerLogic for F
where
    F: FnMut(PeerId, u64, &[Envelope], &mut Outbox),
{
    fn on_round(&mut self, peer: PeerId, round: u64, inbox: &[Envelope], outbox: &mut Outbox) {
        self(peer, round, inbox, outbox)
    }
}

/// Generic per-peer bookkeeping kept by the simulator.
#[derive(Debug, Default, Clone)]
pub struct PeerState {
    /// Messages delivered to the peer in the current round.
    pub inbox: Vec<Envelope>,
    /// Total messages the peer has received since the start of the simulation.
    pub received_total: u64,
    /// Total messages the peer has sent since the start of the simulation.
    pub sent_total: u64,
}

impl PeerState {
    /// Clears the per-round inbox (called by the simulator between rounds).
    pub fn begin_round(&mut self) {
        self.inbox.clear();
    }

    /// Records a delivery.
    pub fn deliver(&mut self, envelope: Envelope) {
        self.received_total += 1;
        self.inbox.push(envelope);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::ProbeToken;

    #[test]
    fn outbox_collects_and_drains() {
        let mut o = Outbox::default();
        assert!(o.is_empty());
        o.send(
            PeerId(1),
            Payload::Probe {
                token: ProbeToken(0),
                origin: PeerId(0),
                path: vec![],
                ttl: 2,
            },
        );
        assert_eq!(o.len(), 1);
        let drained = o.drain();
        assert_eq!(drained.len(), 1);
        assert!(o.is_empty());
    }

    #[test]
    fn peer_state_counts_deliveries() {
        let mut s = PeerState::default();
        s.deliver(Envelope {
            from: PeerId(0),
            to: PeerId(1),
            deliver_at: 0,
            payload: Payload::Answer {
                query_id: 1,
                result_count: 2,
                complete: true,
            },
        });
        assert_eq!(s.received_total, 1);
        assert_eq!(s.inbox.len(), 1);
        s.begin_round();
        assert!(s.inbox.is_empty());
        assert_eq!(s.received_total, 1);
    }

    #[test]
    fn closures_implement_peer_logic() {
        let mut calls = 0;
        {
            let mut logic = |_p: PeerId, _r: u64, _i: &[Envelope], _o: &mut Outbox| {
                calls += 1;
            };
            let mut outbox = Outbox::default();
            logic.on_round(PeerId(0), 0, &[], &mut outbox);
        }
        assert_eq!(calls, 1);
    }
}

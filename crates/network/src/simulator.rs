//! Round-based execution of a peer network.
//!
//! Each round the simulator (1) collects the messages the transport can deliver,
//! (2) hands every peer its inbox and invokes its [`PeerLogic`], and (3) pushes the
//! peers' outboxes back into the transport. Rounds are a convenient abstraction of
//! "enough wall-clock time for one message exchange"; the paper's periodic schedule
//! maps one sum-product iteration onto one round, and the lazy schedule maps query
//! arrivals onto rounds.

use crate::message::Payload;
use crate::peer::{Outbox, PeerLogic, PeerState};
use crate::transport::{Transport, TransportConfig};
use pdms_schema::PeerId;

/// Simulator configuration.
#[derive(Debug, Clone, Default)]
pub struct SimulatorConfig {
    /// Transport behaviour (loss probability, latency, seed).
    pub transport: TransportConfig,
}

/// The round-based simulator, parameterised by the peer behaviour.
pub struct Simulator<L: PeerLogic> {
    logic: Vec<L>,
    states: Vec<PeerState>,
    transport: Transport,
    round: u64,
}

impl<L: PeerLogic> Simulator<L> {
    /// Creates a simulator with one logic instance per peer.
    pub fn new(logic: Vec<L>, config: SimulatorConfig) -> Self {
        let states = vec![PeerState::default(); logic.len()];
        Self {
            logic,
            states,
            transport: Transport::new(config.transport),
            round: 0,
        }
    }

    /// Number of peers.
    pub fn peer_count(&self) -> usize {
        self.logic.len()
    }

    /// The current round number (number of completed rounds).
    pub fn round(&self) -> u64 {
        self.round
    }

    /// Injects a message from outside the simulation (e.g. a user posing a query at a
    /// peer). It is delivered on the next round like any other message.
    pub fn inject(&mut self, from: PeerId, to: PeerId, payload: Payload) {
        self.transport.send(from, to, self.round, payload);
    }

    /// Runs a single round. Returns the number of messages delivered in this round.
    pub fn step(&mut self) -> usize {
        // Phase 1: deliver.
        for state in &mut self.states {
            state.begin_round();
        }
        let deliverable = self.transport.deliverable(self.round);
        let delivered = deliverable.len();
        for envelope in deliverable {
            if let Some(state) = self.states.get_mut(envelope.to.0) {
                state.deliver(envelope);
            }
        }
        // Phase 2: run peer logic.
        let mut outboxes: Vec<Outbox> = vec![Outbox::default(); self.logic.len()];
        for (index, logic) in self.logic.iter_mut().enumerate() {
            let peer = PeerId(index);
            let inbox = &self.states[index].inbox;
            logic.on_round(peer, self.round, inbox, &mut outboxes[index]);
        }
        // Phase 3: hand outboxes to the transport.
        for (index, outbox) in outboxes.iter_mut().enumerate() {
            let from = PeerId(index);
            for (to, payload) in outbox.drain() {
                self.states[index].sent_total += 1;
                self.transport.send(from, to, self.round + 1, payload);
            }
        }
        self.round += 1;
        delivered
    }

    /// Runs `rounds` rounds and returns the total number of delivered messages.
    pub fn run(&mut self, rounds: u64) -> usize {
        let mut total = 0;
        for _ in 0..rounds {
            total += self.step();
        }
        total
    }

    /// Runs rounds until no message is delivered and nothing is in flight, or until
    /// `max_rounds` is reached. Returns the number of rounds executed.
    pub fn run_until_quiescent(&mut self, max_rounds: u64) -> u64 {
        let mut executed = 0;
        for _ in 0..max_rounds {
            let delivered = self.step();
            executed += 1;
            if delivered == 0 && self.transport.in_flight() == 0 {
                break;
            }
        }
        executed
    }

    /// Access to a peer's bookkeeping.
    pub fn peer_state(&self, peer: PeerId) -> &PeerState {
        &self.states[peer.0]
    }

    /// Access to a peer's logic (e.g. to read out posteriors after a run).
    pub fn logic(&self, peer: PeerId) -> &L {
        &self.logic[peer.0]
    }

    /// Mutable access to a peer's logic.
    pub fn logic_mut(&mut self, peer: PeerId) -> &mut L {
        &mut self.logic[peer.0]
    }

    /// Iterates over all peer logics.
    pub fn logics(&self) -> impl Iterator<Item = &L> {
        self.logic.iter()
    }

    /// The transport statistics accumulated so far.
    pub fn stats(&self) -> &crate::stats::NetworkStats {
        self.transport.stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::{Envelope, ProbeToken};
    use crate::peer::Outbox;

    type Closure = Box<dyn FnMut(PeerId, u64, &[Envelope], &mut Outbox)>;

    fn probe(origin: PeerId, ttl: u8) -> Payload {
        Payload::Probe {
            token: ProbeToken(7),
            origin,
            path: vec![],
            ttl,
        }
    }

    #[test]
    fn ring_of_forwarders_circulates_a_message() {
        // Three peers forwarding every probe to the next peer; a probe injected at p0
        // should keep circulating, one hop per round.
        let n = 3usize;
        let logic: Vec<Closure> = (0..n)
            .map(|i| {
                let next = PeerId((i + 1) % n);
                Box::new(
                    move |_peer: PeerId, _round: u64, inbox: &[Envelope], outbox: &mut Outbox| {
                        for env in inbox {
                            if let Payload::Probe {
                                token,
                                origin,
                                path,
                                ttl,
                            } = &env.payload
                            {
                                if *ttl > 0 {
                                    outbox.send(
                                        next,
                                        Payload::Probe {
                                            token: *token,
                                            origin: *origin,
                                            path: path.clone(),
                                            ttl: ttl - 1,
                                        },
                                    );
                                }
                            }
                        }
                    },
                ) as Closure
            })
            .collect();
        let mut sim = Simulator::new(logic, SimulatorConfig::default());
        sim.inject(PeerId(2), PeerId(0), probe(PeerId(2), 5));
        let rounds = sim.run_until_quiescent(50);
        // TTL 5 -> the probe makes 5 forwarding hops after the initial delivery.
        assert!((6..=10).contains(&rounds), "rounds {rounds}");
        let total_received: u64 = (0..n)
            .map(|i| sim.peer_state(PeerId(i)).received_total)
            .sum();
        assert_eq!(total_received, 6);
    }

    #[test]
    fn step_counts_delivered_messages() {
        let logic: Vec<Closure> = (0..2)
            .map(|_| Box::new(|_: PeerId, _: u64, _: &[Envelope], _: &mut Outbox| {}) as Closure)
            .collect();
        let mut sim = Simulator::new(logic, SimulatorConfig::default());
        sim.inject(PeerId(0), PeerId(1), probe(PeerId(0), 1));
        sim.inject(PeerId(1), PeerId(0), probe(PeerId(1), 1));
        assert_eq!(sim.step(), 2);
        assert_eq!(sim.step(), 0);
        assert_eq!(sim.round(), 2);
    }

    #[test]
    fn quiescence_detection_stops_early() {
        let logic: Vec<Closure> = (0..2)
            .map(|_| Box::new(|_: PeerId, _: u64, _: &[Envelope], _: &mut Outbox| {}) as Closure)
            .collect();
        let mut sim = Simulator::new(logic, SimulatorConfig::default());
        let rounds = sim.run_until_quiescent(100);
        assert_eq!(rounds, 1);
    }

    #[test]
    fn lossy_transport_reduces_deliveries() {
        let mk = || -> Vec<Closure> {
            (0..2)
                .map(|_| {
                    Box::new(|_: PeerId, _: u64, _: &[Envelope], _: &mut Outbox| {}) as Closure
                })
                .collect()
        };
        let mut lossless = Simulator::new(mk(), SimulatorConfig::default());
        let mut lossy = Simulator::new(
            mk(),
            SimulatorConfig {
                transport: TransportConfig {
                    send_probability: 0.2,
                    seed: 3,
                    ..Default::default()
                },
            },
        );
        for i in 0..100 {
            lossless.inject(PeerId(0), PeerId(1), probe(PeerId(0), 0));
            lossy.inject(PeerId(0), PeerId(1), probe(PeerId(0), 0));
            let _ = i;
        }
        let a = lossless.run(2);
        let b = lossy.run(2);
        assert_eq!(a, 100);
        assert!(b < 50, "lossy delivered {b}");
    }
}

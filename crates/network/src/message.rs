//! The message vocabulary of the PDMS simulator.
//!
//! Four families of messages circulate in the system:
//!
//! * **probes** and **probe replies** — TTL-bounded exploration messages that peers use
//!   to discover mapping cycles and parallel paths in their neighbourhood
//!   (Section 3.2.1);
//! * **queries** and **answers** — ordinary PDMS traffic: a query is forwarded through
//!   a mapping to a neighbour, translated, executed, forwarded further;
//! * **belief messages** — the remote messages of the embedded sum-product scheme
//!   (`µ_{p0 → fak}(mi)` in Section 4.3), either sent on their own (periodic schedule)
//!   or piggybacked on a query (lazy schedule).
//!
//! The payloads carry plain identifiers and probability pairs rather than references,
//! mimicking what would actually be serialised on a wire.

use pdms_schema::{AttributeId, MappingId, PeerId, Query};

/// Unique identifier a peer assigns to a probe it originates, so that replies and
/// cycle witnesses can be correlated.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ProbeToken(pub u64);

/// A remote belief message about one mapping variable, exchanged between peers.
///
/// `mu_correct` / `mu_incorrect` are the (normalised) components of
/// `µ_{p → fa}(m)`: the product of all factor→variable messages for mapping `m`
/// except the one coming from the feedback factor the recipient owns.
#[derive(Debug, Clone, PartialEq)]
pub struct BeliefPayload {
    /// The mapping variable the message is about.
    pub mapping: MappingId,
    /// The attribute the belief refers to (fine-granularity mode of Section 4.1).
    pub attribute: AttributeId,
    /// Identifier of the feedback evidence (cycle / parallel path) the message is
    /// directed at, as assigned by the cycle analysis.
    pub evidence: usize,
    /// Message weight for the `correct` state.
    pub mu_correct: f64,
    /// Message weight for the `incorrect` state.
    pub mu_incorrect: f64,
}

/// What a message carries.
#[derive(Debug, Clone, PartialEq)]
pub enum Payload {
    /// A cycle-discovery probe: records the mappings traversed so far and the remaining
    /// TTL. Peers append the outgoing mapping they forward the probe through.
    Probe {
        /// Correlation token chosen by the originating peer.
        token: ProbeToken,
        /// The peer that started the probe.
        origin: PeerId,
        /// Mappings traversed so far, in order.
        path: Vec<MappingId>,
        /// Remaining time-to-live; the probe is dropped when it reaches zero.
        ttl: u8,
    },
    /// Reply sent back to the probe originator when the probe closed a cycle (returned
    /// to the origin) or reached a peer already visited by a sibling probe (parallel
    /// path detection is done by the originator comparing paths).
    ProbeReply {
        /// Token of the original probe.
        token: ProbeToken,
        /// The full mapping path the probe travelled.
        path: Vec<MappingId>,
        /// Peer at which the path terminated.
        terminus: PeerId,
    },
    /// An ordinary query forwarded through a mapping, already translated into the
    /// recipient's schema.
    Query {
        /// Identifier assigned by the originator (for answer correlation and duplicate
        /// suppression).
        query_id: u64,
        /// The peer that posed the query.
        origin: PeerId,
        /// The query, expressed over the *recipient's* schema.
        query: Query,
        /// Remaining TTL for further forwarding.
        ttl: u8,
        /// Mappings traversed so far (provenance; also used for cycle observation).
        via: Vec<MappingId>,
        /// Belief messages piggybacked on this query (lazy schedule, Section 4.3.2).
        piggyback: Vec<BeliefPayload>,
    },
    /// Answer documents flowing back to the query originator. The simulator does not
    /// route answers hop-by-hop; they are delivered directly, as typical PDMS designs
    /// short-circuit the reverse path.
    Answer {
        /// Identifier of the answered query.
        query_id: u64,
        /// Number of result documents (the documents themselves stay at the peer; the
        /// evaluation only needs counts to measure false positives).
        result_count: usize,
        /// Whether the answering peer considered the translated query complete (no
        /// attribute was dropped on the way).
        complete: bool,
    },
    /// A standalone belief message (periodic schedule, Section 4.3.1).
    Belief(BeliefPayload),
}

impl Payload {
    /// Short label for statistics.
    pub fn kind(&self) -> &'static str {
        match self {
            Payload::Probe { .. } => "probe",
            Payload::ProbeReply { .. } => "probe-reply",
            Payload::Query { .. } => "query",
            Payload::Answer { .. } => "answer",
            Payload::Belief(_) => "belief",
        }
    }

    /// True for the messages that exist only because of the inference scheme (used to
    /// measure the communication overhead the paper discusses in Section 4.3.1).
    pub fn is_overhead(&self) -> bool {
        matches!(
            self,
            Payload::Belief(_) | Payload::Probe { .. } | Payload::ProbeReply { .. }
        )
    }
}

/// A message in flight: payload plus addressing.
#[derive(Debug, Clone, PartialEq)]
pub struct Envelope {
    /// Sending peer.
    pub from: PeerId,
    /// Receiving peer.
    pub to: PeerId,
    /// Simulated round at which the message becomes deliverable.
    pub deliver_at: u64,
    /// The payload.
    pub payload: Payload,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn payload_kinds_are_stable() {
        let probe = Payload::Probe {
            token: ProbeToken(1),
            origin: PeerId(0),
            path: vec![],
            ttl: 4,
        };
        assert_eq!(probe.kind(), "probe");
        assert!(probe.is_overhead());
        let answer = Payload::Answer {
            query_id: 9,
            result_count: 3,
            complete: true,
        };
        assert_eq!(answer.kind(), "answer");
        assert!(!answer.is_overhead());
    }

    #[test]
    fn query_with_piggyback_is_not_overhead() {
        let q = Payload::Query {
            query_id: 1,
            origin: PeerId(0),
            query: Query::new(),
            ttl: 3,
            via: vec![MappingId(0)],
            piggyback: vec![BeliefPayload {
                mapping: MappingId(0),
                attribute: AttributeId(0),
                evidence: 0,
                mu_correct: 0.6,
                mu_incorrect: 0.4,
            }],
        };
        // Piggybacked beliefs travel on messages the PDMS would send anyway.
        assert!(!q.is_overhead());
    }

    #[test]
    fn envelope_preserves_addressing() {
        let e = Envelope {
            from: PeerId(1),
            to: PeerId(2),
            deliver_at: 5,
            payload: Payload::Belief(BeliefPayload {
                mapping: MappingId(3),
                attribute: AttributeId(1),
                evidence: 2,
                mu_correct: 0.7,
                mu_incorrect: 0.3,
            }),
        };
        assert_eq!(e.from, PeerId(1));
        assert_eq!(e.to, PeerId(2));
        assert_eq!(e.payload.kind(), "belief");
    }
}

//! Decentralized PDMS simulator: peers, lossy transport, probes and query routing.
//!
//! The paper embeds its inference scheme into the *normal operation* of a Peer Data
//! Management System (Section 4): peers discover cycles with TTL-bounded probe
//! messages, exchange belief messages either periodically or piggybacked on query
//! traffic, and may lose or delay messages without endangering convergence
//! (Section 5.1.3, Figure 11).
//!
//! This crate provides the distributed-systems substrate for those experiments:
//!
//! * [`message`] — the wire-level message vocabulary (probes, probe replies, queries,
//!   answers, and remote belief messages);
//! * [`transport`] — an in-memory transport with configurable loss probability, delay,
//!   and delivery statistics;
//! * [`peer`] — per-peer runtime state: inbox, known mappings, query log;
//! * [`simulator`] — a round-based scheduler delivering messages and invoking peer
//!   handlers, deterministic under a seed;
//! * [`stats`] — counters for communication-overhead reporting.
//!
//! The simulator knows nothing about probabilistic inference; `pdms-core` plugs the
//! embedded message-passing logic into the peer handlers.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod message;
pub mod peer;
pub mod simulator;
pub mod stats;
pub mod transport;

pub use message::{BeliefPayload, Envelope, Payload, ProbeToken};
pub use peer::{Outbox, PeerLogic, PeerState};
pub use simulator::{Simulator, SimulatorConfig};
pub use stats::NetworkStats;
pub use transport::{Transport, TransportConfig};

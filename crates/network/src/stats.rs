//! Communication statistics.
//!
//! The paper argues that the periodic schedule costs at most `Σ_ci (l_ci − 1)` extra
//! messages per peer per period, while the lazy schedule has zero overhead because
//! belief messages piggyback on query traffic. These counters let the experiments put
//! numbers on that claim.

use crate::message::Payload;
use std::collections::BTreeMap;

/// Counters per payload kind plus totals.
#[derive(Debug, Clone, Default)]
pub struct NetworkStats {
    sent: BTreeMap<&'static str, u64>,
    delivered: BTreeMap<&'static str, u64>,
    dropped: BTreeMap<&'static str, u64>,
}

impl NetworkStats {
    /// Records an attempted send.
    pub fn record_sent(&mut self, payload: &Payload) {
        *self.sent.entry(payload.kind()).or_insert(0) += 1;
    }

    /// Records a delivery.
    pub fn record_delivered(&mut self, payload: &Payload) {
        *self.delivered.entry(payload.kind()).or_insert(0) += 1;
    }

    /// Records a message lost by the transport.
    pub fn record_dropped(&mut self, payload: &Payload) {
        *self.dropped.entry(payload.kind()).or_insert(0) += 1;
    }

    /// Total messages sent (all kinds).
    pub fn sent_total(&self) -> u64 {
        self.sent.values().sum()
    }

    /// Total messages delivered.
    pub fn delivered_total(&self) -> u64 {
        self.delivered.values().sum()
    }

    /// Total messages dropped.
    pub fn dropped_total(&self) -> u64 {
        self.dropped.values().sum()
    }

    /// Messages sent of one kind (`"probe"`, `"query"`, `"belief"`, …).
    pub fn sent_of(&self, kind: &str) -> u64 {
        self.sent.get(kind).copied().unwrap_or(0)
    }

    /// Messages delivered of one kind.
    pub fn delivered_of(&self, kind: &str) -> u64 {
        self.delivered.get(kind).copied().unwrap_or(0)
    }

    /// Fraction of sent messages that were delivered (1.0 when nothing was sent).
    pub fn delivery_ratio(&self) -> f64 {
        let sent = self.sent_total();
        if sent == 0 {
            1.0
        } else {
            self.delivered_total() as f64 / sent as f64
        }
    }

    /// Overhead messages (probes, probe replies, standalone belief messages) sent, i.e.
    /// traffic that exists only because of the inference scheme.
    pub fn overhead_sent(&self) -> u64 {
        self.sent_of("probe") + self.sent_of("probe-reply") + self.sent_of("belief")
    }

    /// Renders the counters as a small table for reports.
    pub fn summary(&self) -> String {
        let mut out = String::from("kind            sent  delivered  dropped\n");
        let mut kinds: Vec<&&str> = self.sent.keys().collect();
        kinds.sort();
        for kind in kinds {
            out.push_str(&format!(
                "{:<14} {:>6} {:>10} {:>8}\n",
                kind,
                self.sent_of(kind),
                self.delivered_of(kind),
                self.dropped.get(*kind).copied().unwrap_or(0)
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::ProbeToken;
    use pdms_schema::PeerId;

    fn probe() -> Payload {
        Payload::Probe {
            token: ProbeToken(1),
            origin: PeerId(0),
            path: vec![],
            ttl: 1,
        }
    }

    fn answer() -> Payload {
        Payload::Answer {
            query_id: 1,
            result_count: 0,
            complete: true,
        }
    }

    #[test]
    fn counters_accumulate_by_kind() {
        let mut s = NetworkStats::default();
        s.record_sent(&probe());
        s.record_sent(&probe());
        s.record_sent(&answer());
        s.record_delivered(&probe());
        s.record_dropped(&probe());
        assert_eq!(s.sent_total(), 3);
        assert_eq!(s.sent_of("probe"), 2);
        assert_eq!(s.sent_of("answer"), 1);
        assert_eq!(s.delivered_total(), 1);
        assert_eq!(s.dropped_total(), 1);
        assert_eq!(s.overhead_sent(), 2);
    }

    #[test]
    fn delivery_ratio_handles_empty_stats() {
        let s = NetworkStats::default();
        assert_eq!(s.delivery_ratio(), 1.0);
    }

    #[test]
    fn delivery_ratio_computes_fraction() {
        let mut s = NetworkStats::default();
        for _ in 0..4 {
            s.record_sent(&probe());
        }
        s.record_delivered(&probe());
        assert!((s.delivery_ratio() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn summary_lists_all_kinds() {
        let mut s = NetworkStats::default();
        s.record_sent(&probe());
        s.record_sent(&answer());
        let text = s.summary();
        assert!(text.contains("probe"));
        assert!(text.contains("answer"));
    }
}

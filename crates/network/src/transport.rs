//! In-memory transport with loss, delay, and statistics.
//!
//! The transport owns every message in flight. Sending enqueues an [`Envelope`];
//! delivery happens when the simulator advances to (or past) the envelope's delivery
//! round. Each send is independently dropped with probability `1 − P(send)`, which is
//! exactly the fault model of the robustness experiment (Section 5.1.3, Figure 11).

use crate::message::{Envelope, Payload};
use crate::stats::NetworkStats;
use pdms_schema::PeerId;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::VecDeque;

/// Transport configuration.
#[derive(Debug, Clone)]
pub struct TransportConfig {
    /// Probability that a sent message is actually delivered. `1.0` is a perfect
    /// network; the paper shows convergence down to `0.1`.
    pub send_probability: f64,
    /// Fixed delivery latency in rounds (0 = next delivery pass in the same round).
    pub latency_rounds: u64,
    /// RNG seed for the loss process.
    pub seed: u64,
}

impl Default for TransportConfig {
    fn default() -> Self {
        Self {
            send_probability: 1.0,
            latency_rounds: 0,
            seed: 1,
        }
    }
}

/// The in-memory lossy transport.
#[derive(Debug)]
pub struct Transport {
    config: TransportConfig,
    queue: VecDeque<Envelope>,
    stats: NetworkStats,
    rng: StdRng,
}

impl Transport {
    /// Creates a transport with the given configuration.
    pub fn new(config: TransportConfig) -> Self {
        let rng = StdRng::seed_from_u64(config.seed);
        Self {
            config,
            queue: VecDeque::new(),
            stats: NetworkStats::default(),
            rng,
        }
    }

    /// Creates a perfect (lossless, zero-latency) transport.
    pub fn perfect() -> Self {
        Self::new(TransportConfig::default())
    }

    /// Sends a message, subject to the loss probability. Returns `true` when the
    /// message was accepted (it may still be waiting for its delivery round).
    pub fn send(&mut self, from: PeerId, to: PeerId, now: u64, payload: Payload) -> bool {
        self.stats.record_sent(&payload);
        let p = self.config.send_probability.clamp(0.0, 1.0);
        if p < 1.0 && !self.rng.gen_bool(p) {
            self.stats.record_dropped(&payload);
            return false;
        }
        self.queue.push_back(Envelope {
            from,
            to,
            deliver_at: now + self.config.latency_rounds,
            payload,
        });
        true
    }

    /// Removes and returns every message deliverable at round `now`.
    pub fn deliverable(&mut self, now: u64) -> Vec<Envelope> {
        let mut out = Vec::new();
        let mut remaining = VecDeque::with_capacity(self.queue.len());
        while let Some(env) = self.queue.pop_front() {
            if env.deliver_at <= now {
                self.stats.record_delivered(&env.payload);
                out.push(env);
            } else {
                remaining.push_back(env);
            }
        }
        self.queue = remaining;
        out
    }

    /// Number of messages still in flight.
    pub fn in_flight(&self) -> usize {
        self.queue.len()
    }

    /// Delivery statistics so far.
    pub fn stats(&self) -> &NetworkStats {
        &self.stats
    }

    /// The configured send probability.
    pub fn send_probability(&self) -> f64 {
        self.config.send_probability
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::ProbeToken;

    fn probe() -> Payload {
        Payload::Probe {
            token: ProbeToken(0),
            origin: PeerId(0),
            path: vec![],
            ttl: 3,
        }
    }

    #[test]
    fn perfect_transport_delivers_everything() {
        let mut t = Transport::perfect();
        for i in 0..10 {
            assert!(t.send(PeerId(0), PeerId(1), i, probe()));
        }
        let delivered = t.deliverable(100);
        assert_eq!(delivered.len(), 10);
        assert_eq!(t.stats().sent_total(), 10);
        assert_eq!(t.stats().delivered_total(), 10);
        assert_eq!(t.stats().dropped_total(), 0);
        assert_eq!(t.in_flight(), 0);
    }

    #[test]
    fn latency_defers_delivery() {
        let mut t = Transport::new(TransportConfig {
            latency_rounds: 2,
            ..Default::default()
        });
        t.send(PeerId(0), PeerId(1), 5, probe());
        assert!(t.deliverable(6).is_empty());
        assert_eq!(t.in_flight(), 1);
        assert_eq!(t.deliverable(7).len(), 1);
    }

    #[test]
    fn lossy_transport_drops_roughly_the_right_fraction() {
        let mut t = Transport::new(TransportConfig {
            send_probability: 0.3,
            seed: 99,
            ..Default::default()
        });
        let n = 5000;
        for i in 0..n {
            t.send(PeerId(0), PeerId(1), i, probe());
        }
        let delivered = t.deliverable(u64::MAX).len();
        let rate = delivered as f64 / n as f64;
        assert!((rate - 0.3).abs() < 0.05, "delivery rate {rate}");
        assert_eq!(t.stats().dropped_total() + delivered as u64, n);
    }

    #[test]
    fn zero_probability_drops_everything() {
        let mut t = Transport::new(TransportConfig {
            send_probability: 0.0,
            ..Default::default()
        });
        assert!(!t.send(PeerId(0), PeerId(1), 0, probe()));
        assert!(t.deliverable(10).is_empty());
        assert_eq!(t.stats().dropped_total(), 1);
    }

    #[test]
    fn deliverable_keeps_future_messages_queued() {
        let mut t = Transport::new(TransportConfig {
            latency_rounds: 5,
            ..Default::default()
        });
        t.send(PeerId(0), PeerId(1), 0, probe());
        t.send(PeerId(0), PeerId(1), 3, probe());
        let now = 5;
        assert_eq!(t.deliverable(now).len(), 1);
        assert_eq!(t.in_flight(), 1);
    }
}

//! The "simple RDF mapping" format: alignment documents between two ontologies.
//!
//! The paper's tool reads "simple RDF mappings (following the format introduced in
//! \[18\])", i.e. the KnowledgeWeb / INRIA Alignment format also produced by the
//! alignment API of reference \[10\]: an `<Alignment>` element naming the two ontologies
//! and containing one `<Cell>` per correspondence, each with `entity1`, `entity2`, a
//! `relation` (always `=` for the equivalences this paper deals with) and a confidence
//! `measure`. This module parses and produces that format.

use crate::error::RdfError;
use crate::model::vocab;
use crate::xml::{self, XmlElement};

/// One correspondence of an alignment document.
#[derive(Debug, Clone, PartialEq)]
pub struct AlignmentCell {
    /// IRI of the source-ontology entity.
    pub entity1: String,
    /// IRI of the target-ontology entity.
    pub entity2: String,
    /// The relation between the entities (`=` for equivalence).
    pub relation: String,
    /// Confidence in `[0, 1]` reported by the matcher.
    pub measure: f64,
}

/// An alignment between two ontologies.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct AlignmentDoc {
    /// IRI (or name) of the source ontology.
    pub onto1: String,
    /// IRI (or name) of the target ontology.
    pub onto2: String,
    /// The correspondences.
    pub cells: Vec<AlignmentCell>,
}

impl AlignmentDoc {
    /// Creates an empty alignment between two ontologies.
    pub fn new(onto1: impl Into<String>, onto2: impl Into<String>) -> Self {
        Self {
            onto1: onto1.into(),
            onto2: onto2.into(),
            cells: Vec::new(),
        }
    }

    /// Adds an equivalence cell.
    pub fn add_cell(
        &mut self,
        entity1: impl Into<String>,
        entity2: impl Into<String>,
        measure: f64,
    ) {
        self.cells.push(AlignmentCell {
            entity1: entity1.into(),
            entity2: entity2.into(),
            relation: "=".to_string(),
            measure,
        });
    }

    /// Number of correspondences.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// True when the alignment has no correspondence.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }
}

/// Parses an alignment document. Both the bare `<Alignment>` root and the usual
/// `<rdf:RDF><Alignment>…` wrapping are accepted.
pub fn parse_alignment(input: &str) -> Result<AlignmentDoc, RdfError> {
    let root = xml::parse(input)?;
    let alignment = if root.local_name() == "Alignment" {
        &root
    } else {
        root.child_elements()
            .find(|e| e.local_name() == "Alignment")
            .ok_or_else(|| RdfError::Structure("no <Alignment> element found".to_string()))?
    };
    let onto = |name: &str| -> String {
        alignment
            .child_by_local_name(name)
            .map(|e| {
                // Either a plain-text IRI or a nested <Ontology rdf:about="…"/>.
                let nested = e
                    .child_elements()
                    .next()
                    .and_then(|o| o.attribute("rdf:about"))
                    .map(str::to_string);
                nested.unwrap_or_else(|| e.text())
            })
            .unwrap_or_default()
    };
    let onto1 = onto("onto1");
    let onto2 = onto("onto2");
    let mut cells = Vec::new();
    for map in alignment.children_by_local_name("map") {
        for cell in map.children_by_local_name("Cell") {
            cells.push(parse_cell(cell)?);
        }
    }
    // Some serialisations put Cells directly under Alignment.
    for cell in alignment.children_by_local_name("Cell") {
        cells.push(parse_cell(cell)?);
    }
    Ok(AlignmentDoc {
        onto1,
        onto2,
        cells,
    })
}

fn parse_cell(cell: &XmlElement) -> Result<AlignmentCell, RdfError> {
    let entity = |name: &str| -> Result<String, RdfError> {
        let element = cell
            .child_by_local_name(name)
            .ok_or_else(|| RdfError::Structure(format!("alignment cell without <{name}>")))?;
        if let Some(resource) = element.attribute("rdf:resource") {
            Ok(resource.to_string())
        } else {
            let text = element.text();
            if text.is_empty() {
                Err(RdfError::Structure(format!(
                    "<{name}> carries no entity reference"
                )))
            } else {
                Ok(text)
            }
        }
    };
    let entity1 = entity("entity1")?;
    let entity2 = entity("entity2")?;
    let relation = cell
        .child_by_local_name("relation")
        .map(|e| e.text())
        .filter(|t| !t.is_empty())
        .unwrap_or_else(|| "=".to_string());
    let measure = match cell.child_by_local_name("measure") {
        Some(m) => m
            .text()
            .parse::<f64>()
            .map_err(|_| RdfError::Structure(format!("unparsable measure `{}`", m.text())))?,
        None => 1.0,
    };
    if !(0.0..=1.0).contains(&measure) {
        return Err(RdfError::Structure(format!(
            "measure {measure} outside [0, 1]"
        )));
    }
    Ok(AlignmentCell {
        entity1,
        entity2,
        relation,
        measure,
    })
}

/// Serialises an alignment document in the KnowledgeWeb alignment format.
pub fn serialize_alignment(doc: &AlignmentDoc) -> String {
    let mut alignment = XmlElement::new("Alignment")
        .with_attribute(
            "xmlns",
            "http://knowledgeweb.semanticweb.org/heterogeneity/alignment",
        )
        .with_attribute("xmlns:rdf", vocab::RDF_NS)
        .with_child(XmlElement::new("xml").with_text("yes"))
        .with_child(XmlElement::new("level").with_text("0"))
        .with_child(XmlElement::new("type").with_text("**"))
        .with_child(XmlElement::new("onto1").with_text(doc.onto1.clone()))
        .with_child(XmlElement::new("onto2").with_text(doc.onto2.clone()));
    for cell in &doc.cells {
        let cell_element = XmlElement::new("Cell")
            .with_child(
                XmlElement::new("entity1").with_attribute("rdf:resource", cell.entity1.clone()),
            )
            .with_child(
                XmlElement::new("entity2").with_attribute("rdf:resource", cell.entity2.clone()),
            )
            .with_child(XmlElement::new("relation").with_text(cell.relation.clone()))
            .with_child(XmlElement::new("measure").with_text(format!("{:.6}", cell.measure)));
        alignment = alignment.with_child(XmlElement::new("map").with_child(cell_element));
    }
    xml::serialize(&alignment)
}

#[cfg(test)]
mod tests {
    use super::*;

    const ALIGNMENT: &str = r#"<?xml version='1.0' encoding='utf-8'?>
<rdf:RDF xmlns='http://knowledgeweb.semanticweb.org/heterogeneity/alignment'
         xmlns:rdf='http://www.w3.org/1999/02/22-rdf-syntax-ns#'>
  <Alignment>
    <xml>yes</xml>
    <level>0</level>
    <type>**</type>
    <onto1><Ontology rdf:about="http://example.org/art"/></onto1>
    <onto2>http://example.org/winfs</onto2>
    <map>
      <Cell>
        <entity1 rdf:resource="http://example.org/art#Creator"/>
        <entity2 rdf:resource="http://example.org/winfs#DisplayName"/>
        <relation>=</relation>
        <measure rdf:datatype="xsd:float">0.87</measure>
      </Cell>
    </map>
    <map>
      <Cell>
        <entity1 rdf:resource="http://example.org/art#CreatedOn"/>
        <entity2 rdf:resource="http://example.org/winfs#Date"/>
        <relation>=</relation>
        <measure>0.65</measure>
      </Cell>
    </map>
  </Alignment>
</rdf:RDF>"#;

    #[test]
    fn parses_the_knowledgeweb_format() {
        let doc = parse_alignment(ALIGNMENT).unwrap();
        assert_eq!(doc.onto1, "http://example.org/art");
        assert_eq!(doc.onto2, "http://example.org/winfs");
        assert_eq!(doc.len(), 2);
        assert_eq!(doc.cells[0].entity1, "http://example.org/art#Creator");
        assert_eq!(doc.cells[0].entity2, "http://example.org/winfs#DisplayName");
        assert_eq!(doc.cells[0].relation, "=");
        assert!((doc.cells[0].measure - 0.87).abs() < 1e-9);
        assert!((doc.cells[1].measure - 0.65).abs() < 1e-9);
    }

    #[test]
    fn missing_entities_and_bad_measures_are_rejected() {
        let bad_cell = r#"<Alignment><map><Cell>
            <entity1 rdf:resource="http://a#X"/>
            <relation>=</relation>
          </Cell></map></Alignment>"#;
        assert!(parse_alignment(bad_cell).is_err());
        let bad_measure = r#"<Alignment><map><Cell>
            <entity1 rdf:resource="http://a#X"/>
            <entity2 rdf:resource="http://b#Y"/>
            <measure>not-a-number</measure>
          </Cell></map></Alignment>"#;
        assert!(parse_alignment(bad_measure).is_err());
        let out_of_range = r#"<Alignment><map><Cell>
            <entity1 rdf:resource="http://a#X"/>
            <entity2 rdf:resource="http://b#Y"/>
            <measure>1.5</measure>
          </Cell></map></Alignment>"#;
        assert!(parse_alignment(out_of_range).is_err());
    }

    #[test]
    fn defaults_apply_when_relation_and_measure_are_absent() {
        let minimal = r#"<Alignment>
            <onto1>a</onto1><onto2>b</onto2>
            <map><Cell>
              <entity1 rdf:resource="http://a#X"/>
              <entity2 rdf:resource="http://b#Y"/>
            </Cell></map>
          </Alignment>"#;
        let doc = parse_alignment(minimal).unwrap();
        assert_eq!(doc.cells[0].relation, "=");
        assert_eq!(doc.cells[0].measure, 1.0);
    }

    #[test]
    fn missing_alignment_element_is_an_error() {
        let err = parse_alignment("<rdf:RDF xmlns:rdf=\"x\"><Other/></rdf:RDF>").unwrap_err();
        assert!(err.to_string().contains("no <Alignment>"));
    }

    #[test]
    fn serialisation_round_trips() {
        let mut doc = AlignmentDoc::new("http://example.org/art", "http://example.org/winfs");
        doc.add_cell(
            "http://example.org/art#Creator",
            "http://example.org/winfs#DisplayName",
            0.87,
        );
        doc.add_cell(
            "http://example.org/art#CreatedOn",
            "http://example.org/winfs#Date",
            0.653201,
        );
        let text = serialize_alignment(&doc);
        let reparsed = parse_alignment(&text).unwrap();
        assert_eq!(reparsed.onto1, doc.onto1);
        assert_eq!(reparsed.onto2, doc.onto2);
        assert_eq!(reparsed.len(), 2);
        for (a, b) in doc.cells.iter().zip(&reparsed.cells) {
            assert_eq!(a.entity1, b.entity1);
            assert_eq!(a.entity2, b.entity2);
            assert_eq!(a.relation, b.relation);
            assert!((a.measure - b.measure).abs() < 1e-6);
        }
    }

    #[test]
    fn entities_given_as_text_are_accepted() {
        let doc = parse_alignment(
            r#"<Alignment><map><Cell>
                 <entity1>http://a#X</entity1>
                 <entity2>http://b#Y</entity2>
               </Cell></map></Alignment>"#,
        )
        .unwrap();
        assert_eq!(doc.cells[0].entity1, "http://a#X");
    }

    #[test]
    fn empty_alignment_reports_empty() {
        let doc = AlignmentDoc::new("a", "b");
        assert!(doc.is_empty());
        let text = serialize_alignment(&doc);
        assert!(parse_alignment(&text).unwrap().is_empty());
    }
}

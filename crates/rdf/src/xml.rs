//! A minimal, dependency-free XML reader and writer.
//!
//! The RDF/XML and alignment documents handled by this crate use a small, regular
//! subset of XML: a prolog, nested elements with attributes, character data, comments,
//! and the five predefined entities. This module parses exactly that subset into an
//! element tree and serialises the tree back, with positions reported on error. It is
//! not a general-purpose XML processor (no DTDs, no processing instructions beyond the
//! prolog, no CDATA sections) — the goal is to read and write the documents produced by
//! ontology editors and by this crate itself, not to validate arbitrary input.

use crate::error::XmlError;
use std::fmt;

/// One node of the parsed document: an element or a run of character data.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum XmlNode {
    /// A child element.
    Element(XmlElement),
    /// Decoded character data (entities already resolved).
    Text(String),
}

/// An XML element: qualified name, attributes in document order, and children.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct XmlElement {
    /// Qualified name as written, e.g. `rdf:Description` or `Ontology`.
    pub name: String,
    /// Attributes as `(qualified name, decoded value)` pairs in document order.
    pub attributes: Vec<(String, String)>,
    /// Child nodes in document order.
    pub children: Vec<XmlNode>,
}

impl XmlElement {
    /// Creates an element with no attributes or children.
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            attributes: Vec::new(),
            children: Vec::new(),
        }
    }

    /// Adds an attribute (builder style).
    pub fn with_attribute(mut self, name: impl Into<String>, value: impl Into<String>) -> Self {
        self.attributes.push((name.into(), value.into()));
        self
    }

    /// Adds a child element (builder style).
    pub fn with_child(mut self, child: XmlElement) -> Self {
        self.children.push(XmlNode::Element(child));
        self
    }

    /// Adds a text child (builder style).
    pub fn with_text(mut self, text: impl Into<String>) -> Self {
        self.children.push(XmlNode::Text(text.into()));
        self
    }

    /// The value of an attribute by qualified name.
    pub fn attribute(&self, name: &str) -> Option<&str> {
        self.attributes
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }

    /// The local part of the element name (the part after the last `:`).
    pub fn local_name(&self) -> &str {
        local_part(&self.name)
    }

    /// The namespace prefix of the element name, if any.
    pub fn prefix(&self) -> Option<&str> {
        self.name.rsplit_once(':').map(|(p, _)| p)
    }

    /// Child elements, skipping text nodes.
    pub fn child_elements(&self) -> impl Iterator<Item = &XmlElement> {
        self.children.iter().filter_map(|c| match c {
            XmlNode::Element(e) => Some(e),
            XmlNode::Text(_) => None,
        })
    }

    /// First child element with the given local name.
    pub fn child_by_local_name(&self, local: &str) -> Option<&XmlElement> {
        self.child_elements().find(|e| e.local_name() == local)
    }

    /// All child elements with the given local name.
    pub fn children_by_local_name<'a>(
        &'a self,
        local: &'a str,
    ) -> impl Iterator<Item = &'a XmlElement> + 'a {
        self.child_elements()
            .filter(move |e| e.local_name() == local)
    }

    /// Concatenated text content of the element (direct text children only), trimmed.
    pub fn text(&self) -> String {
        let mut out = String::new();
        for child in &self.children {
            if let XmlNode::Text(t) = child {
                out.push_str(t);
            }
        }
        out.trim().to_string()
    }
}

/// The local part of a qualified name.
pub fn local_part(qname: &str) -> &str {
    qname.rsplit_once(':').map(|(_, l)| l).unwrap_or(qname)
}

/// Parses an XML document into its root element. Leading prolog (`<?xml …?>`) and
/// comments are skipped; anything after the root element other than whitespace and
/// comments is an error.
pub fn parse(input: &str) -> Result<XmlElement, XmlError> {
    let mut parser = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    parser.skip_misc()?;
    let root = parser.parse_element()?;
    parser.skip_misc()?;
    if parser.pos < parser.bytes.len() {
        return Err(XmlError::new(parser.pos, "content after the root element"));
    }
    Ok(root)
}

/// Serialises an element tree to a string with an XML prolog and two-space indentation.
pub fn serialize(root: &XmlElement) -> String {
    let mut out = String::from("<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n");
    write_element(root, 0, &mut out);
    out
}

fn write_element(element: &XmlElement, depth: usize, out: &mut String) {
    let indent = "  ".repeat(depth);
    out.push_str(&indent);
    out.push('<');
    out.push_str(&element.name);
    for (name, value) in &element.attributes {
        out.push(' ');
        out.push_str(name);
        out.push_str("=\"");
        out.push_str(&escape(value, true));
        out.push('"');
    }
    let has_element_children = element.child_elements().next().is_some();
    let text = element.text();
    if element.children.is_empty() || (!has_element_children && text.is_empty()) {
        out.push_str("/>\n");
        return;
    }
    out.push('>');
    if has_element_children {
        out.push('\n');
        for child in &element.children {
            match child {
                XmlNode::Element(e) => write_element(e, depth + 1, out),
                XmlNode::Text(t) => {
                    let trimmed = t.trim();
                    if !trimmed.is_empty() {
                        out.push_str(&"  ".repeat(depth + 1));
                        out.push_str(&escape(trimmed, false));
                        out.push('\n');
                    }
                }
            }
        }
        out.push_str(&indent);
    } else {
        out.push_str(&escape(&text, false));
    }
    out.push_str("</");
    out.push_str(&element.name);
    out.push_str(">\n");
}

/// Escapes character data or attribute values.
fn escape(value: &str, attribute: bool) -> String {
    let mut out = String::with_capacity(value.len());
    for c in value.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '"' if attribute => out.push_str("&quot;"),
            '\'' if attribute => out.push_str("&apos;"),
            other => out.push(other),
        }
    }
    out
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl fmt::Debug for Parser<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Parser(pos={})", self.pos)
    }
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn starts_with(&self, prefix: &str) -> bool {
        self.bytes[self.pos..].starts_with(prefix.as_bytes())
    }

    fn skip_whitespace(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\r' | b'\n')) {
            self.pos += 1;
        }
    }

    /// Skips whitespace, the XML prolog, and comments.
    fn skip_misc(&mut self) -> Result<(), XmlError> {
        loop {
            self.skip_whitespace();
            if self.starts_with("<?") {
                match self.bytes[self.pos..].windows(2).position(|w| w == b"?>") {
                    Some(end) => self.pos += end + 2,
                    None => {
                        return Err(XmlError::new(
                            self.pos,
                            "unterminated processing instruction",
                        ))
                    }
                }
            } else if self.starts_with("<!--") {
                match self.bytes[self.pos..].windows(3).position(|w| w == b"-->") {
                    Some(end) => self.pos += end + 3,
                    None => return Err(XmlError::new(self.pos, "unterminated comment")),
                }
            } else if self.starts_with("<!DOCTYPE") {
                // Skip a simple (bracket-free) DOCTYPE declaration.
                match self.bytes[self.pos..].iter().position(|&b| b == b'>') {
                    Some(end) => self.pos += end + 1,
                    None => return Err(XmlError::new(self.pos, "unterminated DOCTYPE")),
                }
            } else {
                return Ok(());
            }
        }
    }

    fn parse_name(&mut self) -> Result<String, XmlError> {
        let start = self.pos;
        while let Some(b) = self.peek() {
            let c = b as char;
            if c.is_alphanumeric() || matches!(c, ':' | '_' | '-' | '.') {
                self.pos += 1;
            } else {
                break;
            }
        }
        if self.pos == start {
            return Err(XmlError::new(start, "expected a name"));
        }
        Ok(String::from_utf8_lossy(&self.bytes[start..self.pos]).into_owned())
    }

    fn expect(&mut self, byte: u8) -> Result<(), XmlError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(XmlError::new(
                self.pos,
                format!("expected `{}`", byte as char),
            ))
        }
    }

    fn parse_attribute_value(&mut self) -> Result<String, XmlError> {
        let quote = match self.peek() {
            Some(q @ (b'"' | b'\'')) => q,
            _ => return Err(XmlError::new(self.pos, "expected a quoted attribute value")),
        };
        self.pos += 1;
        let start = self.pos;
        while let Some(b) = self.peek() {
            if b == quote {
                let raw = String::from_utf8_lossy(&self.bytes[start..self.pos]).into_owned();
                self.pos += 1;
                return decode_entities(&raw, start);
            }
            self.pos += 1;
        }
        Err(XmlError::new(start, "unterminated attribute value"))
    }

    fn parse_element(&mut self) -> Result<XmlElement, XmlError> {
        self.expect(b'<')?;
        let name = self.parse_name()?;
        let mut element = XmlElement::new(name);
        loop {
            self.skip_whitespace();
            match self.peek() {
                Some(b'/') => {
                    self.pos += 1;
                    self.expect(b'>')?;
                    return Ok(element);
                }
                Some(b'>') => {
                    self.pos += 1;
                    break;
                }
                Some(_) => {
                    let attr_name = self.parse_name()?;
                    self.skip_whitespace();
                    self.expect(b'=')?;
                    self.skip_whitespace();
                    let value = self.parse_attribute_value()?;
                    element.attributes.push((attr_name, value));
                }
                None => return Err(XmlError::new(self.pos, "unterminated start tag")),
            }
        }
        // Content until the matching end tag.
        loop {
            if self.starts_with("<!--") {
                match self.bytes[self.pos..].windows(3).position(|w| w == b"-->") {
                    Some(end) => self.pos += end + 3,
                    None => return Err(XmlError::new(self.pos, "unterminated comment")),
                }
                continue;
            }
            if self.starts_with("</") {
                self.pos += 2;
                let closing = self.parse_name()?;
                if closing != element.name {
                    return Err(XmlError::new(
                        self.pos,
                        format!("mismatched end tag `</{closing}>` for `<{}>`", element.name),
                    ));
                }
                self.skip_whitespace();
                self.expect(b'>')?;
                return Ok(element);
            }
            match self.peek() {
                Some(b'<') => {
                    let child = self.parse_element()?;
                    element.children.push(XmlNode::Element(child));
                }
                Some(_) => {
                    let start = self.pos;
                    while let Some(b) = self.peek() {
                        if b == b'<' {
                            break;
                        }
                        self.pos += 1;
                    }
                    let raw = String::from_utf8_lossy(&self.bytes[start..self.pos]).into_owned();
                    let decoded = decode_entities(&raw, start)?;
                    if !decoded.trim().is_empty() {
                        element.children.push(XmlNode::Text(decoded));
                    }
                }
                None => {
                    return Err(XmlError::new(
                        self.pos,
                        format!("missing end tag for `<{}>`", element.name),
                    ))
                }
            }
        }
    }
}

/// Decodes the five predefined entities plus decimal/hexadecimal character references.
fn decode_entities(raw: &str, offset: usize) -> Result<String, XmlError> {
    if !raw.contains('&') {
        return Ok(raw.to_string());
    }
    let mut out = String::with_capacity(raw.len());
    let mut rest = raw;
    while let Some(amp) = rest.find('&') {
        out.push_str(&rest[..amp]);
        let after = &rest[amp..];
        let semi = after
            .find(';')
            .ok_or_else(|| XmlError::new(offset, "unterminated entity reference"))?;
        let entity = &after[1..semi];
        match entity {
            "amp" => out.push('&'),
            "lt" => out.push('<'),
            "gt" => out.push('>'),
            "quot" => out.push('"'),
            "apos" => out.push('\''),
            other if other.starts_with("#x") || other.starts_with("#X") => {
                let code = u32::from_str_radix(&other[2..], 16).map_err(|_| {
                    XmlError::new(offset, format!("bad character reference `&{other};`"))
                })?;
                out.push(char::from_u32(code).ok_or_else(|| {
                    XmlError::new(offset, format!("invalid character reference `&{other};`"))
                })?);
            }
            other if other.starts_with('#') => {
                let code: u32 = other[1..].parse().map_err(|_| {
                    XmlError::new(offset, format!("bad character reference `&{other};`"))
                })?;
                out.push(char::from_u32(code).ok_or_else(|| {
                    XmlError::new(offset, format!("invalid character reference `&{other};`"))
                })?);
            }
            other => {
                return Err(XmlError::new(
                    offset,
                    format!("unknown entity reference `&{other};`"),
                ))
            }
        }
        rest = &after[semi + 1..];
    }
    out.push_str(rest);
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_simple_document() {
        let doc = r#"<?xml version="1.0"?>
            <!-- a comment -->
            <library kind="test">
              <book id="1">Factor Graphs</book>
              <book id="2">Loopy &amp; Exact</book>
              <empty/>
            </library>"#;
        let root = parse(doc).unwrap();
        assert_eq!(root.name, "library");
        assert_eq!(root.attribute("kind"), Some("test"));
        let books: Vec<&XmlElement> = root.children_by_local_name("book").collect();
        assert_eq!(books.len(), 2);
        assert_eq!(books[0].text(), "Factor Graphs");
        assert_eq!(books[1].text(), "Loopy & Exact");
        assert!(root.child_by_local_name("empty").is_some());
    }

    #[test]
    fn qualified_names_expose_prefix_and_local_part() {
        let root =
            parse(r#"<rdf:RDF xmlns:rdf="http://www.w3.org/1999/02/22-rdf-syntax-ns#"/>"#).unwrap();
        assert_eq!(root.local_name(), "RDF");
        assert_eq!(root.prefix(), Some("rdf"));
        assert_eq!(local_part("owl:Class"), "Class");
        assert_eq!(local_part("Ontology"), "Ontology");
    }

    #[test]
    fn attribute_entities_are_decoded() {
        let root = parse(r#"<a title="Tom &amp; Jerry &#65;&#x42;"/>"#).unwrap();
        assert_eq!(root.attribute("title"), Some("Tom & Jerry AB"));
    }

    #[test]
    fn mismatched_end_tag_is_an_error() {
        let err = parse("<a><b></a></b>").unwrap_err();
        assert!(err.message.contains("mismatched end tag"));
    }

    #[test]
    fn unterminated_document_is_an_error() {
        assert!(parse("<a><b></b>").is_err());
        assert!(parse("<a foo=>").is_err());
        assert!(parse("<a foo=\"x>").is_err());
    }

    #[test]
    fn content_after_the_root_is_an_error() {
        assert!(parse("<a/><b/>").is_err());
        // Trailing comments and whitespace are fine.
        assert!(parse("<a/>  <!-- bye -->  ").is_ok());
    }

    #[test]
    fn unknown_entity_is_an_error() {
        assert!(parse("<a>&nbsp;</a>").is_err());
    }

    #[test]
    fn doctype_is_skipped() {
        let root = parse("<!DOCTYPE rdf:RDF><a/>").unwrap();
        assert_eq!(root.name, "a");
    }

    #[test]
    fn serialisation_round_trips() {
        let original = XmlElement::new("Alignment")
            .with_attribute("xmlns", "http://example.org/align#")
            .with_child(
                XmlElement::new("Cell")
                    .with_child(
                        XmlElement::new("entity1")
                            .with_attribute("rdf:resource", "http://a#Creator"),
                    )
                    .with_child(XmlElement::new("measure").with_text("0.87"))
                    .with_child(XmlElement::new("relation").with_text("=")),
            );
        let text = serialize(&original);
        let reparsed = parse(&text).unwrap();
        assert_eq!(reparsed, original);
    }

    #[test]
    fn serialisation_escapes_special_characters() {
        let element = XmlElement::new("note")
            .with_attribute("title", "a \"quoted\" & <tagged> title")
            .with_text("1 < 2 & 3 > 2");
        let text = serialize(&element);
        assert!(text.contains("&quot;quoted&quot;"));
        assert!(text.contains("&lt;tagged&gt;"));
        let reparsed = parse(&text).unwrap();
        assert_eq!(
            reparsed.attribute("title"),
            Some("a \"quoted\" & <tagged> title")
        );
        assert_eq!(reparsed.text(), "1 < 2 & 3 > 2");
    }

    #[test]
    fn nested_structure_round_trips_through_serialize_parse() {
        let tree = XmlElement::new("rdf:RDF")
            .with_attribute("xmlns:rdf", "http://www.w3.org/1999/02/22-rdf-syntax-ns#")
            .with_attribute("xmlns:owl", "http://www.w3.org/2002/07/owl#")
            .with_child(
                XmlElement::new("owl:Class")
                    .with_attribute("rdf:about", "#Publication")
                    .with_child(XmlElement::new("rdfs:label").with_text("publication")),
            )
            .with_child(
                XmlElement::new("owl:ObjectProperty").with_attribute("rdf:about", "#author"),
            );
        let text = serialize(&tree);
        assert_eq!(parse(&text).unwrap(), tree);
    }

    #[test]
    fn whitespace_only_text_is_dropped() {
        let root = parse("<a>\n   <b/>\n   </a>").unwrap();
        assert_eq!(root.children.len(), 1);
    }

    #[test]
    fn text_method_concatenates_direct_text_only() {
        let root = parse("<a>hello <b>inner</b> world</a>").unwrap();
        assert_eq!(root.text(), "hello  world");
        assert_eq!(root.child_by_local_name("b").unwrap().text(), "inner");
    }
}

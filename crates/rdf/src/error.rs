//! Error types of the RDF substrate.
//!
//! Parsing real-world files is the one place in this workspace where failure is an
//! expected outcome rather than a programming error, so the parsers return `Result`
//! with these error types instead of panicking.

use std::fmt;

/// An error raised while tokenising or parsing an XML document.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct XmlError {
    /// Byte offset in the input at which the problem was detected.
    pub offset: usize,
    /// Human-readable description.
    pub message: String,
}

impl XmlError {
    /// Creates an error at the given byte offset.
    pub fn new(offset: usize, message: impl Into<String>) -> Self {
        Self {
            offset,
            message: message.into(),
        }
    }
}

impl fmt::Display for XmlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "XML error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for XmlError {}

/// An error raised while interpreting parsed XML as RDF, OWL, or an alignment document.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RdfError {
    /// The underlying XML could not be parsed.
    Xml(XmlError),
    /// The document is well-formed XML but not the expected RDF/OWL/alignment shape.
    Structure(String),
}

impl fmt::Display for RdfError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RdfError::Xml(e) => write!(f, "{e}"),
            RdfError::Structure(msg) => write!(f, "RDF structure error: {msg}"),
        }
    }
}

impl std::error::Error for RdfError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RdfError::Xml(e) => Some(e),
            RdfError::Structure(_) => None,
        }
    }
}

impl From<XmlError> for RdfError {
    fn from(e: XmlError) -> Self {
        RdfError::Xml(e)
    }
}

/// An error raised while assembling a PDMS catalog from imported documents.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ImportError {
    /// A document failed to parse.
    Rdf(RdfError),
    /// An alignment references an ontology that was not imported.
    UnknownOntology(String),
    /// An alignment references an entity that does not exist in its ontology.
    UnknownEntity {
        /// The ontology the entity was looked up in.
        ontology: String,
        /// The entity IRI or local name that could not be resolved.
        entity: String,
    },
}

impl fmt::Display for ImportError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ImportError::Rdf(e) => write!(f, "{e}"),
            ImportError::UnknownOntology(name) => {
                write!(f, "alignment references unknown ontology `{name}`")
            }
            ImportError::UnknownEntity { ontology, entity } => {
                write!(
                    f,
                    "alignment references unknown entity `{entity}` in ontology `{ontology}`"
                )
            }
        }
    }
}

impl std::error::Error for ImportError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ImportError::Rdf(e) => Some(e),
            _ => None,
        }
    }
}

impl From<RdfError> for ImportError {
    fn from(e: RdfError) -> Self {
        ImportError::Rdf(e)
    }
}

impl From<XmlError> for ImportError {
    fn from(e: XmlError) -> Self {
        ImportError::Rdf(RdfError::Xml(e))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_offset_and_message() {
        let e = XmlError::new(42, "unexpected `<`");
        assert_eq!(e.to_string(), "XML error at byte 42: unexpected `<`");
    }

    #[test]
    fn conversions_wrap_the_source() {
        let xml = XmlError::new(0, "boom");
        let rdf: RdfError = xml.clone().into();
        assert!(matches!(rdf, RdfError::Xml(_)));
        let import: ImportError = rdf.into();
        assert!(import.to_string().contains("boom"));
        let import2: ImportError = xml.into();
        assert!(matches!(import2, ImportError::Rdf(_)));
    }

    #[test]
    fn structure_and_entity_errors_are_descriptive() {
        let e = RdfError::Structure("missing rdf:RDF root".into());
        assert!(e.to_string().contains("missing rdf:RDF root"));
        let e = ImportError::UnknownEntity {
            ontology: "bibtex".into(),
            entity: "#Creator".into(),
        };
        assert!(e.to_string().contains("bibtex"));
        assert!(e.to_string().contains("#Creator"));
        let e = ImportError::UnknownOntology("nope".into());
        assert!(e.to_string().contains("nope"));
    }

    #[test]
    fn error_sources_are_chained() {
        use std::error::Error;
        let import: ImportError = XmlError::new(1, "x").into();
        assert!(import.source().is_some());
        let structural = ImportError::UnknownOntology("o".into());
        assert!(structural.source().is_none());
    }
}

//! OWL ontology extraction: from RDF triples to PDMS schemas and back.
//!
//! The paper's evaluation tool "can import OWL schemas (serialized in RDF/XML)"
//! (Section 5.2). For the PDMS model only the concept inventory matters: the classes
//! and properties an ontology declares become the *attributes* of the corresponding
//! peer schema (Section 2 explicitly lists RDF classes and properties among the
//! attribute kinds). This module extracts that inventory from a parsed [`RdfGraph`],
//! converts it to a [`pdms_schema::Schema`] description, and serialises schemas back to
//! OWL so generated workloads can be exchanged as ordinary ontology files.

use crate::error::RdfError;
use crate::model::{iri_local_name, vocab, RdfGraph, Term};
use crate::rdfxml::{parse_rdf_xml, serialize_rdf_xml};
use pdms_schema::{AttributeKind, Catalog, PeerId, Schema};

/// One concept (class or property) of an ontology.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OwlConcept {
    /// Full IRI of the concept.
    pub iri: String,
    /// Local name (IRI fragment), used as the attribute name.
    pub name: String,
    /// `rdfs:label`, when present.
    pub label: Option<String>,
    /// The attribute kind the concept maps to.
    pub kind: AttributeKind,
}

/// An ontology: a named collection of concepts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Ontology {
    /// The ontology name (the local name of the `owl:Ontology` IRI, or a caller-chosen
    /// name when the document declares none).
    pub name: String,
    /// Base IRI of the ontology (the `owl:Ontology` subject, when declared).
    pub base_iri: Option<String>,
    /// The concepts in document order.
    pub concepts: Vec<OwlConcept>,
}

impl Ontology {
    /// Number of concepts.
    pub fn concept_count(&self) -> usize {
        self.concepts.len()
    }

    /// Finds a concept by IRI or by local name.
    pub fn concept(&self, reference: &str) -> Option<&OwlConcept> {
        self.concepts.iter().find(|c| {
            c.iri == reference || c.name == reference || c.name == iri_local_name(reference)
        })
    }
}

/// Extracts an ontology from a parsed RDF graph.
///
/// `fallback_name` is used when the document declares no `owl:Ontology` node.
pub fn extract_ontology(graph: &RdfGraph, fallback_name: &str) -> Result<Ontology, RdfError> {
    let ontology_node = graph
        .subjects_of_type(vocab::OWL_ONTOLOGY)
        .into_iter()
        .next();
    let base_iri = ontology_node.and_then(|t| t.as_iri()).map(str::to_string);
    let name = base_iri
        .as_deref()
        .map(iri_local_name)
        .filter(|n| !n.is_empty())
        .unwrap_or(fallback_name)
        .to_string();

    // Walk the triples in document order so concept indices follow the order in which
    // the source document declares its entities (this keeps attribute ids stable across
    // an export → import round trip).
    let mut concepts: Vec<OwlConcept> = Vec::new();
    for triple in graph.triples() {
        if triple.predicate != vocab::RDF_TYPE {
            continue;
        }
        let kind = match triple.object.as_iri() {
            Some(vocab::OWL_CLASS) => AttributeKind::Class,
            Some(vocab::OWL_OBJECT_PROPERTY) | Some(vocab::OWL_DATATYPE_PROPERTY) => {
                AttributeKind::Property
            }
            _ => continue,
        };
        let Some(iri) = triple.subject.as_iri() else {
            continue; // anonymous classes (restrictions) carry no concept name
        };
        let name = iri_local_name(iri).to_string();
        if name.is_empty() || concepts.iter().any(|c| c.iri == iri) {
            continue;
        }
        let label = graph
            .literal(&triple.subject, vocab::RDFS_LABEL)
            .map(str::to_string);
        concepts.push(OwlConcept {
            iri: iri.to_string(),
            name,
            label,
            kind,
        });
    }
    if concepts.is_empty() {
        return Err(RdfError::Structure(format!(
            "ontology `{name}` declares no classes or properties"
        )));
    }
    Ok(Ontology {
        name,
        base_iri,
        concepts,
    })
}

/// Parses an RDF/XML document and extracts its ontology in one step.
pub fn parse_ontology(input: &str, fallback_name: &str) -> Result<Ontology, RdfError> {
    let graph = parse_rdf_xml(input)?;
    extract_ontology(&graph, fallback_name)
}

/// Renders a PDMS schema as an OWL ontology graph: one `owl:Class` or property per
/// attribute, under the base IRI `http://pdms.example.org/<schema name>#`.
pub fn schema_to_rdf(schema: &Schema) -> RdfGraph {
    let base = schema_base_iri(schema.name());
    let mut graph = RdfGraph::new();
    graph.add(
        Term::iri(base.trim_end_matches('#')),
        vocab::RDF_TYPE,
        Term::iri(vocab::OWL_ONTOLOGY),
    );
    for attribute in schema.attributes() {
        let iri = format!("{base}{}", sanitize_local_name(&attribute.name));
        let class_iri = match attribute.kind {
            AttributeKind::Property => vocab::OWL_OBJECT_PROPERTY,
            _ => vocab::OWL_CLASS,
        };
        graph.add(
            Term::iri(iri.clone()),
            vocab::RDF_TYPE,
            Term::iri(class_iri),
        );
        graph.add(
            Term::iri(iri),
            vocab::RDFS_LABEL,
            Term::literal(attribute.name.clone()),
        );
    }
    graph
}

/// Serialises a PDMS schema as an OWL RDF/XML document.
pub fn schema_to_owl_xml(schema: &Schema) -> String {
    serialize_rdf_xml(&schema_to_rdf(schema))
}

/// Serialises the schema of every peer of a catalog, in peer order.
pub fn catalog_to_owl_xml(catalog: &Catalog) -> Vec<(PeerId, String)> {
    catalog
        .peers()
        .map(|peer| (peer, schema_to_owl_xml(catalog.peer_schema(peer))))
        .collect()
}

/// The base IRI used when exporting a schema.
pub fn schema_base_iri(schema_name: &str) -> String {
    format!(
        "http://pdms.example.org/{}#",
        sanitize_local_name(schema_name)
    )
}

/// Replaces characters that cannot appear in an IRI fragment.
fn sanitize_local_name(name: &str) -> String {
    let cleaned: String = name
        .chars()
        .map(|c| {
            if c.is_alphanumeric() || c == '_' || c == '-' || c == '.' {
                c
            } else {
                '_'
            }
        })
        .collect();
    if cleaned.is_empty() {
        "_".to_string()
    } else {
        cleaned
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdms_schema::SchemaBuilder;
    use pdms_schema::SchemaId;

    const DOC: &str = r#"<rdf:RDF xmlns:rdf="http://www.w3.org/1999/02/22-rdf-syntax-ns#"
         xmlns:rdfs="http://www.w3.org/2000/01/rdf-schema#"
         xmlns:owl="http://www.w3.org/2002/07/owl#"
         xml:base="http://example.org/bibtex-mit">
  <owl:Ontology rdf:about="http://example.org/bibtex-mit"/>
  <owl:Class rdf:ID="Publication"><rdfs:label>publication</rdfs:label></owl:Class>
  <owl:Class rdf:ID="Article"/>
  <owl:ObjectProperty rdf:ID="author"/>
  <owl:DatatypeProperty rdf:ID="year"/>
</rdf:RDF>"#;

    #[test]
    fn ontology_extraction_collects_classes_and_properties() {
        let ontology = parse_ontology(DOC, "fallback").unwrap();
        assert_eq!(ontology.name, "bibtex-mit");
        assert_eq!(ontology.concept_count(), 4);
        let publication = ontology.concept("Publication").unwrap();
        assert_eq!(publication.kind, AttributeKind::Class);
        assert_eq!(publication.label.as_deref(), Some("publication"));
        assert_eq!(
            ontology.concept("author").unwrap().kind,
            AttributeKind::Property
        );
        assert_eq!(
            ontology.concept("year").unwrap().kind,
            AttributeKind::Property
        );
        assert!(ontology
            .concept("http://example.org/bibtex-mit#Article")
            .is_some());
        assert!(ontology.concept("nothing").is_none());
    }

    #[test]
    fn fallback_name_is_used_when_no_ontology_node_exists() {
        let doc = r#"<rdf:RDF xmlns:rdf="http://www.w3.org/1999/02/22-rdf-syntax-ns#"
             xmlns:owl="http://www.w3.org/2002/07/owl#">
          <owl:Class rdf:about="http://x#A"/>
        </rdf:RDF>"#;
        let ontology = parse_ontology(doc, "my-fallback").unwrap();
        assert_eq!(ontology.name, "my-fallback");
        assert!(ontology.base_iri.is_none());
    }

    #[test]
    fn empty_ontologies_are_rejected() {
        let doc = r#"<rdf:RDF xmlns:rdf="http://www.w3.org/1999/02/22-rdf-syntax-ns#"
             xmlns:owl="http://www.w3.org/2002/07/owl#">
          <owl:Ontology rdf:about="http://x"/>
        </rdf:RDF>"#;
        assert!(parse_ontology(doc, "x").is_err());
    }

    #[test]
    fn schema_export_and_reimport_preserve_attribute_names() {
        let mut builder = SchemaBuilder::new(SchemaId(0), "ArtDatabank");
        builder.attributes(["Creator", "Item", "CreatedOn", "Title/Subtitle"]);
        let schema = builder.build();
        let xml = schema_to_owl_xml(&schema);
        let ontology = parse_ontology(&xml, "ArtDatabank").unwrap();
        assert_eq!(ontology.name, "ArtDatabank");
        assert_eq!(ontology.concept_count(), 4);
        // Labels carry the original names; local names are sanitised.
        assert!(ontology
            .concepts
            .iter()
            .any(|c| c.label.as_deref() == Some("Title/Subtitle")));
        assert!(ontology.concept("Title_Subtitle").is_some());
    }

    #[test]
    fn property_kinds_round_trip_through_owl() {
        let mut builder = SchemaBuilder::new(SchemaId(0), "rdfish");
        builder.attribute_with_kind("Person", AttributeKind::Class);
        builder.attribute_with_kind("hasName", AttributeKind::Property);
        let schema = builder.build();
        let ontology = parse_ontology(&schema_to_owl_xml(&schema), "rdfish").unwrap();
        assert_eq!(
            ontology.concept("Person").unwrap().kind,
            AttributeKind::Class
        );
        assert_eq!(
            ontology.concept("hasName").unwrap().kind,
            AttributeKind::Property
        );
    }

    #[test]
    fn catalog_export_produces_one_document_per_peer() {
        let mut catalog = Catalog::new();
        catalog.add_peer_with_schema("a", |s| {
            s.attributes(["x", "y"]);
        });
        catalog.add_peer_with_schema("b", |s| {
            s.attributes(["x", "z"]);
        });
        let docs = catalog_to_owl_xml(&catalog);
        assert_eq!(docs.len(), 2);
        for (peer, xml) in docs {
            let ontology = parse_ontology(&xml, catalog.peer_name(peer)).unwrap();
            assert_eq!(ontology.concept_count(), 2);
        }
    }

    #[test]
    fn sanitization_keeps_names_usable() {
        assert_eq!(sanitize_local_name("a b/c"), "a_b_c");
        assert_eq!(sanitize_local_name(""), "_");
        assert_eq!(sanitize_local_name("Date.created"), "Date.created");
    }
}

//! RDF / OWL / alignment-document substrate for the PDMS reproduction.
//!
//! Section 5.2 of the paper describes a tool that "can import OWL schemas (serialized
//! in RDF/XML) and simple RDF mappings", turns them into a PDMS, and runs the message
//! passing machinery over them. This crate is that ingestion layer, built from scratch
//! (no XML or RDF crates):
//!
//! * [`xml`] — a minimal XML reader/writer for the subset ontology documents use;
//! * [`model`] — RDF terms, triples, and an in-memory triple store with pattern lookups;
//! * [`rdfxml`] — RDF/XML parsing and serialisation;
//! * [`owl`] — extraction of classes and properties from OWL documents into
//!   [`pdms_schema::Schema`] attribute inventories, and the reverse export;
//! * [`alignment`] — the KnowledgeWeb/INRIA alignment format for pairwise mappings;
//! * [`import`] — assembling a [`pdms_schema::Catalog`] from imported documents and
//!   exporting any catalog back to OWL + alignment files.
//!
//! Together with `pdms-workloads` this lets the examples exercise the full external
//! loop the paper describes: generate or obtain ontologies, align them, write the
//! documents to disk, re-import them, and assess the mappings.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod alignment;
pub mod error;
pub mod import;
pub mod model;
pub mod owl;
pub mod rdfxml;
pub mod xml;

pub use alignment::{parse_alignment, serialize_alignment, AlignmentCell, AlignmentDoc};
pub use error::{ImportError, RdfError, XmlError};
pub use import::{
    export_alignments, export_catalog, import_catalog, import_catalog_with_oracle, CatalogExport,
    CatalogImport, Judgement,
};
pub use model::{iri_local_name, vocab, RdfGraph, Term, Triple};
pub use owl::{
    catalog_to_owl_xml, extract_ontology, parse_ontology, schema_to_owl_xml, Ontology, OwlConcept,
};
pub use rdfxml::{parse_rdf_xml, serialize_rdf_xml};
pub use xml::{XmlElement, XmlNode};

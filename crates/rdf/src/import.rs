//! Assembling a PDMS catalog from imported ontology and alignment documents — and
//! exporting a catalog back to the same formats.
//!
//! This is the programmatic equivalent of the paper's evaluation tool (Section 5.2):
//! OWL documents become peers (one schema per ontology, one attribute per concept),
//! alignment documents become directed mappings, and the resulting
//! [`pdms_schema::Catalog`] can be handed straight to the inference engine. The inverse
//! direction serialises any catalog as a set of OWL + alignment files, so generated
//! workloads can be exchanged with external tools and re-imported losslessly.

use crate::alignment::{serialize_alignment, AlignmentDoc};
use crate::error::ImportError;
use crate::model::iri_local_name;
use crate::owl::{schema_base_iri, schema_to_owl_xml, Ontology};
use pdms_schema::{AttributeId, Catalog, MappingId, PeerId};
use std::collections::BTreeMap;

/// How a correspondence should be judged when ground truth is available at import time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Judgement {
    /// The proposed target is semantically right.
    Correct,
    /// The proposed target is wrong; the right target is the named attribute (or no
    /// right target exists when `None`).
    Erroneous(Option<AttributeId>),
    /// No ground truth available; the correspondence is imported unjudged.
    Unknown,
}

/// The result of an import: the catalog plus the bookkeeping needed to refer back to
/// the source documents.
#[derive(Debug, Clone)]
pub struct CatalogImport {
    /// The assembled catalog.
    pub catalog: Catalog,
    /// Peer created for each ontology, by ontology name.
    pub peer_of_ontology: BTreeMap<String, PeerId>,
    /// For every imported alignment, the mapping it became (alignments whose cells all
    /// failed to resolve produce no mapping and are reported as `None`).
    pub mapping_of_alignment: Vec<Option<MappingId>>,
    /// Number of correspondences imported.
    pub imported_correspondences: usize,
    /// Number of cells skipped because their relation was not an equivalence.
    pub skipped_non_equivalence: usize,
}

/// Imports ontologies and alignments into a catalog, leaving every correspondence
/// unjudged (the realistic situation: imported mappings come with no ground truth).
pub fn import_catalog(
    ontologies: &[Ontology],
    alignments: &[AlignmentDoc],
) -> Result<CatalogImport, ImportError> {
    import_catalog_with_oracle(ontologies, alignments, |_, _, _, _| Judgement::Unknown)
}

/// Imports ontologies and alignments, consulting `oracle` for the ground truth of every
/// correspondence. The oracle receives `(source ontology name, source attribute name,
/// target ontology name, proposed target attribute name)`.
pub fn import_catalog_with_oracle(
    ontologies: &[Ontology],
    alignments: &[AlignmentDoc],
    oracle: impl Fn(&str, &str, &str, &str) -> Judgement,
) -> Result<CatalogImport, ImportError> {
    let mut catalog = Catalog::new();
    let mut peer_of_ontology: BTreeMap<String, PeerId> = BTreeMap::new();
    // Per peer: resolution table from concept IRI / name to the attribute id.
    let mut resolution: Vec<BTreeMap<String, AttributeId>> = Vec::new();

    for ontology in ontologies {
        let mut table: BTreeMap<String, AttributeId> = BTreeMap::new();
        let concepts = ontology.concepts.clone();
        let peer = catalog.add_peer_with_schema(ontology.name.clone(), |schema| {
            let mut used: BTreeMap<String, usize> = BTreeMap::new();
            for concept in &concepts {
                // Attribute names must be unique within a schema; disambiguate clashes
                // (same local name under different namespaces) with a numeric suffix.
                let base = concept.name.clone();
                let count = used.entry(base.clone()).or_insert(0);
                let name = if *count == 0 {
                    base.clone()
                } else {
                    format!("{base}_{count}")
                };
                *count += 1;
                let id = schema.attribute_with_kind(name, concept.kind);
                table.insert(concept.iri.clone(), id);
                table.entry(concept.name.clone()).or_insert(id);
                if let Some(label) = &concept.label {
                    table.entry(label.clone()).or_insert(id);
                }
            }
        });
        peer_of_ontology.insert(ontology.name.clone(), peer);
        debug_assert_eq!(peer.0, resolution.len());
        resolution.push(table);
    }

    // Secondary lookup: ontology base IRI → name, so alignments can reference either.
    let mut ontology_by_reference: BTreeMap<String, String> = BTreeMap::new();
    for ontology in ontologies {
        ontology_by_reference.insert(ontology.name.clone(), ontology.name.clone());
        if let Some(base) = &ontology.base_iri {
            ontology_by_reference.insert(base.clone(), ontology.name.clone());
            ontology_by_reference.insert(format!("{base}#"), ontology.name.clone());
        }
    }

    let resolve_ontology = |reference: &str| -> Result<String, ImportError> {
        if let Some(name) = ontology_by_reference.get(reference) {
            return Ok(name.clone());
        }
        let local = iri_local_name(reference);
        if let Some(name) = ontology_by_reference.get(local) {
            return Ok(name.clone());
        }
        Err(ImportError::UnknownOntology(reference.to_string()))
    };

    let mut mapping_of_alignment = Vec::with_capacity(alignments.len());
    let mut imported_correspondences = 0usize;
    let mut skipped_non_equivalence = 0usize;

    for alignment in alignments {
        let source_name = resolve_ontology(&alignment.onto1)?;
        let target_name = resolve_ontology(&alignment.onto2)?;
        let source = peer_of_ontology[&source_name];
        let target = peer_of_ontology[&target_name];

        // Resolve every cell up front so unknown entities fail the import instead of
        // silently shrinking the mapping.
        let mut resolved: Vec<(AttributeId, AttributeId, String, String)> = Vec::new();
        for cell in &alignment.cells {
            if cell.relation != "=" {
                skipped_non_equivalence += 1;
                continue;
            }
            let source_attr =
                resolve_entity(&resolution[source.0], &cell.entity1).ok_or_else(|| {
                    ImportError::UnknownEntity {
                        ontology: source_name.clone(),
                        entity: cell.entity1.clone(),
                    }
                })?;
            let target_attr =
                resolve_entity(&resolution[target.0], &cell.entity2).ok_or_else(|| {
                    ImportError::UnknownEntity {
                        ontology: target_name.clone(),
                        entity: cell.entity2.clone(),
                    }
                })?;
            resolved.push((
                source_attr,
                target_attr,
                iri_local_name(&cell.entity1).to_string(),
                iri_local_name(&cell.entity2).to_string(),
            ));
        }
        if resolved.is_empty() {
            mapping_of_alignment.push(None);
            continue;
        }
        imported_correspondences += resolved.len();
        let mapping = catalog.add_mapping(source, target, |mut m| {
            for (source_attr, target_attr, source_local, target_local) in &resolved {
                m = match oracle(&source_name, source_local, &target_name, target_local) {
                    Judgement::Correct => m.correct(*source_attr, *target_attr),
                    Judgement::Erroneous(Some(expected)) => {
                        m.erroneous(*source_attr, *target_attr, expected)
                    }
                    Judgement::Erroneous(None) => {
                        // No right answer exists in the target schema: point the
                        // expectation at an out-of-range attribute so the ground truth
                        // records "always wrong".
                        m.erroneous(*source_attr, *target_attr, AttributeId(usize::MAX / 2))
                    }
                    Judgement::Unknown => m.unjudged(*source_attr, *target_attr),
                };
            }
            m
        });
        mapping_of_alignment.push(Some(mapping));
    }

    Ok(CatalogImport {
        catalog,
        peer_of_ontology,
        mapping_of_alignment,
        imported_correspondences,
        skipped_non_equivalence,
    })
}

fn resolve_entity(table: &BTreeMap<String, AttributeId>, reference: &str) -> Option<AttributeId> {
    if let Some(id) = table.get(reference) {
        return Some(*id);
    }
    table.get(iri_local_name(reference)).copied()
}

/// One alignment document per mapping of a catalog, with entity IRIs derived from the
/// exported schema base IRIs ([`schema_base_iri`]).
pub fn export_alignments(catalog: &Catalog) -> Vec<AlignmentDoc> {
    catalog
        .mappings()
        .map(|mapping_id| {
            let (source, target) = catalog.mapping_endpoints(mapping_id);
            let source_schema = catalog.peer_schema(source);
            let target_schema = catalog.peer_schema(target);
            let source_base = schema_base_iri(source_schema.name());
            let target_base = schema_base_iri(target_schema.name());
            let mut doc = AlignmentDoc::new(
                source_base.trim_end_matches('#'),
                target_base.trim_end_matches('#'),
            );
            for (source_attr, correspondence) in catalog.mapping(mapping_id).correspondences() {
                let source_name = &source_schema
                    .attribute(source_attr)
                    .expect("catalog mappings reference existing attributes")
                    .name;
                let target_name = &target_schema
                    .attribute(correspondence.target)
                    .expect("catalog mappings reference existing attributes")
                    .name;
                doc.add_cell(
                    format!("{source_base}{}", sanitize(source_name)),
                    format!("{target_base}{}", sanitize(target_name)),
                    1.0,
                );
            }
            doc
        })
        .collect()
}

/// A full export of a catalog: one OWL document per peer and one alignment document per
/// mapping, as strings ready to be written to files.
#[derive(Debug, Clone)]
pub struct CatalogExport {
    /// `(peer name, OWL RDF/XML document)` in peer order.
    pub ontologies: Vec<(String, String)>,
    /// Serialised alignment documents, in mapping order.
    pub alignments: Vec<String>,
}

/// Exports a catalog as OWL + alignment documents.
pub fn export_catalog(catalog: &Catalog) -> CatalogExport {
    let ontologies = catalog
        .peers()
        .map(|peer| {
            (
                catalog.peer_name(peer).to_string(),
                schema_to_owl_xml(catalog.peer_schema(peer)),
            )
        })
        .collect();
    let alignments = export_alignments(catalog)
        .iter()
        .map(serialize_alignment)
        .collect();
    CatalogExport {
        ontologies,
        alignments,
    }
}

fn sanitize(name: &str) -> String {
    name.chars()
        .map(|c| {
            if c.is_alphanumeric() || c == '_' || c == '-' || c == '.' {
                c
            } else {
                '_'
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alignment::parse_alignment;
    use crate::owl::parse_ontology;
    use pdms_schema::AttributeKind;

    fn art_ontology() -> Ontology {
        parse_ontology(
            r#"<rdf:RDF xmlns:rdf="http://www.w3.org/1999/02/22-rdf-syntax-ns#"
                 xmlns:owl="http://www.w3.org/2002/07/owl#"
                 xml:base="http://example.org/art">
              <owl:Ontology rdf:about="http://example.org/art"/>
              <owl:Class rdf:ID="Creator"/>
              <owl:Class rdf:ID="Item"/>
              <owl:Class rdf:ID="CreatedOn"/>
            </rdf:RDF>"#,
            "art",
        )
        .unwrap()
    }

    fn winfs_ontology() -> Ontology {
        parse_ontology(
            r#"<rdf:RDF xmlns:rdf="http://www.w3.org/1999/02/22-rdf-syntax-ns#"
                 xmlns:owl="http://www.w3.org/2002/07/owl#"
                 xml:base="http://example.org/winfs">
              <owl:Ontology rdf:about="http://example.org/winfs"/>
              <owl:Class rdf:ID="DisplayName"/>
              <owl:Class rdf:ID="Keyword"/>
              <owl:Class rdf:ID="Date"/>
            </rdf:RDF>"#,
            "winfs",
        )
        .unwrap()
    }

    fn creator_alignment() -> AlignmentDoc {
        let mut doc = AlignmentDoc::new("http://example.org/art", "http://example.org/winfs");
        doc.add_cell(
            "http://example.org/art#Creator",
            "http://example.org/winfs#DisplayName",
            0.9,
        );
        doc.add_cell(
            "http://example.org/art#CreatedOn",
            "http://example.org/winfs#Date",
            0.7,
        );
        doc
    }

    #[test]
    fn import_builds_peers_and_mappings() {
        let import =
            import_catalog(&[art_ontology(), winfs_ontology()], &[creator_alignment()]).unwrap();
        assert_eq!(import.catalog.peer_count(), 2);
        assert_eq!(import.catalog.mapping_count(), 1);
        assert_eq!(import.imported_correspondences, 2);
        let art = import.peer_of_ontology["art"];
        let schema = import.catalog.peer_schema(art);
        assert_eq!(schema.attribute_count(), 3);
        assert_eq!(
            schema.attribute_by_name("Creator").unwrap().kind,
            AttributeKind::Class
        );
        // The imported mapping routes Creator to DisplayName.
        let mapping = import
            .catalog
            .mapping(import.mapping_of_alignment[0].unwrap());
        let creator = schema.attribute_by_name("Creator").unwrap().id;
        let winfs = import.peer_of_ontology["winfs"];
        let target_schema = import.catalog.peer_schema(winfs);
        assert_eq!(
            mapping.apply(creator),
            Some(target_schema.attribute_by_name("DisplayName").unwrap().id)
        );
        // Unjudged correspondences count as correct by convention.
        assert!(mapping.is_correct());
    }

    #[test]
    fn oracle_judgements_become_ground_truth() {
        let import = import_catalog_with_oracle(
            &[art_ontology(), winfs_ontology()],
            &[creator_alignment()],
            |_, source_attr, _, _| {
                if source_attr == "CreatedOn" {
                    Judgement::Erroneous(None)
                } else {
                    Judgement::Correct
                }
            },
        )
        .unwrap();
        let mapping = import.catalog.mapping(MappingId(0));
        assert!(!mapping.is_correct());
        assert_eq!(mapping.error_count(), 1);
        assert_eq!(import.catalog.erroneous_mapping_count(), 1);
    }

    #[test]
    fn unknown_ontology_and_entity_are_reported() {
        let err = import_catalog(&[art_ontology()], &[creator_alignment()]).unwrap_err();
        assert!(matches!(err, ImportError::UnknownOntology(_)));

        let mut bad_entity =
            AlignmentDoc::new("http://example.org/art", "http://example.org/winfs");
        bad_entity.add_cell(
            "http://example.org/art#NoSuch",
            "http://example.org/winfs#Date",
            0.5,
        );
        let err = import_catalog(&[art_ontology(), winfs_ontology()], &[bad_entity]).unwrap_err();
        assert!(matches!(err, ImportError::UnknownEntity { .. }));
    }

    #[test]
    fn non_equivalence_cells_are_skipped() {
        let mut doc = creator_alignment();
        doc.cells[1].relation = "<".to_string();
        let import = import_catalog(&[art_ontology(), winfs_ontology()], &[doc]).unwrap();
        assert_eq!(import.imported_correspondences, 1);
        assert_eq!(import.skipped_non_equivalence, 1);
    }

    #[test]
    fn alignment_with_no_usable_cell_produces_no_mapping() {
        let mut doc = AlignmentDoc::new("http://example.org/art", "http://example.org/winfs");
        doc.add_cell(
            "http://example.org/art#Creator",
            "http://example.org/winfs#DisplayName",
            0.9,
        );
        doc.cells[0].relation = "<".into();
        let import = import_catalog(&[art_ontology(), winfs_ontology()], &[doc]).unwrap();
        assert_eq!(import.catalog.mapping_count(), 0);
        assert_eq!(import.mapping_of_alignment, vec![None]);
    }

    #[test]
    fn export_then_import_round_trips_the_structure() {
        // Build a small catalog directly, export it to documents, re-import the
        // documents, and compare the structure.
        let mut catalog = Catalog::new();
        let a = catalog.add_peer_with_schema("ArtDatabank", |s| {
            s.attributes(["Creator", "Item", "CreatedOn"]);
        });
        let b = catalog.add_peer_with_schema("WinFS", |s| {
            s.attributes(["DisplayName", "Keyword", "Date"]);
        });
        catalog.add_mapping(a, b, |m| {
            m.correct(AttributeId(0), AttributeId(0))
                .correct(AttributeId(2), AttributeId(2))
        });
        catalog.add_mapping(b, a, |m| m.correct(AttributeId(0), AttributeId(0)));

        let export = export_catalog(&catalog);
        assert_eq!(export.ontologies.len(), 2);
        assert_eq!(export.alignments.len(), 2);

        let ontologies: Vec<Ontology> = export
            .ontologies
            .iter()
            .map(|(name, xml)| parse_ontology(xml, name).unwrap())
            .collect();
        let alignments: Vec<AlignmentDoc> = export
            .alignments
            .iter()
            .map(|xml| parse_alignment(xml).unwrap())
            .collect();
        let import = import_catalog(&ontologies, &alignments).unwrap();

        assert_eq!(import.catalog.peer_count(), catalog.peer_count());
        assert_eq!(import.catalog.mapping_count(), catalog.mapping_count());
        for mapping_id in catalog.mappings() {
            let original = catalog.mapping(mapping_id);
            let reimported = import.catalog.mapping(mapping_id);
            assert_eq!(
                original.correspondence_count(),
                reimported.correspondence_count()
            );
            // Attribute ids line up because both schemas list attributes in the same
            // order, so apply() must give the same answers.
            for (source_attr, correspondence) in original.correspondences() {
                assert_eq!(reimported.apply(source_attr), Some(correspondence.target));
            }
        }
    }
}

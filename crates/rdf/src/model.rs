//! The RDF data model: terms, triples, and an in-memory triple store.
//!
//! Only the features needed to interpret OWL ontology documents and simple RDF mapping
//! documents are implemented: IRIs, blank nodes, plain/typed literals, and a triple
//! store with pattern lookups. SPARQL, reification, named graphs and datatype semantics
//! are out of scope.

use std::collections::BTreeSet;
use std::fmt;

/// Well-known vocabulary IRIs used by the OWL extractor and the serializers.
pub mod vocab {
    /// The RDF namespace.
    pub const RDF_NS: &str = "http://www.w3.org/1999/02/22-rdf-syntax-ns#";
    /// The RDFS namespace.
    pub const RDFS_NS: &str = "http://www.w3.org/2000/01/rdf-schema#";
    /// The OWL namespace.
    pub const OWL_NS: &str = "http://www.w3.org/2002/07/owl#";
    /// `rdf:type`.
    pub const RDF_TYPE: &str = "http://www.w3.org/1999/02/22-rdf-syntax-ns#type";
    /// `rdfs:label`.
    pub const RDFS_LABEL: &str = "http://www.w3.org/2000/01/rdf-schema#label";
    /// `rdfs:comment`.
    pub const RDFS_COMMENT: &str = "http://www.w3.org/2000/01/rdf-schema#comment";
    /// `rdfs:subClassOf`.
    pub const RDFS_SUBCLASS_OF: &str = "http://www.w3.org/2000/01/rdf-schema#subClassOf";
    /// `rdfs:domain`.
    pub const RDFS_DOMAIN: &str = "http://www.w3.org/2000/01/rdf-schema#domain";
    /// `rdfs:range`.
    pub const RDFS_RANGE: &str = "http://www.w3.org/2000/01/rdf-schema#range";
    /// `owl:Ontology`.
    pub const OWL_ONTOLOGY: &str = "http://www.w3.org/2002/07/owl#Ontology";
    /// `owl:Class`.
    pub const OWL_CLASS: &str = "http://www.w3.org/2002/07/owl#Class";
    /// `owl:ObjectProperty`.
    pub const OWL_OBJECT_PROPERTY: &str = "http://www.w3.org/2002/07/owl#ObjectProperty";
    /// `owl:DatatypeProperty`.
    pub const OWL_DATATYPE_PROPERTY: &str = "http://www.w3.org/2002/07/owl#DatatypeProperty";
}

/// An RDF term.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Term {
    /// An IRI reference.
    Iri(String),
    /// A blank node with a document-scoped label.
    Blank(String),
    /// A literal with an optional language tag or datatype IRI.
    Literal {
        /// The lexical value.
        value: String,
        /// Language tag (`xml:lang`), if any.
        language: Option<String>,
        /// Datatype IRI, if any.
        datatype: Option<String>,
    },
}

impl Term {
    /// Convenience constructor for an IRI term.
    pub fn iri(value: impl Into<String>) -> Self {
        Term::Iri(value.into())
    }

    /// Convenience constructor for a plain literal.
    pub fn literal(value: impl Into<String>) -> Self {
        Term::Literal {
            value: value.into(),
            language: None,
            datatype: None,
        }
    }

    /// The IRI string, when the term is an IRI.
    pub fn as_iri(&self) -> Option<&str> {
        match self {
            Term::Iri(iri) => Some(iri),
            _ => None,
        }
    }

    /// The literal value, when the term is a literal.
    pub fn as_literal(&self) -> Option<&str> {
        match self {
            Term::Literal { value, .. } => Some(value),
            _ => None,
        }
    }

    /// The fragment or final path segment of an IRI — the "local name" used to match
    /// ontology entities to schema attributes.
    pub fn local_name(&self) -> Option<&str> {
        self.as_iri().map(iri_local_name)
    }
}

/// The fragment (after `#`) or last path segment (after the final `/`) of an IRI.
pub fn iri_local_name(iri: &str) -> &str {
    if let Some((_, frag)) = iri.rsplit_once('#') {
        frag
    } else if let Some((_, seg)) = iri.rsplit_once('/') {
        seg
    } else {
        iri
    }
}

impl fmt::Display for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Term::Iri(iri) => write!(f, "<{iri}>"),
            Term::Blank(label) => write!(f, "_:{label}"),
            Term::Literal {
                value,
                language,
                datatype,
            } => {
                write!(f, "\"{value}\"")?;
                if let Some(lang) = language {
                    write!(f, "@{lang}")?;
                }
                if let Some(dt) = datatype {
                    write!(f, "^^<{dt}>")?;
                }
                Ok(())
            }
        }
    }
}

/// One RDF statement.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Triple {
    /// The subject (an IRI or blank node).
    pub subject: Term,
    /// The predicate IRI.
    pub predicate: String,
    /// The object term.
    pub object: Term,
}

impl fmt::Display for Triple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} <{}> {} .", self.subject, self.predicate, self.object)
    }
}

/// An in-memory set of triples with pattern lookups.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RdfGraph {
    triples: Vec<Triple>,
}

impl RdfGraph {
    /// Creates an empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a triple (duplicates are kept out).
    pub fn add(&mut self, subject: Term, predicate: impl Into<String>, object: Term) {
        let triple = Triple {
            subject,
            predicate: predicate.into(),
            object,
        };
        if !self.triples.contains(&triple) {
            self.triples.push(triple);
        }
    }

    /// Number of distinct triples.
    pub fn len(&self) -> usize {
        self.triples.len()
    }

    /// True when the graph holds no triple.
    pub fn is_empty(&self) -> bool {
        self.triples.is_empty()
    }

    /// All triples in insertion order.
    pub fn triples(&self) -> impl Iterator<Item = &Triple> {
        self.triples.iter()
    }

    /// Triples matching an optional subject / predicate / object pattern (`None` is a
    /// wildcard).
    pub fn matching<'a>(
        &'a self,
        subject: Option<&Term>,
        predicate: Option<&str>,
        object: Option<&Term>,
    ) -> impl Iterator<Item = &'a Triple> + 'a {
        let subject = subject.cloned();
        let predicate = predicate.map(str::to_string);
        let object = object.cloned();
        self.triples.iter().filter(move |t| {
            subject.as_ref().is_none_or(|s| &t.subject == s)
                && predicate.as_deref().is_none_or(|p| t.predicate == p)
                && object.as_ref().is_none_or(|o| &t.object == o)
        })
    }

    /// Objects of all triples with the given subject and predicate.
    pub fn objects(&self, subject: &Term, predicate: &str) -> Vec<&Term> {
        self.matching(Some(subject), Some(predicate), None)
            .map(|t| &t.object)
            .collect()
    }

    /// Subjects of all triples with the given predicate and object.
    pub fn subjects(&self, predicate: &str, object: &Term) -> Vec<&Term> {
        self.matching(None, Some(predicate), Some(object))
            .map(|t| &t.subject)
            .collect()
    }

    /// Subjects whose `rdf:type` is the given class IRI, deduplicated and sorted.
    pub fn subjects_of_type(&self, class_iri: &str) -> Vec<&Term> {
        let class = Term::iri(class_iri);
        let set: BTreeSet<&Term> = self.subjects(vocab::RDF_TYPE, &class).into_iter().collect();
        set.into_iter().collect()
    }

    /// The first literal object of `(subject, predicate)`, if any.
    pub fn literal(&self, subject: &Term, predicate: &str) -> Option<&str> {
        self.objects(subject, predicate)
            .into_iter()
            .find_map(|o| o.as_literal())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> RdfGraph {
        let mut g = RdfGraph::new();
        let creator = Term::iri("http://example.org/art#Creator");
        g.add(
            creator.clone(),
            vocab::RDF_TYPE,
            Term::iri(vocab::OWL_CLASS),
        );
        g.add(creator.clone(), vocab::RDFS_LABEL, Term::literal("Creator"));
        g.add(
            Term::iri("http://example.org/art#painted"),
            vocab::RDF_TYPE,
            Term::iri(vocab::OWL_OBJECT_PROPERTY),
        );
        g
    }

    #[test]
    fn duplicates_are_ignored() {
        let mut g = sample();
        let before = g.len();
        g.add(
            Term::iri("http://example.org/art#Creator"),
            vocab::RDF_TYPE,
            Term::iri(vocab::OWL_CLASS),
        );
        assert_eq!(g.len(), before);
    }

    #[test]
    fn pattern_lookups_work() {
        let g = sample();
        let creator = Term::iri("http://example.org/art#Creator");
        assert_eq!(g.objects(&creator, vocab::RDF_TYPE).len(), 1);
        assert_eq!(g.subjects_of_type(vocab::OWL_CLASS).len(), 1);
        assert_eq!(g.subjects_of_type(vocab::OWL_OBJECT_PROPERTY).len(), 1);
        assert_eq!(g.literal(&creator, vocab::RDFS_LABEL), Some("Creator"));
        assert_eq!(g.matching(None, None, None).count(), 3);
    }

    #[test]
    fn local_names_strip_namespace() {
        assert_eq!(iri_local_name("http://example.org/art#Creator"), "Creator");
        assert_eq!(iri_local_name("http://example.org/art/Creator"), "Creator");
        assert_eq!(iri_local_name("Creator"), "Creator");
        assert_eq!(
            Term::iri("http://example.org/art#Creator").local_name(),
            Some("Creator")
        );
        assert_eq!(Term::literal("x").local_name(), None);
    }

    #[test]
    fn term_display_follows_ntriples_conventions() {
        assert_eq!(Term::iri("http://a#X").to_string(), "<http://a#X>");
        assert_eq!(Term::Blank("b0".into()).to_string(), "_:b0");
        let lit = Term::Literal {
            value: "publication".into(),
            language: Some("en".into()),
            datatype: None,
        };
        assert_eq!(lit.to_string(), "\"publication\"@en");
        let triple = Triple {
            subject: Term::iri("http://a#X"),
            predicate: vocab::RDF_TYPE.into(),
            object: Term::iri(vocab::OWL_CLASS),
        };
        assert!(triple.to_string().ends_with("."));
    }

    #[test]
    fn empty_graph_reports_empty() {
        let g = RdfGraph::new();
        assert!(g.is_empty());
        assert_eq!(g.len(), 0);
        assert_eq!(g.subjects_of_type(vocab::OWL_CLASS).len(), 0);
    }
}

//! RDF/XML reader and writer for the subset used by ontology documents.
//!
//! The grammar handled here is the one produced by ontology editors for class/property
//! declarations and by this crate's own serializer:
//!
//! * a root `rdf:RDF` element carrying `xmlns` declarations and an optional `xml:base`;
//! * node elements — `rdf:Description` or typed nodes like `owl:Class` — identified by
//!   `rdf:about` or `rdf:ID` (or treated as blank nodes when neither is present);
//! * property elements with an `rdf:resource` object, a nested node element, or literal
//!   text content (with optional `xml:lang` / `rdf:datatype`);
//! * non-RDF attributes on node elements, read as literal-valued properties.
//!
//! Containers, collections, reification and `rdf:parseType` are not supported; they do
//! not occur in the documents this crate needs to exchange.

use crate::error::RdfError;
use crate::model::{vocab, RdfGraph, Term, Triple};
use crate::xml::{self, XmlElement, XmlNode};
use std::collections::BTreeMap;

/// Parses an RDF/XML document into a triple graph.
pub fn parse_rdf_xml(input: &str) -> Result<RdfGraph, RdfError> {
    let root = xml::parse(input)?;
    if root.local_name() != "RDF" {
        return Err(RdfError::Structure(format!(
            "expected an rdf:RDF root element, found `{}`",
            root.name
        )));
    }
    let mut scope = NamespaceScope::default();
    scope.absorb(&root);
    let mut graph = RdfGraph::new();
    let mut blank_counter = 0usize;
    for child in root.child_elements() {
        parse_node_element(child, &scope, &mut graph, &mut blank_counter)?;
    }
    Ok(graph)
}

/// Serialises a triple graph as RDF/XML, grouping triples by subject.
///
/// IRIs are abbreviated against the standard RDF/RDFS/OWL namespaces plus any further
/// namespaces discovered in the predicates (assigned prefixes `ns0`, `ns1`, …).
pub fn serialize_rdf_xml(graph: &RdfGraph) -> String {
    let mut namespaces: BTreeMap<String, String> = BTreeMap::new();
    namespaces.insert(vocab::RDF_NS.to_string(), "rdf".to_string());
    namespaces.insert(vocab::RDFS_NS.to_string(), "rdfs".to_string());
    namespaces.insert(vocab::OWL_NS.to_string(), "owl".to_string());
    let mut next_custom = 0usize;
    for triple in graph.triples() {
        let ns = namespace_of(&triple.predicate);
        namespaces.entry(ns.to_string()).or_insert_with(|| {
            let prefix = format!("ns{next_custom}");
            next_custom += 1;
            prefix
        });
    }

    let mut root = XmlElement::new("rdf:RDF");
    for (ns, prefix) in &namespaces {
        root.attributes
            .push((format!("xmlns:{prefix}"), ns.clone()));
    }

    // Group triples by subject, preserving first-appearance order.
    let mut order: Vec<&Term> = Vec::new();
    let mut by_subject: BTreeMap<String, Vec<&Triple>> = BTreeMap::new();
    for triple in graph.triples() {
        let key = triple.subject.to_string();
        if !by_subject.contains_key(&key) {
            order.push(&triple.subject);
        }
        by_subject.entry(key).or_default().push(triple);
    }

    for subject in order {
        let mut description = XmlElement::new("rdf:Description");
        match subject {
            Term::Iri(iri) => description
                .attributes
                .push(("rdf:about".to_string(), iri.clone())),
            Term::Blank(label) => description
                .attributes
                .push(("rdf:nodeID".to_string(), label.clone())),
            Term::Literal { .. } => continue, // literals cannot be subjects
        }
        for triple in &by_subject[&subject.to_string()] {
            let qname = qname_for(&triple.predicate, &namespaces);
            let mut property = XmlElement::new(qname);
            match &triple.object {
                Term::Iri(iri) => property
                    .attributes
                    .push(("rdf:resource".to_string(), iri.clone())),
                Term::Blank(label) => property
                    .attributes
                    .push(("rdf:nodeID".to_string(), label.clone())),
                Term::Literal {
                    value,
                    language,
                    datatype,
                } => {
                    if let Some(lang) = language {
                        property
                            .attributes
                            .push(("xml:lang".to_string(), lang.clone()));
                    }
                    if let Some(dt) = datatype {
                        property
                            .attributes
                            .push(("rdf:datatype".to_string(), dt.clone()));
                    }
                    property.children.push(XmlNode::Text(value.clone()));
                }
            }
            description.children.push(XmlNode::Element(property));
        }
        root.children.push(XmlNode::Element(description));
    }
    xml::serialize(&root)
}

/// Namespace declarations in scope at some element.
#[derive(Debug, Clone, Default)]
struct NamespaceScope {
    /// `prefix → namespace IRI`; the default namespace is stored under the empty key.
    prefixes: BTreeMap<String, String>,
    /// `xml:base`, used to resolve `rdf:ID` and relative `rdf:about` values.
    base: Option<String>,
}

impl NamespaceScope {
    fn absorb(&mut self, element: &XmlElement) {
        for (name, value) in &element.attributes {
            if name == "xmlns" {
                self.prefixes.insert(String::new(), value.clone());
            } else if let Some(prefix) = name.strip_prefix("xmlns:") {
                self.prefixes.insert(prefix.to_string(), value.clone());
            } else if name == "xml:base" {
                self.base = Some(value.clone());
            }
        }
    }

    /// Expands a qualified element/attribute name to an IRI.
    fn expand(&self, qname: &str) -> Result<String, RdfError> {
        match qname.rsplit_once(':') {
            Some((prefix, local)) => match self.prefixes.get(prefix) {
                Some(ns) => Ok(format!("{ns}{local}")),
                None => Err(RdfError::Structure(format!(
                    "undeclared namespace prefix `{prefix}` in `{qname}`"
                ))),
            },
            None => match self.prefixes.get("") {
                Some(ns) => Ok(format!("{ns}{qname}")),
                None => Err(RdfError::Structure(format!(
                    "unprefixed name `{qname}` without a default namespace"
                ))),
            },
        }
    }

    /// Resolves an `rdf:about` / `rdf:resource` value against `xml:base` when relative.
    fn resolve(&self, reference: &str) -> String {
        if reference.contains("://") || reference.starts_with("urn:") {
            return reference.to_string();
        }
        match &self.base {
            Some(base) if reference.starts_with('#') => format!("{base}{reference}"),
            Some(base) if !reference.is_empty() => format!("{base}#{reference}"),
            Some(base) => base.clone(),
            None => reference.to_string(),
        }
    }
}

fn namespace_of(iri: &str) -> &str {
    if let Some(pos) = iri.rfind('#') {
        &iri[..=pos]
    } else if let Some(pos) = iri.rfind('/') {
        &iri[..=pos]
    } else {
        iri
    }
}

fn qname_for(iri: &str, namespaces: &BTreeMap<String, String>) -> String {
    let ns = namespace_of(iri);
    let local = &iri[ns.len()..];
    match namespaces.get(ns) {
        Some(prefix) => format!("{prefix}:{local}"),
        None => iri.to_string(),
    }
}

/// Parses one node element, returning the subject term.
fn parse_node_element(
    element: &XmlElement,
    parent_scope: &NamespaceScope,
    graph: &mut RdfGraph,
    blank_counter: &mut usize,
) -> Result<Term, RdfError> {
    let mut scope = parent_scope.clone();
    scope.absorb(element);

    // Subject.
    let subject = if let Some(about) = element.attribute("rdf:about") {
        Term::Iri(scope.resolve(about))
    } else if let Some(id) = element.attribute("rdf:ID") {
        Term::Iri(scope.resolve(&format!("#{id}")))
    } else if let Some(node_id) = element.attribute("rdf:nodeID") {
        Term::Blank(node_id.to_string())
    } else {
        *blank_counter += 1;
        Term::Blank(format!("genid{blank_counter}"))
    };

    // Typed node elements assert rdf:type.
    let element_iri = scope.expand(&element.name)?;
    let is_plain_description = element_iri == format!("{}Description", vocab::RDF_NS);
    if !is_plain_description {
        graph.add(subject.clone(), vocab::RDF_TYPE, Term::Iri(element_iri));
    }

    // Attribute properties (anything that is not rdf:* syntax or a namespace/xml attr).
    for (name, value) in &element.attributes {
        if name.starts_with("xmlns") || name.starts_with("xml:") {
            continue;
        }
        if matches!(
            name.as_str(),
            "rdf:about" | "rdf:ID" | "rdf:nodeID" | "rdf:datatype"
        ) {
            continue;
        }
        let predicate = scope.expand(name)?;
        if predicate == vocab::RDF_TYPE {
            graph.add(
                subject.clone(),
                vocab::RDF_TYPE,
                Term::Iri(scope.resolve(value)),
            );
        } else if !predicate.starts_with(vocab::RDF_NS) {
            graph.add(subject.clone(), predicate, Term::literal(value.clone()));
        }
    }

    // Property elements.
    for property in element.child_elements() {
        let mut property_scope = scope.clone();
        property_scope.absorb(property);
        let predicate = property_scope.expand(&property.name)?;
        if let Some(resource) = property.attribute("rdf:resource") {
            graph.add(
                subject.clone(),
                predicate,
                Term::Iri(property_scope.resolve(resource)),
            );
        } else if let Some(node_id) = property.attribute("rdf:nodeID") {
            graph.add(subject.clone(), predicate, Term::Blank(node_id.to_string()));
        } else if property.child_elements().next().is_some() {
            // Nested node element: recurse and connect.
            let nested = property
                .child_elements()
                .next()
                .expect("checked non-empty above");
            let object = parse_node_element(nested, &property_scope, graph, blank_counter)?;
            graph.add(subject.clone(), predicate, object);
        } else {
            let value = property.text();
            let language = property.attribute("xml:lang").map(str::to_string);
            let datatype = property
                .attribute("rdf:datatype")
                .map(|d| property_scope.resolve(d));
            graph.add(
                subject.clone(),
                predicate,
                Term::Literal {
                    value,
                    language,
                    datatype,
                },
            );
        }
    }

    Ok(subject)
}

#[cfg(test)]
mod tests {
    use super::*;

    const BIB: &str = r##"<?xml version="1.0"?>
<rdf:RDF xmlns:rdf="http://www.w3.org/1999/02/22-rdf-syntax-ns#"
         xmlns:rdfs="http://www.w3.org/2000/01/rdf-schema#"
         xmlns:owl="http://www.w3.org/2002/07/owl#"
         xml:base="http://example.org/bibtex">
  <owl:Ontology rdf:about="http://example.org/bibtex"/>
  <owl:Class rdf:ID="Publication">
    <rdfs:label xml:lang="en">publication</rdfs:label>
  </owl:Class>
  <owl:Class rdf:about="#Article">
    <rdfs:subClassOf rdf:resource="#Publication"/>
  </owl:Class>
  <owl:ObjectProperty rdf:about="#author">
    <rdfs:domain rdf:resource="#Publication"/>
  </owl:ObjectProperty>
  <owl:DatatypeProperty rdf:about="#year"/>
  <rdf:Description rdf:about="#note" rdfs:label="note text"/>
</rdf:RDF>"##;

    #[test]
    fn typed_nodes_produce_rdf_type_triples() {
        let graph = parse_rdf_xml(BIB).unwrap();
        let classes = graph.subjects_of_type(vocab::OWL_CLASS);
        assert_eq!(classes.len(), 2);
        assert_eq!(graph.subjects_of_type(vocab::OWL_OBJECT_PROPERTY).len(), 1);
        assert_eq!(
            graph.subjects_of_type(vocab::OWL_DATATYPE_PROPERTY).len(),
            1
        );
        assert_eq!(graph.subjects_of_type(vocab::OWL_ONTOLOGY).len(), 1);
    }

    #[test]
    fn rdf_id_and_relative_about_resolve_against_base() {
        let graph = parse_rdf_xml(BIB).unwrap();
        let publication = Term::iri("http://example.org/bibtex#Publication");
        let article = Term::iri("http://example.org/bibtex#Article");
        assert_eq!(
            graph.literal(&publication, vocab::RDFS_LABEL),
            Some("publication")
        );
        assert_eq!(
            graph.objects(&article, vocab::RDFS_SUBCLASS_OF),
            vec![&publication]
        );
    }

    #[test]
    fn language_tags_and_attribute_properties_are_read() {
        let graph = parse_rdf_xml(BIB).unwrap();
        let publication = Term::iri("http://example.org/bibtex#Publication");
        let label = graph
            .objects(&publication, vocab::RDFS_LABEL)
            .into_iter()
            .next()
            .unwrap();
        assert_eq!(
            label,
            &Term::Literal {
                value: "publication".into(),
                language: Some("en".into()),
                datatype: None
            }
        );
        let note = Term::iri("http://example.org/bibtex#note");
        assert_eq!(graph.literal(&note, vocab::RDFS_LABEL), Some("note text"));
    }

    #[test]
    fn nested_node_elements_become_blank_nodes() {
        let doc = r#"<rdf:RDF xmlns:rdf="http://www.w3.org/1999/02/22-rdf-syntax-ns#"
                              xmlns:ex="http://example.org/x#">
          <ex:Painting rdf:about="http://example.org/x#Mona">
            <ex:painter>
              <ex:Person>
                <ex:name>Leonardo</ex:name>
              </ex:Person>
            </ex:painter>
          </ex:Painting>
        </rdf:RDF>"#;
        let graph = parse_rdf_xml(doc).unwrap();
        let mona = Term::iri("http://example.org/x#Mona");
        let painters = graph.objects(&mona, "http://example.org/x#painter");
        assert_eq!(painters.len(), 1);
        assert!(matches!(painters[0], Term::Blank(_)));
        let person_type = graph.subjects_of_type("http://example.org/x#Person");
        assert_eq!(person_type.len(), 1);
        assert_eq!(
            graph.literal(person_type[0], "http://example.org/x#name"),
            Some("Leonardo")
        );
    }

    #[test]
    fn non_rdf_root_is_rejected() {
        let err = parse_rdf_xml("<Ontology xmlns=\"http://x#\"/>").unwrap_err();
        assert!(matches!(err, RdfError::Structure(_)));
    }

    #[test]
    fn undeclared_prefix_is_rejected() {
        let doc = r#"<rdf:RDF xmlns:rdf="http://www.w3.org/1999/02/22-rdf-syntax-ns#">
          <owl:Class rdf:about="http://x#A"/>
        </rdf:RDF>"#;
        let err = parse_rdf_xml(doc).unwrap_err();
        assert!(err.to_string().contains("undeclared namespace prefix"));
    }

    #[test]
    fn serialisation_round_trips_the_graph() {
        let original = parse_rdf_xml(BIB).unwrap();
        let text = serialize_rdf_xml(&original);
        let reparsed = parse_rdf_xml(&text).unwrap();
        // Same triples, regardless of order.
        assert_eq!(original.len(), reparsed.len());
        for triple in original.triples() {
            assert!(
                reparsed
                    .matching(
                        Some(&triple.subject),
                        Some(&triple.predicate),
                        Some(&triple.object)
                    )
                    .next()
                    .is_some(),
                "missing triple after round trip: {triple}"
            );
        }
    }

    #[test]
    fn serialisation_assigns_prefixes_to_custom_namespaces() {
        let mut graph = RdfGraph::new();
        graph.add(
            Term::iri("http://example.org/art#Creator"),
            "http://example.org/art#alignedWith",
            Term::iri("http://example.org/winfs#DisplayName"),
        );
        let text = serialize_rdf_xml(&graph);
        assert!(text.contains("xmlns:ns0="));
        let reparsed = parse_rdf_xml(&text).unwrap();
        assert_eq!(reparsed.len(), 1);
    }

    #[test]
    fn blank_subjects_survive_round_trips() {
        let mut graph = RdfGraph::new();
        graph.add(
            Term::Blank("cell1".into()),
            "http://example.org/align#entity1",
            Term::iri("http://example.org/a#Creator"),
        );
        graph.add(
            Term::Blank("cell1".into()),
            "http://example.org/align#measure",
            Term::literal("0.75"),
        );
        let text = serialize_rdf_xml(&graph);
        let reparsed = parse_rdf_xml(&text).unwrap();
        assert_eq!(reparsed.len(), 2);
        let subjects: Vec<&Term> =
            reparsed.subjects("http://example.org/align#measure", &Term::literal("0.75"));
        assert!(matches!(subjects[0], Term::Blank(_)));
    }
}

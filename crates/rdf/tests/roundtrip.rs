//! Property tests: documents produced by this crate must re-import losslessly.

use pdms_rdf::{
    export_catalog, import_catalog, parse_alignment, parse_ontology, parse_rdf_xml,
    serialize_alignment, serialize_rdf_xml, AlignmentDoc, Ontology, RdfGraph, Term,
};
use pdms_schema::{AttributeId, Catalog};
use proptest::prelude::*;

/// Strategy: short identifier-ish names (attribute / concept names).
fn name_strategy() -> impl Strategy<Value = String> {
    "[A-Za-z][A-Za-z0-9_]{0,12}"
}

/// Strategy: a catalog of 2–4 peers with 2–6 attributes each and a mapping along every
/// consecutive pair of peers (enough structure to exercise export/import).
fn catalog_strategy() -> impl Strategy<Value = Catalog> {
    let schema = prop::collection::btree_set(name_strategy(), 2..6);
    prop::collection::vec(schema, 2..4).prop_map(|schemas| {
        let mut catalog = Catalog::new();
        let peers: Vec<_> = schemas
            .iter()
            .enumerate()
            .map(|(i, names)| {
                catalog.add_peer_with_schema(format!("peer{i}"), |builder| {
                    for name in names {
                        builder.attribute(name.clone());
                    }
                })
            })
            .collect();
        for window in peers.windows(2) {
            let source_len = catalog.peer_schema(window[0]).attribute_count();
            let target_len = catalog.peer_schema(window[1]).attribute_count();
            catalog.add_mapping(window[0], window[1], |mut m| {
                for a in 0..source_len.min(target_len) {
                    m = m.unjudged(AttributeId(a), AttributeId(a));
                }
                m
            });
        }
        catalog
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn exported_catalogs_reimport_with_identical_structure(catalog in catalog_strategy()) {
        let export = export_catalog(&catalog);
        let ontologies: Vec<Ontology> = export
            .ontologies
            .iter()
            .map(|(name, xml)| parse_ontology(xml, name).unwrap())
            .collect();
        let alignments: Vec<AlignmentDoc> = export
            .alignments
            .iter()
            .map(|xml| parse_alignment(xml).unwrap())
            .collect();
        let import = import_catalog(&ontologies, &alignments).unwrap();
        prop_assert_eq!(import.catalog.peer_count(), catalog.peer_count());
        prop_assert_eq!(import.catalog.mapping_count(), catalog.mapping_count());
        for mapping in catalog.mappings() {
            let original = catalog.mapping(mapping);
            let reimported = import.catalog.mapping(mapping);
            prop_assert_eq!(original.correspondence_count(), reimported.correspondence_count());
            for (source_attr, correspondence) in original.correspondences() {
                prop_assert_eq!(reimported.apply(source_attr), Some(correspondence.target));
            }
        }
    }

    #[test]
    fn alignment_documents_round_trip(cells in prop::collection::vec((name_strategy(), name_strategy(), 0.0f64..=1.0), 0..12)) {
        let mut doc = AlignmentDoc::new("http://example.org/a", "http://example.org/b");
        for (left, right, measure) in &cells {
            doc.add_cell(
                format!("http://example.org/a#{left}"),
                format!("http://example.org/b#{right}"),
                *measure,
            );
        }
        let reparsed = parse_alignment(&serialize_alignment(&doc)).unwrap();
        prop_assert_eq!(reparsed.len(), doc.len());
        for (a, b) in doc.cells.iter().zip(&reparsed.cells) {
            prop_assert_eq!(&a.entity1, &b.entity1);
            prop_assert_eq!(&a.entity2, &b.entity2);
            prop_assert!((a.measure - b.measure).abs() < 1e-6);
        }
    }

    #[test]
    fn rdf_graphs_round_trip_through_rdfxml(entries in prop::collection::vec((name_strategy(), name_strategy(), name_strategy(), prop::bool::ANY), 1..20)) {
        let mut graph = RdfGraph::new();
        for (subject, predicate, object, literal) in &entries {
            let object_term = if *literal {
                Term::literal(object.clone())
            } else {
                Term::iri(format!("http://example.org/o#{object}"))
            };
            graph.add(
                Term::iri(format!("http://example.org/s#{subject}")),
                format!("http://example.org/p#{predicate}"),
                object_term,
            );
        }
        let reparsed = parse_rdf_xml(&serialize_rdf_xml(&graph)).unwrap();
        prop_assert_eq!(reparsed.len(), graph.len());
        for triple in graph.triples() {
            prop_assert!(
                reparsed
                    .matching(Some(&triple.subject), Some(&triple.predicate), Some(&triple.object))
                    .next()
                    .is_some(),
                "triple lost in round trip: {}", triple
            );
        }
    }
}

//! Two-state beliefs: the messages and marginals of the binary factor graph.
//!
//! Every variable in the PDMS factor graph is binary — a mapping is either `correct` or
//! `incorrect` for the attribute under consideration. Messages exchanged by the
//! sum-product algorithm, priors, and posterior marginals are therefore all elements of
//! the 1-simplex, represented here as a pair `[p_correct, p_incorrect]`.

use std::fmt;
use std::ops::{Mul, MulAssign};

/// Index of the `correct` state in a [`Belief`].
pub const CORRECT: usize = 0;
/// Index of the `incorrect` state in a [`Belief`].
pub const INCORRECT: usize = 1;

/// A (not necessarily normalised) non-negative measure over `{correct, incorrect}`.
///
/// Beliefs behave multiplicatively, matching the product steps of the sum-product
/// algorithm: `a * b` is the component-wise product. [`Belief::normalized`] rescales so
/// the components sum to one (the `α` factor in the paper's posterior equation).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Belief {
    values: [f64; 2],
}

impl Belief {
    /// Builds a belief from raw (non-negative) weights.
    ///
    /// # Panics
    /// Panics if a weight is negative or NaN.
    pub fn from_weights(correct: f64, incorrect: f64) -> Self {
        assert!(
            correct >= 0.0 && incorrect >= 0.0 && correct.is_finite() && incorrect.is_finite(),
            "belief weights must be finite and non-negative, got [{correct}, {incorrect}]"
        );
        Self {
            values: [correct, incorrect],
        }
    }

    /// Builds the normalised belief with `P(correct) = p`.
    ///
    /// # Panics
    /// Panics if `p` is outside `[0, 1]`.
    pub fn from_probability(p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "probability {p} outside [0, 1]");
        Self::from_weights(p, 1.0 - p)
    }

    /// The unit (uninformative) message: `[1, 1]`. This is what peers assume they have
    /// received from everyone else before the first real message arrives (Section 4.3).
    pub fn unit() -> Self {
        Self::from_weights(1.0, 1.0)
    }

    /// The maximum-entropy prior `P(correct) = 0.5` (Section 4.4).
    pub fn uniform() -> Self {
        Self::from_probability(0.5)
    }

    /// Weight of the `correct` state (unnormalised).
    pub fn correct(&self) -> f64 {
        self.values[CORRECT]
    }

    /// Weight of the `incorrect` state (unnormalised).
    pub fn incorrect(&self) -> f64 {
        self.values[INCORRECT]
    }

    /// Weight of a state by index (0 = correct, 1 = incorrect).
    pub fn weight(&self, state: usize) -> f64 {
        self.values[state]
    }

    /// Total mass.
    pub fn sum(&self) -> f64 {
        self.values[0] + self.values[1]
    }

    /// Normalised copy; a zero-mass belief normalises to the uniform distribution so
    /// the algorithm degrades gracefully instead of dividing by zero (this can happen
    /// transiently when a feedback factor assigns probability zero to every consistent
    /// configuration).
    pub fn normalized(&self) -> Self {
        let s = self.sum();
        if s <= f64::EPSILON {
            Self::uniform()
        } else {
            Self::from_weights(self.values[0] / s, self.values[1] / s)
        }
    }

    /// `P(correct)` of the normalised belief.
    pub fn probability_correct(&self) -> f64 {
        self.normalized().correct()
    }

    /// Component-wise product, the message-combination step of sum-product.
    pub fn product(&self, other: &Self) -> Self {
        Self::from_weights(
            self.values[0] * other.values[0],
            self.values[1] * other.values[1],
        )
    }

    /// Damped interpolation towards `target`: `(1-λ)·self + λ·target`, applied on the
    /// normalised distributions. Damping (λ < 1) is a standard stabiliser for loopy BP.
    pub fn damped_towards(&self, target: &Self, lambda: f64) -> Self {
        let a = self.normalized();
        let b = target.normalized();
        let l = lambda.clamp(0.0, 1.0);
        Self::from_weights(
            (1.0 - l) * a.values[0] + l * b.values[0],
            (1.0 - l) * a.values[1] + l * b.values[1],
        )
    }

    /// L∞ distance between the normalised distributions; the convergence criterion of
    /// the iterative schedules.
    pub fn distance(&self, other: &Self) -> f64 {
        let a = self.normalized();
        let b = other.normalized();
        (a.values[0] - b.values[0])
            .abs()
            .max((a.values[1] - b.values[1]).abs())
    }

    /// True when all weights are finite (guards against numerical blow-ups in long
    /// message products).
    pub fn is_finite(&self) -> bool {
        self.values.iter().all(|v| v.is_finite())
    }
}

impl Default for Belief {
    fn default() -> Self {
        Self::unit()
    }
}

impl Mul for Belief {
    type Output = Belief;
    fn mul(self, rhs: Belief) -> Belief {
        self.product(&rhs)
    }
}

impl MulAssign for Belief {
    fn mul_assign(&mut self, rhs: Belief) {
        *self = self.product(&rhs);
    }
}

impl fmt::Display for Belief {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let n = self.normalized();
        write!(f, "P(correct)={:.4}", n.correct())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_probability_normalises() {
        let b = Belief::from_probability(0.7);
        assert!((b.correct() - 0.7).abs() < 1e-12);
        assert!((b.incorrect() - 0.3).abs() < 1e-12);
        assert!((b.sum() - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn probability_out_of_range_panics() {
        Belief::from_probability(1.5);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_weight_panics() {
        Belief::from_weights(-1.0, 0.5);
    }

    #[test]
    fn product_is_componentwise() {
        let a = Belief::from_weights(0.5, 2.0);
        let b = Belief::from_weights(4.0, 0.25);
        let c = a * b;
        assert!((c.correct() - 2.0).abs() < 1e-12);
        assert!((c.incorrect() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn unit_is_multiplicative_identity() {
        let a = Belief::from_weights(0.3, 0.9);
        let c = a * Belief::unit();
        assert_eq!(a, c);
    }

    #[test]
    fn zero_mass_normalises_to_uniform() {
        let z = Belief::from_weights(0.0, 0.0);
        assert_eq!(z.normalized(), Belief::uniform());
        assert!((z.probability_correct() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn damping_interpolates() {
        let a = Belief::from_probability(0.0);
        let b = Belief::from_probability(1.0);
        let mid = a.damped_towards(&b, 0.5);
        assert!((mid.probability_correct() - 0.5).abs() < 1e-12);
        let none = a.damped_towards(&b, 0.0);
        assert!((none.probability_correct() - 0.0).abs() < 1e-12);
        let full = a.damped_towards(&b, 1.0);
        assert!((full.probability_correct() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn distance_is_symmetric_and_zero_on_equal() {
        let a = Belief::from_probability(0.2);
        let b = Belief::from_probability(0.9);
        assert!((a.distance(&b) - b.distance(&a)).abs() < 1e-12);
        assert_eq!(a.distance(&a), 0.0);
        assert!((a.distance(&b) - 0.7).abs() < 1e-12);
    }

    #[test]
    fn display_shows_probability() {
        assert_eq!(
            Belief::from_probability(0.25).to_string(),
            "P(correct)=0.2500"
        );
    }
}

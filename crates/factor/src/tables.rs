//! Dense potential tables over small sets of binary variables.
//!
//! Variable elimination ([`crate::elimination`]), junction-tree propagation
//! ([`crate::junction_tree`]) and MAP search ([`crate::max_product`]) all manipulate
//! intermediate potentials: non-negative functions over a few binary variables that are
//! multiplied together and summed (or maximised) out one variable at a time. This
//! module provides that shared representation.
//!
//! A [`DenseTable`] stores one value per joint assignment of its scope, indexed by the
//! binary number formed with scope position 0 as the lowest bit — the same convention
//! as [`crate::factor::Factor::table`].

use crate::graph::{FactorGraph, FactorId, VariableId};

/// A dense non-negative potential over an ordered scope of binary variables.
#[derive(Debug, Clone, PartialEq)]
pub struct DenseTable {
    scope: Vec<VariableId>,
    values: Vec<f64>,
}

impl DenseTable {
    /// The scalar potential `1` over the empty scope (the multiplicative identity).
    pub fn unit() -> Self {
        Self {
            scope: Vec::new(),
            values: vec![1.0],
        }
    }

    /// Builds a table from an explicit scope and value vector.
    ///
    /// # Panics
    /// Panics if `values.len() != 2^scope.len()`, if the scope repeats a variable, or if
    /// any value is negative or non-finite.
    pub fn new(scope: Vec<VariableId>, values: Vec<f64>) -> Self {
        assert_eq!(
            values.len(),
            1usize << scope.len(),
            "table over {} variables needs 2^{} values, got {}",
            scope.len(),
            scope.len(),
            values.len()
        );
        assert!(
            values.iter().all(|v| *v >= 0.0 && v.is_finite()),
            "table values must be finite and non-negative"
        );
        let mut sorted = scope.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), scope.len(), "scope must not repeat variables");
        Self { scope, values }
    }

    /// Materialises one factor of a factor graph as a dense table.
    pub fn from_factor(graph: &FactorGraph, factor: FactorId) -> Self {
        let scope: Vec<VariableId> = graph.scope_of(factor).to_vec();
        let n = scope.len();
        let mut values = Vec::with_capacity(1usize << n);
        let mut assignment = vec![0usize; n];
        for code in 0..(1usize << n) {
            for (pos, state) in assignment.iter_mut().enumerate() {
                *state = (code >> pos) & 1;
            }
            values.push(graph.factor(factor).evaluate(&assignment));
        }
        Self { scope, values }
    }

    /// The ordered scope of the table.
    pub fn scope(&self) -> &[VariableId] {
        &self.scope
    }

    /// The raw values (length `2^scope.len()`).
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// True when the table has an empty scope (a scalar).
    pub fn is_scalar(&self) -> bool {
        self.scope.is_empty()
    }

    /// The scalar value of an empty-scope table.
    ///
    /// # Panics
    /// Panics if the table still has variables in scope.
    pub fn scalar(&self) -> f64 {
        assert!(
            self.is_scalar(),
            "table still has {} variables in scope",
            self.scope.len()
        );
        self.values[0]
    }

    /// Position of a variable in the scope.
    pub fn position(&self, variable: VariableId) -> Option<usize> {
        self.scope.iter().position(|v| *v == variable)
    }

    /// Value at a full assignment of the scope (one state per scope position).
    pub fn value_at(&self, assignment: &[usize]) -> f64 {
        assert_eq!(
            assignment.len(),
            self.scope.len(),
            "assignment/scope mismatch"
        );
        let mut index = 0usize;
        for (pos, state) in assignment.iter().enumerate() {
            assert!(*state < 2, "states must be 0 or 1");
            index |= state << pos;
        }
        self.values[index]
    }

    /// Pointwise product with another table; the result's scope is the union of the two
    /// scopes (this table's variables first, then the other's new variables).
    pub fn multiply(&self, other: &DenseTable) -> DenseTable {
        let mut scope = self.scope.clone();
        for v in &other.scope {
            if !scope.contains(v) {
                scope.push(*v);
            }
        }
        let n = scope.len();
        let mut values = Vec::with_capacity(1usize << n);
        let mut assignment = vec![0usize; n];
        // Precompute, for each operand, where each of its scope variables sits in the
        // result scope.
        let self_pos: Vec<usize> = self
            .scope
            .iter()
            .map(|v| {
                scope
                    .iter()
                    .position(|s| s == v)
                    .expect("own scope is in the union")
            })
            .collect();
        let other_pos: Vec<usize> = other
            .scope
            .iter()
            .map(|v| {
                scope
                    .iter()
                    .position(|s| s == v)
                    .expect("other scope is in the union")
            })
            .collect();
        for code in 0..(1usize << n) {
            for (pos, state) in assignment.iter_mut().enumerate() {
                *state = (code >> pos) & 1;
            }
            let mut self_index = 0usize;
            for (k, &p) in self_pos.iter().enumerate() {
                self_index |= assignment[p] << k;
            }
            let mut other_index = 0usize;
            for (k, &p) in other_pos.iter().enumerate() {
                other_index |= assignment[p] << k;
            }
            values.push(self.values[self_index] * other.values[other_index]);
        }
        DenseTable { scope, values }
    }

    /// Sums a variable out of the table. Summing out a variable that is not in scope is
    /// a no-op (returns a clone).
    pub fn sum_out(&self, variable: VariableId) -> DenseTable {
        self.reduce(variable, f64::max /* unused */, true)
    }

    /// Maximises a variable out of the table (the max-product counterpart of
    /// [`DenseTable::sum_out`]).
    pub fn max_out(&self, variable: VariableId) -> DenseTable {
        self.reduce(variable, f64::max, false)
    }

    fn reduce(&self, variable: VariableId, combine: fn(f64, f64) -> f64, sum: bool) -> DenseTable {
        let Some(pos) = self.position(variable) else {
            return self.clone();
        };
        let scope: Vec<VariableId> = self
            .scope
            .iter()
            .copied()
            .filter(|v| *v != variable)
            .collect();
        let n = scope.len();
        let mut values = vec![if sum { 0.0 } else { f64::NEG_INFINITY }; 1usize << n];
        for (code, &value) in self.values.iter().enumerate() {
            // Remove the bit at `pos` to get the index in the reduced table.
            let low = code & ((1usize << pos) - 1);
            let high = (code >> (pos + 1)) << pos;
            let reduced = low | high;
            if sum {
                values[reduced] += value;
            } else {
                values[reduced] = combine(values[reduced], value);
            }
        }
        if !sum {
            for v in &mut values {
                if !v.is_finite() {
                    *v = 0.0;
                }
            }
        }
        DenseTable { scope, values }
    }

    /// Restricts (conditions) the table to `variable = state`, removing the variable
    /// from the scope. Restricting a variable not in scope is a no-op.
    pub fn restrict(&self, variable: VariableId, state: usize) -> DenseTable {
        assert!(state < 2, "states must be 0 or 1");
        let Some(pos) = self.position(variable) else {
            return self.clone();
        };
        let scope: Vec<VariableId> = self
            .scope
            .iter()
            .copied()
            .filter(|v| *v != variable)
            .collect();
        let n = scope.len();
        let mut values = Vec::with_capacity(1usize << n);
        for reduced in 0..(1usize << n) {
            let low = reduced & ((1usize << pos) - 1);
            let high = (reduced >> pos) << (pos + 1);
            let full = low | high | (state << pos);
            values.push(self.values[full]);
        }
        DenseTable { scope, values }
    }

    /// Marginal `P(variable = correct)` of a table interpreted as an unnormalised joint
    /// distribution over its scope.
    ///
    /// # Panics
    /// Panics if the variable is not in scope.
    pub fn marginal_correct(&self, variable: VariableId) -> f64 {
        let pos = self
            .position(variable)
            .unwrap_or_else(|| panic!("variable {variable} not in table scope"));
        let mut mass = [0.0f64; 2];
        for (code, &value) in self.values.iter().enumerate() {
            mass[(code >> pos) & 1] += value;
        }
        let total = mass[0] + mass[1];
        if total <= f64::EPSILON {
            0.5
        } else {
            mass[0] / total
        }
    }

    /// Normalised copy (values sum to one). A zero-mass table becomes uniform.
    pub fn normalized(&self) -> DenseTable {
        let total: f64 = self.values.iter().sum();
        let values = if total <= f64::EPSILON {
            vec![1.0 / self.values.len() as f64; self.values.len()]
        } else {
            self.values.iter().map(|v| v / total).collect()
        };
        DenseTable {
            scope: self.scope.clone(),
            values,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::belief::Belief;
    use crate::factor::Factor;

    fn v(i: usize) -> VariableId {
        VariableId(i)
    }

    #[test]
    fn unit_is_a_scalar_one() {
        let u = DenseTable::unit();
        assert!(u.is_scalar());
        assert_eq!(u.scalar(), 1.0);
    }

    #[test]
    fn from_factor_materialises_the_cpt() {
        let mut g = FactorGraph::new();
        let a = g.add_variable("a");
        let b = g.add_variable("b");
        let f = g.add_factor(Factor::feedback(vec![a, b], true, 0.25));
        let t = DenseTable::from_factor(&g, f);
        assert_eq!(t.scope(), &[a, b]);
        assert_eq!(t.value_at(&[0, 0]), 1.0);
        assert_eq!(t.value_at(&[1, 0]), 0.0);
        assert_eq!(t.value_at(&[0, 1]), 0.0);
        assert_eq!(t.value_at(&[1, 1]), 0.25);
    }

    #[test]
    fn multiply_aligns_shared_variables() {
        // t1 over (a, b), t2 over (b, c): result over (a, b, c).
        let t1 = DenseTable::new(vec![v(0), v(1)], vec![1.0, 2.0, 3.0, 4.0]);
        let t2 = DenseTable::new(vec![v(1), v(2)], vec![10.0, 20.0, 30.0, 40.0]);
        let p = t1.multiply(&t2);
        assert_eq!(p.scope(), &[v(0), v(1), v(2)]);
        // Assignment a=1, b=1, c=0: t1[a=1,b=1]=4, t2[b=1,c=0]=20.
        assert_eq!(p.value_at(&[1, 1, 0]), 80.0);
        // Assignment a=0, b=1, c=1: t1[0,1]=3, t2[1,1]=40.
        assert_eq!(p.value_at(&[0, 1, 1]), 120.0);
    }

    #[test]
    fn multiply_by_unit_is_identity() {
        let t = DenseTable::new(vec![v(3)], vec![0.2, 0.8]);
        let p = DenseTable::unit().multiply(&t);
        assert_eq!(p.scope(), &[v(3)]);
        assert_eq!(p.values(), t.values());
    }

    #[test]
    fn sum_out_removes_the_variable() {
        let t = DenseTable::new(vec![v(0), v(1)], vec![1.0, 2.0, 3.0, 4.0]);
        let s = t.sum_out(v(0));
        assert_eq!(s.scope(), &[v(1)]);
        assert_eq!(s.values(), &[3.0, 7.0]);
        let s2 = t.sum_out(v(1));
        assert_eq!(s2.scope(), &[v(0)]);
        assert_eq!(s2.values(), &[4.0, 6.0]);
        // Summing out a variable not in scope is a no-op.
        assert_eq!(t.sum_out(v(9)).values(), t.values());
    }

    #[test]
    fn max_out_keeps_the_best_value() {
        let t = DenseTable::new(vec![v(0), v(1)], vec![1.0, 2.0, 3.0, 4.0]);
        let m = t.max_out(v(0));
        assert_eq!(m.scope(), &[v(1)]);
        assert_eq!(m.values(), &[2.0, 4.0]);
    }

    #[test]
    fn restrict_conditions_on_a_state() {
        let t = DenseTable::new(vec![v(0), v(1)], vec![1.0, 2.0, 3.0, 4.0]);
        let r = t.restrict(v(0), 1);
        assert_eq!(r.scope(), &[v(1)]);
        assert_eq!(r.values(), &[2.0, 4.0]);
        let r2 = t.restrict(v(1), 0);
        assert_eq!(r2.values(), &[1.0, 2.0]);
    }

    #[test]
    fn marginal_correct_matches_hand_computation() {
        // Joint over (a, b) proportional to [1, 2, 3, 4]; P(a=0) = (1+3)/10.
        let t = DenseTable::new(vec![v(0), v(1)], vec![1.0, 2.0, 3.0, 4.0]);
        assert!((t.marginal_correct(v(0)) - 0.4).abs() < 1e-12);
        assert!((t.marginal_correct(v(1)) - 0.3).abs() < 1e-12);
    }

    #[test]
    fn normalization_handles_zero_mass() {
        let z = DenseTable::new(vec![v(0)], vec![0.0, 0.0]);
        assert_eq!(z.normalized().values(), &[0.5, 0.5]);
        let t = DenseTable::new(vec![v(0)], vec![1.0, 3.0]);
        assert_eq!(t.normalized().values(), &[0.25, 0.75]);
    }

    #[test]
    fn prior_factor_round_trips_through_a_table() {
        let mut g = FactorGraph::new();
        let a = g.add_variable("a");
        let f = g.add_factor(Factor::prior(a, Belief::from_probability(0.8)));
        let t = DenseTable::from_factor(&g, f);
        assert!((t.marginal_correct(a) - 0.8).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "scope must not repeat")]
    fn repeated_scope_variables_panic() {
        DenseTable::new(vec![v(0), v(0)], vec![1.0, 1.0, 1.0, 1.0]);
    }

    #[test]
    #[should_panic(expected = "needs 2^")]
    fn wrong_value_count_panics() {
        DenseTable::new(vec![v(0)], vec![1.0]);
    }
}

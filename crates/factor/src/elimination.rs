//! Exact marginals by variable elimination.
//!
//! The brute-force oracle of [`crate::exact`] enumerates all `2^n` joint assignments
//! and is therefore unusable beyond a couple of dozen variables. Variable elimination
//! exploits the factorisation instead: variables are summed out one at a time, and the
//! cost is exponential only in the size of the largest intermediate table (the induced
//! width of the elimination ordering), not in the total number of variables. PDMS
//! factor graphs are sparse — a feedback factor touches only the mappings of one cycle
//! — so elimination comfortably handles the synthetic networks of Section 5 that the
//! enumeration baseline cannot.
//!
//! The ordering is chosen greedily by the min-degree heuristic on the interaction
//! graph, which is the standard choice for graphs of this size.

use crate::graph::{FactorGraph, VariableId};
use crate::tables::DenseTable;
use std::collections::BTreeSet;

/// Hard cap on the scope size of any intermediate table (2^20 values ≈ 8 MB). Reaching
/// it means the model is too densely connected for exact inference and the caller
/// should fall back to loopy belief propagation.
pub const MAX_INDUCED_WIDTH: usize = 20;

/// A greedy min-degree elimination ordering over the variables of a factor graph.
///
/// The interaction graph connects two variables whenever they co-occur in a factor
/// scope; the next variable eliminated is always one with the fewest neighbours among
/// the not-yet-eliminated variables, and its neighbours are then pairwise connected
/// (the fill-in step).
pub fn min_degree_ordering(graph: &FactorGraph) -> Vec<VariableId> {
    let n = graph.variable_count();
    // neighbours[v] = set of variables sharing a factor with v.
    let mut neighbours: Vec<BTreeSet<usize>> = vec![BTreeSet::new(); n];
    for f in graph.factors() {
        let scope = graph.scope_of(f);
        for a in scope {
            for b in scope {
                if a != b {
                    neighbours[a.0].insert(b.0);
                }
            }
        }
    }
    let mut eliminated = vec![false; n];
    let mut order = Vec::with_capacity(n);
    for _ in 0..n {
        // Pick the live variable with the fewest live neighbours (ties by index, for
        // determinism).
        let next = (0..n)
            .filter(|&v| !eliminated[v])
            .min_by_key(|&v| neighbours[v].iter().filter(|&&u| !eliminated[u]).count())
            .expect("at least one live variable remains");
        eliminated[next] = true;
        order.push(VariableId(next));
        // Fill-in: connect the live neighbours of `next` pairwise.
        let live: Vec<usize> = neighbours[next]
            .iter()
            .copied()
            .filter(|&u| !eliminated[u])
            .collect();
        for &a in &live {
            for &b in &live {
                if a != b {
                    neighbours[a].insert(b);
                }
            }
        }
    }
    order
}

/// Width induced by an elimination ordering: the largest scope (excluding the variable
/// being eliminated) of any intermediate table, i.e. the treewidth upper bound the
/// ordering certifies.
pub fn induced_width(graph: &FactorGraph, order: &[VariableId]) -> usize {
    let n = graph.variable_count();
    let mut neighbours: Vec<BTreeSet<usize>> = vec![BTreeSet::new(); n];
    for f in graph.factors() {
        let scope = graph.scope_of(f);
        for a in scope {
            for b in scope {
                if a != b {
                    neighbours[a.0].insert(b.0);
                }
            }
        }
    }
    let mut eliminated = vec![false; n];
    let mut width = 0usize;
    for v in order {
        let live: Vec<usize> = neighbours[v.0]
            .iter()
            .copied()
            .filter(|&u| !eliminated[u])
            .collect();
        width = width.max(live.len());
        eliminated[v.0] = true;
        for &a in &live {
            for &b in &live {
                if a != b {
                    neighbours[a].insert(b);
                }
            }
        }
    }
    width
}

/// Computes the exact marginal `P(correct)` of one variable by eliminating all the
/// others in min-degree order.
///
/// Variables not covered by any factor come out as 0.5.
///
/// # Panics
/// Panics if an intermediate table would exceed [`MAX_INDUCED_WIDTH`] variables.
pub fn eliminate_marginal(graph: &FactorGraph, query: VariableId) -> f64 {
    assert!(query.0 < graph.variable_count(), "unknown variable {query}");
    if graph.factors_of(query).is_empty() {
        return 0.5;
    }
    let order: Vec<VariableId> = min_degree_ordering(graph)
        .into_iter()
        .filter(|v| *v != query)
        .collect();
    // Bucket the factors by the earliest eliminated variable in their scope; factors
    // containing only the query variable go to a residual bucket multiplied in at the
    // end.
    let mut tables: Vec<DenseTable> = graph
        .factors()
        .map(|f| DenseTable::from_factor(graph, f))
        .collect();
    for &victim in &order {
        let (mut involved, rest): (Vec<DenseTable>, Vec<DenseTable>) = tables
            .into_iter()
            .partition(|t| t.position(victim).is_some());
        tables = rest;
        if involved.is_empty() {
            continue;
        }
        let mut product = involved.pop().expect("non-empty");
        for t in involved {
            product = product.multiply(&t);
            assert!(
                product.scope().len() <= MAX_INDUCED_WIDTH,
                "intermediate table over {} variables exceeds the exact-inference cap",
                product.scope().len()
            );
        }
        tables.push(product.sum_out(victim));
    }
    // Everything that remains mentions only the query variable (or is scalar).
    let mut result = DenseTable::unit();
    for t in tables {
        result = result.multiply(&t);
    }
    if result.position(query).is_none() {
        return 0.5;
    }
    result.marginal_correct(query)
}

/// Computes the exact marginals of every variable by repeated elimination.
///
/// The cost is `n` elimination runs; for the evaluation-sized graphs this is entirely
/// acceptable, and [`crate::junction_tree`] provides the single-propagation alternative
/// when all marginals are needed on larger models.
pub fn eliminate_marginals(graph: &FactorGraph) -> Vec<f64> {
    graph
        .variables()
        .map(|v| eliminate_marginal(graph, v))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::belief::Belief;
    use crate::exact::exact_marginals;
    use crate::factor::Factor;

    /// A small loopy model mirroring the paper's example graph: five mapping variables,
    /// priors, and three feedback factors over overlapping scopes.
    fn example_graph() -> FactorGraph {
        let mut g = FactorGraph::new();
        let vars: Vec<VariableId> = (0..5).map(|i| g.add_variable(format!("m{i}"))).collect();
        for &v in &vars {
            g.add_prior(v, 0.7);
        }
        g.add_factor(Factor::feedback(
            vec![vars[0], vars[1], vars[2], vars[3]],
            true,
            0.1,
        ));
        g.add_factor(Factor::feedback(
            vec![vars[0], vars[4], vars[3]],
            false,
            0.1,
        ));
        g.add_factor(Factor::feedback(
            vec![vars[1], vars[2], vars[4]],
            false,
            0.1,
        ));
        g
    }

    #[test]
    fn elimination_matches_enumeration_on_the_example_graph() {
        let g = example_graph();
        let by_enumeration = exact_marginals(&g);
        let by_elimination = eliminate_marginals(&g);
        for (a, b) in by_enumeration.iter().zip(&by_elimination) {
            assert!((a - b).abs() < 1e-10, "enumeration {a} vs elimination {b}");
        }
    }

    #[test]
    fn elimination_matches_enumeration_on_a_tree() {
        let mut g = FactorGraph::new();
        let a = g.add_variable("a");
        let b = g.add_variable("b");
        let c = g.add_variable("c");
        g.add_prior(a, 0.9);
        g.add_prior(b, 0.6);
        g.add_prior(c, 0.3);
        g.add_factor(Factor::feedback(vec![a, b], true, 0.2));
        g.add_factor(Factor::feedback(vec![b, c], false, 0.2));
        let by_enumeration = exact_marginals(&g);
        let by_elimination = eliminate_marginals(&g);
        for (x, y) in by_enumeration.iter().zip(&by_elimination) {
            assert!((x - y).abs() < 1e-10);
        }
    }

    #[test]
    fn uncovered_variables_come_out_uniform() {
        let mut g = FactorGraph::new();
        let a = g.add_variable("a");
        let _b = g.add_variable("floating");
        g.add_prior(a, 0.8);
        let marginals = eliminate_marginals(&g);
        assert!((marginals[0] - 0.8).abs() < 1e-12);
        assert!((marginals[1] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn elimination_scales_past_the_enumeration_cap() {
        // A long chain of 40 variables: way past MAX_EXACT_VARIABLES but trivially
        // low-width, so elimination handles it exactly. Positive pairwise feedback with
        // a strong prior at one end pulls every variable towards "correct".
        let mut g = FactorGraph::new();
        let vars: Vec<VariableId> = (0..40).map(|i| g.add_variable(format!("x{i}"))).collect();
        g.add_prior(vars[0], 0.99);
        for w in vars.windows(2) {
            g.add_factor(Factor::feedback(vec![w[0], w[1]], true, 0.05));
        }
        let marginals = eliminate_marginals(&g);
        assert_eq!(marginals.len(), 40);
        assert!(
            marginals.iter().all(|p| *p > 0.5),
            "positive chain keeps everyone likely correct"
        );
        assert!(marginals[0] > 0.9);
    }

    #[test]
    fn min_degree_ordering_covers_every_variable_once() {
        let g = example_graph();
        let order = min_degree_ordering(&g);
        assert_eq!(order.len(), g.variable_count());
        let mut seen: Vec<usize> = order.iter().map(|v| v.0).collect();
        seen.sort_unstable();
        seen.dedup();
        assert_eq!(seen.len(), g.variable_count());
    }

    #[test]
    fn induced_width_of_a_chain_is_one() {
        let mut g = FactorGraph::new();
        let vars: Vec<VariableId> = (0..10).map(|i| g.add_variable(format!("x{i}"))).collect();
        for w in vars.windows(2) {
            g.add_factor(Factor::feedback(vec![w[0], w[1]], true, 0.1));
        }
        let order = min_degree_ordering(&g);
        assert_eq!(induced_width(&g, &order), 1);
    }

    #[test]
    fn induced_width_of_the_example_graph_is_small() {
        let g = example_graph();
        let order = min_degree_ordering(&g);
        let width = induced_width(&g, &order);
        assert!((2..=4).contains(&width), "width {width}");
    }

    #[test]
    fn priors_alone_are_returned_exactly() {
        let mut g = FactorGraph::new();
        let a = g.add_variable("a");
        g.add_factor(Factor::prior(a, Belief::from_probability(0.37)));
        assert!((eliminate_marginal(&g, a) - 0.37).abs() < 1e-12);
    }
}

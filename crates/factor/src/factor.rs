//! Factor functions over binary variables.
//!
//! Three kinds of factors occur in PDMS factor graphs:
//!
//! * **prior factors** — single-variable factors carrying the peer's prior belief on
//!   the correctness of one mapping (top layer of Figure 4/5);
//! * **feedback factors** — the conditional probability of having observed positive or
//!   negative feedback on a cycle / parallel path given the correctness of the
//!   mappings involved (Section 3.2.1). These have a special structure (the value
//!   depends only on *how many* mappings are incorrect), which
//!   [`crate::feedback_factor`] exploits for O(n) message computation;
//! * **table factors** — arbitrary dense tables, used by tests and by callers that need
//!   factors outside the two shapes above.

use crate::belief::Belief;
use crate::feedback_factor::{feedback_message, feedback_value, FeedbackSign};
use crate::graph::VariableId;

/// Discriminates the factor families for reporting purposes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FactorKind {
    /// Single-variable prior.
    Prior,
    /// Cycle / parallel-path feedback factor (positive observation).
    PositiveFeedback,
    /// Cycle / parallel-path feedback factor (negative observation).
    NegativeFeedback,
    /// Arbitrary dense table.
    Table,
}

#[derive(Debug, Clone)]
enum FactorBody {
    Prior(Belief),
    Feedback { sign: FeedbackSign, delta: f64 },
    Table(Vec<f64>),
}

/// A factor: a non-negative function over the joint states of its scope.
///
/// States are encoded as `0 = correct`, `1 = incorrect`; a joint assignment is a slice
/// of states aligned with the scope.
#[derive(Debug, Clone)]
pub struct Factor {
    scope: Vec<VariableId>,
    body: FactorBody,
}

impl Factor {
    /// Single-variable prior factor.
    pub fn prior(variable: VariableId, belief: Belief) -> Self {
        Self {
            scope: vec![variable],
            body: FactorBody::Prior(belief),
        }
    }

    /// Feedback factor over the mappings of one cycle or parallel path.
    ///
    /// `positive` selects which observation was made; `delta` is the compensating-error
    /// probability Δ.
    ///
    /// # Panics
    /// Panics if the scope is empty or `delta` is outside `[0, 1]`.
    pub fn feedback(scope: Vec<VariableId>, positive: bool, delta: f64) -> Self {
        assert!(!scope.is_empty(), "feedback factor needs a non-empty scope");
        assert!((0.0..=1.0).contains(&delta), "delta {delta} outside [0, 1]");
        Self {
            scope,
            body: FactorBody::Feedback {
                sign: if positive {
                    FeedbackSign::Positive
                } else {
                    FeedbackSign::Negative
                },
                delta,
            },
        }
    }

    /// Dense table factor. `values` must have length `2^scope.len()`, indexed by the
    /// binary number formed by the assignment with scope position 0 as the lowest bit.
    ///
    /// # Panics
    /// Panics on a length mismatch or negative entries.
    pub fn table(scope: Vec<VariableId>, values: Vec<f64>) -> Self {
        assert_eq!(
            values.len(),
            1usize << scope.len(),
            "table must have 2^{} entries",
            scope.len()
        );
        assert!(values.iter().all(|v| *v >= 0.0 && v.is_finite()));
        Self {
            scope,
            body: FactorBody::Table(values),
        }
    }

    /// The variables this factor touches, in scope order.
    pub fn scope(&self) -> &[VariableId] {
        &self.scope
    }

    /// The factor family.
    pub fn kind(&self) -> FactorKind {
        match &self.body {
            FactorBody::Prior(_) => FactorKind::Prior,
            FactorBody::Feedback { sign, .. } => match sign {
                FeedbackSign::Positive => FactorKind::PositiveFeedback,
                FeedbackSign::Negative => FactorKind::NegativeFeedback,
            },
            FactorBody::Table(_) => FactorKind::Table,
        }
    }

    /// Evaluates the factor on a joint assignment (one state per scope variable).
    ///
    /// # Panics
    /// Panics if the assignment length does not match the scope or a state is not 0/1.
    pub fn evaluate(&self, assignment: &[usize]) -> f64 {
        assert_eq!(
            assignment.len(),
            self.scope.len(),
            "assignment/scope mismatch"
        );
        assert!(assignment.iter().all(|s| *s < 2), "states must be 0 or 1");
        match &self.body {
            FactorBody::Prior(belief) => belief.weight(assignment[0]),
            FactorBody::Feedback { sign, delta } => {
                let incorrect = assignment.iter().filter(|s| **s == 1).count();
                feedback_value(*sign, incorrect, *delta)
            }
            FactorBody::Table(values) => {
                let mut index = 0usize;
                for (pos, state) in assignment.iter().enumerate() {
                    index |= state << pos;
                }
                values[index]
            }
        }
    }

    /// Computes the sum-product message from this factor to the variable at scope
    /// position `to_position`, given the incoming variable→factor messages for every
    /// scope variable (the entry at `to_position` is ignored, matching the
    /// `n(f) \ {x}` product of the update rule).
    ///
    /// Prior factors return their belief; feedback factors use the closed-form O(n)
    /// computation; table factors fall back to explicit enumeration.
    pub fn message_to(&self, to_position: usize, incoming: &[Belief]) -> Belief {
        assert!(to_position < self.scope.len(), "position out of scope");
        assert_eq!(incoming.len(), self.scope.len(), "incoming/scope mismatch");
        match &self.body {
            FactorBody::Prior(belief) => *belief,
            FactorBody::Feedback { sign, delta } => {
                feedback_message(*sign, *delta, to_position, incoming)
            }
            FactorBody::Table(_) => self.message_by_enumeration(to_position, incoming),
        }
    }

    /// Reference implementation of the factor→variable message by explicit enumeration
    /// of the joint states of the other scope variables. Exponential in the scope size;
    /// used for table factors and as the test oracle for the feedback closed form.
    pub fn message_by_enumeration(&self, to_position: usize, incoming: &[Belief]) -> Belief {
        let n = self.scope.len();
        let mut out = [0.0f64; 2];
        let mut assignment = vec![0usize; n];
        // Iterate over all joint assignments of the scope; accumulate by the state of
        // the target variable, weighting by the incoming messages of the *other* vars.
        let total = 1usize << n;
        for code in 0..total {
            for (pos, state) in assignment.iter_mut().enumerate() {
                *state = (code >> pos) & 1;
            }
            let mut weight = self.evaluate(&assignment);
            if weight == 0.0 {
                continue;
            }
            for (pos, state) in assignment.iter().enumerate() {
                if pos != to_position {
                    weight *= incoming[pos].weight(*state);
                }
            }
            out[assignment[to_position]] += weight;
        }
        Belief::from_weights(out[0], out[1])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vars(n: usize) -> Vec<VariableId> {
        (0..n).map(VariableId).collect()
    }

    #[test]
    fn prior_factor_evaluates_to_belief_weights() {
        let f = Factor::prior(VariableId(0), Belief::from_probability(0.8));
        assert!((f.evaluate(&[0]) - 0.8).abs() < 1e-12);
        assert!((f.evaluate(&[1]) - 0.2).abs() < 1e-12);
        assert_eq!(f.kind(), FactorKind::Prior);
    }

    #[test]
    fn feedback_factor_matches_paper_cpt() {
        let f = Factor::feedback(vars(3), true, 0.1);
        assert_eq!(f.evaluate(&[0, 0, 0]), 1.0); // all correct
        assert_eq!(f.evaluate(&[1, 0, 0]), 0.0); // exactly one incorrect
        assert_eq!(f.evaluate(&[1, 1, 0]), 0.1); // two incorrect
        assert_eq!(f.evaluate(&[1, 1, 1]), 0.1); // three incorrect
        assert_eq!(f.kind(), FactorKind::PositiveFeedback);
    }

    #[test]
    fn negative_feedback_is_complement() {
        let plus = Factor::feedback(vars(3), true, 0.1);
        let minus = Factor::feedback(vars(3), false, 0.1);
        for code in 0..8usize {
            let assignment = [code & 1, (code >> 1) & 1, (code >> 2) & 1];
            let sum = plus.evaluate(&assignment) + minus.evaluate(&assignment);
            assert!((sum - 1.0).abs() < 1e-12, "CPT rows must sum to 1");
        }
    }

    #[test]
    fn table_factor_indexes_low_bit_first() {
        let f = Factor::table(vars(2), vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(f.evaluate(&[0, 0]), 1.0);
        assert_eq!(f.evaluate(&[1, 0]), 2.0);
        assert_eq!(f.evaluate(&[0, 1]), 3.0);
        assert_eq!(f.evaluate(&[1, 1]), 4.0);
        assert_eq!(f.kind(), FactorKind::Table);
    }

    #[test]
    #[should_panic(expected = "2^")]
    fn table_with_wrong_length_panics() {
        Factor::table(vars(2), vec![1.0, 2.0]);
    }

    #[test]
    fn feedback_message_matches_enumeration() {
        let f = Factor::feedback(vars(4), true, 0.07);
        let incoming = vec![
            Belief::from_probability(0.9),
            Belief::from_probability(0.4),
            Belief::from_weights(2.0, 1.0),
            Belief::from_probability(0.55),
        ];
        for pos in 0..4 {
            let fast = f.message_to(pos, &incoming).normalized();
            let slow = f.message_by_enumeration(pos, &incoming).normalized();
            assert!(
                fast.distance(&slow) < 1e-10,
                "position {pos}: {fast} vs {slow}"
            );
        }
    }

    #[test]
    fn negative_feedback_message_matches_enumeration() {
        let f = Factor::feedback(vars(3), false, 0.1);
        let incoming = vec![
            Belief::from_probability(0.8),
            Belief::from_probability(0.8),
            Belief::from_probability(0.8),
        ];
        for pos in 0..3 {
            let fast = f.message_to(pos, &incoming).normalized();
            let slow = f.message_by_enumeration(pos, &incoming).normalized();
            assert!(fast.distance(&slow) < 1e-10);
        }
    }

    #[test]
    fn prior_message_ignores_incoming() {
        let f = Factor::prior(VariableId(0), Belief::from_probability(0.3));
        let msg = f.message_to(0, &[Belief::from_probability(0.99)]);
        assert!((msg.probability_correct() - 0.3).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "assignment/scope mismatch")]
    fn evaluate_with_wrong_arity_panics() {
        let f = Factor::feedback(vars(2), true, 0.1);
        f.evaluate(&[0, 1, 0]);
    }
}

//! Exact marginal computation by exhaustive enumeration.
//!
//! Loopy belief propagation only approximates marginals on cyclic factor graphs
//! (Section 3.1); the paper quantifies the approximation error against "a global
//! inference process" (Figure 9). This module is that global reference: it enumerates
//! every joint assignment of the variables, multiplies all factors, and normalises.
//! The cost is `O(2^n · f)`, fine for the evaluation graphs (a handful to a few dozen
//! variables) and deliberately simple so it can serve as the trusted oracle in tests.

use crate::graph::{FactorGraph, VariableId};

/// Maximum number of variables accepted by [`exact_marginals`]. Beyond this the
/// enumeration would exceed ~2^24 joint states and the caller almost certainly wants
/// the iterative engine instead.
pub const MAX_EXACT_VARIABLES: usize = 24;

/// Computes the exact posterior `P(correct)` of every variable.
///
/// Returns one probability per variable, indexed by `VariableId.0`. Variables not
/// covered by any factor come out as 0.5.
///
/// # Panics
/// Panics if the graph has more than [`MAX_EXACT_VARIABLES`] variables.
pub fn exact_marginals(graph: &FactorGraph) -> Vec<f64> {
    let n = graph.variable_count();
    assert!(
        n <= MAX_EXACT_VARIABLES,
        "exact inference limited to {MAX_EXACT_VARIABLES} variables, got {n}"
    );
    if n == 0 {
        return Vec::new();
    }
    let mut correct_mass = vec![0.0f64; n];
    let mut total_mass = 0.0f64;
    let states = 1usize << n;
    let mut assignment = vec![0usize; n];
    let mut scratch: Vec<usize> = Vec::new();
    for code in 0..states {
        for (i, a) in assignment.iter_mut().enumerate() {
            *a = (code >> i) & 1;
        }
        let mut weight = 1.0f64;
        for f in graph.factors() {
            scratch.clear();
            scratch.extend(graph.scope_of(f).iter().map(|v| assignment[v.0]));
            weight *= graph.factor(f).evaluate(&scratch);
            if weight == 0.0 {
                break;
            }
        }
        if weight == 0.0 {
            continue;
        }
        total_mass += weight;
        for (i, a) in assignment.iter().enumerate() {
            if *a == 0 {
                correct_mass[i] += weight;
            }
        }
    }
    if total_mass <= f64::EPSILON {
        // Fully contradictory evidence: fall back to the uninformative answer.
        return vec![0.5; n];
    }
    correct_mass.iter().map(|m| m / total_mass).collect()
}

/// Exact posterior of a single variable (convenience wrapper).
pub fn exact_marginal(graph: &FactorGraph, variable: VariableId) -> f64 {
    exact_marginals(graph)[variable.0]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::belief::Belief;
    use crate::factor::Factor;

    #[test]
    fn single_prior_is_returned_as_is() {
        let mut g = FactorGraph::new();
        let x = g.add_variable("x");
        g.add_prior(x, 0.8);
        let m = exact_marginals(&g);
        assert!((m[0] - 0.8).abs() < 1e-12);
    }

    #[test]
    fn two_independent_variables_do_not_interact() {
        let mut g = FactorGraph::new();
        let x = g.add_variable("x");
        let y = g.add_variable("y");
        g.add_prior(x, 0.9);
        g.add_prior(y, 0.2);
        let m = exact_marginals(&g);
        assert!((m[x.0] - 0.9).abs() < 1e-12);
        assert!((m[y.0] - 0.2).abs() < 1e-12);
    }

    #[test]
    fn positive_feedback_on_a_two_cycle_raises_both_posteriors() {
        let mut g = FactorGraph::new();
        let x = g.add_variable("x");
        let y = g.add_variable("y");
        g.add_prior(x, 0.5);
        g.add_prior(y, 0.5);
        g.add_factor(Factor::feedback(vec![x, y], true, 0.1));
        let m = exact_marginals(&g);
        // By hand: states (c,c)=1*0.25, (i,c)=(c,i)=0, (i,i)=0.1*0.25.
        // P(x=c) = 0.25 / 0.275 ≈ 0.9091.
        assert!((m[x.0] - 0.25 / 0.275).abs() < 1e-12);
        assert!((m[y.0] - 0.25 / 0.275).abs() < 1e-12);
    }

    #[test]
    fn negative_feedback_on_a_two_cycle_lowers_both_posteriors() {
        let mut g = FactorGraph::new();
        let x = g.add_variable("x");
        let y = g.add_variable("y");
        g.add_prior(x, 0.5);
        g.add_prior(y, 0.5);
        g.add_factor(Factor::feedback(vec![x, y], false, 0.1));
        let m = exact_marginals(&g);
        // States: (c,c)=0, (i,c)=(c,i)=1*0.25, (i,i)=0.9*0.25.
        // P(x=c) = 0.25 / 0.725 ≈ 0.3448.
        assert!((m[x.0] - 0.25 / 0.725).abs() < 1e-12);
    }

    #[test]
    fn contradictory_evidence_falls_back_to_uniform() {
        // A prior of 1.0 on "correct" combined with a hard negative observation on a
        // single-mapping cycle gives zero total mass.
        let mut g = FactorGraph::new();
        let x = g.add_variable("x");
        g.add_factor(Factor::prior(x, Belief::from_probability(1.0)));
        g.add_factor(Factor::feedback(vec![x], false, 0.0));
        let m = exact_marginals(&g);
        assert!((m[0] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn empty_graph_yields_empty_result() {
        let g = FactorGraph::new();
        assert!(exact_marginals(&g).is_empty());
    }

    #[test]
    #[should_panic(expected = "limited to")]
    fn too_many_variables_panic() {
        let mut g = FactorGraph::new();
        for i in 0..=MAX_EXACT_VARIABLES {
            g.add_variable(format!("v{i}"));
        }
        exact_marginals(&g);
    }

    #[test]
    fn single_variable_wrapper_matches_bulk_result() {
        let mut g = FactorGraph::new();
        let x = g.add_variable("x");
        let y = g.add_variable("y");
        g.add_prior(x, 0.3);
        g.add_prior(y, 0.6);
        g.add_factor(Factor::feedback(vec![x, y], true, 0.2));
        let bulk = exact_marginals(&g);
        assert_eq!(exact_marginal(&g, x), bulk[x.0]);
        assert_eq!(exact_marginal(&g, y), bulk[y.0]);
    }
}

//! The factor-graph structure: a bipartite graph of variables and factors.

use crate::belief::Belief;
use crate::factor::{Factor, FactorKind};
use std::fmt;

/// Identifier of a variable node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct VariableId(pub usize);

/// Identifier of a factor node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FactorId(pub usize);

impl fmt::Display for VariableId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "x{}", self.0)
    }
}

impl fmt::Display for FactorId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "f{}", self.0)
    }
}

/// A variable node: a binary variable plus bookkeeping.
#[derive(Debug, Clone)]
struct VariableNode {
    name: String,
    factors: Vec<FactorId>,
}

/// A factor node: the factor function plus the ordered list of variables it touches.
#[derive(Debug, Clone)]
struct FactorNode {
    factor: Factor,
}

/// A factor graph over binary variables.
///
/// Variables and factors are added once and never removed; the sum-product engine and
/// the exact-inference baseline operate on an immutable borrow.
#[derive(Debug, Clone, Default)]
pub struct FactorGraph {
    variables: Vec<VariableNode>,
    factors: Vec<FactorNode>,
}

impl FactorGraph {
    /// Creates an empty factor graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a named binary variable.
    pub fn add_variable(&mut self, name: impl Into<String>) -> VariableId {
        let id = VariableId(self.variables.len());
        self.variables.push(VariableNode {
            name: name.into(),
            factors: Vec::new(),
        });
        id
    }

    /// Adds a factor. The factor's scope must reference variables already added.
    ///
    /// # Panics
    /// Panics if the factor references an unknown variable.
    pub fn add_factor(&mut self, factor: Factor) -> FactorId {
        for v in factor.scope() {
            assert!(
                v.0 < self.variables.len(),
                "factor references unknown variable {v}"
            );
        }
        let id = FactorId(self.factors.len());
        for v in factor.scope() {
            self.variables[v.0].factors.push(id);
        }
        self.factors.push(FactorNode { factor });
        id
    }

    /// Convenience: adds a single-variable prior factor with `P(correct) = p`.
    pub fn add_prior(&mut self, variable: VariableId, p_correct: f64) -> FactorId {
        self.add_factor(Factor::prior(variable, Belief::from_probability(p_correct)))
    }

    /// Number of variables.
    pub fn variable_count(&self) -> usize {
        self.variables.len()
    }

    /// Number of factors.
    pub fn factor_count(&self) -> usize {
        self.factors.len()
    }

    /// All variable ids.
    pub fn variables(&self) -> impl Iterator<Item = VariableId> {
        (0..self.variables.len()).map(VariableId)
    }

    /// All factor ids.
    pub fn factors(&self) -> impl Iterator<Item = FactorId> {
        (0..self.factors.len()).map(FactorId)
    }

    /// Name of a variable.
    pub fn variable_name(&self, v: VariableId) -> &str {
        &self.variables[v.0].name
    }

    /// Looks up a variable by name (linear scan; graphs are small).
    pub fn variable_by_name(&self, name: &str) -> Option<VariableId> {
        self.variables
            .iter()
            .position(|v| v.name == name)
            .map(VariableId)
    }

    /// Factors adjacent to a variable.
    pub fn factors_of(&self, v: VariableId) -> &[FactorId] {
        &self.variables[v.0].factors
    }

    /// The factor function of a factor node.
    pub fn factor(&self, f: FactorId) -> &Factor {
        &self.factors[f.0].factor
    }

    /// Variables in the scope of a factor, in scope order.
    pub fn scope_of(&self, f: FactorId) -> &[VariableId] {
        self.factors[f.0].factor.scope()
    }

    /// Number of edges in the bipartite graph (sum of scope sizes).
    pub fn edge_count(&self) -> usize {
        self.factors.iter().map(|f| f.factor.scope().len()).sum()
    }

    /// True when the factor graph is a tree (or forest): edges = nodes − components.
    /// Sum-product is exact on such graphs (Section 3.1).
    pub fn is_tree(&self) -> bool {
        // Union-find over variables ∪ factors.
        let n = self.variable_count() + self.factor_count();
        let mut parent: Vec<usize> = (0..n).collect();
        fn find(parent: &mut [usize], mut x: usize) -> usize {
            while parent[x] != x {
                parent[x] = parent[parent[x]];
                x = parent[x];
            }
            x
        }
        let mut edges = 0usize;
        for (fi, fnode) in self.factors.iter().enumerate() {
            for v in fnode.factor.scope() {
                edges += 1;
                let a = find(&mut parent, v.0);
                let b = find(&mut parent, self.variable_count() + fi);
                if a == b {
                    return false; // adding this edge closes a cycle
                }
                parent[a] = b;
            }
        }
        let _ = edges;
        true
    }

    /// Degenerate check: every variable should be covered by at least one factor before
    /// running inference, otherwise its marginal is undefined (it would be uniform).
    pub fn uncovered_variables(&self) -> Vec<VariableId> {
        self.variables()
            .filter(|v| self.factors_of(*v).is_empty())
            .collect()
    }

    /// Kinds of all factors, for reporting.
    pub fn factor_kinds(&self) -> Vec<FactorKind> {
        self.factors.iter().map(|f| f.factor.kind()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::factor::Factor;

    #[test]
    fn variables_and_factors_are_registered() {
        let mut g = FactorGraph::new();
        let a = g.add_variable("m12");
        let b = g.add_variable("m23");
        g.add_prior(a, 0.7);
        g.add_prior(b, 0.7);
        let f = g.add_factor(Factor::feedback(vec![a, b], true, 0.1));
        assert_eq!(g.variable_count(), 2);
        assert_eq!(g.factor_count(), 3);
        assert_eq!(g.factors_of(a).len(), 2);
        assert_eq!(g.scope_of(f), &[a, b]);
        assert_eq!(g.edge_count(), 4);
    }

    #[test]
    fn variable_lookup_by_name() {
        let mut g = FactorGraph::new();
        let a = g.add_variable("m12");
        assert_eq!(g.variable_by_name("m12"), Some(a));
        assert_eq!(g.variable_by_name("nope"), None);
        assert_eq!(g.variable_name(a), "m12");
    }

    #[test]
    #[should_panic(expected = "unknown variable")]
    fn factor_with_unknown_variable_panics() {
        let mut g = FactorGraph::new();
        g.add_factor(Factor::prior(VariableId(3), Belief::uniform()));
    }

    #[test]
    fn tree_detection() {
        // Chain: prior - x - feedback - y  is a tree.
        let mut g = FactorGraph::new();
        let x = g.add_variable("x");
        let y = g.add_variable("y");
        g.add_prior(x, 0.5);
        g.add_factor(Factor::feedback(vec![x, y], true, 0.1));
        assert!(g.is_tree());
        // Adding a second factor over {x, y} creates a cycle.
        g.add_factor(Factor::feedback(vec![x, y], false, 0.1));
        assert!(!g.is_tree());
    }

    #[test]
    fn uncovered_variables_are_reported() {
        let mut g = FactorGraph::new();
        let x = g.add_variable("x");
        let y = g.add_variable("y");
        g.add_prior(x, 0.6);
        assert_eq!(g.uncovered_variables(), vec![y]);
    }
}

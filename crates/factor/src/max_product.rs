//! Maximum a-posteriori (MAP) configurations by max-product variable elimination.
//!
//! Marginal posteriors answer "how likely is *this* mapping to be correct?"; the MAP
//! configuration answers the complementary question "which joint assignment of all the
//! mapping variables best explains the observed feedback?". The difference matters when
//! evidence is contradictory: marginals can hover near 0.5 for several mappings while
//! the MAP assignment still commits to the single most plausible culprit — which is
//! often the more useful output for an administrator repairing a mapping network.
//!
//! The implementation mirrors [`crate::elimination`], replacing the sum-out step by a
//! max-out step and adding a traceback pass that recovers the maximising assignment.

use crate::elimination::{min_degree_ordering, MAX_INDUCED_WIDTH};
use crate::graph::{FactorGraph, VariableId};
use crate::tables::DenseTable;

/// The result of a MAP query.
#[derive(Debug, Clone, PartialEq)]
pub struct MapAssignment {
    /// State of every variable (`0 = correct`, `1 = incorrect`), indexed by
    /// `VariableId.0`.
    pub states: Vec<usize>,
    /// The unnormalised joint weight of the assignment (product of all factors).
    pub weight: f64,
}

impl MapAssignment {
    /// True when the assignment declares the variable correct.
    pub fn is_correct(&self, variable: VariableId) -> bool {
        self.states[variable.0] == 0
    }

    /// The variables declared incorrect.
    pub fn incorrect_variables(&self) -> Vec<VariableId> {
        self.states
            .iter()
            .enumerate()
            .filter_map(|(i, &s)| (s == 1).then_some(VariableId(i)))
            .collect()
    }
}

/// Computes the MAP assignment of a factor graph by max-product variable elimination
/// with traceback.
///
/// Ties are broken towards `correct`, matching the paper's asymmetric reading of the
/// evidence (a mapping is only flagged when the evidence actively speaks against it).
/// Variables covered by no factor are reported as `correct`.
///
/// # Panics
/// Panics if an intermediate table would exceed [`MAX_INDUCED_WIDTH`] variables.
pub fn map_assignment(graph: &FactorGraph) -> MapAssignment {
    let n = graph.variable_count();
    if n == 0 {
        return MapAssignment {
            states: Vec::new(),
            weight: 1.0,
        };
    }
    let order = min_degree_ordering(graph);
    let mut tables: Vec<DenseTable> = graph
        .factors()
        .map(|f| DenseTable::from_factor(graph, f))
        .collect();
    // For the traceback we remember, for every eliminated variable, the table it was
    // maximised out of (over the variable and its still-live context).
    let mut traceback: Vec<(VariableId, DenseTable)> = Vec::with_capacity(n);
    for &victim in &order {
        let (mut involved, rest): (Vec<DenseTable>, Vec<DenseTable>) = tables
            .into_iter()
            .partition(|t| t.position(victim).is_some());
        tables = rest;
        if involved.is_empty() {
            // Uncovered variable: its state is free; record a trivial table so the
            // traceback resolves it to `correct`.
            traceback.push((victim, DenseTable::new(vec![victim], vec![1.0, 1.0])));
            continue;
        }
        let mut product = involved.pop().expect("non-empty");
        for t in involved {
            product = product.multiply(&t);
            assert!(
                product.scope().len() <= MAX_INDUCED_WIDTH,
                "intermediate table over {} variables exceeds the exact-inference cap",
                product.scope().len()
            );
        }
        traceback.push((victim, product.clone()));
        tables.push(product.max_out(victim));
    }
    // The remaining tables are scalars; their product is the MAP weight.
    let weight = tables
        .iter()
        .map(|t| if t.is_scalar() { t.scalar() } else { 1.0 })
        .product();
    // Traceback in reverse elimination order: every variable's table now has all its
    // context variables already decided.
    let mut states = vec![0usize; n];
    for (victim, table) in traceback.iter().rev() {
        let mut restricted = table.clone();
        for v in table.scope().to_vec() {
            if v != *victim {
                restricted = restricted.restrict(v, states[v.0]);
            }
        }
        let correct = restricted.value_at(&[0]);
        let incorrect = restricted.value_at(&[1]);
        states[victim.0] = if incorrect > correct { 1 } else { 0 };
    }
    MapAssignment { states, weight }
}

/// Reference MAP computation by exhaustive enumeration; the test oracle for
/// [`map_assignment`]. Limited to small graphs.
///
/// # Panics
/// Panics beyond 20 variables.
pub fn map_by_enumeration(graph: &FactorGraph) -> MapAssignment {
    let n = graph.variable_count();
    assert!(n <= 20, "enumeration MAP limited to 20 variables, got {n}");
    let mut best_states = vec![0usize; n];
    let mut best_weight = f64::NEG_INFINITY;
    let mut assignment = vec![0usize; n];
    let mut scratch = Vec::new();
    for code in 0..(1usize << n) {
        for (i, a) in assignment.iter_mut().enumerate() {
            *a = (code >> i) & 1;
        }
        let mut weight = 1.0f64;
        for f in graph.factors() {
            scratch.clear();
            scratch.extend(graph.scope_of(f).iter().map(|v| assignment[v.0]));
            weight *= graph.factor(f).evaluate(&scratch);
            if weight == 0.0 {
                break;
            }
        }
        // Prefer assignments with fewer `incorrect` states on ties, matching the
        // tie-break of the elimination version.
        let better = weight > best_weight
            || (weight == best_weight
                && assignment.iter().sum::<usize>() < best_states.iter().sum::<usize>());
        if better {
            best_weight = weight;
            best_states.copy_from_slice(&assignment);
        }
    }
    MapAssignment {
        states: best_states,
        weight: best_weight.max(0.0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::factor::Factor;

    fn example_graph() -> FactorGraph {
        let mut g = FactorGraph::new();
        let vars: Vec<VariableId> = (0..5).map(|i| g.add_variable(format!("m{i}"))).collect();
        for &v in &vars {
            g.add_prior(v, 0.7);
        }
        // One positive long cycle, and two negative observations that both involve m4:
        // the most economical explanation is "m4 alone is faulty".
        g.add_factor(Factor::feedback(
            vec![vars[0], vars[1], vars[2], vars[3]],
            true,
            0.1,
        ));
        g.add_factor(Factor::feedback(
            vec![vars[0], vars[4], vars[3]],
            false,
            0.1,
        ));
        g.add_factor(Factor::feedback(
            vec![vars[1], vars[2], vars[4]],
            false,
            0.1,
        ));
        g
    }

    #[test]
    fn map_blames_the_single_shared_mapping() {
        let g = example_graph();
        let map = map_assignment(&g);
        assert_eq!(map.incorrect_variables(), vec![VariableId(4)]);
        assert!(map.weight > 0.0);
    }

    #[test]
    fn map_matches_enumeration_on_the_example_graph() {
        let g = example_graph();
        let fast = map_assignment(&g);
        let slow = map_by_enumeration(&g);
        assert_eq!(fast.states, slow.states);
        assert!((fast.weight - slow.weight).abs() < 1e-12);
    }

    #[test]
    fn all_positive_feedback_yields_the_all_correct_assignment() {
        let mut g = FactorGraph::new();
        let vars: Vec<VariableId> = (0..4).map(|i| g.add_variable(format!("m{i}"))).collect();
        for &v in &vars {
            g.add_prior(v, 0.6);
        }
        g.add_factor(Factor::feedback(vars.clone(), true, 0.1));
        let map = map_assignment(&g);
        assert!(map.incorrect_variables().is_empty());
        assert_eq!(map.states, vec![0, 0, 0, 0]);
    }

    #[test]
    fn strong_negative_prior_flips_a_variable() {
        let mut g = FactorGraph::new();
        let a = g.add_variable("a");
        let b = g.add_variable("b");
        g.add_prior(a, 0.05);
        g.add_prior(b, 0.9);
        g.add_factor(Factor::feedback(vec![a, b], false, 0.2));
        let fast = map_assignment(&g);
        let slow = map_by_enumeration(&g);
        assert_eq!(fast.states, slow.states);
        assert!(!fast.is_correct(a));
        assert!(fast.is_correct(b));
    }

    #[test]
    fn uncovered_variables_default_to_correct() {
        let mut g = FactorGraph::new();
        let a = g.add_variable("a");
        let _floating = g.add_variable("floating");
        g.add_prior(a, 0.2);
        let map = map_assignment(&g);
        assert_eq!(map.states[1], 0);
        assert_eq!(map.states[0], 1);
    }

    #[test]
    fn empty_graph_produces_an_empty_assignment() {
        let g = FactorGraph::new();
        let map = map_assignment(&g);
        assert!(map.states.is_empty());
        assert_eq!(map.weight, 1.0);
    }

    #[test]
    fn random_small_models_agree_with_enumeration() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..20 {
            let mut g = FactorGraph::new();
            let n = rng.gen_range(3..8);
            let vars: Vec<VariableId> = (0..n).map(|i| g.add_variable(format!("x{i}"))).collect();
            for &v in &vars {
                g.add_prior(v, rng.gen_range(0.05..0.95));
            }
            for _ in 0..rng.gen_range(1..4) {
                let len = rng.gen_range(2..=n.min(4));
                let mut scope = vars.clone();
                for i in (1..scope.len()).rev() {
                    scope.swap(i, rng.gen_range(0..=i));
                }
                scope.truncate(len);
                g.add_factor(Factor::feedback(scope, rng.gen_bool(0.5), 0.1));
            }
            let fast = map_assignment(&g);
            let slow = map_by_enumeration(&g);
            // Weights must agree; the argmax may differ only on exact ties.
            assert!(
                (fast.weight - slow.weight).abs() < 1e-9,
                "weights differ: {} vs {}",
                fast.weight,
                slow.weight
            );
        }
    }
}

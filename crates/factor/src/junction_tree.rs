//! Exact inference by junction-tree (clique-tree) propagation.
//!
//! The paper's future-work section points to distributed junction-tree architectures
//! (Paskin & Guestrin) as an alternative inference substrate for PDMS. This module
//! provides the centralized reference implementation: the factor graph is compiled into
//! a clique tree that satisfies the running-intersection property, factors are assigned
//! to cliques, and two sweeps of sum-product message passing over the tree yield the
//! exact marginal of *every* variable in one propagation — unlike repeated variable
//! elimination, which pays one elimination per query variable.
//!
//! The implementation targets the model sizes of the evaluation (tens to a few hundred
//! variables with small induced width); it is not a general-purpose PGM library.

use crate::elimination::{induced_width, min_degree_ordering, MAX_INDUCED_WIDTH};
use crate::graph::{FactorGraph, VariableId};
use crate::tables::DenseTable;
use std::collections::BTreeSet;

/// One clique of the junction tree.
#[derive(Debug, Clone)]
pub struct Clique {
    /// The variables of the clique.
    pub variables: Vec<VariableId>,
    /// Index of the parent clique in the rooted tree (`None` for the root).
    pub parent: Option<usize>,
    /// The separator with the parent (intersection of the two cliques' scopes).
    pub separator: Vec<VariableId>,
}

/// A compiled junction tree, ready for propagation.
#[derive(Debug, Clone)]
pub struct JunctionTree {
    cliques: Vec<Clique>,
    /// Initial potential of every clique: the product of the factors assigned to it.
    potentials: Vec<DenseTable>,
    /// For each variable, one clique containing it.
    home_clique: Vec<usize>,
}

/// The result of a junction-tree propagation.
#[derive(Debug, Clone)]
pub struct JunctionTreeReport {
    /// Exact posterior `P(correct)` per variable.
    pub posteriors: Vec<f64>,
    /// Number of cliques in the tree.
    pub clique_count: usize,
    /// Largest clique size (induced width + 1).
    pub max_clique_size: usize,
}

impl JunctionTree {
    /// Compiles a factor graph into a junction tree using a min-degree elimination
    /// ordering.
    ///
    /// # Panics
    /// Panics if the induced width exceeds [`MAX_INDUCED_WIDTH`] (the model is too
    /// densely connected for exact inference) or if the factor graph has no variables.
    pub fn build(graph: &FactorGraph) -> Self {
        assert!(
            graph.variable_count() > 0,
            "cannot build a junction tree over zero variables"
        );
        let order = min_degree_ordering(graph);
        let width = induced_width(graph, &order);
        assert!(
            width <= MAX_INDUCED_WIDTH,
            "induced width {width} exceeds the exact-inference cap {MAX_INDUCED_WIDTH}"
        );

        // Textbook construction: one elimination clique per variable, in elimination
        // order. When a variable is eliminated, its clique is {variable} ∪ (its
        // not-yet-eliminated neighbours in the filled graph); the clique's separator is
        // the clique minus the eliminated variable, and its parent is the elimination
        // clique of the earliest-eliminated variable of that separator. This connection
        // rule guarantees the running-intersection property.
        let n = graph.variable_count();
        let mut neighbours: Vec<BTreeSet<usize>> = vec![BTreeSet::new(); n];
        for f in graph.factors() {
            let scope = graph.scope_of(f);
            for a in scope {
                for b in scope {
                    if a != b {
                        neighbours[a.0].insert(b.0);
                    }
                }
            }
        }
        let mut eliminated = vec![false; n];
        let mut elimination_position = vec![0usize; n];
        for (step, v) in order.iter().enumerate() {
            elimination_position[v.0] = step;
        }
        let mut cliques: Vec<Clique> = Vec::with_capacity(n);
        for v in &order {
            let live: Vec<usize> = neighbours[v.0]
                .iter()
                .copied()
                .filter(|&u| !eliminated[u])
                .collect();
            let mut variables: Vec<VariableId> = vec![*v];
            variables.extend(live.iter().map(|&u| VariableId(u)));
            let separator: Vec<VariableId> = live.iter().map(|&u| VariableId(u)).collect();
            // Parent: the elimination clique of the earliest-eliminated separator
            // member. That clique's index equals the member's elimination position,
            // which is strictly larger than this clique's index.
            let parent = separator.iter().map(|u| elimination_position[u.0]).min();
            eliminated[v.0] = true;
            for &a in &live {
                for &b in &live {
                    if a != b {
                        neighbours[a].insert(b);
                    }
                }
            }
            cliques.push(Clique {
                variables,
                parent,
                separator,
            });
        }

        // Assign every factor to one clique covering its scope, and every variable to a
        // home clique.
        let mut potentials: Vec<DenseTable> = cliques
            .iter()
            .map(|c| {
                // Start from the all-ones table over the clique scope so marginals over
                // unassigned variables still work.
                DenseTable::new(c.variables.clone(), vec![1.0; 1usize << c.variables.len()])
            })
            .collect();
        for f in graph.factors() {
            let scope = graph.scope_of(f);
            let host = cliques
                .iter()
                .position(|c| scope.iter().all(|v| c.variables.contains(v)))
                .unwrap_or_else(|| panic!("no clique covers the scope of factor {f}"));
            potentials[host] = potentials[host].multiply(&DenseTable::from_factor(graph, f));
        }
        let mut home_clique = vec![usize::MAX; n];
        for (i, c) in cliques.iter().enumerate() {
            for v in &c.variables {
                if home_clique[v.0] == usize::MAX {
                    home_clique[v.0] = i;
                }
            }
        }
        // Variables covered by no factor have no clique; park them on clique 0 and let
        // the all-ones potential return the uniform marginal.
        for h in &mut home_clique {
            if *h == usize::MAX {
                *h = 0;
            }
        }

        Self {
            cliques,
            potentials,
            home_clique,
        }
    }

    /// Number of cliques.
    pub fn clique_count(&self) -> usize {
        self.cliques.len()
    }

    /// Size of the largest clique.
    pub fn max_clique_size(&self) -> usize {
        self.cliques
            .iter()
            .map(|c| c.variables.len())
            .max()
            .unwrap_or(0)
    }

    /// The cliques of the tree.
    pub fn cliques(&self) -> &[Clique] {
        &self.cliques
    }

    /// Runs the two-pass propagation and returns the exact marginals of every variable.
    pub fn propagate(&self) -> JunctionTreeReport {
        let k = self.cliques.len();
        // Upward pass (children to parents, in reverse topological order: children have
        // smaller indices than their parents by construction).
        let mut upward: Vec<Option<DenseTable>> = vec![None; k];
        let mut collected: Vec<DenseTable> = self.potentials.clone();
        for i in 0..k {
            // Children of the parent appear before the parent, so by the time we reach
            // `i`, every child message into `i` has already been folded into
            // `collected[i]`.
            if let Some(parent) = self.cliques[i].parent {
                let mut message = collected[i].clone();
                for v in &self.cliques[i].variables {
                    if !self.cliques[i].separator.contains(v) {
                        message = message.sum_out(*v);
                    }
                }
                collected[parent] = collected[parent].multiply(&message);
                upward[i] = Some(message);
            }
        }
        // Downward pass (parents to children, forward order is not correct — parents
        // have *larger* indices, so iterate from the end).
        let mut downward: Vec<Option<DenseTable>> = vec![None; k];
        let mut beliefs: Vec<DenseTable> = vec![DenseTable::unit(); k];
        for i in (0..k).rev() {
            let mut belief = collected[i].clone();
            if let Some(msg) = &downward[i] {
                belief = belief.multiply(msg);
            }
            beliefs[i] = belief.clone();
            // Send to every child: the child's message must be divided out; since the
            // tables are small we recompute the product without the child instead of
            // dividing (division by zero-mass messages is ill-defined).
            let children: Vec<usize> = (0..k)
                .filter(|&c| self.cliques[c].parent == Some(i))
                .collect();
            for child in children {
                let mut to_child = self.potentials[i].clone();
                if let Some(msg) = &downward[i] {
                    to_child = to_child.multiply(msg);
                }
                for &other in (0..k)
                    .filter(|&c| self.cliques[c].parent == Some(i))
                    .collect::<Vec<_>>()
                    .iter()
                {
                    if other == child {
                        continue;
                    }
                    if let Some(msg) = &upward[other] {
                        to_child = to_child.multiply(msg);
                    }
                }
                // Project onto the child's separator.
                let separator = &self.cliques[child].separator;
                for v in to_child.scope().to_vec() {
                    if !separator.contains(&v) {
                        to_child = to_child.sum_out(v);
                    }
                }
                downward[child] = Some(to_child);
            }
        }

        let posteriors: Vec<f64> = (0..self.home_clique.len())
            .map(|v| {
                let clique = self.home_clique[v];
                let table = &beliefs[clique];
                if table.position(VariableId(v)).is_some() {
                    table.marginal_correct(VariableId(v))
                } else {
                    0.5
                }
            })
            .collect();
        JunctionTreeReport {
            posteriors,
            clique_count: k,
            max_clique_size: self.max_clique_size(),
        }
    }
}

/// Convenience wrapper: compile and propagate in one call.
pub fn junction_tree_marginals(graph: &FactorGraph) -> Vec<f64> {
    JunctionTree::build(graph).propagate().posteriors
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::exact_marginals;
    use crate::factor::Factor;

    fn example_graph() -> FactorGraph {
        let mut g = FactorGraph::new();
        let vars: Vec<VariableId> = (0..5).map(|i| g.add_variable(format!("m{i}"))).collect();
        for &v in &vars {
            g.add_prior(v, 0.7);
        }
        g.add_factor(Factor::feedback(
            vec![vars[0], vars[1], vars[2], vars[3]],
            true,
            0.1,
        ));
        g.add_factor(Factor::feedback(
            vec![vars[0], vars[4], vars[3]],
            false,
            0.1,
        ));
        g.add_factor(Factor::feedback(
            vec![vars[1], vars[2], vars[4]],
            false,
            0.1,
        ));
        g
    }

    #[test]
    fn junction_tree_matches_enumeration_on_the_example_graph() {
        let g = example_graph();
        let reference = exact_marginals(&g);
        let jt = junction_tree_marginals(&g);
        for (a, b) in reference.iter().zip(&jt) {
            assert!((a - b).abs() < 1e-9, "enumeration {a} vs junction tree {b}");
        }
    }

    #[test]
    fn junction_tree_matches_enumeration_on_a_tree_model() {
        let mut g = FactorGraph::new();
        let a = g.add_variable("a");
        let b = g.add_variable("b");
        let c = g.add_variable("c");
        let d = g.add_variable("d");
        g.add_prior(a, 0.9);
        g.add_prior(b, 0.2);
        g.add_factor(Factor::feedback(vec![a, b], true, 0.15));
        g.add_factor(Factor::feedback(vec![b, c], false, 0.15));
        g.add_factor(Factor::feedback(vec![b, d], true, 0.3));
        let reference = exact_marginals(&g);
        let jt = junction_tree_marginals(&g);
        for (x, y) in reference.iter().zip(&jt) {
            assert!((x - y).abs() < 1e-9);
        }
    }

    #[test]
    fn junction_tree_handles_models_past_the_enumeration_cap() {
        // A 30-variable ladder: chain feedback plus priors; width stays tiny.
        let mut g = FactorGraph::new();
        let vars: Vec<VariableId> = (0..30).map(|i| g.add_variable(format!("x{i}"))).collect();
        g.add_prior(vars[0], 0.95);
        g.add_prior(vars[29], 0.4);
        for w in vars.windows(2) {
            g.add_factor(Factor::feedback(vec![w[0], w[1]], true, 0.1));
        }
        let report = JunctionTree::build(&g).propagate();
        assert_eq!(report.posteriors.len(), 30);
        assert!(report.max_clique_size <= 3);
        assert!(report.posteriors[0] > 0.5);
        // Compare a few spots against elimination (the other exact method).
        let by_elimination = crate::elimination::eliminate_marginals(&g);
        for (a, b) in report.posteriors.iter().zip(&by_elimination) {
            assert!((a - b).abs() < 1e-9, "jt {a} vs elimination {b}");
        }
    }

    #[test]
    fn running_intersection_holds() {
        let g = example_graph();
        let jt = JunctionTree::build(&g);
        // For every pair of cliques containing a variable, the variable must appear in
        // every clique on the path between them. With parent pointers, it is enough to
        // check that the separator of every clique is contained in its parent.
        for c in jt.cliques() {
            if let Some(parent) = c.parent {
                for v in &c.separator {
                    assert!(jt.cliques()[parent].variables.contains(v));
                }
            }
        }
    }

    #[test]
    fn uncovered_variable_gets_a_uniform_marginal() {
        let mut g = FactorGraph::new();
        let a = g.add_variable("a");
        let _floating = g.add_variable("floating");
        g.add_prior(a, 0.8);
        let marginals = junction_tree_marginals(&g);
        assert!((marginals[0] - 0.8).abs() < 1e-9);
        assert!((marginals[1] - 0.5).abs() < 1e-9);
    }

    #[test]
    fn clique_statistics_are_reported() {
        let g = example_graph();
        let report = JunctionTree::build(&g).propagate();
        assert!(report.clique_count >= 1);
        assert!(report.max_clique_size >= 3);
    }
}

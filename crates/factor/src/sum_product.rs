//! Iterative sum-product (loopy belief propagation) over a [`FactorGraph`].
//!
//! The engine implements the two update rules of Section 3.1:
//!
//! ```text
//! variable → factor:  µ_{x→f}(x) = ∏_{h ∈ n(x) \ {f}} µ_{h→x}(x)
//! factor   → variable: µ_{f→x}(x) = Σ_{~x} f(X) ∏_{y ∈ n(f) \ {x}} µ_{y→f}(y)
//! ```
//!
//! All messages start as the unit function (Section 4.3's bootstrap for cyclic graphs),
//! and the posterior of a variable is the normalised product of its incoming
//! factor→variable messages. On cycle-free graphs the result is exact after two
//! iterations; on cyclic graphs the iteration converges to the usual loopy-BP
//! approximation, which Section 5 shows to be within a few percent of exact inference
//! for PDMS factor graphs.
//!
//! Three schedules are provided: synchronous flooding, random sequential order, and a
//! lossy schedule in which each message is sent only with probability `P(send)` — the
//! centralized counterpart of the fault-tolerance experiment of Figure 11.

use crate::belief::Belief;
use crate::graph::{FactorGraph, FactorId, VariableId};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// Message-update ordering.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Schedule {
    /// All messages are recomputed from the previous iteration's values ("flooding").
    /// This mirrors the periodic schedule of Section 4.3.1.
    Synchronous,
    /// Edges are updated one at a time in a random order, immediately using fresh
    /// values; often converges in fewer iterations on loopy graphs.
    RandomSequential,
}

/// Configuration of the iterative solver.
#[derive(Debug, Clone)]
pub struct SumProductConfig {
    /// Maximum number of iterations before giving up.
    pub max_iterations: usize,
    /// Convergence threshold on the L∞ change of any posterior between iterations.
    pub tolerance: f64,
    /// Damping factor λ ∈ (0, 1]: 1 means undamped updates.
    pub damping: f64,
    /// Update ordering.
    pub schedule: Schedule,
    /// Probability that any given message update is actually applied; values below 1
    /// simulate lost messages (Figure 11). The previous message is kept when the update
    /// is "lost".
    pub send_probability: f64,
    /// RNG seed (used by the random schedule and by message dropping).
    pub seed: u64,
    /// Record the posterior of every variable after every iteration (needed by the
    /// convergence figure; costs memory on large graphs).
    pub record_history: bool,
}

impl Default for SumProductConfig {
    fn default() -> Self {
        Self {
            max_iterations: 50,
            tolerance: 1e-6,
            damping: 1.0,
            schedule: Schedule::Synchronous,
            send_probability: 1.0,
            seed: 7,
            record_history: true,
        }
    }
}

/// Result of a sum-product run.
#[derive(Debug, Clone)]
pub struct SumProductReport {
    /// Posterior `P(correct)` per variable, indexed by `VariableId.0`.
    pub posteriors: Vec<f64>,
    /// Number of iterations executed.
    pub iterations: usize,
    /// Whether the tolerance was reached before `max_iterations`.
    pub converged: bool,
    /// Posterior trajectory: `history[it][var]`, recorded when
    /// [`SumProductConfig::record_history`] is set (the initial state is included as
    /// iteration 0).
    pub history: Vec<Vec<f64>>,
}

impl SumProductReport {
    /// Posterior of one variable.
    pub fn posterior(&self, v: VariableId) -> f64 {
        self.posteriors[v.0]
    }
}

/// The iterative sum-product engine. Holds the message tables between calls so callers
/// can also drive it iteration by iteration (the embedded scheme does).
#[derive(Debug, Clone)]
pub struct SumProduct<'g> {
    graph: &'g FactorGraph,
    config: SumProductConfig,
    /// `var_to_factor[f.0][k]` is µ_{scope[k] → f}.
    var_to_factor: Vec<Vec<Belief>>,
    /// `factor_to_var[f.0][k]` is µ_{f → scope[k]}.
    factor_to_var: Vec<Vec<Belief>>,
    /// Double buffer for the synchronous schedule: the "next" tables are allocated
    /// once here and swapped with the live tables every iteration, so the per-round
    /// whole-table clones the schedule used to pay are gone.
    var_to_factor_next: Vec<Vec<Belief>>,
    factor_to_var_next: Vec<Vec<Belief>>,
    rng: StdRng,
}

impl<'g> SumProduct<'g> {
    /// Creates an engine with all messages initialised to the unit function.
    pub fn new(graph: &'g FactorGraph, config: SumProductConfig) -> Self {
        let var_to_factor: Vec<Vec<Belief>> = graph
            .factors()
            .map(|f| vec![Belief::unit(); graph.scope_of(f).len()])
            .collect();
        let factor_to_var: Vec<Vec<Belief>> = graph
            .factors()
            .map(|f| vec![Belief::unit(); graph.scope_of(f).len()])
            .collect();
        let var_to_factor_next = var_to_factor.clone();
        let factor_to_var_next = factor_to_var.clone();
        let rng = StdRng::seed_from_u64(config.seed);
        Self {
            graph,
            config,
            var_to_factor,
            factor_to_var,
            var_to_factor_next,
            factor_to_var_next,
            rng,
        }
    }

    /// Current posterior `P(correct)` of a variable: normalised product of incoming
    /// factor→variable messages.
    pub fn posterior(&self, v: VariableId) -> f64 {
        let mut belief = Belief::unit();
        for &f in self.graph.factors_of(v) {
            let pos = self.position_in_scope(f, v);
            belief *= self.factor_to_var[f.0][pos];
        }
        belief.probability_correct()
    }

    /// Posterior of every variable.
    pub fn posteriors(&self) -> Vec<f64> {
        self.graph.variables().map(|v| self.posterior(v)).collect()
    }

    /// Runs one full iteration (every edge updated once in each direction, subject to
    /// the schedule and the send probability). Returns the maximum posterior change.
    pub fn iterate(&mut self) -> f64 {
        let before = self.posteriors();
        match self.config.schedule {
            Schedule::Synchronous => self.iterate_synchronous(),
            Schedule::RandomSequential => self.iterate_random_sequential(),
        }
        let after = self.posteriors();
        before
            .iter()
            .zip(&after)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f64::max)
    }

    fn should_send(&mut self) -> bool {
        self.config.send_probability >= 1.0
            || self
                .rng
                .gen_bool(self.config.send_probability.clamp(0.0, 1.0))
    }

    fn position_in_scope(&self, f: FactorId, v: VariableId) -> usize {
        self.graph
            .scope_of(f)
            .iter()
            .position(|s| *s == v)
            .expect("variable must be in factor scope")
    }

    /// Variable→factor message computed from the *current* factor→variable table.
    fn compute_var_to_factor(&self, v: VariableId, excluding: FactorId) -> Belief {
        let mut belief = Belief::unit();
        for &other in self.graph.factors_of(v) {
            if other == excluding {
                continue;
            }
            let pos = self.position_in_scope(other, v);
            belief *= self.factor_to_var[other.0][pos];
        }
        // Rescale to avoid underflow on long products; messages are scale-invariant.
        belief.normalized()
    }

    fn iterate_synchronous(&mut self) {
        // Phase 1: recompute all variable→factor messages from the old factor→variable
        // table. The "next" table is a once-allocated double buffer: refreshing it
        // with `clone_from` reuses every inner allocation, and the swap afterwards is
        // O(1) — no whole-table clone per iteration.
        self.var_to_factor_next.clone_from(&self.var_to_factor);
        for f in self.graph.factors() {
            for (pos, &v) in self.graph.scope_of(f).iter().enumerate() {
                if self.should_send() {
                    let msg = self.compute_var_to_factor(v, f);
                    self.var_to_factor_next[f.0][pos] = msg;
                }
            }
        }
        std::mem::swap(&mut self.var_to_factor, &mut self.var_to_factor_next);
        // Phase 2: recompute all factor→variable messages from the fresh
        // variable→factor table.
        self.factor_to_var_next.clone_from(&self.factor_to_var);
        for f in self.graph.factors() {
            #[allow(clippy::needless_range_loop)]
            for pos in 0..self.graph.scope_of(f).len() {
                if self.should_send() {
                    let incoming = &self.var_to_factor[f.0];
                    let msg = self.graph.factor(f).message_to(pos, incoming).normalized();
                    let old = self.factor_to_var_next[f.0][pos];
                    self.factor_to_var_next[f.0][pos] =
                        old.damped_towards(&msg, self.config.damping);
                }
            }
        }
        std::mem::swap(&mut self.factor_to_var, &mut self.factor_to_var_next);
    }

    fn iterate_random_sequential(&mut self) {
        let mut edges: Vec<(FactorId, usize, VariableId)> = Vec::new();
        for f in self.graph.factors() {
            for (pos, &v) in self.graph.scope_of(f).iter().enumerate() {
                edges.push((f, pos, v));
            }
        }
        edges.shuffle(&mut self.rng);
        for (f, pos, v) in edges {
            if !self.should_send() {
                continue;
            }
            // Refresh the variable→factor message for this edge, then the
            // factor→variable message, immediately visible to later edges.
            self.var_to_factor[f.0][pos] = self.compute_var_to_factor(v, f);
            let msg = {
                let incoming = &self.var_to_factor[f.0];
                self.graph.factor(f).message_to(pos, incoming).normalized()
            };
            let old = self.factor_to_var[f.0][pos];
            self.factor_to_var[f.0][pos] = old.damped_towards(&msg, self.config.damping);
        }
    }

    /// Runs until convergence or the iteration cap and reports the result.
    pub fn run(&mut self) -> SumProductReport {
        let mut history = Vec::new();
        if self.config.record_history {
            history.push(self.posteriors());
        }
        let mut converged = false;
        let mut iterations = 0;
        for _ in 0..self.config.max_iterations {
            let delta = self.iterate();
            iterations += 1;
            if self.config.record_history {
                history.push(self.posteriors());
            }
            if delta < self.config.tolerance {
                converged = true;
                break;
            }
        }
        SumProductReport {
            posteriors: self.posteriors(),
            iterations,
            converged,
            history,
        }
    }
}

/// Convenience wrapper: build the engine, run it, return the report.
pub fn run_sum_product(graph: &FactorGraph, config: SumProductConfig) -> SumProductReport {
    SumProduct::new(graph, config).run()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::exact_marginals;
    use crate::factor::Factor;

    /// prior(0.7) — x — feedback⁺ — y — prior(0.7): a tree.
    fn tree_graph() -> FactorGraph {
        let mut g = FactorGraph::new();
        let x = g.add_variable("x");
        let y = g.add_variable("y");
        g.add_prior(x, 0.7);
        g.add_prior(y, 0.7);
        g.add_factor(Factor::feedback(vec![x, y], true, 0.1));
        g
    }

    /// The paper's example factor graph (Figure 4): five mappings, three cycles.
    fn paper_example(priors: f64, delta: f64) -> FactorGraph {
        let mut g = FactorGraph::new();
        let m12 = g.add_variable("m12");
        let m23 = g.add_variable("m23");
        let m34 = g.add_variable("m34");
        let m41 = g.add_variable("m41");
        let m24 = g.add_variable("m24");
        for v in [m12, m23, m34, m41, m24] {
            g.add_prior(v, priors);
        }
        // f1+: m12-m23-m34-m41, f2-: m12-m24-m41, f3-: m23-m34-m24
        g.add_factor(Factor::feedback(vec![m12, m23, m34, m41], true, delta));
        g.add_factor(Factor::feedback(vec![m12, m24, m41], false, delta));
        g.add_factor(Factor::feedback(vec![m23, m34, m24], false, delta));
        g
    }

    #[test]
    fn exact_on_trees_in_two_iterations() {
        let g = tree_graph();
        let exact = exact_marginals(&g);
        let mut engine = SumProduct::new(
            &g,
            SumProductConfig {
                max_iterations: 2,
                tolerance: 0.0,
                ..Default::default()
            },
        );
        engine.iterate();
        engine.iterate();
        for v in g.variables() {
            assert!(
                (engine.posterior(v) - exact[v.0]).abs() < 1e-9,
                "{v}: {} vs {}",
                engine.posterior(v),
                exact[v.0]
            );
        }
    }

    #[test]
    fn loopy_graph_converges_close_to_exact() {
        // Figure 9 reports the relative error of the iterative scheme against global
        // inference for the mappings of the (grown) cycle — the correct mappings stay
        // within a few percent; the faulty one (m24) is pushed further down by loopy
        // double-counting but keeps the same classification.
        let g = paper_example(0.8, 0.1);
        let report = run_sum_product(&g, SumProductConfig::default());
        assert!(report.converged, "did not converge in 50 iterations");
        let exact = exact_marginals(&g);
        let m24 = g.variable_by_name("m24").unwrap();
        for v in g.variables() {
            if v == m24 {
                assert!(report.posterior(v) < 0.5 && exact[v.0] < 0.5);
                continue;
            }
            let err = (report.posterior(v) - exact[v.0]).abs() / exact[v.0];
            assert!(
                err < 0.06,
                "{}: relative error {err} (paper reports < 6%)",
                g.variable_name(v)
            );
        }
    }

    #[test]
    fn faulty_mapping_is_singled_out() {
        // With f1 positive and f2, f3 negative, m24 is the mapping consistent with all
        // three observations being explained by a single error: its posterior must be
        // the lowest and below 0.5, while the four others stay above 0.5.
        let g = paper_example(0.7, 0.1);
        let report = run_sum_product(&g, SumProductConfig::default());
        let m24 = g.variable_by_name("m24").unwrap();
        for v in g.variables() {
            if v == m24 {
                assert!(report.posterior(v) < 0.5, "m24 should look faulty");
            } else {
                assert!(
                    report.posterior(v) > 0.5,
                    "{} should look correct, got {}",
                    g.variable_name(v),
                    report.posterior(v)
                );
            }
        }
    }

    #[test]
    fn convergence_within_about_ten_iterations() {
        // Section 5.1.1: "our embedded message passing scheme converges to approximate
        // results in ten iterations usually".
        let g = paper_example(0.7, 0.1);
        let report = run_sum_product(
            &g,
            SumProductConfig {
                tolerance: 1e-2,
                ..Default::default()
            },
        );
        assert!(report.converged);
        assert!(
            report.iterations <= 15,
            "took {} iterations",
            report.iterations
        );
    }

    #[test]
    fn random_sequential_schedule_agrees_with_synchronous() {
        let g = paper_example(0.8, 0.1);
        let sync = run_sum_product(&g, SumProductConfig::default());
        let seq = run_sum_product(
            &g,
            SumProductConfig {
                schedule: Schedule::RandomSequential,
                ..Default::default()
            },
        );
        for v in g.variables() {
            assert!(
                (sync.posterior(v) - seq.posterior(v)).abs() < 1e-3,
                "{}: {} vs {}",
                g.variable_name(v),
                sync.posterior(v),
                seq.posterior(v)
            );
        }
    }

    #[test]
    fn lost_messages_still_converge_to_the_same_fixpoint() {
        // Figure 11: with P(send) = 0.5 the algorithm still converges, only slower.
        let g = paper_example(0.8, 0.1);
        let reliable = run_sum_product(&g, SumProductConfig::default());
        let lossy = run_sum_product(
            &g,
            SumProductConfig {
                send_probability: 0.5,
                max_iterations: 400,
                ..Default::default()
            },
        );
        assert!(lossy.converged);
        assert!(lossy.iterations >= reliable.iterations);
        for v in g.variables() {
            assert!(
                (reliable.posterior(v) - lossy.posterior(v)).abs() < 5e-3,
                "{}: {} vs {}",
                g.variable_name(v),
                reliable.posterior(v),
                lossy.posterior(v)
            );
        }
    }

    #[test]
    fn history_records_initial_state_and_iterations() {
        let g = tree_graph();
        let report = run_sum_product(
            &g,
            SumProductConfig {
                max_iterations: 5,
                tolerance: 0.0,
                ..Default::default()
            },
        );
        assert_eq!(report.history.len(), report.iterations + 1);
        // Iteration 0 (before any message) has uniform posteriors.
        assert!(report.history[0].iter().all(|p| (p - 0.5).abs() < 1e-12));
    }

    #[test]
    fn damping_does_not_change_the_fixpoint() {
        let g = paper_example(0.7, 0.1);
        let undamped = run_sum_product(&g, SumProductConfig::default());
        let damped = run_sum_product(
            &g,
            SumProductConfig {
                damping: 0.5,
                max_iterations: 200,
                ..Default::default()
            },
        );
        assert!(damped.converged);
        for v in g.variables() {
            assert!((undamped.posterior(v) - damped.posterior(v)).abs() < 1e-3);
        }
    }

    #[test]
    fn variable_without_factors_stays_uniform() {
        let mut g = FactorGraph::new();
        let x = g.add_variable("x");
        let y = g.add_variable("orphan");
        g.add_prior(x, 0.9);
        let report = run_sum_product(&g, SumProductConfig::default());
        assert!((report.posterior(y) - 0.5).abs() < 1e-12);
        assert!((report.posterior(x) - 0.9).abs() < 1e-9);
    }
}

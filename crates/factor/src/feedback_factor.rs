//! Closed-form evaluation of cycle / parallel-path feedback factors.
//!
//! The conditional probability of observing positive feedback given the correctness of
//! the `n` mappings in a cycle (Section 3.2.1) depends only on the *number* of
//! incorrect mappings:
//!
//! ```text
//! P(f⁺ | #incorrect = 0) = 1
//! P(f⁺ | #incorrect = 1) = 0
//! P(f⁺ | #incorrect ≥ 2) = Δ
//! ```
//!
//! and `P(f⁻ | ·) = 1 − P(f⁺ | ·)`. Because of this counting structure the sum-product
//! message from the factor to one of its variables does not require enumerating the
//! `2^(n−1)` joint states of the other variables: it is enough to know, for the other
//! variables, the total mass of "all correct", "exactly one incorrect" and "two or
//! more incorrect" under the incoming messages — three numbers computable in O(n).
//! This is what makes the scheme practical for long cycles and what the
//! `feedback_factor` Criterion bench quantifies against the naive enumeration.

use crate::belief::Belief;

/// Whether the cycle / parallel path produced positive or negative feedback.
///
/// Neutral feedback (the `⊥` case) never becomes a factor: the paper treats it as
/// carrying no information about semantic agreement, so no factor is created.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FeedbackSign {
    /// The attribute returned unchanged: `aj = ai`.
    Positive,
    /// The attribute returned as a different attribute: `aj ≠ ai`.
    Negative,
}

impl FeedbackSign {
    /// Builds the sign from a boolean (`true` = positive).
    pub fn from_positive(positive: bool) -> Self {
        if positive {
            FeedbackSign::Positive
        } else {
            FeedbackSign::Negative
        }
    }

    /// True for positive feedback.
    pub fn is_positive(&self) -> bool {
        matches!(self, FeedbackSign::Positive)
    }
}

/// The conditional probability table entry for a given number of incorrect mappings.
pub fn feedback_value(sign: FeedbackSign, incorrect_count: usize, delta: f64) -> f64 {
    let positive = match incorrect_count {
        0 => 1.0,
        1 => 0.0,
        _ => delta,
    };
    match sign {
        FeedbackSign::Positive => positive,
        FeedbackSign::Negative => 1.0 - positive,
    }
}

/// Mass of the "all correct" (`p0`), "exactly one incorrect" (`p1`) and total
/// configurations of a set of independent binary messages.
///
/// Returns `(p0, p1, total)`. The mass of "two or more incorrect" is
/// `total − p0 − p1` (clamped at zero against floating-point cancellation).
fn count_masses(incoming: &[Belief], skip: usize) -> (f64, f64, f64) {
    let mut p0 = 1.0f64; // all others correct
    let mut p1 = 0.0f64; // exactly one other incorrect
    let mut total = 1.0f64;
    for (pos, msg) in incoming.iter().enumerate() {
        if pos == skip {
            continue;
        }
        let a = msg.correct();
        let b = msg.incorrect();
        // Update in the usual dynamic-programming order: p1 before p0.
        p1 = p1 * a + p0 * b;
        p0 *= a;
        total *= a + b;
    }
    (p0, p1, total)
}

/// Closed-form factor→variable message for a feedback factor.
///
/// `to_position` indexes the destination variable inside the factor scope; `incoming`
/// holds the variable→factor messages for every scope position (the destination's
/// entry is ignored).
pub fn feedback_message(
    sign: FeedbackSign,
    delta: f64,
    to_position: usize,
    incoming: &[Belief],
) -> Belief {
    let (p0, p1, total) = count_masses(incoming, to_position);
    let p2_plus = (total - p0 - p1).max(0.0);
    // If the destination variable is correct, the total number of incorrect mappings
    // equals the count among the others; if it is incorrect, the count is one higher.
    let (correct, incorrect) = match sign {
        FeedbackSign::Positive => (
            1.0 * p0 + 0.0 * p1 + delta * p2_plus,
            0.0 * p0 + delta * (p1 + p2_plus),
        ),
        FeedbackSign::Negative => (
            0.0 * p0 + 1.0 * p1 + (1.0 - delta) * p2_plus,
            1.0 * p0 + (1.0 - delta) * (p1 + p2_plus),
        ),
    };
    Belief::from_weights(correct.max(0.0), incorrect.max(0.0))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cpt_values_match_the_paper() {
        assert_eq!(feedback_value(FeedbackSign::Positive, 0, 0.1), 1.0);
        assert_eq!(feedback_value(FeedbackSign::Positive, 1, 0.1), 0.0);
        assert_eq!(feedback_value(FeedbackSign::Positive, 2, 0.1), 0.1);
        assert_eq!(feedback_value(FeedbackSign::Positive, 7, 0.1), 0.1);
        assert_eq!(feedback_value(FeedbackSign::Negative, 0, 0.1), 0.0);
        assert_eq!(feedback_value(FeedbackSign::Negative, 1, 0.1), 1.0);
        assert!((feedback_value(FeedbackSign::Negative, 3, 0.1) - 0.9).abs() < 1e-12);
    }

    #[test]
    fn two_mapping_positive_cycle_pulls_towards_correct() {
        // Both other mappings believed correct with p=0.5; positive feedback should
        // favour `correct` for the destination.
        let incoming = vec![Belief::uniform(), Belief::uniform()];
        let msg = feedback_message(FeedbackSign::Positive, 0.1, 0, &incoming);
        assert!(msg.probability_correct() > 0.5);
    }

    #[test]
    fn negative_feedback_pushes_towards_incorrect() {
        let incoming = vec![
            Belief::from_probability(0.9),
            Belief::from_probability(0.9),
            Belief::from_probability(0.9),
        ];
        let msg = feedback_message(FeedbackSign::Negative, 0.1, 1, &incoming);
        assert!(msg.probability_correct() < 0.5);
    }

    #[test]
    fn count_masses_partition_total() {
        let incoming = vec![
            Belief::from_probability(0.3),
            Belief::from_probability(0.8),
            Belief::from_probability(0.6),
            Belief::from_probability(0.95),
        ];
        let (p0, p1, total) = count_masses(&incoming, 2);
        assert!(p0 > 0.0 && p1 > 0.0);
        assert!(p0 + p1 <= total + 1e-12);
        // With normalised messages the total mass is 1.
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn single_variable_feedback_degenerates_cleanly() {
        // A "cycle" of one mapping: positive feedback means the mapping must be correct
        // (no compensation possible), negative feedback means it must be incorrect.
        let incoming = vec![Belief::uniform()];
        let pos = feedback_message(FeedbackSign::Positive, 0.1, 0, &incoming);
        assert!((pos.probability_correct() - 1.0).abs() < 1e-12);
        let neg = feedback_message(FeedbackSign::Negative, 0.1, 0, &incoming);
        assert!((neg.probability_correct() - 0.0).abs() < 1e-12);
    }

    #[test]
    fn longer_cycles_give_weaker_evidence() {
        // Section 5.1.2 / Figure 10: with uniform priors the posterior pulled by a
        // single positive feedback factor weakens towards 0.5 as the cycle grows.
        // (With Δ = 0.1 the evidence vanishes around ten mappings, which is exactly
        // the paper's argument for bounding the probe TTL.)
        let mut previous = 1.0;
        for n in 2..=10usize {
            let incoming = vec![Belief::uniform(); n];
            let msg = feedback_message(FeedbackSign::Positive, 0.1, 0, &incoming);
            let p = msg.probability_correct();
            assert!(p <= previous + 1e-12, "cycle length {n}: {p} > {previous}");
            assert!(p > 0.5, "cycle length {n}: {p}");
            previous = p;
        }
        // With a smaller Δ (bigger schemas) even longer cycles still carry evidence.
        let incoming = vec![Belief::uniform(); 15];
        let msg = feedback_message(FeedbackSign::Positive, 0.01, 0, &incoming);
        assert!(msg.probability_correct() > 0.5);
    }

    proptest::proptest! {
        /// The closed form must agree with naive enumeration for any scope size and any
        /// incoming messages — this is the central correctness property of the fast path.
        #[test]
        fn closed_form_matches_enumeration(
            probs in proptest::collection::vec(0.01f64..0.99, 2..7),
            delta in 0.0f64..1.0,
            positive in proptest::bool::ANY,
            to_position_seed in 0usize..6,
        ) {
            use crate::factor::Factor;
            use crate::graph::VariableId;
            let n = probs.len();
            let to_position = to_position_seed % n;
            let incoming: Vec<Belief> = probs.iter().map(|p| Belief::from_probability(*p)).collect();
            let scope: Vec<VariableId> = (0..n).map(VariableId).collect();
            let factor = Factor::feedback(scope, positive, delta);
            let fast = factor.message_to(to_position, &incoming).normalized();
            let slow = factor.message_by_enumeration(to_position, &incoming).normalized();
            proptest::prop_assert!(fast.distance(&slow) < 1e-9);
        }
    }
}

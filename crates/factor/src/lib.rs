//! Factor graphs and sum-product message passing over binary variables.
//!
//! The paper models the network of mappings as a factor graph (Section 3): one binary
//! variable per mapping ("is this mapping correct for attribute *a*?"), one single-
//! variable *prior* factor per mapping, and one *feedback* factor per mapping cycle or
//! parallel path, whose conditional probability table is
//!
//! ```text
//! P(f⁺ | m0 … mn-1) = 1  if all mappings correct
//!                     0  if exactly one mapping incorrect
//!                     Δ  if two or more mappings incorrect  (compensating errors)
//! ```
//!
//! Marginal posteriors are then computed with the sum-product algorithm — exactly on
//! trees, approximately (loopy belief propagation) on graphs with cycles.
//!
//! This crate is a self-contained implementation of that machinery:
//!
//! * [`belief`] — normalised two-state distributions and message arithmetic;
//! * [`factor`] — the factor-graph node types, with dense-table factors
//!   for generality and a closed-form implementation of the feedback factor that avoids
//!   the 2ⁿ table ([`feedback_factor`]);
//! * [`graph`] — the bipartite factor-graph structure;
//! * [`sum_product`] — synchronous, random-order, and residual schedules of loopy
//!   belief propagation, with damping and convergence detection;
//! * [`exact`] — brute-force exact marginals used as the reference for Figure 9.
//!
//! The crate is independent of PDMS concepts; `pdms-core` maps mappings and feedback
//! onto these structures.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod belief;
pub mod elimination;
pub mod exact;
pub mod factor;
pub mod feedback_factor;
pub mod graph;
pub mod junction_tree;
pub mod max_product;
pub mod sum_product;
pub mod tables;

pub use belief::Belief;
pub use elimination::{
    eliminate_marginal, eliminate_marginals, induced_width, min_degree_ordering,
};
pub use exact::exact_marginals;
pub use factor::{Factor, FactorKind};
pub use feedback_factor::{feedback_message, FeedbackSign};
pub use graph::{FactorGraph, FactorId, VariableId};
pub use junction_tree::{junction_tree_marginals, JunctionTree, JunctionTreeReport};
pub use max_product::{map_assignment, map_by_enumeration, MapAssignment};
pub use sum_product::{run_sum_product, Schedule, SumProduct, SumProductConfig, SumProductReport};
pub use tables::DenseTable;

//! The catalog: peers, their schemas, and the mappings connecting them.
//!
//! A [`Catalog`] is the logical content of a PDMS: which peers exist, which schema each
//! peer exposes, and which pairwise mappings have been declared. It is a passive data
//! structure — the network simulator and the inference engine hold their own views
//! (message queues, factor graphs) keyed by the identifiers defined here.

use crate::mapping::{Mapping, MappingBuilder, MappingId};
use crate::schema::{Schema, SchemaBuilder, SchemaId};
use std::collections::BTreeMap;
use std::fmt;

/// Identifier of a peer database.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PeerId(pub usize);

impl fmt::Display for PeerId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

/// Registry of peers, schemas and mappings.
///
/// Mapping removal is tombstoned: a removed mapping keeps its [`MappingId`] slot (so
/// identifiers held by analyses, posterior tables and priors stay valid) but stops
/// appearing in [`Catalog::mappings`] and the derived views. This mirrors the
/// tombstoned edge removal of the graph crate, keeping mapping ids and topology edge
/// ids aligned across network evolution.
#[derive(Debug, Clone, Default)]
pub struct Catalog {
    peer_names: Vec<String>,
    peer_schemas: Vec<SchemaId>,
    schemas: Vec<Schema>,
    mappings: Vec<Mapping>,
    mapping_endpoints: Vec<(PeerId, PeerId)>,
    removed: Vec<bool>,
    by_endpoints: BTreeMap<(PeerId, PeerId), Vec<MappingId>>,
}

impl Catalog {
    /// Creates an empty catalog.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a schema built by the given closure and returns its id.
    pub fn add_schema(
        &mut self,
        name: impl Into<String>,
        build: impl FnOnce(&mut SchemaBuilder),
    ) -> SchemaId {
        let id = SchemaId(self.schemas.len());
        let mut builder = SchemaBuilder::new(id, name);
        build(&mut builder);
        self.schemas.push(builder.build());
        id
    }

    /// Registers a peer exposing an existing schema and returns its id.
    ///
    /// # Panics
    /// Panics if the schema id is unknown.
    pub fn add_peer(&mut self, name: impl Into<String>, schema: SchemaId) -> PeerId {
        assert!(schema.0 < self.schemas.len(), "unknown schema {schema}");
        let id = PeerId(self.peer_names.len());
        self.peer_names.push(name.into());
        self.peer_schemas.push(schema);
        id
    }

    /// Registers a peer with a freshly built schema of the same name.
    pub fn add_peer_with_schema(
        &mut self,
        name: impl Into<String> + Clone,
        build: impl FnOnce(&mut SchemaBuilder),
    ) -> PeerId {
        let schema = self.add_schema(name.clone(), build);
        self.add_peer(name, schema)
    }

    /// Declares a mapping from `source` peer to `target` peer, built by the closure.
    ///
    /// # Panics
    /// Panics if either peer is unknown.
    pub fn add_mapping(
        &mut self,
        source: PeerId,
        target: PeerId,
        build: impl FnOnce(MappingBuilder) -> MappingBuilder,
    ) -> MappingId {
        assert!(source.0 < self.peer_names.len(), "unknown peer {source}");
        assert!(target.0 < self.peer_names.len(), "unknown peer {target}");
        let id = MappingId(self.mappings.len());
        let builder =
            MappingBuilder::new(id, self.peer_schemas[source.0], self.peer_schemas[target.0]);
        self.mappings.push(build(builder).build());
        self.mapping_endpoints.push((source, target));
        self.removed.push(false);
        self.by_endpoints
            .entry((source, target))
            .or_default()
            .push(id);
        id
    }

    /// Removes a mapping (tombstoned: the id slot survives so other identifiers stay
    /// stable). Returns `false` when the mapping was already removed or never existed.
    pub fn remove_mapping(&mut self, id: MappingId) -> bool {
        match self.removed.get_mut(id.0) {
            Some(removed) if !*removed => {
                *removed = true;
                let endpoints = self.mapping_endpoints[id.0];
                if let Some(ids) = self.by_endpoints.get_mut(&endpoints) {
                    ids.retain(|m| *m != id);
                }
                true
            }
            _ => false,
        }
    }

    /// True when the mapping id refers to a removed (tombstoned) mapping.
    pub fn is_mapping_removed(&self, id: MappingId) -> bool {
        self.removed.get(id.0).copied().unwrap_or(false)
    }

    /// Number of peers.
    pub fn peer_count(&self) -> usize {
        self.peer_names.len()
    }

    /// Number of live mappings.
    pub fn mapping_count(&self) -> usize {
        self.removed.iter().filter(|r| !**r).count()
    }

    /// Number of mapping id slots ever allocated, including tombstones. Topology
    /// builders iterate slots so graph edge ids mirror mapping ids exactly.
    pub fn mapping_slot_count(&self) -> usize {
        self.mappings.len()
    }

    /// Number of schemas.
    pub fn schema_count(&self) -> usize {
        self.schemas.len()
    }

    /// All peer ids.
    pub fn peers(&self) -> impl Iterator<Item = PeerId> {
        (0..self.peer_names.len()).map(PeerId)
    }

    /// Peer name.
    pub fn peer_name(&self, peer: PeerId) -> &str {
        &self.peer_names[peer.0]
    }

    /// Schema exposed by a peer.
    pub fn peer_schema(&self, peer: PeerId) -> &Schema {
        &self.schemas[self.peer_schemas[peer.0].0]
    }

    /// Schema by id.
    pub fn schema(&self, id: SchemaId) -> &Schema {
        &self.schemas[id.0]
    }

    /// Mapping by id.
    pub fn mapping(&self, id: MappingId) -> &Mapping {
        &self.mappings[id.0]
    }

    /// Mutable access to a mapping (used by workload generators to inject or repair
    /// errors after construction).
    pub fn mapping_mut(&mut self, id: MappingId) -> &mut Mapping {
        &mut self.mappings[id.0]
    }

    /// All live mapping ids.
    pub fn mappings(&self) -> impl Iterator<Item = MappingId> + '_ {
        (0..self.mappings.len())
            .filter(|i| !self.removed[*i])
            .map(MappingId)
    }

    /// Source and target peer of a mapping.
    pub fn mapping_endpoints(&self, id: MappingId) -> (PeerId, PeerId) {
        self.mapping_endpoints[id.0]
    }

    /// Mappings departing from a peer (the ones it stores locally, Section 4.1).
    pub fn outgoing_mappings(&self, peer: PeerId) -> Vec<MappingId> {
        self.mappings()
            .filter(|m| self.mapping_endpoints(*m).0 == peer)
            .collect()
    }

    /// Mappings arriving at a peer.
    pub fn incoming_mappings(&self, peer: PeerId) -> Vec<MappingId> {
        self.mappings()
            .filter(|m| self.mapping_endpoints(*m).1 == peer)
            .collect()
    }

    /// Mappings between a specific ordered pair of peers.
    pub fn mappings_between(&self, source: PeerId, target: PeerId) -> &[MappingId] {
        self.by_endpoints
            .get(&(source, target))
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// Edge list `(mapping, source peer, target peer)` over the live mappings, for
    /// building a topology graph.
    pub fn edge_list(&self) -> Vec<(MappingId, PeerId, PeerId)> {
        self.mappings()
            .map(|m| {
                let (s, t) = self.mapping_endpoints(m);
                (m, s, t)
            })
            .collect()
    }

    /// Number of live mappings whose ground truth says they are (at least partly)
    /// erroneous.
    pub fn erroneous_mapping_count(&self) -> usize {
        self.mappings()
            .filter(|m| !self.mappings[m.0].is_correct())
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attribute::AttributeId;

    fn tiny_catalog() -> Catalog {
        let mut cat = Catalog::new();
        let p0 = cat.add_peer_with_schema("Photoshop", |s| {
            s.attributes(["GUID", "Creator", "Subject"]);
        });
        let p1 = cat.add_peer_with_schema("WinFS", |s| {
            s.attributes(["GUID", "DisplayName", "Keyword"]);
        });
        cat.add_mapping(p0, p1, |m| {
            m.correct(AttributeId(0), AttributeId(0))
                .correct(AttributeId(1), AttributeId(1))
        });
        cat.add_mapping(p1, p0, |m| {
            m.correct(AttributeId(0), AttributeId(0)).erroneous(
                AttributeId(1),
                AttributeId(2),
                AttributeId(1),
            )
        });
        cat
    }

    #[test]
    fn catalog_counts_are_consistent() {
        let cat = tiny_catalog();
        assert_eq!(cat.peer_count(), 2);
        assert_eq!(cat.schema_count(), 2);
        assert_eq!(cat.mapping_count(), 2);
        assert_eq!(cat.erroneous_mapping_count(), 1);
    }

    #[test]
    fn peer_schema_lookup_works() {
        let cat = tiny_catalog();
        assert_eq!(cat.peer_schema(PeerId(0)).name(), "Photoshop");
        assert_eq!(cat.peer_name(PeerId(1)), "WinFS");
        assert_eq!(cat.peer_schema(PeerId(1)).attribute_count(), 3);
    }

    #[test]
    fn outgoing_and_incoming_mappings() {
        let cat = tiny_catalog();
        assert_eq!(cat.outgoing_mappings(PeerId(0)), vec![MappingId(0)]);
        assert_eq!(cat.incoming_mappings(PeerId(0)), vec![MappingId(1)]);
        assert_eq!(cat.mappings_between(PeerId(0), PeerId(1)), &[MappingId(0)]);
        assert!(cat.mappings_between(PeerId(1), PeerId(1)).is_empty());
    }

    #[test]
    fn edge_list_covers_all_mappings() {
        let cat = tiny_catalog();
        let edges = cat.edge_list();
        assert_eq!(edges.len(), 2);
        assert_eq!(edges[0], (MappingId(0), PeerId(0), PeerId(1)));
        assert_eq!(edges[1], (MappingId(1), PeerId(1), PeerId(0)));
    }

    #[test]
    #[should_panic(expected = "unknown peer")]
    fn mapping_with_unknown_peer_panics() {
        let mut cat = tiny_catalog();
        cat.add_mapping(PeerId(0), PeerId(9), |m| m);
    }

    #[test]
    fn removal_is_tombstoned_and_keeps_ids_stable() {
        let mut cat = tiny_catalog();
        assert!(cat.remove_mapping(MappingId(0)));
        assert!(
            !cat.remove_mapping(MappingId(0)),
            "double removal is a no-op"
        );
        assert!(cat.is_mapping_removed(MappingId(0)));
        assert_eq!(cat.mapping_count(), 1);
        assert_eq!(cat.mapping_slot_count(), 2);
        assert_eq!(cat.mappings().collect::<Vec<_>>(), vec![MappingId(1)]);
        assert!(cat.mappings_between(PeerId(0), PeerId(1)).is_empty());
        assert!(cat.outgoing_mappings(PeerId(0)).is_empty());
        assert_eq!(cat.edge_list().len(), 1);
        // The tombstoned slot still answers lookups (posterior tables may hold its id).
        assert_eq!(cat.mapping_endpoints(MappingId(0)), (PeerId(0), PeerId(1)));
        // The erroneous mapping is still counted; removing it clears the count.
        assert_eq!(cat.erroneous_mapping_count(), 1);
        assert!(cat.remove_mapping(MappingId(1)));
        assert_eq!(cat.erroneous_mapping_count(), 0);
        // New mappings allocate fresh slots after the tombstones.
        let id = cat.add_mapping(PeerId(0), PeerId(1), |m| {
            m.correct(AttributeId(0), AttributeId(0))
        });
        assert_eq!(id, MappingId(2));
        assert_eq!(cat.mapping_count(), 1);
    }

    #[test]
    fn mapping_mut_allows_error_injection() {
        let mut cat = tiny_catalog();
        // The first mapping is fully correct; no mutation needed to check access works.
        assert!(cat.mapping(MappingId(0)).is_correct());
        let _ = cat.mapping_mut(MappingId(0));
    }
}

//! A minimal semi-structured document model.
//!
//! The probabilistic machinery of the paper never inspects instance data — feedback is
//! computed at the schema/query level — but the example applications and the query
//! routing layer need documents to return, so the PDMS substrate includes a small
//! attribute→value record model reminiscent of the flattened XML documents in the
//! paper's Figure 2.

use crate::attribute::AttributeId;
use crate::schema::Schema;
use std::collections::BTreeMap;
use std::fmt;

/// A scalar value stored under an attribute.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// A text value (element content).
    Text(String),
    /// A numeric value.
    Number(f64),
    /// A boolean value.
    Bool(bool),
}

impl Value {
    /// Text content, if the value is textual.
    pub fn as_text(&self) -> Option<&str> {
        match self {
            Value::Text(s) => Some(s),
            _ => None,
        }
    }

    /// Case-insensitive containment check used by `LIKE "%…%"`-style selections.
    pub fn contains_text(&self, needle: &str) -> bool {
        match self {
            Value::Text(s) => s.to_lowercase().contains(&needle.to_lowercase()),
            Value::Number(n) => n.to_string().contains(needle),
            Value::Bool(b) => b.to_string().contains(needle),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Text(s) => f.write_str(s),
            Value::Number(n) => write!(f, "{n}"),
            Value::Bool(b) => write!(f, "{b}"),
        }
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::Text(s.to_string())
    }
}

impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::Text(s)
    }
}

impl From<f64> for Value {
    fn from(n: f64) -> Self {
        Value::Number(n)
    }
}

/// A document: a flat record of attribute → values, conforming to one schema.
///
/// Multi-valued attributes (the `<Keyword>` repetition of Figure 2) are supported by
/// storing a vector of values per attribute.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Document {
    values: BTreeMap<AttributeId, Vec<Value>>,
}

impl Document {
    /// Creates an empty document.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets (replaces) the values of an attribute.
    pub fn set(&mut self, attribute: AttributeId, value: impl Into<Value>) -> &mut Self {
        self.values.insert(attribute, vec![value.into()]);
        self
    }

    /// Appends a value to an attribute.
    pub fn push(&mut self, attribute: AttributeId, value: impl Into<Value>) -> &mut Self {
        self.values.entry(attribute).or_default().push(value.into());
        self
    }

    /// All values of an attribute (empty slice when absent).
    pub fn get(&self, attribute: AttributeId) -> &[Value] {
        self.values
            .get(&attribute)
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// First value of an attribute, if any.
    pub fn first(&self, attribute: AttributeId) -> Option<&Value> {
        self.get(attribute).first()
    }

    /// True if the document has at least one value for the attribute.
    pub fn has(&self, attribute: AttributeId) -> bool {
        !self.get(attribute).is_empty()
    }

    /// Attributes populated in this document.
    pub fn attributes(&self) -> impl Iterator<Item = AttributeId> + '_ {
        self.values.keys().copied()
    }

    /// Number of populated attributes.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True if no attribute is populated.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Renders the document as an XML-ish string using the attribute names of `schema`,
    /// for logging and example output. Attributes missing from the schema are rendered
    /// with their numeric id.
    pub fn render(&self, schema: &Schema) -> String {
        let mut out = String::new();
        out.push_str(&format!("<{}>\n", schema.name()));
        for (attr, values) in &self.values {
            let name = schema
                .attribute(*attr)
                .map(|a| a.name.clone())
                .unwrap_or_else(|| format!("attr{}", attr.0));
            for v in values {
                out.push_str(&format!("  <{name}>{v}</{name}>\n"));
            }
        }
        out.push_str(&format!("</{}>", schema.name()));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{SchemaBuilder, SchemaId};

    #[test]
    fn set_replaces_push_appends() {
        let mut d = Document::new();
        d.set(AttributeId(0), "Robinson");
        d.push(AttributeId(0), "Henry Peach Robinson");
        assert_eq!(d.get(AttributeId(0)).len(), 2);
        d.set(AttributeId(0), "only");
        assert_eq!(d.get(AttributeId(0)).len(), 1);
    }

    #[test]
    fn absent_attribute_is_empty() {
        let d = Document::new();
        assert!(d.get(AttributeId(7)).is_empty());
        assert!(!d.has(AttributeId(7)));
        assert!(d.is_empty());
    }

    #[test]
    fn contains_text_is_case_insensitive() {
        let v = Value::from("Tunbridge Wells");
        assert!(v.contains_text("tunbridge"));
        assert!(!v.contains_text("london"));
    }

    #[test]
    fn numbers_and_bools_stringify_for_matching() {
        assert!(Value::Number(1865.0).contains_text("1865"));
        assert!(Value::Bool(true).contains_text("true"));
    }

    #[test]
    fn render_uses_schema_names() {
        let mut b = SchemaBuilder::new(SchemaId(0), "Photoshop_Image");
        let creator = b.attribute("Creator");
        let s = b.build();
        let mut d = Document::new();
        d.set(creator, "Robinson");
        let xml = d.render(&s);
        assert!(xml.contains("<Photoshop_Image>"));
        assert!(xml.contains("<Creator>Robinson</Creator>"));
    }

    #[test]
    fn attributes_iterates_populated_only() {
        let mut d = Document::new();
        d.set(AttributeId(2), 3.0);
        d.set(AttributeId(5), "x");
        let attrs: Vec<AttributeId> = d.attributes().collect();
        assert_eq!(attrs, vec![AttributeId(2), AttributeId(5)]);
        assert_eq!(d.len(), 2);
    }
}

//! Pairwise schema mappings.
//!
//! A mapping `m : S → T` connects attributes of a source schema to attributes of a
//! target schema. Following the paper's fundamental assumption, a mapping *may be
//! incorrect*: it may connect an attribute to a semantically irrelevant attribute of
//! the target (like the `Creator → CreatedOn` error of the introductory example), or it
//! may have no correspondence at all for an attribute (the `⊥` case).
//!
//! For evaluation purposes each correspondence optionally records the ground-truth
//! target attribute. Ground truth is never consulted by the inference machinery — only
//! by the precision/recall metrics and by workload generators when they inject errors.

use crate::attribute::AttributeId;
use crate::schema::SchemaId;
use std::collections::BTreeMap;
use std::fmt;

/// Identifier of a mapping within a [`crate::catalog::Catalog`].
///
/// Mapping ids coincide with the edge ids of the mapping-network graph, which keeps the
/// correspondence between the catalog and the topology trivial.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct MappingId(pub usize);

impl fmt::Display for MappingId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "m{}", self.0)
    }
}

/// One attribute-level correspondence inside a mapping.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Correspondence {
    /// Attribute of the target schema the source attribute is mapped onto.
    pub target: AttributeId,
    /// Ground-truth target, when known. `None` means "no semantically correct
    /// counterpart exists in the target schema".
    pub expected: Option<AttributeId>,
}

impl Correspondence {
    /// True when the actual target equals the ground-truth target.
    ///
    /// A correspondence with unknown ground truth is treated as correct — the common
    /// case for hand-validated mappings.
    pub fn is_correct(&self) -> bool {
        match self.expected {
            Some(expected) => self.target == expected,
            None => true,
        }
    }
}

/// A directed pairwise schema mapping.
#[derive(Debug, Clone, PartialEq)]
pub struct Mapping {
    id: MappingId,
    source: SchemaId,
    target: SchemaId,
    correspondences: BTreeMap<AttributeId, Correspondence>,
}

impl Mapping {
    /// The mapping identifier.
    pub fn id(&self) -> MappingId {
        self.id
    }

    /// Source schema.
    pub fn source(&self) -> SchemaId {
        self.source
    }

    /// Target schema.
    pub fn target(&self) -> SchemaId {
        self.target
    }

    /// Applies the mapping to a source attribute. `None` is the `⊥` outcome: the
    /// mapping has no correspondence for this attribute.
    pub fn apply(&self, attribute: AttributeId) -> Option<AttributeId> {
        self.correspondences.get(&attribute).map(|c| c.target)
    }

    /// Number of attribute correspondences.
    pub fn correspondence_count(&self) -> usize {
        self.correspondences.len()
    }

    /// Iterates over `(source attribute, correspondence)` pairs.
    pub fn correspondences(&self) -> impl Iterator<Item = (AttributeId, &Correspondence)> {
        self.correspondences.iter().map(|(a, c)| (*a, c))
    }

    /// Ground truth: is the correspondence for `attribute` semantically correct?
    ///
    /// Returns `None` when the mapping has no correspondence for the attribute.
    pub fn is_correct_for(&self, attribute: AttributeId) -> Option<bool> {
        self.correspondences
            .get(&attribute)
            .map(Correspondence::is_correct)
    }

    /// Ground truth at mapping granularity: a mapping is considered correct when every
    /// correspondence it defines is correct. This is the "coarse granularity" view of
    /// Section 4.1.
    pub fn is_correct(&self) -> bool {
        self.correspondences
            .values()
            .all(Correspondence::is_correct)
    }

    /// Number of incorrect correspondences (for reporting).
    pub fn error_count(&self) -> usize {
        self.correspondences
            .values()
            .filter(|c| !c.is_correct())
            .count()
    }

    /// Inserts or replaces a correspondence after construction. This is the mutation
    /// hook used by workload generators and by the network-dynamics simulation
    /// (mappings being modified is one of the evolution events of Section 4.4).
    pub fn set_correspondence(
        &mut self,
        source_attr: AttributeId,
        target_attr: AttributeId,
        expected: Option<AttributeId>,
    ) {
        self.correspondences.insert(
            source_attr,
            Correspondence {
                target: target_attr,
                expected,
            },
        );
    }

    /// Removes the correspondence for a source attribute (the attribute becomes `⊥`
    /// under this mapping). Returns `true` when a correspondence was present.
    pub fn remove_correspondence(&mut self, source_attr: AttributeId) -> bool {
        self.correspondences.remove(&source_attr).is_some()
    }

    /// Composes `self : S → T` with `next : T → U` into the correspondence table of the
    /// composite `next ∘ self : S → U`, at the attribute level. Attributes dropped by
    /// either mapping are absent from the result.
    ///
    /// # Panics
    /// Panics if the schemas do not chain (`self.target != next.source`).
    pub fn compose(&self, next: &Mapping) -> BTreeMap<AttributeId, AttributeId> {
        assert_eq!(
            self.target, next.source,
            "cannot compose {} : {}→{} with {} : {}→{}",
            self.id, self.source, self.target, next.id, next.source, next.target
        );
        let mut out = BTreeMap::new();
        for (src, corr) in &self.correspondences {
            if let Some(final_target) = next.apply(corr.target) {
                out.insert(*src, final_target);
            }
        }
        out
    }
}

/// Builder for [`Mapping`].
#[derive(Debug, Clone)]
pub struct MappingBuilder {
    id: MappingId,
    source: SchemaId,
    target: SchemaId,
    correspondences: BTreeMap<AttributeId, Correspondence>,
}

impl MappingBuilder {
    /// Starts a mapping from `source` to `target`.
    pub fn new(id: MappingId, source: SchemaId, target: SchemaId) -> Self {
        Self {
            id,
            source,
            target,
            correspondences: BTreeMap::new(),
        }
    }

    /// Declares a correct correspondence: the actual and expected targets coincide.
    pub fn correct(mut self, source_attr: AttributeId, target_attr: AttributeId) -> Self {
        self.correspondences.insert(
            source_attr,
            Correspondence {
                target: target_attr,
                expected: Some(target_attr),
            },
        );
        self
    }

    /// Declares an erroneous correspondence: the mapping routes `source_attr` to
    /// `actual_target` although the semantically right answer is `expected_target`.
    pub fn erroneous(
        mut self,
        source_attr: AttributeId,
        actual_target: AttributeId,
        expected_target: AttributeId,
    ) -> Self {
        self.correspondences.insert(
            source_attr,
            Correspondence {
                target: actual_target,
                expected: Some(expected_target),
            },
        );
        self
    }

    /// Declares a correspondence without ground truth (e.g. produced by an automatic
    /// aligner before any human judgement).
    pub fn unjudged(mut self, source_attr: AttributeId, target_attr: AttributeId) -> Self {
        self.correspondences.insert(
            source_attr,
            Correspondence {
                target: target_attr,
                expected: None,
            },
        );
        self
    }

    /// Sets the ground-truth expectation for a previously declared correspondence, or
    /// records that the attribute has no correct counterpart (`expected = None` stays
    /// "unknown"; use this method with the known right answer).
    pub fn judge(mut self, source_attr: AttributeId, expected_target: AttributeId) -> Self {
        if let Some(c) = self.correspondences.get_mut(&source_attr) {
            c.expected = Some(expected_target);
        }
        self
    }

    /// Finalises the mapping.
    pub fn build(self) -> Mapping {
        Mapping {
            id: self.id,
            source: self.source,
            target: self.target,
            correspondences: self.correspondences,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(id: usize, s: usize, t: usize) -> MappingBuilder {
        MappingBuilder::new(MappingId(id), SchemaId(s), SchemaId(t))
    }

    #[test]
    fn apply_returns_target_or_bottom() {
        let map = m(0, 0, 1).correct(AttributeId(0), AttributeId(3)).build();
        assert_eq!(map.apply(AttributeId(0)), Some(AttributeId(3)));
        assert_eq!(map.apply(AttributeId(1)), None);
    }

    #[test]
    fn correctness_tracks_ground_truth() {
        let map = m(0, 0, 1)
            .correct(AttributeId(0), AttributeId(0))
            .erroneous(AttributeId(1), AttributeId(2), AttributeId(1))
            .unjudged(AttributeId(2), AttributeId(2))
            .build();
        assert_eq!(map.is_correct_for(AttributeId(0)), Some(true));
        assert_eq!(map.is_correct_for(AttributeId(1)), Some(false));
        assert_eq!(map.is_correct_for(AttributeId(2)), Some(true));
        assert_eq!(map.is_correct_for(AttributeId(3)), None);
        assert!(!map.is_correct());
        assert_eq!(map.error_count(), 1);
    }

    #[test]
    fn composition_chains_correspondences() {
        let ab = m(0, 0, 1)
            .correct(AttributeId(0), AttributeId(5))
            .correct(AttributeId(1), AttributeId(6))
            .build();
        let bc = m(1, 1, 2).correct(AttributeId(5), AttributeId(9)).build();
        let composed = ab.compose(&bc);
        assert_eq!(composed.get(&AttributeId(0)), Some(&AttributeId(9)));
        // Attribute 1 is dropped by bc (no correspondence for 6).
        assert!(!composed.contains_key(&AttributeId(1)));
    }

    #[test]
    #[should_panic(expected = "cannot compose")]
    fn composition_requires_chaining_schemas() {
        let ab = m(0, 0, 1).build();
        let cd = m(1, 2, 3).build();
        let _ = ab.compose(&cd);
    }

    #[test]
    fn judging_overwrites_expectation() {
        let map = m(0, 0, 1)
            .unjudged(AttributeId(0), AttributeId(4))
            .judge(AttributeId(0), AttributeId(2))
            .build();
        assert_eq!(map.is_correct_for(AttributeId(0)), Some(false));
    }

    #[test]
    fn post_construction_mutation_updates_ground_truth() {
        let mut map = m(0, 0, 1)
            .correct(AttributeId(0), AttributeId(0))
            .correct(AttributeId(1), AttributeId(1))
            .build();
        assert!(map.is_correct());
        // Corrupt attribute 0: route it to attribute 2 although 0 is right.
        map.set_correspondence(AttributeId(0), AttributeId(2), Some(AttributeId(0)));
        assert!(!map.is_correct());
        assert_eq!(map.error_count(), 1);
        assert_eq!(map.apply(AttributeId(0)), Some(AttributeId(2)));
        // Repair it again.
        map.set_correspondence(AttributeId(0), AttributeId(0), Some(AttributeId(0)));
        assert!(map.is_correct());
        // Remove attribute 1 entirely: it becomes ⊥.
        assert!(map.remove_correspondence(AttributeId(1)));
        assert!(!map.remove_correspondence(AttributeId(1)));
        assert_eq!(map.apply(AttributeId(1)), None);
        assert_eq!(map.correspondence_count(), 1);
    }

    #[test]
    fn redeclaring_a_correspondence_replaces_it() {
        let map = m(0, 0, 1)
            .correct(AttributeId(0), AttributeId(1))
            .correct(AttributeId(0), AttributeId(2))
            .build();
        assert_eq!(map.apply(AttributeId(0)), Some(AttributeId(2)));
        assert_eq!(map.correspondence_count(), 1);
    }
}

//! Attributes: the atomic semantic unit of the PDMS model.
//!
//! A peer's schema is a set of attributes. A mapping connects attributes of one schema
//! to attributes of another; a query selects and projects attributes. The paper does
//! not care whether the attribute is a relational column, an XML element, or an RDF
//! property, so the kind is carried only as metadata.

use std::fmt;

/// Identifier of an attribute *within its schema*.
///
/// Attribute ids are dense per-schema indices, so `(SchemaId, AttributeId)` is globally
/// unique and mappings can be stored as dense per-attribute tables.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct AttributeId(pub usize);

impl fmt::Display for AttributeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "a{}", self.0)
    }
}

/// The modelling construct the attribute came from.
///
/// The paper's examples use XML elements (`/Creator`), XML paths
/// (`/Author/DisplayName`), and OWL classes/properties; relational columns are the
/// obvious third family. The kind does not influence inference; it is kept so that
/// workloads and examples can round-trip realistic schemas.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum AttributeKind {
    /// An XML element or element path.
    #[default]
    Element,
    /// An XML attribute node.
    XmlAttribute,
    /// A relational column.
    Column,
    /// An RDF/OWL class.
    Class,
    /// An RDF/OWL property.
    Property,
}

impl fmt::Display for AttributeKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            AttributeKind::Element => "element",
            AttributeKind::XmlAttribute => "xml-attribute",
            AttributeKind::Column => "column",
            AttributeKind::Class => "class",
            AttributeKind::Property => "property",
        };
        f.write_str(s)
    }
}

/// Full description of one attribute of a schema.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct AttributeRef {
    /// Identifier within the owning schema.
    pub id: AttributeId,
    /// Human-readable name, e.g. `"Creator"` or `"/Author/DisplayName"`.
    pub name: String,
    /// Modelling construct.
    pub kind: AttributeKind,
}

impl AttributeRef {
    /// Creates a new attribute description.
    pub fn new(id: AttributeId, name: impl Into<String>, kind: AttributeKind) -> Self {
        Self {
            id,
            name: name.into(),
            kind,
        }
    }

    /// Normalised form of the name used by string-similarity aligners: lower-case,
    /// alphanumeric characters only.
    pub fn normalized_name(&self) -> String {
        self.name
            .chars()
            .filter(|c| c.is_alphanumeric())
            .collect::<String>()
            .to_lowercase()
    }
}

impl fmt::Display for AttributeRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ({})", self.name, self.kind)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalized_name_strips_punctuation_and_case() {
        let a = AttributeRef::new(
            AttributeId(0),
            "/Author/Display_Name",
            AttributeKind::Element,
        );
        assert_eq!(a.normalized_name(), "authordisplayname");
    }

    #[test]
    fn display_includes_kind() {
        let a = AttributeRef::new(AttributeId(1), "Creator", AttributeKind::Property);
        assert_eq!(a.to_string(), "Creator (property)");
    }

    #[test]
    fn attribute_ids_order_by_index() {
        assert!(AttributeId(1) < AttributeId(2));
    }

    #[test]
    fn default_kind_is_element() {
        assert_eq!(AttributeKind::default(), AttributeKind::Element);
    }
}

//! Schemas: named collections of attributes owned by one peer (or one cluster of
//! databases sharing a structure, as the paper allows).

use crate::attribute::{AttributeId, AttributeKind, AttributeRef};
use std::collections::HashMap;
use std::fmt;

/// Identifier of a schema within a [`crate::catalog::Catalog`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SchemaId(pub usize);

impl fmt::Display for SchemaId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}", self.0)
    }
}

/// A schema: an ordered set of attributes with unique names.
#[derive(Debug, Clone, PartialEq)]
pub struct Schema {
    id: SchemaId,
    name: String,
    attributes: Vec<AttributeRef>,
    by_name: HashMap<String, AttributeId>,
}

impl Schema {
    /// The schema identifier.
    pub fn id(&self) -> SchemaId {
        self.id
    }

    /// The schema's human-readable name (e.g. `"WinFS"` or `"bibtex-umbc"`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of attributes.
    ///
    /// The paper uses this as the basis for the compensating-error probability Δ:
    /// with `k` attributes, a second random mapping error cancels a previous one with
    /// probability roughly `1/(k-1)`.
    pub fn attribute_count(&self) -> usize {
        self.attributes.len()
    }

    /// Iterates over the attributes in insertion order.
    pub fn attributes(&self) -> impl Iterator<Item = &AttributeRef> {
        self.attributes.iter()
    }

    /// Looks up an attribute by id.
    pub fn attribute(&self, id: AttributeId) -> Option<&AttributeRef> {
        self.attributes.get(id.0)
    }

    /// Looks up an attribute by exact name.
    pub fn attribute_by_name(&self, name: &str) -> Option<&AttributeRef> {
        self.by_name.get(name).and_then(|id| self.attribute(*id))
    }

    /// True if the schema declares the attribute id.
    pub fn contains(&self, id: AttributeId) -> bool {
        id.0 < self.attributes.len()
    }
}

/// Builder for [`Schema`].
#[derive(Debug, Clone)]
pub struct SchemaBuilder {
    id: SchemaId,
    name: String,
    attributes: Vec<AttributeRef>,
    by_name: HashMap<String, AttributeId>,
}

impl SchemaBuilder {
    /// Starts a schema with the given identifier and name.
    pub fn new(id: SchemaId, name: impl Into<String>) -> Self {
        Self {
            id,
            name: name.into(),
            attributes: Vec::new(),
            by_name: HashMap::new(),
        }
    }

    /// Adds an attribute with an explicit kind and returns its id.
    ///
    /// # Panics
    /// Panics if an attribute with the same name already exists: attribute names are
    /// the join key for mappings and must be unambiguous within one schema.
    pub fn attribute_with_kind(
        &mut self,
        name: impl Into<String>,
        kind: AttributeKind,
    ) -> AttributeId {
        let name = name.into();
        assert!(
            !self.by_name.contains_key(&name),
            "duplicate attribute name `{name}` in schema `{}`",
            self.name
        );
        let id = AttributeId(self.attributes.len());
        self.by_name.insert(name.clone(), id);
        self.attributes.push(AttributeRef::new(id, name, kind));
        id
    }

    /// Adds an element-kind attribute and returns its id.
    pub fn attribute(&mut self, name: impl Into<String>) -> AttributeId {
        self.attribute_with_kind(name, AttributeKind::Element)
    }

    /// Adds many element-kind attributes at once.
    pub fn attributes<I, S>(&mut self, names: I) -> Vec<AttributeId>
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        names.into_iter().map(|n| self.attribute(n)).collect()
    }

    /// Finalises the schema.
    pub fn build(self) -> Schema {
        Schema {
            id: self.id,
            name: self.name,
            attributes: self.attributes,
            by_name: self.by_name,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn art_schema() -> Schema {
        let mut b = SchemaBuilder::new(SchemaId(0), "ArtDatabank");
        b.attributes(["Creator", "Item", "Title", "CreatedOn"]);
        b.build()
    }

    #[test]
    fn attributes_get_dense_ids() {
        let s = art_schema();
        assert_eq!(s.attribute_count(), 4);
        assert_eq!(s.attribute(AttributeId(0)).unwrap().name, "Creator");
        assert_eq!(s.attribute(AttributeId(3)).unwrap().name, "CreatedOn");
    }

    #[test]
    fn lookup_by_name_round_trips() {
        let s = art_schema();
        let a = s.attribute_by_name("Item").unwrap();
        assert_eq!(s.attribute(a.id).unwrap().name, "Item");
        assert!(s.attribute_by_name("NoSuch").is_none());
    }

    #[test]
    #[should_panic(expected = "duplicate attribute name")]
    fn duplicate_names_panic() {
        let mut b = SchemaBuilder::new(SchemaId(1), "dup");
        b.attribute("Creator");
        b.attribute("Creator");
    }

    #[test]
    fn contains_checks_bounds() {
        let s = art_schema();
        assert!(s.contains(AttributeId(3)));
        assert!(!s.contains(AttributeId(4)));
    }

    #[test]
    fn kinds_are_preserved() {
        let mut b = SchemaBuilder::new(SchemaId(2), "rdf");
        let c = b.attribute_with_kind("Person", AttributeKind::Class);
        let p = b.attribute_with_kind("hasName", AttributeKind::Property);
        let s = b.build();
        assert_eq!(s.attribute(c).unwrap().kind, AttributeKind::Class);
        assert_eq!(s.attribute(p).unwrap().kind, AttributeKind::Property);
    }
}

//! Schema, query, and mapping substrate for Peer Data Management Systems.
//!
//! The paper is deliberately agnostic about the data model (Section 2): peers only need
//! to store information with respect to *attributes* (relational attributes, XML
//! elements/attributes, RDF classes/properties), queries are compositions of selection
//! and projection operations over attributes, and a pairwise schema mapping connects
//! semantically similar attributes of two schemas — possibly incorrectly.
//!
//! This crate provides exactly that substrate:
//!
//! * [`attribute`] / [`schema`] — attributes with a kind (element, class, property, …)
//!   and schemas as named collections of attributes;
//! * [`document`] — a small semi-structured document model plus generation helpers so
//!   example applications can actually run queries over data;
//! * [`query`] — selection/projection queries over attributes;
//! * [`mapping`] — attribute-level pairwise mappings between schemas, with ground-truth
//!   bookkeeping for evaluation, composition, and inversion;
//! * [`translate`] — query translation through a mapping and through chains of mappings,
//!   reporting per-attribute outcomes (preserved / substituted / dropped), which is the
//!   raw material of cycle feedback;
//! * [`catalog`] — a registry tying peers, schemas, and mappings together.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod attribute;
pub mod catalog;
pub mod document;
pub mod mapping;
pub mod query;
pub mod schema;
pub mod translate;

pub use attribute::{AttributeId, AttributeKind, AttributeRef};
pub use catalog::{Catalog, PeerId};
pub use document::{Document, Value};
pub use mapping::{Mapping, MappingBuilder, MappingId};
pub use query::{Operation, Predicate, Query};
pub use schema::{Schema, SchemaBuilder, SchemaId};
pub use translate::{translate_attribute, translate_query, AttributeOutcome, TranslationReport};

//! Queries: compositions of selection and projection operations over attributes.
//!
//! Section 2 of the paper reduces queries to "generic selection / projection operations
//! `op` on attributes"; the introductory example's XQuery boils down to a projection on
//! `Creator` and a selection `Item LIKE "%river%"`. That is exactly the level this
//! module models. Evaluating a query against [`crate::document::Document`]s is provided
//! so examples can produce end-to-end answers, but inference only ever looks at the set
//! of attributes a query touches.

use crate::attribute::AttributeId;
use crate::document::{Document, Value};
use std::collections::BTreeSet;
use std::fmt;

/// Predicate of a selection operation.
#[derive(Debug, Clone, PartialEq)]
pub enum Predicate {
    /// `LIKE "%needle%"` — case-insensitive containment.
    Contains(String),
    /// Exact string equality.
    Equals(String),
    /// The attribute merely has to be present.
    Exists,
}

impl Predicate {
    /// Evaluates the predicate over the values of one attribute in one document.
    pub fn matches(&self, values: &[Value]) -> bool {
        match self {
            Predicate::Contains(needle) => values.iter().any(|v| v.contains_text(needle)),
            Predicate::Equals(expected) => values
                .iter()
                .any(|v| v.as_text().map(|t| t == expected).unwrap_or(false)),
            Predicate::Exists => !values.is_empty(),
        }
    }
}

impl fmt::Display for Predicate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Predicate::Contains(s) => write!(f, "LIKE \"%{s}%\""),
            Predicate::Equals(s) => write!(f, "= \"{s}\""),
            Predicate::Exists => write!(f, "EXISTS"),
        }
    }
}

/// A single selection or projection operation on an attribute.
#[derive(Debug, Clone, PartialEq)]
pub enum Operation {
    /// Keep this attribute in the answer (π).
    Project(AttributeId),
    /// Filter documents by a predicate on this attribute (σ).
    Select(AttributeId, Predicate),
}

impl Operation {
    /// The attribute the operation touches.
    pub fn attribute(&self) -> AttributeId {
        match self {
            Operation::Project(a) => *a,
            Operation::Select(a, _) => *a,
        }
    }
}

/// A query: an ordered list of operations, all interpreted conjunctively.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Query {
    operations: Vec<Operation>,
}

impl Query {
    /// Creates an empty query.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a projection on `attribute`.
    pub fn project(mut self, attribute: AttributeId) -> Self {
        self.operations.push(Operation::Project(attribute));
        self
    }

    /// Adds a selection on `attribute`.
    pub fn select(mut self, attribute: AttributeId, predicate: Predicate) -> Self {
        self.operations
            .push(Operation::Select(attribute, predicate));
        self
    }

    /// The operations in order.
    pub fn operations(&self) -> &[Operation] {
        &self.operations
    }

    /// Number of operations.
    pub fn len(&self) -> usize {
        self.operations.len()
    }

    /// True if the query has no operation.
    pub fn is_empty(&self) -> bool {
        self.operations.is_empty()
    }

    /// The distinct set of attributes the query touches. Per-hop forwarding (Section 2)
    /// requires `P(a = correct) > θ_a` for every attribute in this set.
    pub fn attributes(&self) -> BTreeSet<AttributeId> {
        self.operations.iter().map(Operation::attribute).collect()
    }

    /// Evaluates the query over a set of documents: documents failing any selection are
    /// dropped, surviving documents are projected onto the projection attributes (or
    /// returned unchanged when the query has no projection).
    pub fn evaluate<'a>(&self, documents: impl IntoIterator<Item = &'a Document>) -> Vec<Document> {
        let projections: Vec<AttributeId> = self
            .operations
            .iter()
            .filter_map(|op| match op {
                Operation::Project(a) => Some(*a),
                _ => None,
            })
            .collect();
        let mut out = Vec::new();
        'docs: for doc in documents {
            for op in &self.operations {
                if let Operation::Select(attr, pred) = op {
                    if !pred.matches(doc.get(*attr)) {
                        continue 'docs;
                    }
                }
            }
            if projections.is_empty() {
                out.push(doc.clone());
            } else {
                let mut projected = Document::new();
                for attr in &projections {
                    for v in doc.get(*attr) {
                        projected.push(*attr, v.clone());
                    }
                }
                out.push(projected);
            }
        }
        out
    }
}

impl fmt::Display for Query {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let parts: Vec<String> = self
            .operations
            .iter()
            .map(|op| match op {
                Operation::Project(a) => format!("π({a})"),
                Operation::Select(a, p) => format!("σ({a} {p})"),
            })
            .collect();
        write!(f, "{}", parts.join(" ∘ "))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn docs() -> Vec<Document> {
        let creator = AttributeId(0);
        let item = AttributeId(1);
        let mut d1 = Document::new();
        d1.set(creator, "Henry Peach Robinson");
        d1.push(item, "A view of the river Medway");
        let mut d2 = Document::new();
        d2.set(creator, "Claude Monet");
        d2.push(item, "Haystacks at sunset");
        vec![d1, d2]
    }

    #[test]
    fn selection_filters_documents() {
        let q = Query::new()
            .project(AttributeId(0))
            .select(AttributeId(1), Predicate::Contains("river".into()));
        let results = q.evaluate(&docs());
        assert_eq!(results.len(), 1);
        assert_eq!(
            results[0].first(AttributeId(0)).unwrap().as_text().unwrap(),
            "Henry Peach Robinson"
        );
    }

    #[test]
    fn projection_keeps_only_projected_attributes() {
        let q = Query::new().project(AttributeId(0));
        let results = q.evaluate(&docs());
        assert_eq!(results.len(), 2);
        assert!(results.iter().all(|d| !d.has(AttributeId(1))));
    }

    #[test]
    fn no_projection_returns_full_documents() {
        let q = Query::new().select(AttributeId(1), Predicate::Exists);
        let results = q.evaluate(&docs());
        assert_eq!(results.len(), 2);
        assert!(results.iter().all(|d| d.has(AttributeId(0))));
    }

    #[test]
    fn equals_predicate_requires_exact_match() {
        let q = Query::new().select(AttributeId(0), Predicate::Equals("Claude Monet".into()));
        assert_eq!(q.evaluate(&docs()).len(), 1);
        let q = Query::new().select(AttributeId(0), Predicate::Equals("Claude".into()));
        assert_eq!(q.evaluate(&docs()).len(), 0);
    }

    #[test]
    fn attributes_deduplicates() {
        let q = Query::new()
            .project(AttributeId(0))
            .select(AttributeId(0), Predicate::Exists)
            .select(AttributeId(1), Predicate::Exists);
        assert_eq!(q.attributes().len(), 2);
    }

    #[test]
    fn display_is_readable() {
        let q = Query::new()
            .project(AttributeId(0))
            .select(AttributeId(1), Predicate::Contains("river".into()));
        let s = q.to_string();
        assert!(s.contains("π(a0)"));
        assert!(s.contains("LIKE"));
    }

    #[test]
    fn empty_query_returns_everything() {
        let q = Query::new();
        assert!(q.is_empty());
        assert_eq!(q.evaluate(&docs()).len(), 2);
    }
}

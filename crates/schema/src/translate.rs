//! Query translation through mappings and chains of mappings.
//!
//! Translating a query `q` posed against the schema of peer `p0` through a chain of
//! mappings `m0, m1, …, mn-1` produces the query `q' = mn-1(…(m0(q)))`. When the chain
//! closes a cycle (it ends back at `p0`'s schema), `q` and `q'` can be compared
//! attribute by attribute; the three possible per-attribute outcomes of Section 3.2.1 —
//! preserved, substituted, dropped — are the feedback observations that feed the
//! probabilistic model.

use crate::attribute::AttributeId;
use crate::mapping::Mapping;
use crate::query::{Operation, Query};
use std::collections::BTreeMap;

/// Outcome of pushing one attribute through a chain of mappings.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AttributeOutcome {
    /// The attribute survived the whole chain and maps to the given attribute of the
    /// final schema. When the chain is a cycle and the result equals the original
    /// attribute this is the *positive feedback* case (`aj = ai`).
    Mapped(AttributeId),
    /// Some mapping along the chain had no correspondence for the (current image of
    /// the) attribute — the `⊥` case. The index tells which mapping dropped it.
    Dropped {
        /// Position in the chain (0-based) of the mapping that had no correspondence.
        at_step: usize,
    },
}

impl AttributeOutcome {
    /// The final attribute if the chain preserved one.
    pub fn mapped(&self) -> Option<AttributeId> {
        match self {
            AttributeOutcome::Mapped(a) => Some(*a),
            AttributeOutcome::Dropped { .. } => None,
        }
    }

    /// True when the outcome is the `⊥` case.
    pub fn is_dropped(&self) -> bool {
        matches!(self, AttributeOutcome::Dropped { .. })
    }
}

/// Per-attribute report of a query translation through a chain of mappings.
#[derive(Debug, Clone, PartialEq)]
pub struct TranslationReport {
    /// Outcome per original attribute.
    pub outcomes: BTreeMap<AttributeId, AttributeOutcome>,
    /// The translated query expressed over the final schema. Operations whose attribute
    /// was dropped do not appear.
    pub query: Query,
}

impl TranslationReport {
    /// Outcome for one attribute (`None` if the attribute was not part of the query).
    pub fn outcome(&self, attribute: AttributeId) -> Option<&AttributeOutcome> {
        self.outcomes.get(&attribute)
    }

    /// True when every attribute of the original query survived the chain.
    pub fn is_complete(&self) -> bool {
        self.outcomes.values().all(|o| !o.is_dropped())
    }
}

/// Pushes a single attribute through a chain of mappings, returning the outcome.
///
/// The chain must be schema-compatible (`mappings[i].target() == mappings[i+1].source()`);
/// this is asserted in debug builds and silently assumed otherwise since callers obtain
/// chains from cycle enumeration, which guarantees it.
pub fn translate_attribute(attribute: AttributeId, mappings: &[&Mapping]) -> AttributeOutcome {
    let mut current = attribute;
    for (step, mapping) in mappings.iter().enumerate() {
        if step > 0 {
            debug_assert_eq!(
                mappings[step - 1].target(),
                mapping.source(),
                "mapping chain does not connect at step {step}"
            );
        }
        match mapping.apply(current) {
            Some(next) => current = next,
            None => return AttributeOutcome::Dropped { at_step: step },
        }
    }
    AttributeOutcome::Mapped(current)
}

/// Translates a whole query through a chain of mappings.
///
/// Every operation whose attribute survives the chain is rewritten onto the final
/// schema's attribute; operations on dropped attributes are removed from the translated
/// query (the receiving peer simply cannot evaluate them), but their outcome is still
/// reported so the caller can generate neutral feedback or refuse to forward.
pub fn translate_query(query: &Query, mappings: &[&Mapping]) -> TranslationReport {
    let mut outcomes = BTreeMap::new();
    for attribute in query.attributes() {
        outcomes.insert(attribute, translate_attribute(attribute, mappings));
    }
    let mut translated = Query::new();
    for op in query.operations() {
        let attr = op.attribute();
        if let Some(AttributeOutcome::Mapped(target)) = outcomes.get(&attr) {
            translated = match op {
                Operation::Project(_) => translated.project(*target),
                Operation::Select(_, pred) => translated.select(*target, pred.clone()),
            };
        }
    }
    TranslationReport {
        outcomes,
        query: translated,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mapping::{MappingBuilder, MappingId};
    use crate::query::Predicate;
    use crate::schema::SchemaId;

    /// Three-schema chain: S0 --m0--> S1 --m1--> S2, and a closing m2 back to S0.
    fn chain() -> (Mapping, Mapping, Mapping) {
        let m0 = MappingBuilder::new(MappingId(0), SchemaId(0), SchemaId(1))
            .correct(AttributeId(0), AttributeId(10))
            .correct(AttributeId(1), AttributeId(11))
            .build();
        let m1 = MappingBuilder::new(MappingId(1), SchemaId(1), SchemaId(2))
            .correct(AttributeId(10), AttributeId(20))
            // attribute 11 has no correspondence: dropped at step 1
            .build();
        let m2 = MappingBuilder::new(MappingId(2), SchemaId(2), SchemaId(0))
            .correct(AttributeId(20), AttributeId(0))
            .build();
        (m0, m1, m2)
    }

    #[test]
    fn attribute_preserved_around_a_correct_cycle() {
        let (m0, m1, m2) = chain();
        let outcome = translate_attribute(AttributeId(0), &[&m0, &m1, &m2]);
        assert_eq!(outcome, AttributeOutcome::Mapped(AttributeId(0)));
    }

    #[test]
    fn attribute_dropped_records_the_step() {
        let (m0, m1, m2) = chain();
        let outcome = translate_attribute(AttributeId(1), &[&m0, &m1, &m2]);
        assert_eq!(outcome, AttributeOutcome::Dropped { at_step: 1 });
        assert!(outcome.is_dropped());
        assert_eq!(outcome.mapped(), None);
    }

    #[test]
    fn erroneous_mapping_changes_the_returned_attribute() {
        // m0 erroneously maps 0 -> 11 (should be 10); the cycle then returns a
        // different attribute than it started from: negative feedback material.
        let m0 = MappingBuilder::new(MappingId(0), SchemaId(0), SchemaId(1))
            .erroneous(AttributeId(0), AttributeId(11), AttributeId(10))
            .build();
        let m1 = MappingBuilder::new(MappingId(1), SchemaId(1), SchemaId(0))
            .correct(AttributeId(10), AttributeId(0))
            .correct(AttributeId(11), AttributeId(3))
            .build();
        let outcome = translate_attribute(AttributeId(0), &[&m0, &m1]);
        assert_eq!(outcome, AttributeOutcome::Mapped(AttributeId(3)));
    }

    #[test]
    fn query_translation_rewrites_operations() {
        let (m0, m1, m2) = chain();
        let q = Query::new()
            .project(AttributeId(0))
            .select(AttributeId(1), Predicate::Contains("river".into()));
        let report = translate_query(&q, &[&m0, &m1, &m2]);
        assert!(!report.is_complete());
        // Only the projection survives (attribute 0 -> 0 around the cycle).
        assert_eq!(report.query.len(), 1);
        assert_eq!(
            report.query.operations()[0],
            Operation::Project(AttributeId(0))
        );
        assert_eq!(
            report.outcome(AttributeId(1)),
            Some(&AttributeOutcome::Dropped { at_step: 1 })
        );
    }

    #[test]
    fn single_hop_translation_matches_mapping_table() {
        let (m0, _, _) = chain();
        let q = Query::new().project(AttributeId(0)).project(AttributeId(1));
        let report = translate_query(&q, &[&m0]);
        assert!(report.is_complete());
        assert_eq!(report.query.attributes().len(), 2);
        assert_eq!(
            report.outcome(AttributeId(0)),
            Some(&AttributeOutcome::Mapped(AttributeId(10)))
        );
    }

    #[test]
    fn empty_chain_is_identity() {
        let q = Query::new().project(AttributeId(5));
        let report = translate_query(&q, &[]);
        assert!(report.is_complete());
        assert_eq!(
            report.outcome(AttributeId(5)),
            Some(&AttributeOutcome::Mapped(AttributeId(5)))
        );
    }
}

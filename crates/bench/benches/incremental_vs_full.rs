//! Criterion bench: incremental session delta-apply vs. full engine recompute under
//! the synthetic churn workload — the cost argument behind `EngineSession`.
//!
//! For each network size, one epoch of churn events is drawn once; the
//! `full_recompute` series replays the events onto a catalog and re-runs the whole
//! batch pipeline (cycle and parallel-path enumeration, model build, cold
//! inference), the `delta_apply` series applies the identical events to a pre-built
//! session (targeted per-edge evidence maintenance, warm-started change-driven
//! inference). The `light` rows are the paper's Section 4.4 regime — a handful of
//! localized changes per epoch — where incremental maintenance pays most; the
//! `heavy` rows rewrite a large fraction of the network, the worst case for reuse.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pdms_core::{
    apply_event, AnalysisConfig, EmbeddedConfig, Engine, EngineConfig, EngineSession, NetworkEvent,
};
use pdms_graph::GeneratorConfig;
use pdms_schema::Catalog;
use pdms_workloads::{ChurnConfig, ChurnGenerator, SyntheticConfig, SyntheticNetwork};

fn analysis_config() -> AnalysisConfig {
    AnalysisConfig {
        max_cycle_len: 5,
        max_path_len: 3,
        include_parallel_paths: true,
        ..Default::default()
    }
}

fn embedded_config() -> EmbeddedConfig {
    EmbeddedConfig {
        record_history: false,
        max_rounds: 100,
        ..Default::default()
    }
}

fn engine_config() -> EngineConfig {
    EngineConfig {
        analysis: analysis_config(),
        embedded: embedded_config(),
        delta: Some(0.1),
        ..Default::default()
    }
}

fn network(peers: usize) -> SyntheticNetwork {
    SyntheticNetwork::generate(SyntheticConfig {
        topology: GeneratorConfig::small_world(peers, 2, 0.2, 7),
        attributes: 8,
        error_rate: 0.05,
        seed: 7,
    })
}

/// Localized churn: a few corruptions/repairs per epoch (the Section 4.4 regime).
fn light_churn(catalog: &Catalog, seed: u64) -> Vec<NetworkEvent> {
    let mut generator = ChurnGenerator::new(ChurnConfig {
        corrupt_rate: 0.004,
        repair_rate: 0.08,
        drop_rate: 0.001,
        new_mappings_per_epoch: 0.3,
        new_mapping_error_rate: 0.1,
        seed,
        ..Default::default()
    });
    generator.epoch_events(catalog)
}

/// Canonical churn rates: touches a sizeable fraction of the mappings per epoch.
fn heavy_churn(catalog: &Catalog, seed: u64) -> Vec<NetworkEvent> {
    let mut generator = ChurnGenerator::new(ChurnConfig {
        seed,
        ..Default::default()
    });
    generator.epoch_events(catalog)
}

fn bench_pair(
    group: &mut criterion::BenchmarkGroup<'_>,
    label: &str,
    base: &SyntheticNetwork,
    session: &EngineSession,
    events: &[NetworkEvent],
) {
    group.bench_with_input(
        BenchmarkId::new("full_recompute", label),
        &events.len(),
        |b, _| {
            b.iter(|| {
                let mut catalog = base.catalog.clone();
                for event in events {
                    apply_event(&mut catalog, event);
                }
                let mut engine = Engine::new(catalog, engine_config());
                engine.run()
            })
        },
    );
    // The session is cloned per iteration so every measurement starts from the same
    // converged state; cloning is cheap next to analysis + inference.
    group.bench_with_input(
        BenchmarkId::new("delta_apply", label),
        &events.len(),
        |b, _| {
            b.iter(|| {
                let mut session = session.clone();
                session.apply(events);
                session.posteriors().len()
            })
        },
    );
}

fn bench_incremental_vs_full(c: &mut Criterion) {
    let mut group = c.benchmark_group("incremental_vs_full");
    group.sample_size(20);
    for &peers in &[16usize, 24, 32] {
        let base = network(peers);
        let session = Engine::builder()
            .analysis(analysis_config())
            .embedded(embedded_config())
            .delta(0.1)
            .build(base.catalog.clone());
        let light = light_churn(&base.catalog, 11 + peers as u64);
        bench_pair(
            &mut group,
            &format!("light/{peers}"),
            &base,
            &session,
            &light,
        );
        if peers == 32 {
            let heavy = heavy_churn(&base.catalog, 11 + peers as u64);
            bench_pair(
                &mut group,
                &format!("heavy/{peers}"),
                &base,
                &session,
                &heavy,
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_incremental_vs_full);
criterion_main!(benches);

//! Criterion bench: cost of cycle and parallel-path enumeration as a function of the
//! probe TTL (cycle-length bound) on clustered topologies.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pdms_graph::{enumerate_cycles, enumerate_parallel_paths, GeneratorConfig};

fn bench_cycle_enumeration(c: &mut Criterion) {
    let graph = GeneratorConfig::small_world(30, 3, 0.2, 11).generate();
    let mut group = c.benchmark_group("cycle_enumeration");
    for &ttl in &[3usize, 4, 5, 6] {
        group.bench_with_input(BenchmarkId::new("cycles", ttl), &ttl, |b, &ttl| {
            b.iter(|| enumerate_cycles(&graph, ttl))
        });
        group.bench_with_input(BenchmarkId::new("parallel_paths", ttl), &ttl, |b, &ttl| {
            b.iter(|| enumerate_parallel_paths(&graph, ttl))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_cycle_enumeration);
criterion_main!(benches);

//! Criterion bench: exact-inference backends (enumeration vs. variable elimination vs.
//! junction tree) and the loopy approximation, on the growing-cycle models of Figure 8.
//!
//! This is the ablation behind the choice of exact baseline: brute-force enumeration is
//! exponential in the number of variables, while elimination and junction-tree
//! propagation only pay for the induced width, which stays tiny on PDMS factor graphs.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pdms_core::{AnalysisConfig, CycleAnalysis, Granularity, MappingModel, PriorStore};
use pdms_factor::{
    eliminate_marginals, exact_marginals, junction_tree_marginals, run_sum_product,
    SumProductConfig,
};
use pdms_workloads::growing_cycle;
use std::collections::BTreeMap;

fn bench_exact_backends(c: &mut Criterion) {
    let mut group = c.benchmark_group("exact_inference");
    group.sample_size(20);
    for &extra in &[0usize, 4, 8] {
        // The Figure 8 construction: the example graph with `extra` peers spliced into
        // the long cycle. Build the global factor graph once per size.
        let (catalog, _) = growing_cycle(extra);
        let analysis = CycleAnalysis::analyze(
            &catalog,
            &AnalysisConfig {
                max_cycle_len: 6 + extra,
                max_path_len: 4 + extra,
                include_parallel_paths: true,
                ..Default::default()
            },
        );
        let model = MappingModel::build(&catalog, &analysis, Granularity::Coarse, 0.1);
        let priors: BTreeMap<_, _> = PriorStore::with_default(0.8).snapshot();
        let graph = model.global_factor_graph(&priors, 0.8);
        let variables = graph.variable_count();

        if variables <= 20 {
            group.bench_with_input(
                BenchmarkId::new("enumeration", variables),
                &graph,
                |b, graph| b.iter(|| exact_marginals(graph)),
            );
        }
        group.bench_with_input(
            BenchmarkId::new("elimination", variables),
            &graph,
            |b, graph| b.iter(|| eliminate_marginals(graph)),
        );
        group.bench_with_input(
            BenchmarkId::new("junction_tree", variables),
            &graph,
            |b, graph| b.iter(|| junction_tree_marginals(graph)),
        );
        group.bench_with_input(
            BenchmarkId::new("loopy_bp", variables),
            &graph,
            |b, graph| {
                b.iter(|| {
                    run_sum_product(
                        graph,
                        SumProductConfig {
                            max_iterations: 10,
                            record_history: false,
                            ..Default::default()
                        },
                    )
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_exact_backends);
criterion_main!(benches);

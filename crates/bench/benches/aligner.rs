//! Criterion bench: throughput of the string-similarity aligner and of the full
//! ontology-suite generation behind the Figure 12 workload.

use criterion::{criterion_group, criterion_main, Criterion};
use pdms_schema::PeerId;
use pdms_workloads::{align_schemas, generate_ontology_suite, AlignerConfig, OntologySuiteConfig};

fn bench_aligner(c: &mut Criterion) {
    let suite = generate_ontology_suite(&OntologySuiteConfig::default());
    let a = suite.catalog.peer_schema(PeerId(0)).clone();
    let b = suite.catalog.peer_schema(PeerId(3)).clone();
    c.bench_function("align_one_schema_pair", |bench| {
        bench.iter(|| align_schemas(&a, &b, &AlignerConfig::default()))
    });
    let mut group = c.benchmark_group("ontology_suite");
    group.sample_size(10);
    group.bench_function("generate_full_suite", |bench| {
        bench.iter(|| generate_ontology_suite(&OntologySuiteConfig::default()))
    });
    group.finish();
}

criterion_group!(benches, bench_aligner);
criterion_main!(benches);

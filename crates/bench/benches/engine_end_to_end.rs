//! Criterion bench: end-to-end engine run (analysis → model → inference) on synthetic
//! clustered networks of increasing size.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pdms_core::{AnalysisConfig, EmbeddedConfig, Engine, EngineConfig};
use pdms_graph::GeneratorConfig;
use pdms_workloads::{SyntheticConfig, SyntheticNetwork};

fn bench_engine(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine_end_to_end");
    group.sample_size(10);
    for &peers in &[8usize, 16, 24] {
        let network = SyntheticNetwork::generate(SyntheticConfig {
            topology: GeneratorConfig::small_world(peers, 2, 0.2, 5),
            attributes: 10,
            error_rate: 0.15,
            seed: 9,
        });
        group.bench_with_input(BenchmarkId::new("run", peers), &peers, |b, _| {
            b.iter(|| {
                let mut engine = Engine::new(
                    network.catalog.clone(),
                    EngineConfig {
                        delta: Some(0.1),
                        analysis: AnalysisConfig {
                            max_cycle_len: 5,
                            max_path_len: 3,
                            include_parallel_paths: true,
                            ..Default::default()
                        },
                        embedded: EmbeddedConfig {
                            record_history: false,
                            max_rounds: 30,
                            ..Default::default()
                        },
                        ..Default::default()
                    },
                );
                engine.run()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_engine);
criterion_main!(benches);

//! Criterion bench: OWL / alignment document parsing and serialisation throughput.
//!
//! The import path of the Section 5.2 tool has to read one OWL document per peer and
//! one alignment document per mapping; this bench measures the cost of a full
//! export → parse → import round trip of the ontology-alignment workload.

use criterion::{criterion_group, criterion_main, Criterion};
use pdms_rdf::{
    export_catalog, import_catalog, parse_alignment, parse_ontology, AlignmentDoc, Ontology,
};
use pdms_workloads::{generate_ontology_suite, OntologySuiteConfig};

fn bench_rdf_formats(c: &mut Criterion) {
    let suite = generate_ontology_suite(&OntologySuiteConfig::default());
    let export = export_catalog(&suite.catalog);

    let mut group = c.benchmark_group("rdf_formats");
    group.sample_size(20);

    group.bench_function("export_catalog", |b| {
        b.iter(|| export_catalog(&suite.catalog))
    });

    group.bench_function("parse_all_documents", |b| {
        b.iter(|| {
            let ontologies: Vec<Ontology> = export
                .ontologies
                .iter()
                .map(|(name, xml)| parse_ontology(xml, name).expect("exported OWL parses"))
                .collect();
            let alignments: Vec<AlignmentDoc> = export
                .alignments
                .iter()
                .map(|xml| parse_alignment(xml).expect("exported alignment parses"))
                .collect();
            (ontologies, alignments)
        })
    });

    let ontologies: Vec<Ontology> = export
        .ontologies
        .iter()
        .map(|(name, xml)| parse_ontology(xml, name).expect("exported OWL parses"))
        .collect();
    let alignments: Vec<AlignmentDoc> = export
        .alignments
        .iter()
        .map(|xml| parse_alignment(xml).expect("exported alignment parses"))
        .collect();
    group.bench_function("import_catalog", |b| {
        b.iter(|| import_catalog(&ontologies, &alignments).expect("import succeeds"))
    });

    group.finish();
}

criterion_group!(benches, bench_rdf_formats);
criterion_main!(benches);

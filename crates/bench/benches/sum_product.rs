//! Criterion bench: cost of one loopy-BP iteration and of a full run as the mapping
//! network grows (ring topologies of increasing size).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pdms_core::{
    run_embedded, AnalysisConfig, CycleAnalysis, EmbeddedConfig, Granularity, MappingModel,
};
use pdms_factor::{run_sum_product, SumProductConfig};
use pdms_workloads::simple_cycle;
use std::collections::BTreeMap;

fn bench_sum_product(c: &mut Criterion) {
    let mut group = c.benchmark_group("sum_product");
    for &n in &[4usize, 8, 12, 16] {
        let catalog = simple_cycle(n);
        let analysis = CycleAnalysis::analyze(
            &catalog,
            &AnalysisConfig {
                max_cycle_len: n + 1,
                max_path_len: 2,
                include_parallel_paths: false,
                ..Default::default()
            },
        );
        let model = MappingModel::build(&catalog, &analysis, Granularity::Fine, 0.1);
        let priors = BTreeMap::new();
        group.bench_with_input(BenchmarkId::new("centralized_loopy_bp", n), &n, |b, _| {
            let graph = model.global_factor_graph(&priors, 0.6);
            b.iter(|| {
                run_sum_product(
                    &graph,
                    SumProductConfig {
                        record_history: false,
                        ..Default::default()
                    },
                )
            })
        });
        group.bench_with_input(
            BenchmarkId::new("embedded_message_passing", n),
            &n,
            |b, _| {
                b.iter(|| {
                    run_embedded(
                        &model,
                        &priors,
                        0.6,
                        EmbeddedConfig {
                            record_history: false,
                            ..Default::default()
                        },
                    )
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_sum_product);
criterion_main!(benches);
